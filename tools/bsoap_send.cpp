// bsoap_send — command-line workload driver.
//
// Sends synthetic scientific payloads to a built-in drain server (or a given
// host:port) with a selectable engine, and reports per-send timings and
// differential-serialization statistics. Handy for exploring the design
// space without writing code:
//
//   bsoap_send --engine bsoap --type double --n 100000 --sends 50
//   bsoap_send --engine bsoap --type mio --n 10000 --change-pct 25 --stuff max
//   bsoap_send --engine gsoap --type int --n 50000
//   bsoap_send --engine overlay --type double --n 100000
#include <cstdio>
#include <cstring>
#include <string>

#include "baseline/gsoap_like.hpp"
#include "baseline/xsoap_like.hpp"
#include "common/timing.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"
#include "core/pipelined_overlay.hpp"
#include "net/drain_server.hpp"
#include "net/tcp.hpp"
#include "soap/workload.hpp"

using namespace bsoap;

namespace {

struct Options {
  std::string engine = "bsoap";  // bsoap | bsoap-full | gsoap | xsoap | overlay | pipelined
  std::string type = "double";   // double | int | mio
  std::size_t n = 10000;
  int sends = 20;
  int change_pct = 0;        // % of values mutated between sends
  std::string stuff = "off"; // off | max
  std::uint64_t seed = 42;
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--engine bsoap|bsoap-full|gsoap|xsoap|overlay|"
               "pipelined]\n"
               "          [--type double|int|mio] [--n COUNT] [--sends K]\n"
               "          [--change-pct P] [--stuff off|max] [--seed S]\n",
               argv0);
}

bool parse_args(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--engine") {
      const char* v = next();
      if (v == nullptr) return false;
      options->engine = v;
    } else if (arg == "--type") {
      const char* v = next();
      if (v == nullptr) return false;
      options->type = v;
    } else if (arg == "--n") {
      const char* v = next();
      if (v == nullptr) return false;
      options->n = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--sends") {
      const char* v = next();
      if (v == nullptr) return false;
      options->sends = std::atoi(v);
    } else if (arg == "--change-pct") {
      const char* v = next();
      if (v == nullptr) return false;
      options->change_pct = std::atoi(v);
    } else if (arg == "--stuff") {
      const char* v = next();
      if (v == nullptr) return false;
      options->stuff = v;
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      options->seed = static_cast<std::uint64_t>(std::atoll(v));
    } else {
      return false;
    }
  }
  return true;
}

soap::RpcCall make_call(const Options& options, std::uint64_t seed) {
  if (options.type == "int") {
    return soap::make_int_array_call(soap::random_ints(options.n, seed));
  }
  if (options.type == "mio") {
    return soap::make_mio_array_call(soap::random_mios(options.n, seed));
  }
  return soap::make_double_array_call(soap::random_doubles(options.n, seed));
}

void mutate(soap::RpcCall* call, int pct, Rng* rng) {
  soap::Value& value = call->params[0].value;
  const auto mutate_count = [&](std::size_t total) {
    return total * static_cast<std::size_t>(pct) / 100;
  };
  switch (value.kind()) {
    case soap::ValueKind::kDoubleArray: {
      auto& v = value.doubles();
      for (std::size_t i = 0; i < mutate_count(v.size()); ++i) {
        v[rng->next_below(v.size())] = rng->next_unit_double();
      }
      break;
    }
    case soap::ValueKind::kIntArray: {
      auto& v = value.ints();
      for (std::size_t i = 0; i < mutate_count(v.size()); ++i) {
        v[rng->next_below(v.size())] = rng->next_i32();
      }
      break;
    }
    case soap::ValueKind::kMioArray: {
      auto& v = value.mios();
      for (std::size_t i = 0; i < mutate_count(v.size()); ++i) {
        v[rng->next_below(v.size())].value = rng->next_unit_double();
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, &options)) {
    usage(argv[0]);
    return 2;
  }

  auto drain = net::DrainServer::start();
  drain.value_or_die();
  auto transport = net::tcp_connect(drain.value()->port());
  transport.value_or_die();

  soap::RpcCall call = make_call(options, options.seed);
  Rng rng(options.seed ^ 0xabcdef);
  TimingStats stats;

  std::printf("engine=%s type=%s n=%zu sends=%d change=%d%% stuff=%s\n",
              options.engine.c_str(), options.type.c_str(), options.n,
              options.sends, options.change_pct, options.stuff.c_str());

  if (options.engine == "gsoap" || options.engine == "xsoap") {
    baseline::GSoapLikeClient gsoap(*transport.value());
    baseline::XSoapLikeClient xsoap(*transport.value());
    for (int i = 0; i < options.sends; ++i) {
      mutate(&call, options.change_pct, &rng);
      StopWatch watch;
      if (options.engine == "gsoap") {
        gsoap.send_call(call).value_or_die();
      } else {
        xsoap.send_call(call).value_or_die();
      }
      stats.add(watch.elapsed_ms());
    }
  } else if (options.engine == "overlay" || options.engine == "pipelined") {
    if (options.type == "int") {
      std::fprintf(stderr, "overlay engines support double/mio only\n");
      return 2;
    }
    core::OverlaySender overlay(*transport.value(), core::OverlayConfig{});
    core::PipelinedOverlaySender pipelined(*transport.value(),
                                           core::PipelinedOverlayConfig{});
    for (int i = 0; i < options.sends; ++i) {
      mutate(&call, options.change_pct, &rng);
      StopWatch watch;
      const bool plain = options.engine == "overlay";
      if (options.type == "mio") {
        auto& v = call.params[0].value.mios();
        (plain ? overlay.send_mio_array("sendData", "urn:bench", "data", v)
               : pipelined.send_mio_array("sendData", "urn:bench", "data", v))
            .value_or_die();
      } else {
        auto& v = call.params[0].value.doubles();
        (plain
             ? overlay.send_double_array("sendData", "urn:bench", "data", v)
             : pipelined.send_double_array("sendData", "urn:bench", "data", v))
            .value_or_die();
      }
      stats.add(watch.elapsed_ms());
    }
  } else {
    core::BsoapClientConfig config;
    config.differential = options.engine != "bsoap-full";
    if (options.stuff == "max") {
      config.tmpl.stuffing.mode = core::StuffingPolicy::Mode::kTypeMax;
    }
    core::BsoapClient client(*transport.value(), config);
    std::uint64_t rewrites = 0;
    for (int i = 0; i < options.sends; ++i) {
      mutate(&call, options.change_pct, &rng);
      StopWatch watch;
      Result<core::SendReport> report = client.send_call(call);
      stats.add(watch.elapsed_ms());
      report.value_or_die();
      rewrites += report.value().update.values_rewritten;
      if (i < 3 || i == options.sends - 1) {
        std::printf("  send %2d: %-26s %.3f ms\n", i + 1,
                    core::match_kind_name(report.value().match),
                    watch.elapsed_ms());
      }
    }
    std::printf("total values rewritten: %llu\n",
                static_cast<unsigned long long>(rewrites));
  }

  std::printf("send time: mean %.3f ms  min %.3f ms  max %.3f ms (%lld sends)\n",
              stats.mean(), stats.min(), stats.max(),
              static_cast<long long>(stats.count()));
  transport.value()->shutdown_send();
  drain.value()->stop();
  return 0;
}
