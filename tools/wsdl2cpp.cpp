// wsdl2cpp — generate a typed C++ client stub from a WSDL document
// (the role wsdl2h/soapcpp2 play for gSOAP).
//
// Usage:
//   wsdl2cpp service.wsdl [output.hpp] [--namespace ns]
// With no output path the stub is written to stdout.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "wsdl/codegen.hpp"
#include "wsdl/parser.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s service.wsdl [output.hpp] [--namespace ns]\n",
                 argv[0]);
    return 2;
  }
  std::string input_path;
  std::string output_path;
  bsoap::wsdl::CodegenOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--namespace") == 0 && i + 1 < argc) {
      options.cpp_namespace = argv[++i];
    } else if (input_path.empty()) {
      input_path = argv[i];
    } else if (output_path.empty()) {
      output_path = argv[i];
    }
  }

  std::ifstream in(input_path);
  if (!in) {
    std::fprintf(stderr, "wsdl2cpp: cannot open %s\n", input_path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  bsoap::Result<bsoap::wsdl::WsdlDocument> document =
      bsoap::wsdl::parse_wsdl(buffer.str());
  if (!document.ok()) {
    std::fprintf(stderr, "wsdl2cpp: parse error: %s\n",
                 document.error().to_string().c_str());
    return 1;
  }
  bsoap::Result<std::string> stub =
      bsoap::wsdl::generate_client_stub(document.value(), options);
  if (!stub.ok()) {
    std::fprintf(stderr, "wsdl2cpp: codegen error: %s\n",
                 stub.error().to_string().c_str());
    return 1;
  }

  if (output_path.empty()) {
    std::fputs(stub.value().c_str(), stdout);
  } else {
    std::ofstream out(output_path);
    if (!out) {
      std::fprintf(stderr, "wsdl2cpp: cannot write %s\n", output_path.c_str());
      return 1;
    }
    out << stub.value();
    std::printf("wrote %s (%zu bytes)\n", output_path.c_str(),
                stub.value().size());
  }
  return 0;
}
