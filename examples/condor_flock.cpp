// Condor flock scenario (paper Section 3.4).
//
// Flocks of Condor pools exchange ClassAd resource descriptions. Between
// consecutive exchanges most machines are unchanged, so messages are similar
// "in structure and even content" — bSOAP resends unchanged ads as message
// content matches and rewrites only the ads whose load changed, with no
// change to the resource manager itself (the client just hands over the same
// ClassAd snapshot each period).
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/client.hpp"
#include "net/drain_server.hpp"
#include "net/tcp.hpp"
#include "soap/value.hpp"

using namespace bsoap;

namespace {

struct Machine {
  std::string name;
  std::int32_t cpus;
  std::int32_t memory_mb;
  double load_avg;
  std::string state;  // "Unclaimed" / "Claimed"
};

soap::RpcCall classad_call(const std::vector<Machine>& machines) {
  soap::RpcCall call;
  call.method = "updateClassAds";
  call.service_namespace = "urn:condor-flock";
  soap::Value pool = soap::Value::make_struct();
  for (const Machine& m : machines) {
    soap::Value ad = soap::Value::make_struct();
    ad.add_member("Name", soap::Value::from_string(m.name));
    ad.add_member("Cpus", soap::Value::from_int(m.cpus));
    ad.add_member("Memory", soap::Value::from_int(m.memory_mb));
    ad.add_member("LoadAvg", soap::Value::from_double(m.load_avg));
    ad.add_member("State", soap::Value::from_string(m.state));
    pool.add_member(m.name, ad);
  }
  call.params.push_back(soap::Param{"pool", pool});
  return call;
}

}  // namespace

int main(int argc, char** argv) {
  const int machines_count = argc > 1 ? std::atoi(argv[1]) : 64;
  const int periods = 12;

  auto collector = net::DrainServer::start();
  collector.value_or_die();
  auto transport = net::tcp_connect(collector.value()->port());
  transport.value_or_die();
  core::BsoapClient client(*transport.value());

  // Initial pool.
  Rng rng(99);
  std::vector<Machine> machines;
  for (int i = 0; i < machines_count; ++i) {
    Machine m;
    m.name = "node" + std::to_string(i) + ".cs.binghamton.edu";
    m.cpus = static_cast<std::int32_t>(1 << rng.next_below(3));
    m.memory_mb = static_cast<std::int32_t>(512 * (1 + rng.next_below(8)));
    m.load_avg = 0.25;  // fixed-width lexical ("0.25"), stable across sends
    m.state = "Unclaimed";
    machines.push_back(m);
  }

  std::printf("flock of %d machines, %d update periods\n", machines_count,
              periods);
  std::printf("%-7s %-10s %-26s %-10s %s\n", "period", "changed",
              "bSOAP match", "rewrites", "envelope bytes");
  for (int period = 1; period <= periods; ++period) {
    // A few machines change load/state between exchanges; most do not.
    // Period 1 is the first send; periods 4 and 8 are fully idle.
    int changed = 0;
    if (period > 1 && period != 4 && period != 8) {
      const int flips = 1 + static_cast<int>(rng.next_below(4));
      for (int f = 0; f < flips; ++f) {
        Machine& m = machines[rng.next_below(machines.size())];
        // Values drawn from a fixed-width set, as ClassAd load averages are
        // conventionally rendered with two decimals.
        m.load_avg = static_cast<double>(1 + rng.next_below(99)) / 4.0;
        m.state = m.state == "Unclaimed" ? "Claimed" : "Unclaimed";
        ++changed;
      }
    }

    Result<core::SendReport> report = client.send_call(classad_call(machines));
    report.value_or_die();
    std::printf("%-7d %-10d %-26s %-10llu %zu\n", period, changed,
                core::match_kind_name(report.value().match),
                static_cast<unsigned long long>(
                    report.value().update.values_rewritten),
                report.value().envelope_bytes);
  }

  transport.value()->shutdown_send();
  collector.value()->stop();
  return 0;
}
