// Quickstart: the bSOAP client in five minutes.
//
// Starts an in-process SOAP service, makes the same call three times with
// small changes, and prints which of the paper's matching cases each send
// hit — first-time send, message content match, perfect structural match.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/client.hpp"
#include "http/connection.hpp"
#include "net/tcp.hpp"
#include "soap/soap_server.hpp"

using namespace bsoap;

int main() {
  // 1. A SOAP service: averages an array of doubles.
  auto server = soap::SoapHttpServer::start(
      [](const soap::RpcCall& call) -> Result<soap::Value> {
        const auto& data = call.params[0].value.doubles();
        double sum = 0;
        for (const double v : data) sum += v;
        return soap::Value::from_double(
            data.empty() ? 0.0 : sum / static_cast<double>(data.size()));
      });
  if (!server.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 server.error().to_string().c_str());
    return 1;
  }
  std::printf("service listening on 127.0.0.1:%u\n", server.value()->port());

  // 2. A bSOAP client with differential serialization (the default).
  auto transport = net::tcp_connect(server.value()->port());
  transport.value_or_die();
  core::BsoapClient client(*transport.value());
  http::HttpConnection responses(*transport.value());

  // 3. Build a call: average(data = [...]).
  soap::RpcCall call;
  call.method = "average";
  call.service_namespace = "urn:quickstart";
  call.params.push_back(soap::Param{
      "data", soap::Value::from_double_array({1.5, 2.5, 3.5, 4.5})});

  // First send: full serialization; the client saves the message template.
  for (int round = 0; round < 3; ++round) {
    Result<core::SendReport> report = client.send_call(call);
    report.value_or_die();
    // (invoke() wraps send+receive; done manually here to show the report.)
    Result<http::HttpResponse> response = responses.read_response();
    if (!response.ok()) {
      std::fprintf(stderr, "no response: %s\n",
                   response.error().to_string().c_str());
      return 1;
    }
    std::printf(
        "send %d: %-26s values rewritten: %llu, envelope bytes: %zu\n",
        round + 1, core::match_kind_name(report.value().match),
        static_cast<unsigned long long>(report.value().update.values_rewritten),
        report.value().envelope_bytes);

    // Tweak one element: the next send is a perfect structural match that
    // rewrites exactly one field in the saved template.
    call.params[0].value.doubles()[1] += 1.0;
  }

  // 4. The explicit-tracking API (the paper's DUT get/set accessors):
  auto message = client.bind(call);
  message->set_double_element(/*param=*/0, /*index=*/2, 99.5);
  Result<core::SendReport> tracked = message->send();
  tracked.value_or_die();
  (void)responses.read_response();
  std::printf("tracked send: %s (dirty fields rewritten: %llu)\n",
              core::match_kind_name(tracked.value().match),
              static_cast<unsigned long long>(
                  tracked.value().update.values_rewritten));

  server.value()->stop();
  std::printf("done.\n");
  return 0;
}
