// Build-time code generation demo: examples/calc_service.wsdl is compiled
// into calc_stub.hpp by wsdl2cpp during the build (see CMakeLists.txt), and
// this program calls the service through the generated typed stub — the
// gSOAP wsdl2h/soapcpp2 workflow, with differential serialization under the
// hood of every repeated call.
#include <cstdio>

#include "calc_stub.hpp"  // generated into the build tree
#include "net/tcp.hpp"
#include "server/server_runtime.hpp"
#include "soap/soap_server.hpp"

using namespace bsoap;

int main() {
  auto server = soap::SoapHttpServer::start(
      [](const soap::RpcCall& call) -> Result<soap::Value> {
        if (call.method == "add") {
          return soap::Value::from_double(call.params[0].value.as_double() +
                                          call.params[1].value.as_double());
        }
        if (call.method == "dot") {
          const auto& x = call.params[0].value.doubles();
          const auto& y = call.params[1].value.doubles();
          if (x.size() != y.size()) {
            return Error{ErrorCode::kInvalidArgument, "length mismatch"};
          }
          double sum = 0;
          for (std::size_t i = 0; i < x.size(); ++i) sum += x[i] * y[i];
          return soap::Value::from_double(sum);
        }
        return Error{ErrorCode::kNotFound, "unknown operation"};
      });
  server.value_or_die();

  auto transport = net::tcp_connect(server.value()->port());
  transport.value_or_die();

  // The generated class: typed methods straight from the WSDL.
  bsoap_stubs::CalcServiceStub calc(*transport.value());

  Result<double> sum = calc.add(1.5, 2.25);
  sum.value_or_die();
  std::printf("add(1.5, 2.25) = %.4f\n", sum.value());

  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {10, 20, 30, 40};
  for (int round = 0; round < 3; ++round) {
    // Repeated calls reuse the saved template inside the stub's client.
    Result<double> dot = calc.dot(x, y);
    dot.value_or_die();
    std::printf("dot round %d = %.1f\n", round + 1, dot.value());
    x[0] += 1.0;
  }

  // Both directions are differential: the stub's client reuses its request
  // template, and the server runtime reuses its response templates.
  const server::ServerStats stats = server.value()->runtime().stats();
  std::printf("server: %llu requests, response diff hits %llu/%llu\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.response_diff_hits()),
              static_cast<unsigned long long>(stats.responses_total()));

  server.value()->stop();
  std::printf("done.\n");
  return 0;
}
