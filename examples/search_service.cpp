// Server-side differential serialization (paper Section 3.4, last scenario).
//
// "Google and Amazon.com provide a Web services interface. The XML Schema
// used for the responses ... is always the same; only the values change. The
// optimizations in bSOAP for perfect structural match could significantly
// reduce the time spent serializing response messages from the heavily-used
// servers."
//
// This example runs a search service whose RESPONSE envelope is a saved
// message template: each query rewrites only the fields that changed (hit
// count, scores, result titles) and the response bytes go out of the chunked
// template via scatter-gather send — the server never re-serializes the
// response envelope from scratch after the first request.
#include <cstdio>
#include <string>
#include <vector>

#include "buffer/sinks.hpp"
#include "common/rng.hpp"
#include "core/diff_serializer.hpp"
#include "core/template_builder.hpp"
#include "http/connection.hpp"
#include "net/tcp.hpp"
#include "soap/envelope_reader.hpp"
#include "soap/envelope_writer.hpp"
#include "soap/soap_server.hpp"
#include "soap/value.hpp"

using namespace bsoap;

namespace {

/// Fixed response schema: total hits + top-4 result titles + their scores.
soap::RpcCall make_response_call(std::int32_t total,
                                 const std::vector<std::string>& titles,
                                 const std::vector<double>& scores) {
  soap::RpcCall call;
  call.method = "searchResponse";
  call.service_namespace = "urn:search";
  soap::Value result = soap::Value::make_struct();
  result.add_member("totalHits", soap::Value::from_int(total));
  soap::Value hits = soap::Value::make_struct();
  for (std::size_t i = 0; i < titles.size(); ++i) {
    soap::Value hit = soap::Value::make_struct();
    hit.add_member("title", soap::Value::from_string(titles[i]));
    hit.add_member("score", soap::Value::from_double(scores[i]));
    hits.add_member("hit" + std::to_string(i), hit);
  }
  result.add_member("hits", hits);
  call.params.push_back(soap::Param{"return", result});
  return call;
}

/// A toy index: deterministic pseudo-results per query.
void run_query(const std::string& query, std::int32_t* total,
               std::vector<std::string>* titles, std::vector<double>* scores) {
  Rng rng(std::hash<std::string>{}(query));
  *total = static_cast<std::int32_t>(rng.next_in(100, 99999));
  titles->clear();
  scores->clear();
  for (int i = 0; i < 4; ++i) {
    titles->push_back("doc-" + std::to_string(rng.next_below(10000)) +
                      " about " + query);
    // Two-decimal scores: fixed-width lexicals keep rewrites in place.
    scores->push_back(static_cast<double>(rng.next_in(100, 999)) / 100.0);
  }
}

}  // namespace

int main() {
  auto listener = net::TcpListener::bind();
  listener.value_or_die();
  const std::uint16_t port = listener.value().port();
  std::printf("search service on 127.0.0.1:%u\n", port);

  // Server thread: response envelope kept as a differential template.
  std::thread server_thread([&] {
    auto conn = listener.value().accept();
    if (!conn.ok()) return;
    http::HttpConnection http(*conn.value());

    core::TemplateConfig config;
    // Stuff numeric fields so score/hit-count changes never shift.
    config.stuffing.mode = core::StuffingPolicy::Mode::kTypeMax;
    std::unique_ptr<core::MessageTemplate> response_template;

    for (;;) {
      Result<http::HttpRequest> request = http.read_request();
      if (!request.ok()) return;
      Result<soap::RpcCall> call = soap::read_rpc_envelope(request.value().body);
      if (!call.ok()) return;
      const std::string query = call.value().params[0].value.as_string();

      std::int32_t total = 0;
      std::vector<std::string> titles;
      std::vector<double> scores;
      run_query(query, &total, &titles, &scores);
      const soap::RpcCall response = make_response_call(total, titles, scores);

      core::UpdateResult update;
      if (response_template == nullptr) {
        response_template = core::build_template(response, config);
        update.match = core::MatchKind::kFirstTime;
      } else {
        update = core::update_template(*response_template, response);
      }

      std::fprintf(stderr, "  server: %-26s rewrites=%llu\n",
                   core::match_kind_name(update.match),
                   static_cast<unsigned long long>(update.values_rewritten));

      // Scatter-gather send straight out of the template chunks.
      http::HttpResponse head;
      head.headers.push_back(
          http::Header{"Content-Type", "text/xml; charset=utf-8"});
      head.headers.push_back(http::Header{
          "Content-Length",
          std::to_string(response_template->buffer().total_size())});
      const std::string head_text = http::serialize_response_head(head);
      std::vector<net::ConstSlice> wire;
      wire.push_back(net::ConstSlice{head_text.data(), head_text.size()});
      for (const auto& s : response_template->buffer().slices()) {
        wire.push_back(net::ConstSlice{s.data, s.len});
      }
      if (!conn.value()->send_slices(wire).ok()) return;
    }
  });

  // Client: issue queries, some repeated (identical responses = server-side
  // content matches).
  auto transport = net::tcp_connect(port);
  transport.value_or_die();
  http::HttpConnection client(*transport.value());

  const char* queries[] = {"soap performance", "mesh solvers",
                           "soap performance", "grid computing",
                           "grid computing", "soap performance"};
  for (const char* q : queries) {
    soap::RpcCall request;
    request.method = "search";
    request.service_namespace = "urn:search";
    request.params.push_back(
        soap::Param{"query", soap::Value::from_string(q)});
    buffer::StringSink sink;
    soap::write_rpc_envelope(sink, request);
    http::HttpRequest head;
    head.headers.push_back(
        http::Header{"Content-Type", "text/xml; charset=utf-8"});
    const net::ConstSlice body[] = {
        net::ConstSlice{sink.str().data(), sink.str().size()}};
    client.send_request(std::move(head), body).check();

    Result<http::HttpResponse> response = client.read_response();
    response.value_or_die();
    Result<soap::RpcCall> parsed =
        soap::read_rpc_envelope(response.value().body);
    parsed.value_or_die();
    const soap::Value& result = parsed.value().params[0].value;
    std::printf("query '%-18s' -> totalHits=%d, top='%s'\n", q,
                result.members()[0].value.as_int(),
                result.members()[1]
                    .value.members()[0]
                    .value.members()[0]
                    .value.as_string()
                    .c_str());
  }

  transport.value()->shutdown_both();
  server_thread.join();
  std::printf("done.\n");
  return 0;
}
