// Server-side differential serialization (paper Section 3.4, last scenario).
//
// "Google and Amazon.com provide a Web services interface. The XML Schema
// used for the responses ... is always the same; only the values change. The
// optimizations in bSOAP for perfect structural match could significantly
// reduce the time spent serializing response messages from the heavily-used
// servers."
//
// This example runs the search service on the server runtime
// (src/server/server_runtime.hpp): a bounded worker pool where every worker
// keeps its response envelopes as saved message templates. A repeated query
// produces an identical response — resent straight from the template's
// chunks (content match); a new query rewrites only the changed fields. The
// per-match-kind counters in ServerStats show how many responses skipped
// full serialization.
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/client.hpp"
#include "net/tcp.hpp"
#include "server/server_runtime.hpp"
#include "soap/value.hpp"

using namespace bsoap;

namespace {

/// A toy index: deterministic pseudo-results per query. Fixed response
/// schema: total hits + top-4 result titles + their scores.
Result<soap::Value> handle_search(const soap::RpcCall& call) {
  if (call.method != "search") {
    return Error{ErrorCode::kNotFound, "unknown operation"};
  }
  const std::string query = call.params[0].value.as_string();
  Rng rng(std::hash<std::string>{}(query));
  soap::Value result = soap::Value::make_struct();
  result.add_member("totalHits", soap::Value::from_int(static_cast<std::int32_t>(
                                     rng.next_in(100, 99999))));
  soap::Value hits = soap::Value::make_struct();
  for (int i = 0; i < 4; ++i) {
    soap::Value hit = soap::Value::make_struct();
    hit.add_member("title",
                   soap::Value::from_string(
                       "doc-" + std::to_string(rng.next_below(10000)) +
                       " about " + query));
    // Two-decimal scores: fixed-width lexicals keep rewrites in place.
    hit.add_member("score", soap::Value::from_double(static_cast<double>(
                                rng.next_in(100, 999)) /
                                100.0));
    hits.add_member("hit" + std::to_string(i), hit);
  }
  result.add_member("hits", hits);
  return result;
}

}  // namespace

int main() {
  // One worker keeps the demo deterministic: all responses share a single
  // template store, so the match-kind sequence is easy to read. The epoll
  // engine serves the same wire bytes: set `options.io_model =
  // server::IoModel::kReactor` to run this demo on it.
  server::ServerRuntimeOptions options;
  options.workers = 1;
  auto server = server::ServerRuntime::start(handle_search, options);
  server.value_or_die();
  std::printf("search service on 127.0.0.1:%u (1 worker, diff responses)\n",
              server.value()->port());

  // Client: issue queries, some repeated (identical responses = server-side
  // content matches).
  auto transport = net::tcp_connect(server.value()->port());
  transport.value_or_die();
  core::BsoapClient client(*transport.value());

  const char* queries[] = {"soap performance", "mesh solvers",
                           "soap performance", "grid computing",
                           "grid computing", "soap performance"};
  for (const char* q : queries) {
    soap::RpcCall request;
    request.method = "search";
    request.service_namespace = "urn:search";
    request.params.push_back(
        soap::Param{"query", soap::Value::from_string(q)});
    Result<soap::Value> result = client.invoke(request);
    result.value_or_die();
    std::printf("query '%-18s' -> totalHits=%d, top='%s'\n", q,
                result.value().members()[0].value.as_int(),
                result.value()
                    .members()[1]
                    .value.members()[0]
                    .value.members()[0]
                    .value.as_string()
                    .c_str());
  }

  const server::ServerStats stats = server.value()->stats();
  std::printf(
      "server responses: first-time=%llu content=%llu perfect=%llu "
      "partial=%llu (diff hits %llu/%llu, template bytes %llu)\n",
      static_cast<unsigned long long>(stats.response_first_time),
      static_cast<unsigned long long>(stats.response_content_match),
      static_cast<unsigned long long>(stats.response_perfect_match),
      static_cast<unsigned long long>(stats.response_partial_match),
      static_cast<unsigned long long>(stats.response_diff_hits()),
      static_cast<unsigned long long>(stats.responses_total()),
      static_cast<unsigned long long>(stats.response_template_bytes));

  server.value()->stop();
  std::printf("done.\n");
  return 0;
}
