// WSDL workflow: describe -> publish -> validate -> call.
//
// Shows the toolchain role WSDL plays around differential serialization
// (paper Section 1): the service interface is described once; the client
// validates every outgoing call against it, which guarantees the structural
// stability that template reuse depends on. Also prints the generated C++
// stub (what `tools/wsdl2cpp` emits).
#include <cstdio>

#include "core/client.hpp"
#include "net/tcp.hpp"
#include "soap/soap_server.hpp"
#include "wsdl/codegen.hpp"
#include "wsdl/parser.hpp"
#include "wsdl/validator.hpp"
#include "wsdl/writer.hpp"

using namespace bsoap;

int main() {
  // 1. Describe the service.
  const wsdl::WsdlDocument description =
      wsdl::ServiceBuilder("MeshExchange", "urn:mesh")
          .add_struct_type("MIO", {wsdl::TypedField{"x", wsdl::XsdType::kInt, ""},
                                   wsdl::TypedField{"y", wsdl::XsdType::kInt, ""},
                                   wsdl::TypedField{"v", wsdl::XsdType::kDouble, ""}})
          .add_array_type("DoubleArray", "xsd:double")
          .add_operation(
              "exchangeBoundary",
              {wsdl::TypedField{"data", wsdl::XsdType::kArray, "xsd:double"}},
              wsdl::TypedField{"return", wsdl::XsdType::kDouble, ""})
          .set_location("http://localhost:0/mesh")
          .build();

  // 2. Publish the WSDL and round-trip it through the parser.
  const std::string wsdl_text = wsdl::write_wsdl(description);
  std::printf("WSDL (%zu bytes):\n%.240s...\n\n", wsdl_text.size(),
              wsdl_text.c_str());
  Result<wsdl::WsdlDocument> parsed = wsdl::parse_wsdl(wsdl_text);
  parsed.value_or_die();
  std::printf("parsed back: service with %zu operation(s)\n\n",
              parsed.value().port_types.front().operations.size());

  // 3. Generate the typed C++ client stub (wsdl2cpp output).
  Result<std::string> stub =
      wsdl::generate_client_stub(parsed.value(), wsdl::CodegenOptions{});
  stub.value_or_die();
  std::printf("generated stub (%zu bytes), first lines:\n%.300s...\n\n",
              stub.value().size(), stub.value().c_str());

  // 4. Run the service and make WSDL-validated differential calls.
  auto server = soap::SoapHttpServer::start(
      [](const soap::RpcCall& call) -> Result<soap::Value> {
        double sum = 0;
        for (const double v : call.params[0].value.doubles()) sum += v;
        return soap::Value::from_double(sum);
      });
  server.value_or_die();
  auto transport = net::tcp_connect(server.value()->port());
  transport.value_or_die();
  core::BsoapClient client(*transport.value());

  Result<soap::RpcCall> call =
      wsdl::make_call_skeleton(parsed.value(), "exchangeBoundary", 8);
  call.value_or_die();
  for (int round = 0; round < 3; ++round) {
    call.value().params[0].value.doubles()[0] = 1.5 * (round + 1);
    // Gate the send on WSDL validation: a structurally valid call is safe
    // to serialize differentially.
    wsdl::validate_call(parsed.value(), call.value()).check();
    Result<soap::Value> result = client.invoke(call.value());
    result.value_or_die();
    std::printf("exchangeBoundary round %d -> sum %.3f\n", round + 1,
                result.value().as_double());
  }

  // A structurally invalid call is rejected before it can pollute the
  // template store.
  soap::RpcCall bad = call.value();
  bad.params[0].value = soap::Value::from_int_array({1, 2, 3});
  const Status rejected = wsdl::validate_call(parsed.value(), bad);
  std::printf("invalid call rejected: %s\n", rejected.error().message.c_str());

  server.value()->stop();
  return 0;
}
