// Linear System Analyzer scenario (paper Section 3.4).
//
// The LSA is an iterative problem-solving environment: components refine a
// solution vector of Ax = b in a cycle, shipping the vector between
// components each sweep. "Since the size and form of the array does not
// change over different iterations, consecutive messages exhibit perfect
// structural matches" — exactly the case differential serialization wins.
//
// This example builds a diagonally dominant system, runs Jacobi sweeps, and
// after each sweep sends the current solution vector over SOAP with both
// bSOAP (differential) and the gSOAP-like baseline, reporting per-sweep Send
// Time and the differential statistics. As the solution converges, fewer
// vector entries change per sweep, so bSOAP's per-send work shrinks.
#include <cmath>
#include <cstdio>
#include <vector>

#include "baseline/gsoap_like.hpp"
#include "common/rng.hpp"
#include "common/timing.hpp"
#include "core/client.hpp"
#include "net/drain_server.hpp"
#include "net/tcp.hpp"
#include "soap/value.hpp"

using namespace bsoap;

namespace {

struct LinearSystem {
  std::size_t n;
  std::vector<double> a;  // row-major n*n
  std::vector<double> b;
};

/// Random strictly diagonally dominant system: Jacobi converges.
LinearSystem make_system(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  LinearSystem sys;
  sys.n = n;
  sys.a.resize(n * n);
  sys.b.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double v = rng.next_unit_double() - 0.5;
      sys.a[i * n + j] = v;
      row_sum += std::fabs(v);
    }
    sys.a[i * n + i] = row_sum + 1.0 + rng.next_unit_double();
    sys.b[i] = rng.next_unit_double() * 10.0;
  }
  return sys;
}

/// One Jacobi sweep; returns the max-norm update size.
double jacobi_sweep(const LinearSystem& sys, const std::vector<double>& x,
                    std::vector<double>* next) {
  double max_delta = 0;
  for (std::size_t i = 0; i < sys.n; ++i) {
    double sigma = 0;
    for (std::size_t j = 0; j < sys.n; ++j) {
      if (j != i) sigma += sys.a[i * sys.n + j] * x[j];
    }
    const double xi = (sys.b[i] - sigma) / sys.a[i * sys.n + i];
    max_delta = std::max(max_delta, std::fabs(xi - x[i]));
    (*next)[i] = xi;
  }
  return max_delta;
}

soap::RpcCall solution_call(const std::vector<double>& x) {
  soap::RpcCall call;
  call.method = "refineSolution";
  call.service_namespace = "urn:lsa";
  call.params.push_back(soap::Param{"x", soap::Value::from_double_array(x)});
  return call;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 400;
  std::printf("Linear System Analyzer: Jacobi on a %zux%zu system\n", n, n);

  auto drain = net::DrainServer::start();
  drain.value_or_die();
  auto bsoap_transport = net::tcp_connect(drain.value()->port());
  auto gsoap_transport = net::tcp_connect(drain.value()->port());
  bsoap_transport.value_or_die();
  gsoap_transport.value_or_die();

  // Stuff numeric fields to their 24-char maximum so refined values never
  // outgrow their field: every sweep is a perfect structural match.
  core::BsoapClientConfig config;
  config.tmpl.stuffing.mode = core::StuffingPolicy::Mode::kTypeMax;
  core::BsoapClient bsoap_client(*bsoap_transport.value(), config);
  baseline::GSoapLikeClient gsoap_client(*gsoap_transport.value());

  const LinearSystem sys = make_system(n, 7);
  std::vector<double> x(n, 0.0);
  std::vector<double> next(n, 0.0);

  std::printf("%-6s %-12s %-26s %-10s %-12s %-12s\n", "sweep", "residual",
              "bSOAP match", "rewrites", "bSOAP ms", "gSOAP ms");
  for (int sweep = 1; sweep <= 25; ++sweep) {
    const double delta = jacobi_sweep(sys, x, &next);
    std::swap(x, next);

    const soap::RpcCall call = solution_call(x);

    StopWatch bsoap_watch;
    Result<core::SendReport> report = bsoap_client.send_call(call);
    const double bsoap_ms = bsoap_watch.elapsed_ms();
    report.value_or_die();

    StopWatch gsoap_watch;
    gsoap_client.send_call(call).value_or_die();
    const double gsoap_ms = gsoap_watch.elapsed_ms();

    std::printf("%-6d %-12.3e %-26s %-10llu %-12.3f %-12.3f\n", sweep, delta,
                core::match_kind_name(report.value().match),
                static_cast<unsigned long long>(
                    report.value().update.values_rewritten),
                bsoap_ms, gsoap_ms);
    if (delta < 1e-12) {
      std::printf("converged after %d sweeps\n", sweep);
      break;
    }
  }

  bsoap_transport.value()->shutdown_send();
  gsoap_transport.value()->shutdown_send();
  drain.value()->stop();
  return 0;
}
