// Metadata Catalog Service scenario (paper Section 3.4).
//
// MCS manages metadata attributes for files produced by data-intensive
// applications. Every request conforms to the same metadata schema, so "the
// format of the SOAP payload is the same for each request" — perfect
// structural matches with string/int fields rather than numeric arrays.
//
// This example runs an in-process catalog service (add / query backed by an
// in-memory map standing in for the paper's MySQL backend) and a client that
// registers a stream of logical files through ONE bound message, mutating
// only the fields that change between requests.
#include <cstdio>
#include <map>
#include <mutex>
#include <string>

#include "core/client.hpp"
#include "http/connection.hpp"
#include "net/tcp.hpp"
#include "server/server_runtime.hpp"
#include "soap/envelope_reader.hpp"
#include "soap/soap_server.hpp"

using namespace bsoap;

namespace {

struct CatalogEntry {
  std::string owner;
  std::string collection;
  std::int32_t size_mb = 0;
  std::int32_t replicas = 0;
};

}  // namespace

int main() {
  // Handlers run on the server runtime's worker pool, so the catalog is
  // shared mutable state: guard it.
  std::mutex catalog_mutex;
  std::map<std::string, CatalogEntry> catalog;

  auto server = soap::SoapHttpServer::start(
      [&catalog, &catalog_mutex](
          const soap::RpcCall& call) -> Result<soap::Value> {
        std::lock_guard<std::mutex> lock(catalog_mutex);
        auto param = [&](const char* name) -> const soap::Value* {
          for (const soap::Param& p : call.params) {
            if (p.name == name) return &p.value;
          }
          return nullptr;
        };
        if (call.method == "addMetadata") {
          const soap::Value* file = param("logicalFile");
          if (file == nullptr) {
            return Error{ErrorCode::kInvalidArgument, "missing logicalFile"};
          }
          CatalogEntry entry;
          entry.owner = param("owner")->as_string();
          entry.collection = param("collection")->as_string();
          entry.size_mb = param("sizeMB")->as_int();
          entry.replicas = param("replicas")->as_int();
          catalog[file->as_string()] = entry;
          return soap::Value::from_int(static_cast<std::int32_t>(catalog.size()));
        }
        if (call.method == "queryMetadata") {
          const auto it = catalog.find(param("logicalFile")->as_string());
          if (it == catalog.end()) {
            return Error{ErrorCode::kNotFound, "no such logical file"};
          }
          soap::Value result = soap::Value::make_struct();
          result.add_member("owner", soap::Value::from_string(it->second.owner));
          result.add_member("collection",
                            soap::Value::from_string(it->second.collection));
          result.add_member("sizeMB", soap::Value::from_int(it->second.size_mb));
          result.add_member("replicas",
                            soap::Value::from_int(it->second.replicas));
          return result;
        }
        return Error{ErrorCode::kNotFound, "unknown operation"};
      });
  server.value_or_die();
  std::printf("metadata catalog on 127.0.0.1:%u\n", server.value()->port());

  auto transport = net::tcp_connect(server.value()->port());
  transport.value_or_die();
  core::BsoapClient client(*transport.value());

  // One schema-conforming request template; every registration mutates only
  // the fields that differ (the paper's MCS perfect-structural-match case).
  soap::RpcCall add;
  add.method = "addMetadata";
  add.service_namespace = "urn:mcs";
  add.params.push_back(
      soap::Param{"logicalFile", soap::Value::from_string("lfn://dataset-000")});
  add.params.push_back(
      soap::Param{"owner", soap::Value::from_string("climate-group")});
  add.params.push_back(
      soap::Param{"collection", soap::Value::from_string("goals-ocean-atm")});
  add.params.push_back(soap::Param{"sizeMB", soap::Value::from_int(100)});
  add.params.push_back(soap::Param{"replicas", soap::Value::from_int(2)});

  std::printf("%-8s %-28s %-26s %s\n", "request", "logical file",
              "bSOAP match", "rewrites");
  for (int i = 0; i < 10; ++i) {
    char name[64];
    std::snprintf(name, sizeof(name), "lfn://dataset-%03d", i);
    add.params[0].value = soap::Value::from_string(name);
    add.params[3].value = soap::Value::from_int(100 + i);

    Result<core::SendReport> report = client.send_call(add);
    report.value_or_die();
    Result<soap::Value> count = [&]() -> Result<soap::Value> {
      // send_call doesn't read the response; fetch it via the raw HTTP path.
      http::HttpConnection conn(*transport.value());
      Result<http::HttpResponse> response = conn.read_response();
      if (!response.ok()) return response.error();
      Result<soap::RpcCall> envelope =
          soap::read_rpc_envelope(response.value().body);
      if (!envelope.ok()) return envelope.error();
      return soap::extract_rpc_result(envelope.value(), add.method);
    }();
    count.value_or_die();
    std::printf("%-8d %-28s %-26s %llu\n", i + 1, name,
                core::match_kind_name(report.value().match),
                static_cast<unsigned long long>(
                    report.value().update.values_rewritten));
  }

  // Query one back through the normal invoke() API.
  soap::RpcCall query;
  query.method = "queryMetadata";
  query.service_namespace = "urn:mcs";
  query.params.push_back(
      soap::Param{"logicalFile", soap::Value::from_string("lfn://dataset-007")});
  Result<soap::Value> entry = client.invoke(query);
  entry.value_or_die();
  std::printf("query dataset-007: owner=%s sizeMB=%d\n",
              entry.value().members()[0].value.as_string().c_str(),
              entry.value().members()[2].value.as_int());

  // The responses took the differential path too: every addMetadata reply
  // has the same shape (an int count), so after the first one the server
  // only rewrote the changed digits.
  const server::ServerStats stats = server.value()->runtime().stats();
  std::printf("server responses: first-time=%llu diff-hits=%llu/%llu\n",
              static_cast<unsigned long long>(stats.response_first_time),
              static_cast<unsigned long long>(stats.response_diff_hits()),
              static_cast<unsigned long long>(stats.responses_total()));

  server.value()->stop();
  return 0;
}
