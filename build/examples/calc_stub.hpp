// Generated from WSDL 'Calc' by bsoap wsdl2cpp. Do not edit.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/client.hpp"
#include "net/transport.hpp"
#include "soap/value.hpp"

namespace bsoap_stubs {

/// Client stub for service "CalcService" (urn:calc).
class CalcServiceStub {
 public:
  explicit CalcServiceStub(bsoap::net::Transport& transport,
      bsoap::core::BsoapClientConfig config = {})
      : client_(transport, std::move(config)) {}

  bsoap::Result<double> add(double a, double b) {
    bsoap::soap::RpcCall call;
    call.method = "add";
    call.service_namespace = "urn:calc";
    call.params.push_back({"a", bsoap::soap::Value::from_double(a)});
    call.params.push_back({"b", bsoap::soap::Value::from_double(b)});
    bsoap::Result<bsoap::soap::Value> result = client_.invoke(call);
    if (!result.ok()) return result.error();
    const bsoap::soap::Value& value = result.value();
    return value.as_double();
  }

  bsoap::Result<double> dot(const std::vector<double>& x, const std::vector<double>& y) {
    bsoap::soap::RpcCall call;
    call.method = "dot";
    call.service_namespace = "urn:calc";
    call.params.push_back({"x", bsoap::soap::Value::from_double_array(x)});
    call.params.push_back({"y", bsoap::soap::Value::from_double_array(y)});
    bsoap::Result<bsoap::soap::Value> result = client_.invoke(call);
    if (!result.ok()) return result.error();
    const bsoap::soap::Value& value = result.value();
    return value.as_double();
  }

  bsoap::core::BsoapClient& client() { return client_; }

 private:
  bsoap::core::BsoapClient client_;
};

}  // namespace bsoap_stubs
