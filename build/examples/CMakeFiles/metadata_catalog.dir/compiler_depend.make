# Empty compiler generated dependencies file for metadata_catalog.
# This may be replaced when dependencies are built.
