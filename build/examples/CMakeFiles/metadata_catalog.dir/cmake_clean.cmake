file(REMOVE_RECURSE
  "CMakeFiles/metadata_catalog.dir/metadata_catalog.cpp.o"
  "CMakeFiles/metadata_catalog.dir/metadata_catalog.cpp.o.d"
  "metadata_catalog"
  "metadata_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadata_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
