# Empty compiler generated dependencies file for wsdl_workflow.
# This may be replaced when dependencies are built.
