file(REMOVE_RECURSE
  "CMakeFiles/wsdl_workflow.dir/wsdl_workflow.cpp.o"
  "CMakeFiles/wsdl_workflow.dir/wsdl_workflow.cpp.o.d"
  "wsdl_workflow"
  "wsdl_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsdl_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
