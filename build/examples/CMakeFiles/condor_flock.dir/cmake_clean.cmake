file(REMOVE_RECURSE
  "CMakeFiles/condor_flock.dir/condor_flock.cpp.o"
  "CMakeFiles/condor_flock.dir/condor_flock.cpp.o.d"
  "condor_flock"
  "condor_flock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/condor_flock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
