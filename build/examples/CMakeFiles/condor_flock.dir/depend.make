# Empty dependencies file for condor_flock.
# This may be replaced when dependencies are built.
