file(REMOVE_RECURSE
  "CMakeFiles/linear_system_analyzer.dir/linear_system_analyzer.cpp.o"
  "CMakeFiles/linear_system_analyzer.dir/linear_system_analyzer.cpp.o.d"
  "linear_system_analyzer"
  "linear_system_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_system_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
