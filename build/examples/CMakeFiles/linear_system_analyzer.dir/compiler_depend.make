# Empty compiler generated dependencies file for linear_system_analyzer.
# This may be replaced when dependencies are built.
