file(REMOVE_RECURSE
  "CMakeFiles/generated_stub_demo.dir/generated_stub_demo.cpp.o"
  "CMakeFiles/generated_stub_demo.dir/generated_stub_demo.cpp.o.d"
  "calc_stub.hpp"
  "generated_stub_demo"
  "generated_stub_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generated_stub_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
