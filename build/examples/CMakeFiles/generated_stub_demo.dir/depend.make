# Empty dependencies file for generated_stub_demo.
# This may be replaced when dependencies are built.
