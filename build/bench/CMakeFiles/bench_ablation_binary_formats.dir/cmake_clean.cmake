file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_binary_formats.dir/bench_ablation_binary_formats.cpp.o"
  "CMakeFiles/bench_ablation_binary_formats.dir/bench_ablation_binary_formats.cpp.o.d"
  "bench_ablation_binary_formats"
  "bench_ablation_binary_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_binary_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
