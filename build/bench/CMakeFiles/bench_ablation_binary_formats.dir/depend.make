# Empty dependencies file for bench_ablation_binary_formats.
# This may be replaced when dependencies are built.
