# Empty dependencies file for bench_fig01_mcm_mio.
# This may be replaced when dependencies are built.
