file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_mcm_mio.dir/bench_fig01_mcm_mio.cpp.o"
  "CMakeFiles/bench_fig01_mcm_mio.dir/bench_fig01_mcm_mio.cpp.o.d"
  "bench_fig01_mcm_mio"
  "bench_fig01_mcm_mio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_mcm_mio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
