# Empty compiler generated dependencies file for bench_fig11_stuff_double.
# This may be replaced when dependencies are built.
