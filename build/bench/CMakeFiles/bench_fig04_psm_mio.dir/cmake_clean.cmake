file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_psm_mio.dir/bench_fig04_psm_mio.cpp.o"
  "CMakeFiles/bench_fig04_psm_mio.dir/bench_fig04_psm_mio.cpp.o.d"
  "bench_fig04_psm_mio"
  "bench_fig04_psm_mio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_psm_mio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
