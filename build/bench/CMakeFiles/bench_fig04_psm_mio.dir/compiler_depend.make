# Empty compiler generated dependencies file for bench_fig04_psm_mio.
# This may be replaced when dependencies are built.
