# Empty compiler generated dependencies file for bench_fig12_overlay.
# This may be replaced when dependencies are built.
