file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_overlay.dir/bench_fig12_overlay.cpp.o"
  "CMakeFiles/bench_fig12_overlay.dir/bench_fig12_overlay.cpp.o.d"
  "bench_fig12_overlay"
  "bench_fig12_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
