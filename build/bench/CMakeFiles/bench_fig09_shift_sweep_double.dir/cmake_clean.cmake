file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_shift_sweep_double.dir/bench_fig09_shift_sweep_double.cpp.o"
  "CMakeFiles/bench_fig09_shift_sweep_double.dir/bench_fig09_shift_sweep_double.cpp.o.d"
  "bench_fig09_shift_sweep_double"
  "bench_fig09_shift_sweep_double.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_shift_sweep_double.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
