# Empty compiler generated dependencies file for bench_fig09_shift_sweep_double.
# This may be replaced when dependencies are built.
