# Empty compiler generated dependencies file for bench_fig02_mcm_double.
# This may be replaced when dependencies are built.
