file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_mcm_double.dir/bench_fig02_mcm_double.cpp.o"
  "CMakeFiles/bench_fig02_mcm_double.dir/bench_fig02_mcm_double.cpp.o.d"
  "bench_fig02_mcm_double"
  "bench_fig02_mcm_double.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_mcm_double.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
