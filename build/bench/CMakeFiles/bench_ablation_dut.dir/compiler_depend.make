# Empty compiler generated dependencies file for bench_ablation_dut.
# This may be replaced when dependencies are built.
