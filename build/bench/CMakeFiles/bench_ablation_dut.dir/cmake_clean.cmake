file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dut.dir/bench_ablation_dut.cpp.o"
  "CMakeFiles/bench_ablation_dut.dir/bench_ablation_dut.cpp.o.d"
  "bench_ablation_dut"
  "bench_ablation_dut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
