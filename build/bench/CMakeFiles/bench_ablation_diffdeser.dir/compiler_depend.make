# Empty compiler generated dependencies file for bench_ablation_diffdeser.
# This may be replaced when dependencies are built.
