file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_diffdeser.dir/bench_ablation_diffdeser.cpp.o"
  "CMakeFiles/bench_ablation_diffdeser.dir/bench_ablation_diffdeser.cpp.o.d"
  "bench_ablation_diffdeser"
  "bench_ablation_diffdeser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_diffdeser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
