# Empty dependencies file for bench_fig05_psm_double.
# This may be replaced when dependencies are built.
