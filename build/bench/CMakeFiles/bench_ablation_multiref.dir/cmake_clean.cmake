file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multiref.dir/bench_ablation_multiref.cpp.o"
  "CMakeFiles/bench_ablation_multiref.dir/bench_ablation_multiref.cpp.o.d"
  "bench_ablation_multiref"
  "bench_ablation_multiref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multiref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
