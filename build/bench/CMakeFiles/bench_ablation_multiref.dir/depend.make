# Empty dependencies file for bench_ablation_multiref.
# This may be replaced when dependencies are built.
