file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_shift_sweep_mio.dir/bench_fig08_shift_sweep_mio.cpp.o"
  "CMakeFiles/bench_fig08_shift_sweep_mio.dir/bench_fig08_shift_sweep_mio.cpp.o.d"
  "bench_fig08_shift_sweep_mio"
  "bench_fig08_shift_sweep_mio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_shift_sweep_mio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
