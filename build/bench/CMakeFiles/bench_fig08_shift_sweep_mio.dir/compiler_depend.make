# Empty compiler generated dependencies file for bench_fig08_shift_sweep_mio.
# This may be replaced when dependencies are built.
