file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_shift_worst_mio.dir/bench_fig06_shift_worst_mio.cpp.o"
  "CMakeFiles/bench_fig06_shift_worst_mio.dir/bench_fig06_shift_worst_mio.cpp.o.d"
  "bench_fig06_shift_worst_mio"
  "bench_fig06_shift_worst_mio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_shift_worst_mio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
