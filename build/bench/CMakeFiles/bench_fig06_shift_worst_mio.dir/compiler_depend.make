# Empty compiler generated dependencies file for bench_fig06_shift_worst_mio.
# This may be replaced when dependencies are built.
