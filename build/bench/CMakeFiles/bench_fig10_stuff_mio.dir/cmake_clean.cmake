file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_stuff_mio.dir/bench_fig10_stuff_mio.cpp.o"
  "CMakeFiles/bench_fig10_stuff_mio.dir/bench_fig10_stuff_mio.cpp.o.d"
  "bench_fig10_stuff_mio"
  "bench_fig10_stuff_mio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_stuff_mio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
