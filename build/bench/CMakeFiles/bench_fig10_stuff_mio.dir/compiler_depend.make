# Empty compiler generated dependencies file for bench_fig10_stuff_mio.
# This may be replaced when dependencies are built.
