file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_mcm_int.dir/bench_fig03_mcm_int.cpp.o"
  "CMakeFiles/bench_fig03_mcm_int.dir/bench_fig03_mcm_int.cpp.o.d"
  "bench_fig03_mcm_int"
  "bench_fig03_mcm_int.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_mcm_int.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
