# Empty dependencies file for bench_fig03_mcm_int.
# This may be replaced when dependencies are built.
