file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_shift_worst_double.dir/bench_fig07_shift_worst_double.cpp.o"
  "CMakeFiles/bench_fig07_shift_worst_double.dir/bench_fig07_shift_worst_double.cpp.o.d"
  "bench_fig07_shift_worst_double"
  "bench_fig07_shift_worst_double.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_shift_worst_double.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
