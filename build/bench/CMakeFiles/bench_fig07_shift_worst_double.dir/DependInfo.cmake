
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig07_shift_worst_double.cpp" "bench/CMakeFiles/bench_fig07_shift_worst_double.dir/bench_fig07_shift_worst_double.cpp.o" "gcc" "bench/CMakeFiles/bench_fig07_shift_worst_double.dir/bench_fig07_shift_worst_double.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bsoap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/bsoap_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/bsoap_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/bsoap_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bsoap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/bsoap_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/buffer/CMakeFiles/bsoap_buffer.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/bsoap_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/textconv/CMakeFiles/bsoap_textconv.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bsoap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
