# Empty dependencies file for bench_fig07_shift_worst_double.
# This may be replaced when dependencies are built.
