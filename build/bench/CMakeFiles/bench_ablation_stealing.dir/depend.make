# Empty dependencies file for bench_ablation_stealing.
# This may be replaced when dependencies are built.
