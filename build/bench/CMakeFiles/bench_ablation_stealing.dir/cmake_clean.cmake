file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_stealing.dir/bench_ablation_stealing.cpp.o"
  "CMakeFiles/bench_ablation_stealing.dir/bench_ablation_stealing.cpp.o.d"
  "bench_ablation_stealing"
  "bench_ablation_stealing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stealing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
