# Empty compiler generated dependencies file for test_diffdeser.
# This may be replaced when dependencies are built.
