file(REMOVE_RECURSE
  "CMakeFiles/test_diffdeser.dir/test_diffdeser.cpp.o"
  "CMakeFiles/test_diffdeser.dir/test_diffdeser.cpp.o.d"
  "test_diffdeser"
  "test_diffdeser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_diffdeser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
