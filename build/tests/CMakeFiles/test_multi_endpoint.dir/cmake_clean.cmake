file(REMOVE_RECURSE
  "CMakeFiles/test_multi_endpoint.dir/test_multi_endpoint.cpp.o"
  "CMakeFiles/test_multi_endpoint.dir/test_multi_endpoint.cpp.o.d"
  "test_multi_endpoint"
  "test_multi_endpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_endpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
