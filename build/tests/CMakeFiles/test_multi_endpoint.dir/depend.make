# Empty dependencies file for test_multi_endpoint.
# This may be replaced when dependencies are built.
