# Empty compiler generated dependencies file for test_binary_formats.
# This may be replaced when dependencies are built.
