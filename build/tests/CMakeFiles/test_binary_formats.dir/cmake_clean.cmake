file(REMOVE_RECURSE
  "CMakeFiles/test_binary_formats.dir/test_binary_formats.cpp.o"
  "CMakeFiles/test_binary_formats.dir/test_binary_formats.cpp.o.d"
  "test_binary_formats"
  "test_binary_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_binary_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
