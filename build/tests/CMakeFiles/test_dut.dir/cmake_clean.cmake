file(REMOVE_RECURSE
  "CMakeFiles/test_dut.dir/test_dut.cpp.o"
  "CMakeFiles/test_dut.dir/test_dut.cpp.o.d"
  "test_dut"
  "test_dut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
