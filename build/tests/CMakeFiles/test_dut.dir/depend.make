# Empty dependencies file for test_dut.
# This may be replaced when dependencies are built.
