# Empty dependencies file for test_tag_trie.
# This may be replaced when dependencies are built.
