file(REMOVE_RECURSE
  "CMakeFiles/test_tag_trie.dir/test_tag_trie.cpp.o"
  "CMakeFiles/test_tag_trie.dir/test_tag_trie.cpp.o.d"
  "test_tag_trie"
  "test_tag_trie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tag_trie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
