# Empty compiler generated dependencies file for test_textconv.
# This may be replaced when dependencies are built.
