file(REMOVE_RECURSE
  "CMakeFiles/test_textconv.dir/test_textconv.cpp.o"
  "CMakeFiles/test_textconv.dir/test_textconv.cpp.o.d"
  "test_textconv"
  "test_textconv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_textconv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
