file(REMOVE_RECURSE
  "CMakeFiles/bsoap_buffer.dir/chunked_buffer.cpp.o"
  "CMakeFiles/bsoap_buffer.dir/chunked_buffer.cpp.o.d"
  "libbsoap_buffer.a"
  "libbsoap_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsoap_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
