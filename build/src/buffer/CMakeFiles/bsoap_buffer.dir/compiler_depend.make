# Empty compiler generated dependencies file for bsoap_buffer.
# This may be replaced when dependencies are built.
