file(REMOVE_RECURSE
  "libbsoap_buffer.a"
)
