file(REMOVE_RECURSE
  "libbsoap_xml.a"
)
