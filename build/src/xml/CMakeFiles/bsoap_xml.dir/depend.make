# Empty dependencies file for bsoap_xml.
# This may be replaced when dependencies are built.
