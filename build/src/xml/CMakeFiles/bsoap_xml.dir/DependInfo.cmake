
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xml/escape.cpp" "src/xml/CMakeFiles/bsoap_xml.dir/escape.cpp.o" "gcc" "src/xml/CMakeFiles/bsoap_xml.dir/escape.cpp.o.d"
  "/root/repo/src/xml/pull_parser.cpp" "src/xml/CMakeFiles/bsoap_xml.dir/pull_parser.cpp.o" "gcc" "src/xml/CMakeFiles/bsoap_xml.dir/pull_parser.cpp.o.d"
  "/root/repo/src/xml/qname.cpp" "src/xml/CMakeFiles/bsoap_xml.dir/qname.cpp.o" "gcc" "src/xml/CMakeFiles/bsoap_xml.dir/qname.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bsoap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/textconv/CMakeFiles/bsoap_textconv.dir/DependInfo.cmake"
  "/root/repo/build/src/buffer/CMakeFiles/bsoap_buffer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
