file(REMOVE_RECURSE
  "CMakeFiles/bsoap_xml.dir/escape.cpp.o"
  "CMakeFiles/bsoap_xml.dir/escape.cpp.o.d"
  "CMakeFiles/bsoap_xml.dir/pull_parser.cpp.o"
  "CMakeFiles/bsoap_xml.dir/pull_parser.cpp.o.d"
  "CMakeFiles/bsoap_xml.dir/qname.cpp.o"
  "CMakeFiles/bsoap_xml.dir/qname.cpp.o.d"
  "libbsoap_xml.a"
  "libbsoap_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsoap_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
