file(REMOVE_RECURSE
  "CMakeFiles/bsoap_soap.dir/base64.cpp.o"
  "CMakeFiles/bsoap_soap.dir/base64.cpp.o.d"
  "CMakeFiles/bsoap_soap.dir/dime.cpp.o"
  "CMakeFiles/bsoap_soap.dir/dime.cpp.o.d"
  "CMakeFiles/bsoap_soap.dir/envelope_reader.cpp.o"
  "CMakeFiles/bsoap_soap.dir/envelope_reader.cpp.o.d"
  "CMakeFiles/bsoap_soap.dir/soap_server.cpp.o"
  "CMakeFiles/bsoap_soap.dir/soap_server.cpp.o.d"
  "CMakeFiles/bsoap_soap.dir/value.cpp.o"
  "CMakeFiles/bsoap_soap.dir/value.cpp.o.d"
  "CMakeFiles/bsoap_soap.dir/workload.cpp.o"
  "CMakeFiles/bsoap_soap.dir/workload.cpp.o.d"
  "libbsoap_soap.a"
  "libbsoap_soap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsoap_soap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
