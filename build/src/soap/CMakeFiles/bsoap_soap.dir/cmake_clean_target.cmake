file(REMOVE_RECURSE
  "libbsoap_soap.a"
)
