# Empty dependencies file for bsoap_soap.
# This may be replaced when dependencies are built.
