# Empty compiler generated dependencies file for bsoap_soap.
# This may be replaced when dependencies are built.
