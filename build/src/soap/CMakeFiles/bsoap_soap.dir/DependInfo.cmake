
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soap/base64.cpp" "src/soap/CMakeFiles/bsoap_soap.dir/base64.cpp.o" "gcc" "src/soap/CMakeFiles/bsoap_soap.dir/base64.cpp.o.d"
  "/root/repo/src/soap/dime.cpp" "src/soap/CMakeFiles/bsoap_soap.dir/dime.cpp.o" "gcc" "src/soap/CMakeFiles/bsoap_soap.dir/dime.cpp.o.d"
  "/root/repo/src/soap/envelope_reader.cpp" "src/soap/CMakeFiles/bsoap_soap.dir/envelope_reader.cpp.o" "gcc" "src/soap/CMakeFiles/bsoap_soap.dir/envelope_reader.cpp.o.d"
  "/root/repo/src/soap/soap_server.cpp" "src/soap/CMakeFiles/bsoap_soap.dir/soap_server.cpp.o" "gcc" "src/soap/CMakeFiles/bsoap_soap.dir/soap_server.cpp.o.d"
  "/root/repo/src/soap/value.cpp" "src/soap/CMakeFiles/bsoap_soap.dir/value.cpp.o" "gcc" "src/soap/CMakeFiles/bsoap_soap.dir/value.cpp.o.d"
  "/root/repo/src/soap/workload.cpp" "src/soap/CMakeFiles/bsoap_soap.dir/workload.cpp.o" "gcc" "src/soap/CMakeFiles/bsoap_soap.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bsoap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/textconv/CMakeFiles/bsoap_textconv.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/bsoap_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/buffer/CMakeFiles/bsoap_buffer.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/bsoap_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bsoap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/bsoap_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
