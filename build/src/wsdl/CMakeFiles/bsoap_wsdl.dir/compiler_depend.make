# Empty compiler generated dependencies file for bsoap_wsdl.
# This may be replaced when dependencies are built.
