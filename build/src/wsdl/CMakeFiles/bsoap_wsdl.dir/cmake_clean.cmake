file(REMOVE_RECURSE
  "CMakeFiles/bsoap_wsdl.dir/codegen.cpp.o"
  "CMakeFiles/bsoap_wsdl.dir/codegen.cpp.o.d"
  "CMakeFiles/bsoap_wsdl.dir/model.cpp.o"
  "CMakeFiles/bsoap_wsdl.dir/model.cpp.o.d"
  "CMakeFiles/bsoap_wsdl.dir/parser.cpp.o"
  "CMakeFiles/bsoap_wsdl.dir/parser.cpp.o.d"
  "CMakeFiles/bsoap_wsdl.dir/validator.cpp.o"
  "CMakeFiles/bsoap_wsdl.dir/validator.cpp.o.d"
  "CMakeFiles/bsoap_wsdl.dir/writer.cpp.o"
  "CMakeFiles/bsoap_wsdl.dir/writer.cpp.o.d"
  "libbsoap_wsdl.a"
  "libbsoap_wsdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsoap_wsdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
