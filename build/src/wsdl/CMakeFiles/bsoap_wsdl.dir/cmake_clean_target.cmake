file(REMOVE_RECURSE
  "libbsoap_wsdl.a"
)
