file(REMOVE_RECURSE
  "libbsoap_core.a"
)
