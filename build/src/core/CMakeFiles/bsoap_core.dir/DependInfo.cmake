
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/client.cpp" "src/core/CMakeFiles/bsoap_core.dir/client.cpp.o" "gcc" "src/core/CMakeFiles/bsoap_core.dir/client.cpp.o.d"
  "/root/repo/src/core/diff_deserializer.cpp" "src/core/CMakeFiles/bsoap_core.dir/diff_deserializer.cpp.o" "gcc" "src/core/CMakeFiles/bsoap_core.dir/diff_deserializer.cpp.o.d"
  "/root/repo/src/core/diff_serializer.cpp" "src/core/CMakeFiles/bsoap_core.dir/diff_serializer.cpp.o" "gcc" "src/core/CMakeFiles/bsoap_core.dir/diff_serializer.cpp.o.d"
  "/root/repo/src/core/dut_table.cpp" "src/core/CMakeFiles/bsoap_core.dir/dut_table.cpp.o" "gcc" "src/core/CMakeFiles/bsoap_core.dir/dut_table.cpp.o.d"
  "/root/repo/src/core/message_template.cpp" "src/core/CMakeFiles/bsoap_core.dir/message_template.cpp.o" "gcc" "src/core/CMakeFiles/bsoap_core.dir/message_template.cpp.o.d"
  "/root/repo/src/core/overlay.cpp" "src/core/CMakeFiles/bsoap_core.dir/overlay.cpp.o" "gcc" "src/core/CMakeFiles/bsoap_core.dir/overlay.cpp.o.d"
  "/root/repo/src/core/pipelined_overlay.cpp" "src/core/CMakeFiles/bsoap_core.dir/pipelined_overlay.cpp.o" "gcc" "src/core/CMakeFiles/bsoap_core.dir/pipelined_overlay.cpp.o.d"
  "/root/repo/src/core/template_builder.cpp" "src/core/CMakeFiles/bsoap_core.dir/template_builder.cpp.o" "gcc" "src/core/CMakeFiles/bsoap_core.dir/template_builder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/soap/CMakeFiles/bsoap_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/bsoap_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/bsoap_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/buffer/CMakeFiles/bsoap_buffer.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/bsoap_http.dir/DependInfo.cmake"
  "/root/repo/build/src/textconv/CMakeFiles/bsoap_textconv.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/bsoap_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bsoap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bsoap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
