file(REMOVE_RECURSE
  "CMakeFiles/bsoap_core.dir/client.cpp.o"
  "CMakeFiles/bsoap_core.dir/client.cpp.o.d"
  "CMakeFiles/bsoap_core.dir/diff_deserializer.cpp.o"
  "CMakeFiles/bsoap_core.dir/diff_deserializer.cpp.o.d"
  "CMakeFiles/bsoap_core.dir/diff_serializer.cpp.o"
  "CMakeFiles/bsoap_core.dir/diff_serializer.cpp.o.d"
  "CMakeFiles/bsoap_core.dir/dut_table.cpp.o"
  "CMakeFiles/bsoap_core.dir/dut_table.cpp.o.d"
  "CMakeFiles/bsoap_core.dir/message_template.cpp.o"
  "CMakeFiles/bsoap_core.dir/message_template.cpp.o.d"
  "CMakeFiles/bsoap_core.dir/overlay.cpp.o"
  "CMakeFiles/bsoap_core.dir/overlay.cpp.o.d"
  "CMakeFiles/bsoap_core.dir/pipelined_overlay.cpp.o"
  "CMakeFiles/bsoap_core.dir/pipelined_overlay.cpp.o.d"
  "CMakeFiles/bsoap_core.dir/template_builder.cpp.o"
  "CMakeFiles/bsoap_core.dir/template_builder.cpp.o.d"
  "libbsoap_core.a"
  "libbsoap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsoap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
