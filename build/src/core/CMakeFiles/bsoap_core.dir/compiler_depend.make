# Empty compiler generated dependencies file for bsoap_core.
# This may be replaced when dependencies are built.
