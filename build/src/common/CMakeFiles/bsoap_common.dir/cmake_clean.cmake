file(REMOVE_RECURSE
  "CMakeFiles/bsoap_common.dir/error.cpp.o"
  "CMakeFiles/bsoap_common.dir/error.cpp.o.d"
  "CMakeFiles/bsoap_common.dir/timing.cpp.o"
  "CMakeFiles/bsoap_common.dir/timing.cpp.o.d"
  "libbsoap_common.a"
  "libbsoap_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsoap_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
