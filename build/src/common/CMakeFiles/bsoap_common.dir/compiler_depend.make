# Empty compiler generated dependencies file for bsoap_common.
# This may be replaced when dependencies are built.
