# Empty dependencies file for bsoap_common.
# This may be replaced when dependencies are built.
