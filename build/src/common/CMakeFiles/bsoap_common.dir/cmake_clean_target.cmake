file(REMOVE_RECURSE
  "libbsoap_common.a"
)
