file(REMOVE_RECURSE
  "libbsoap_baseline.a"
)
