# Empty compiler generated dependencies file for bsoap_baseline.
# This may be replaced when dependencies are built.
