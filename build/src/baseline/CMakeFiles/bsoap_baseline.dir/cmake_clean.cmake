file(REMOVE_RECURSE
  "CMakeFiles/bsoap_baseline.dir/gsoap_like.cpp.o"
  "CMakeFiles/bsoap_baseline.dir/gsoap_like.cpp.o.d"
  "CMakeFiles/bsoap_baseline.dir/xsoap_like.cpp.o"
  "CMakeFiles/bsoap_baseline.dir/xsoap_like.cpp.o.d"
  "libbsoap_baseline.a"
  "libbsoap_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsoap_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
