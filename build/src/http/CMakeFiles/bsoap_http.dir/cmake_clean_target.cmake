file(REMOVE_RECURSE
  "libbsoap_http.a"
)
