file(REMOVE_RECURSE
  "CMakeFiles/bsoap_http.dir/chunked_coding.cpp.o"
  "CMakeFiles/bsoap_http.dir/chunked_coding.cpp.o.d"
  "CMakeFiles/bsoap_http.dir/connection.cpp.o"
  "CMakeFiles/bsoap_http.dir/connection.cpp.o.d"
  "CMakeFiles/bsoap_http.dir/http_message.cpp.o"
  "CMakeFiles/bsoap_http.dir/http_message.cpp.o.d"
  "libbsoap_http.a"
  "libbsoap_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsoap_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
