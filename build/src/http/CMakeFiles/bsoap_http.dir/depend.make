# Empty dependencies file for bsoap_http.
# This may be replaced when dependencies are built.
