
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/http/chunked_coding.cpp" "src/http/CMakeFiles/bsoap_http.dir/chunked_coding.cpp.o" "gcc" "src/http/CMakeFiles/bsoap_http.dir/chunked_coding.cpp.o.d"
  "/root/repo/src/http/connection.cpp" "src/http/CMakeFiles/bsoap_http.dir/connection.cpp.o" "gcc" "src/http/CMakeFiles/bsoap_http.dir/connection.cpp.o.d"
  "/root/repo/src/http/http_message.cpp" "src/http/CMakeFiles/bsoap_http.dir/http_message.cpp.o" "gcc" "src/http/CMakeFiles/bsoap_http.dir/http_message.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bsoap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bsoap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/textconv/CMakeFiles/bsoap_textconv.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/bsoap_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
