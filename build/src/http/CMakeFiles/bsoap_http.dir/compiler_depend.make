# Empty compiler generated dependencies file for bsoap_http.
# This may be replaced when dependencies are built.
