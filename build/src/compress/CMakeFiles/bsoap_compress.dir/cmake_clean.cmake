file(REMOVE_RECURSE
  "CMakeFiles/bsoap_compress.dir/deflate.cpp.o"
  "CMakeFiles/bsoap_compress.dir/deflate.cpp.o.d"
  "libbsoap_compress.a"
  "libbsoap_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsoap_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
