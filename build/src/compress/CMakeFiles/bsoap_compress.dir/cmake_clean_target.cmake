file(REMOVE_RECURSE
  "libbsoap_compress.a"
)
