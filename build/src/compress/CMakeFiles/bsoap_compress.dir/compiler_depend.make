# Empty compiler generated dependencies file for bsoap_compress.
# This may be replaced when dependencies are built.
