file(REMOVE_RECURSE
  "CMakeFiles/bsoap_net.dir/drain_server.cpp.o"
  "CMakeFiles/bsoap_net.dir/drain_server.cpp.o.d"
  "CMakeFiles/bsoap_net.dir/socket.cpp.o"
  "CMakeFiles/bsoap_net.dir/socket.cpp.o.d"
  "CMakeFiles/bsoap_net.dir/tcp.cpp.o"
  "CMakeFiles/bsoap_net.dir/tcp.cpp.o.d"
  "CMakeFiles/bsoap_net.dir/transport.cpp.o"
  "CMakeFiles/bsoap_net.dir/transport.cpp.o.d"
  "libbsoap_net.a"
  "libbsoap_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsoap_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
