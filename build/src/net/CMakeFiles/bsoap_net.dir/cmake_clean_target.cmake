file(REMOVE_RECURSE
  "libbsoap_net.a"
)
