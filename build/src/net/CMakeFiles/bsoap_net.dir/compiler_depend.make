# Empty compiler generated dependencies file for bsoap_net.
# This may be replaced when dependencies are built.
