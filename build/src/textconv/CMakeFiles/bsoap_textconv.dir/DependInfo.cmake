
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/textconv/dtoa.cpp" "src/textconv/CMakeFiles/bsoap_textconv.dir/dtoa.cpp.o" "gcc" "src/textconv/CMakeFiles/bsoap_textconv.dir/dtoa.cpp.o.d"
  "/root/repo/src/textconv/itoa.cpp" "src/textconv/CMakeFiles/bsoap_textconv.dir/itoa.cpp.o" "gcc" "src/textconv/CMakeFiles/bsoap_textconv.dir/itoa.cpp.o.d"
  "/root/repo/src/textconv/parse.cpp" "src/textconv/CMakeFiles/bsoap_textconv.dir/parse.cpp.o" "gcc" "src/textconv/CMakeFiles/bsoap_textconv.dir/parse.cpp.o.d"
  "/root/repo/src/textconv/pow10cache.cpp" "src/textconv/CMakeFiles/bsoap_textconv.dir/pow10cache.cpp.o" "gcc" "src/textconv/CMakeFiles/bsoap_textconv.dir/pow10cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bsoap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
