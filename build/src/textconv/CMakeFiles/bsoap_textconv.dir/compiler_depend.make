# Empty compiler generated dependencies file for bsoap_textconv.
# This may be replaced when dependencies are built.
