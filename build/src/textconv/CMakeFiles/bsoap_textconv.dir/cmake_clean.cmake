file(REMOVE_RECURSE
  "CMakeFiles/bsoap_textconv.dir/dtoa.cpp.o"
  "CMakeFiles/bsoap_textconv.dir/dtoa.cpp.o.d"
  "CMakeFiles/bsoap_textconv.dir/itoa.cpp.o"
  "CMakeFiles/bsoap_textconv.dir/itoa.cpp.o.d"
  "CMakeFiles/bsoap_textconv.dir/parse.cpp.o"
  "CMakeFiles/bsoap_textconv.dir/parse.cpp.o.d"
  "CMakeFiles/bsoap_textconv.dir/pow10cache.cpp.o"
  "CMakeFiles/bsoap_textconv.dir/pow10cache.cpp.o.d"
  "libbsoap_textconv.a"
  "libbsoap_textconv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsoap_textconv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
