file(REMOVE_RECURSE
  "libbsoap_textconv.a"
)
