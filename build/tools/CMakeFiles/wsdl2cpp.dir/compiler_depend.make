# Empty compiler generated dependencies file for wsdl2cpp.
# This may be replaced when dependencies are built.
