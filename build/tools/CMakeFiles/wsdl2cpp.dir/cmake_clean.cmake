file(REMOVE_RECURSE
  "CMakeFiles/wsdl2cpp.dir/wsdl2cpp.cpp.o"
  "CMakeFiles/wsdl2cpp.dir/wsdl2cpp.cpp.o.d"
  "wsdl2cpp"
  "wsdl2cpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsdl2cpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
