file(REMOVE_RECURSE
  "CMakeFiles/bsoap_send.dir/bsoap_send.cpp.o"
  "CMakeFiles/bsoap_send.dir/bsoap_send.cpp.o.d"
  "bsoap_send"
  "bsoap_send.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsoap_send.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
