# Empty compiler generated dependencies file for bsoap_send.
# This may be replaced when dependencies are built.
