#include "compress/deflate.hpp"

#include <algorithm>
#include <array>
#include <cstring>

namespace bsoap::compress {
namespace {

// ---------------------------------------------------------------------------
// Shared RFC 1951 tables.
// ---------------------------------------------------------------------------

constexpr int kLengthBase[29] = {3,  4,  5,  6,  7,  8,  9,  10, 11, 13,
                                 15, 17, 19, 23, 27, 31, 35, 43, 51, 59,
                                 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr int kLengthExtra[29] = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2,
                                  2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};
constexpr int kDistBase[30] = {1,    2,    3,    4,    5,    7,    9,    13,
                               17,   25,   33,   49,   65,   97,   129,  193,
                               257,  385,  513,  769,  1025, 1537, 2049, 3073,
                               4097, 6145, 8193, 12289, 16385, 24577};
constexpr int kDistExtra[30] = {0, 0, 0,  0,  1,  1,  2,  2,  3,  3,
                                4, 4, 5,  5,  6,  6,  7,  7,  8,  8,
                                9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

constexpr std::size_t kWindowSize = 32 * 1024;
constexpr int kMinMatch = 3;
constexpr int kMaxMatch = 258;

// ---------------------------------------------------------------------------
// Bit IO (DEFLATE packs bits LSB-first).
// ---------------------------------------------------------------------------

class BitWriter {
 public:
  /// Appends `count` bits of `value`, least significant first.
  void put(std::uint32_t value, int count) {
    bits_ |= static_cast<std::uint64_t>(value) << nbits_;
    nbits_ += count;
    while (nbits_ >= 8) {
      out_ += static_cast<char>(bits_ & 0xFF);
      bits_ >>= 8;
      nbits_ -= 8;
    }
  }

  /// Huffman codes are packed starting from their most significant bit.
  void put_huffman(std::uint32_t code, int length) {
    std::uint32_t reversed = 0;
    for (int i = 0; i < length; ++i) {
      reversed = (reversed << 1) | ((code >> i) & 1);
    }
    put(reversed, length);
  }

  void align_to_byte() {
    if (nbits_ > 0) {
      out_ += static_cast<char>(bits_ & 0xFF);
      bits_ = 0;
      nbits_ = 0;
    }
  }

  std::string take() {
    align_to_byte();
    return std::move(out_);
  }

 private:
  std::string out_;
  std::uint64_t bits_ = 0;
  int nbits_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::string_view data) : data_(data) {}

  /// Reads `count` bits, least significant first; fails at end of input.
  Result<std::uint32_t> take(int count) {
    while (nbits_ < count) {
      if (pos_ >= data_.size()) {
        return Error{ErrorCode::kParseError, "deflate: out of input bits"};
      }
      bits_ |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(data_[pos_++]))
               << nbits_;
      nbits_ += 8;
    }
    const std::uint32_t value =
        static_cast<std::uint32_t>(bits_ & ((1ull << count) - 1));
    bits_ >>= count;
    nbits_ -= count;
    return value;
  }

  void align_to_byte() {
    const int drop = nbits_ % 8;
    bits_ >>= drop;
    nbits_ -= drop;
  }

  /// Copies `n` bytes (must be byte-aligned buffer-wise: any whole bytes
  /// still in the bit buffer are consumed first).
  Status read_bytes(char* out, std::size_t n) {
    while (n > 0 && nbits_ >= 8) {
      *out++ = static_cast<char>(bits_ & 0xFF);
      bits_ >>= 8;
      nbits_ -= 8;
      --n;
    }
    if (n > data_.size() - pos_) {
      return Error{ErrorCode::kParseError, "deflate: truncated stored block"};
    }
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return Status{};
  }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
  std::uint64_t bits_ = 0;
  int nbits_ = 0;
};

// ---------------------------------------------------------------------------
// Fixed Huffman code for literals/lengths (RFC 1951 3.2.6).
// ---------------------------------------------------------------------------

struct FixedCode {
  std::uint32_t code;
  int length;
};

FixedCode fixed_literal_code(int symbol) {
  if (symbol < 144) return {static_cast<std::uint32_t>(0x30 + symbol), 8};
  if (symbol < 256) {
    return {static_cast<std::uint32_t>(0x190 + symbol - 144), 9};
  }
  if (symbol < 280) return {static_cast<std::uint32_t>(symbol - 256), 7};
  return {static_cast<std::uint32_t>(0xC0 + symbol - 280), 8};
}

/// Length value (3..258) -> (symbol, extra bits, extra value).
void encode_length(BitWriter* out, int length) {
  int code = 28;
  for (int i = 0; i < 28; ++i) {
    if (length < kLengthBase[i + 1]) {
      code = i;
      break;
    }
  }
  if (length == 258) code = 28;
  const FixedCode fc = fixed_literal_code(257 + code);
  out->put_huffman(fc.code, fc.length);
  if (kLengthExtra[code] > 0) {
    out->put(static_cast<std::uint32_t>(length - kLengthBase[code]),
             kLengthExtra[code]);
  }
}

/// Distance value (1..32768) -> 5-bit fixed code + extra bits.
void encode_distance(BitWriter* out, int distance) {
  int code = 29;
  for (int i = 0; i < 29; ++i) {
    if (distance < kDistBase[i + 1]) {
      code = i;
      break;
    }
  }
  if (distance >= kDistBase[29]) code = 29;
  out->put_huffman(static_cast<std::uint32_t>(code), 5);
  if (kDistExtra[code] > 0) {
    out->put(static_cast<std::uint32_t>(distance - kDistBase[code]),
             kDistExtra[code]);
  }
}

// ---------------------------------------------------------------------------
// Compressor: greedy LZ77 with hash chains, one fixed-Huffman block.
// ---------------------------------------------------------------------------

constexpr int kHashBits = 15;
constexpr std::size_t kHashSize = 1u << kHashBits;
constexpr int kMaxChainLength = 128;

std::uint32_t hash3(const unsigned char* p) {
  // Multiplicative hash over the next three bytes.
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 0x9E3779B1u) >> (32 - kHashBits);
}

/// Emits one fixed-Huffman DEFLATE block over data[start..n). Positions
/// before `start` are history only (a preset dictionary): they are inserted
/// into the hash chains so matches can reach back into them, but produce no
/// output themselves. `head`/`prev` must arrive reset (-1-filled, `prev`
/// sized n).
void deflate_fixed_block(BitWriter* out, const unsigned char* data,
                         std::size_t n, std::size_t start,
                         std::vector<std::int32_t>& head,
                         std::vector<std::int32_t>& prev) {
  out->put(1, 1);  // BFINAL
  out->put(1, 2);  // BTYPE = 01 (fixed Huffman)

  for (std::size_t k = 0; k + kMinMatch <= n && k < start; ++k) {
    const std::uint32_t h = hash3(data + k);
    prev[k] = head[h];
    head[h] = static_cast<std::int32_t>(k);
  }

  std::size_t i = start;
  while (i < n) {
    int best_length = 0;
    int best_distance = 0;
    if (i + kMinMatch <= n) {
      const std::uint32_t h = hash3(data + i);
      std::int32_t candidate = head[h];
      int chain = kMaxChainLength;
      const std::size_t max_length =
          std::min<std::size_t>(kMaxMatch, n - i);
      while (candidate >= 0 && chain-- > 0 &&
             i - static_cast<std::size_t>(candidate) <= kWindowSize) {
        const unsigned char* a = data + candidate;
        const unsigned char* b = data + i;
        std::size_t length = 0;
        while (length < max_length && a[length] == b[length]) ++length;
        if (static_cast<int>(length) > best_length) {
          best_length = static_cast<int>(length);
          best_distance = static_cast<int>(i - static_cast<std::size_t>(candidate));
          if (best_length == static_cast<int>(max_length)) break;
        }
        candidate = prev[static_cast<std::size_t>(candidate)];
      }
      // Insert the current position into the chain.
      prev[i] = head[h];
      head[h] = static_cast<std::int32_t>(i);
    }

    if (best_length >= kMinMatch) {
      encode_length(out, best_length);
      encode_distance(out, best_distance);
      // Insert the skipped positions so later matches can reference them.
      const std::size_t end = i + static_cast<std::size_t>(best_length);
      for (std::size_t k = i + 1; k < end && k + kMinMatch <= n; ++k) {
        const std::uint32_t h = hash3(data + k);
        prev[k] = head[h];
        head[h] = static_cast<std::int32_t>(k);
      }
      i = end;
    } else {
      const FixedCode fc = fixed_literal_code(data[i]);
      out->put_huffman(fc.code, fc.length);
      ++i;
    }
  }

  const FixedCode eob = fixed_literal_code(256);
  out->put_huffman(eob.code, eob.length);
}

}  // namespace

// ---------------------------------------------------------------------------
// Adler-32 (RFC 1950).
// ---------------------------------------------------------------------------

std::uint32_t adler32(std::string_view data, std::uint32_t seed) noexcept {
  constexpr std::uint32_t kMod = 65521;
  std::uint32_t a = seed & 0xFFFF;
  std::uint32_t b = (seed >> 16) & 0xFFFF;
  std::size_t i = 0;
  while (i < data.size()) {
    // 5552 is the largest n with 255*n*(n+1)/2 + (n+1)*(kMod-1) < 2^32.
    const std::size_t chunk = std::min<std::size_t>(5552, data.size() - i);
    for (std::size_t k = 0; k < chunk; ++k) {
      a += static_cast<unsigned char>(data[i + k]);
      b += a;
    }
    a %= kMod;
    b %= kMod;
    i += chunk;
  }
  return (b << 16) | a;
}

// ---------------------------------------------------------------------------
// DeflateStream: reusable compressor with preset history.
// ---------------------------------------------------------------------------

void DeflateStream::preset(std::string_view dict) {
  if (dict.size() > kWindowSize) {
    dict = dict.substr(dict.size() - kWindowSize);
  }
  dict_.assign(dict);
  dict_id_ = dict_.empty() ? 0 : adler32(dict_);
}

std::string DeflateStream::compress(std::string_view input) {
  const unsigned char* data;
  std::size_t n;
  std::size_t start;
  if (dict_.empty()) {
    data = reinterpret_cast<const unsigned char*>(input.data());
    n = input.size();
    start = 0;
  } else {
    // Dictionary and input must be contiguous so matches can span the seam.
    work_.assign(dict_);
    work_.append(input);
    data = reinterpret_cast<const unsigned char*>(work_.data());
    n = work_.size();
    start = dict_.size();
  }

  head_.assign(kHashSize, -1);
  prev_.assign(n, -1);

  BitWriter out;
  deflate_fixed_block(&out, data, n, start, head_, prev_);
  return out.take();
}

std::string deflate(std::string_view input) {
  DeflateStream stream;
  return stream.compress(input);
}

// ---------------------------------------------------------------------------
// Inflater: stored, fixed and dynamic Huffman blocks ("puff"-style canonical
// decoding).
// ---------------------------------------------------------------------------

namespace {

struct HuffDecoder {
  std::array<int, 16> counts{};     // number of codes of each length
  std::vector<int> symbols;         // symbols ordered by (length, symbol)

  /// Builds from per-symbol code lengths; returns false on an over-
  /// subscribed code.
  bool build(const std::vector<int>& lengths) {
    counts.fill(0);
    for (const int len : lengths) {
      if (len < 0 || len > 15) return false;
      ++counts[static_cast<std::size_t>(len)];
    }
    counts[0] = 0;
    int left = 1;
    for (int len = 1; len <= 15; ++len) {
      left <<= 1;
      left -= counts[static_cast<std::size_t>(len)];
      if (left < 0) return false;  // over-subscribed
    }
    std::array<int, 16> offsets{};
    for (int len = 1; len < 15; ++len) {
      offsets[static_cast<std::size_t>(len + 1)] =
          offsets[static_cast<std::size_t>(len)] +
          counts[static_cast<std::size_t>(len)];
    }
    symbols.assign(lengths.size(), 0);
    for (std::size_t symbol = 0; symbol < lengths.size(); ++symbol) {
      if (lengths[symbol] != 0) {
        symbols[static_cast<std::size_t>(
            offsets[static_cast<std::size_t>(lengths[symbol])]++)] =
            static_cast<int>(symbol);
      }
    }
    return true;
  }

  Result<int> decode(BitReader* in) const {
    int code = 0;
    int first = 0;
    int index = 0;
    for (int len = 1; len <= 15; ++len) {
      Result<std::uint32_t> bit = in->take(1);
      if (!bit.ok()) return bit.error();
      code |= static_cast<int>(bit.value());
      const int count = counts[static_cast<std::size_t>(len)];
      if (code - first < count) {
        return symbols[static_cast<std::size_t>(index + (code - first))];
      }
      index += count;
      first += count;
      first <<= 1;
      code <<= 1;
    }
    return Error{ErrorCode::kParseError, "deflate: invalid Huffman code"};
  }
};

const HuffDecoder& fixed_literal_decoder() {
  static const HuffDecoder decoder = [] {
    std::vector<int> lengths(288);
    for (int s = 0; s < 144; ++s) lengths[static_cast<std::size_t>(s)] = 8;
    for (int s = 144; s < 256; ++s) lengths[static_cast<std::size_t>(s)] = 9;
    for (int s = 256; s < 280; ++s) lengths[static_cast<std::size_t>(s)] = 7;
    for (int s = 280; s < 288; ++s) lengths[static_cast<std::size_t>(s)] = 8;
    HuffDecoder d;
    d.build(lengths);
    return d;
  }();
  return decoder;
}

const HuffDecoder& fixed_distance_decoder() {
  static const HuffDecoder decoder = [] {
    std::vector<int> lengths(30, 5);
    HuffDecoder d;
    d.build(lengths);
    return d;
  }();
  return decoder;
}

Status inflate_block(BitReader* in, const HuffDecoder& literals,
                     const HuffDecoder& distances, std::string* out,
                     std::size_t max_output) {
  for (;;) {
    Result<int> symbol = literals.decode(in);
    if (!symbol.ok()) return symbol.error();
    const int s = symbol.value();
    if (s < 256) {
      if (out->size() >= max_output) {
        return Error{ErrorCode::kOutOfRange, "deflate: output limit"};
      }
      *out += static_cast<char>(s);
      continue;
    }
    if (s == 256) return Status{};  // end of block
    if (s > 285) return Error{ErrorCode::kParseError, "deflate: bad length"};

    const int length_code = s - 257;
    Result<std::uint32_t> extra = in->take(kLengthExtra[length_code]);
    if (!extra.ok()) return extra.error();
    const int length = kLengthBase[length_code] + static_cast<int>(extra.value());

    Result<int> dist_symbol = distances.decode(in);
    if (!dist_symbol.ok()) return dist_symbol.error();
    if (dist_symbol.value() > 29) {
      return Error{ErrorCode::kParseError, "deflate: bad distance code"};
    }
    Result<std::uint32_t> dist_extra =
        in->take(kDistExtra[dist_symbol.value()]);
    if (!dist_extra.ok()) return dist_extra.error();
    const std::size_t distance =
        static_cast<std::size_t>(kDistBase[dist_symbol.value()]) +
        dist_extra.value();
    if (distance > out->size()) {
      return Error{ErrorCode::kParseError, "deflate: distance too far back"};
    }
    if (out->size() + static_cast<std::size_t>(length) > max_output) {
      return Error{ErrorCode::kOutOfRange, "deflate: output limit"};
    }
    // Byte-by-byte copy: overlapping copies (distance < length) must repeat.
    std::size_t from = out->size() - distance;
    for (int k = 0; k < length; ++k) {
      *out += (*out)[from++];
    }
  }
}

Status inflate_dynamic_header(BitReader* in, HuffDecoder* literals,
                              HuffDecoder* distances) {
  Result<std::uint32_t> hlit = in->take(5);
  if (!hlit.ok()) return hlit.error();
  Result<std::uint32_t> hdist = in->take(5);
  if (!hdist.ok()) return hdist.error();
  Result<std::uint32_t> hclen = in->take(4);
  if (!hclen.ok()) return hclen.error();
  const std::size_t nlit = 257 + hlit.value();
  const std::size_t ndist = 1 + hdist.value();
  const std::size_t ncode = 4 + hclen.value();
  if (nlit > 286 || ndist > 30) {
    return Error{ErrorCode::kParseError, "deflate: bad dynamic header"};
  }

  static constexpr int kOrder[19] = {16, 17, 18, 0, 8,  7, 9,  6, 10, 5,
                                     11, 4, 12, 3, 13, 2, 14, 1, 15};
  std::vector<int> code_lengths(19, 0);
  for (std::size_t i = 0; i < ncode; ++i) {
    Result<std::uint32_t> len = in->take(3);
    if (!len.ok()) return len.error();
    code_lengths[static_cast<std::size_t>(kOrder[i])] =
        static_cast<int>(len.value());
  }
  HuffDecoder code_decoder;
  if (!code_decoder.build(code_lengths)) {
    return Error{ErrorCode::kParseError, "deflate: bad code-length code"};
  }

  std::vector<int> lengths;
  lengths.reserve(nlit + ndist);
  while (lengths.size() < nlit + ndist) {
    Result<int> symbol = code_decoder.decode(in);
    if (!symbol.ok()) return symbol.error();
    const int s = symbol.value();
    if (s < 16) {
      lengths.push_back(s);
    } else if (s == 16) {
      if (lengths.empty()) {
        return Error{ErrorCode::kParseError, "deflate: repeat with no prior"};
      }
      Result<std::uint32_t> rep = in->take(2);
      if (!rep.ok()) return rep.error();
      lengths.insert(lengths.end(), 3 + rep.value(), lengths.back());
    } else if (s == 17) {
      Result<std::uint32_t> rep = in->take(3);
      if (!rep.ok()) return rep.error();
      lengths.insert(lengths.end(), 3 + rep.value(), 0);
    } else {
      Result<std::uint32_t> rep = in->take(7);
      if (!rep.ok()) return rep.error();
      lengths.insert(lengths.end(), 11 + rep.value(), 0);
    }
  }
  if (lengths.size() != nlit + ndist) {
    return Error{ErrorCode::kParseError, "deflate: code lengths overflow"};
  }

  std::vector<int> lit_lengths(lengths.begin(),
                               lengths.begin() + static_cast<long>(nlit));
  std::vector<int> dist_lengths(lengths.begin() + static_cast<long>(nlit),
                                lengths.end());
  if (!literals->build(lit_lengths) || !distances->build(dist_lengths)) {
    return Error{ErrorCode::kParseError, "deflate: bad dynamic code"};
  }
  return Status{};
}

}  // namespace

Result<std::string> inflate(std::string_view input, std::size_t max_output,
                            std::string_view dict) {
  if (dict.size() > kWindowSize) {
    dict = dict.substr(dict.size() - kWindowSize);
  }
  BitReader in(input);
  // The dictionary seeds the back-reference window exactly as if it had
  // been decoded first; it is stripped before returning, and the output
  // bound applies to the stream's own bytes only.
  std::string out(dict);
  const std::size_t limit =
      max_output > static_cast<std::size_t>(-1) - dict.size()
          ? static_cast<std::size_t>(-1)
          : max_output + dict.size();
  for (;;) {
    Result<std::uint32_t> bfinal = in.take(1);
    if (!bfinal.ok()) return bfinal.error();
    Result<std::uint32_t> btype = in.take(2);
    if (!btype.ok()) return btype.error();

    switch (btype.value()) {
      case 0: {  // stored
        in.align_to_byte();
        char header[4];
        BSOAP_RETURN_IF_ERROR(in.read_bytes(header, 4));
        const std::uint16_t len =
            static_cast<std::uint16_t>(static_cast<unsigned char>(header[0]) |
                                       (static_cast<unsigned char>(header[1])
                                        << 8));
        const std::uint16_t nlen =
            static_cast<std::uint16_t>(static_cast<unsigned char>(header[2]) |
                                       (static_cast<unsigned char>(header[3])
                                        << 8));
        if (static_cast<std::uint16_t>(~len) != nlen) {
          return Error{ErrorCode::kParseError, "deflate: stored LEN/NLEN"};
        }
        if (out.size() + len > limit) {
          return Error{ErrorCode::kOutOfRange, "deflate: output limit"};
        }
        const std::size_t old = out.size();
        out.resize(old + len);
        BSOAP_RETURN_IF_ERROR(in.read_bytes(out.data() + old, len));
        break;
      }
      case 1:  // fixed Huffman
        BSOAP_RETURN_IF_ERROR(inflate_block(&in, fixed_literal_decoder(),
                                            fixed_distance_decoder(), &out,
                                            limit));
        break;
      case 2: {  // dynamic Huffman
        HuffDecoder literals;
        HuffDecoder distances;
        BSOAP_RETURN_IF_ERROR(
            inflate_dynamic_header(&in, &literals, &distances));
        BSOAP_RETURN_IF_ERROR(
            inflate_block(&in, literals, distances, &out, limit));
        break;
      }
      default:
        return Error{ErrorCode::kParseError, "deflate: reserved block type"};
    }
    if (bfinal.value() != 0) {
      out.erase(0, dict.size());
      return out;
    }
  }
}

// ---------------------------------------------------------------------------
// CRC-32, the zlib wrapper, the gzip wrapper.
// ---------------------------------------------------------------------------

std::uint32_t crc32(std::string_view data, std::uint32_t seed) noexcept {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

namespace {

void append_be32(std::string& out, std::uint32_t value) {
  for (int i = 3; i >= 0; --i) {
    out += static_cast<char>((value >> (8 * i)) & 0xFF);
  }
}

std::uint32_t read_be32(std::string_view data, std::size_t offset) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value = (value << 8) |
            static_cast<unsigned char>(data[offset + static_cast<std::size_t>(i)]);
  }
  return value;
}

constexpr unsigned char kZlibFlagDict = 0x20;  // FDICT

}  // namespace

std::string zlib_compress(DeflateStream& stream, std::string_view input) {
  std::string out;
  // CMF: CM=8 (deflate), CINFO=7 (32 KiB window).
  const unsigned char cmf = 0x78;
  unsigned char flg = stream.has_dictionary() ? kZlibFlagDict : 0;
  const unsigned rem = (static_cast<unsigned>(cmf) * 256u + flg) % 31u;
  if (rem != 0) flg = static_cast<unsigned char>(flg + (31u - rem));
  out += static_cast<char>(cmf);
  out += static_cast<char>(flg);
  if (stream.has_dictionary()) append_be32(out, stream.dictionary_id());
  out += stream.compress(input);
  append_be32(out, adler32(input));
  return out;
}

std::string zlib_compress(std::string_view input, std::string_view dict) {
  DeflateStream stream;
  stream.preset(dict);
  return zlib_compress(stream, input);
}

Result<std::string> zlib_decompress(std::string_view input,
                                    std::size_t max_output,
                                    std::string_view dict) {
  if (input.size() < 6) {
    return Error{ErrorCode::kParseError, "zlib: truncated"};
  }
  const unsigned char cmf = static_cast<unsigned char>(input[0]);
  const unsigned char flg = static_cast<unsigned char>(input[1]);
  if ((cmf & 0x0F) != 8) {
    return Error{ErrorCode::kParseError, "zlib: bad method"};
  }
  if ((static_cast<unsigned>(cmf) * 256u + flg) % 31u != 0) {
    return Error{ErrorCode::kParseError, "zlib: bad header check"};
  }
  std::size_t offset = 2;
  std::string_view effective_dict;
  if (flg & kZlibFlagDict) {
    if (input.size() < 10) {
      return Error{ErrorCode::kParseError, "zlib: truncated"};
    }
    const std::uint32_t dictid = read_be32(input, 2);
    offset = 6;
    std::string_view d = dict;
    if (d.size() > kWindowSize) d = d.substr(d.size() - kWindowSize);
    if (d.empty() || adler32(d) != dictid) {
      return Error{ErrorCode::kInvalidArgument, "zlib: dictionary mismatch"};
    }
    effective_dict = d;
  }
  if (input.size() < offset + 4) {
    return Error{ErrorCode::kParseError, "zlib: truncated"};
  }

  Result<std::string> body = inflate(
      input.substr(offset, input.size() - offset - 4), max_output,
      effective_dict);
  if (!body.ok()) return body.error();

  if (adler32(body.value()) != read_be32(input, input.size() - 4)) {
    return Error{ErrorCode::kParseError, "zlib: Adler-32 mismatch"};
  }
  return body;
}

std::string gzip_compress(std::string_view input) {
  std::string out;
  // Header: magic, deflate, no flags, no mtime, no extra flags, unknown OS.
  const char header[10] = {'\x1f', '\x8b', 8, 0, 0, 0, 0, 0, 0, '\xff'};
  out.append(header, sizeof(header));
  out += deflate(input);
  const std::uint32_t crc = crc32(input);
  const std::uint32_t size = static_cast<std::uint32_t>(input.size());
  for (int i = 0; i < 4; ++i) out += static_cast<char>((crc >> (8 * i)) & 0xFF);
  for (int i = 0; i < 4; ++i) out += static_cast<char>((size >> (8 * i)) & 0xFF);
  return out;
}

Result<std::string> gzip_decompress(std::string_view input,
                                    std::size_t max_output) {
  if (input.size() < 18 || input[0] != '\x1f' ||
      static_cast<unsigned char>(input[1]) != 0x8b || input[2] != 8) {
    return Error{ErrorCode::kParseError, "gzip: bad header"};
  }
  const unsigned char flags = static_cast<unsigned char>(input[3]);
  std::size_t offset = 10;
  if (flags & 0x04) {  // FEXTRA
    if (input.size() < offset + 2) {
      return Error{ErrorCode::kParseError, "gzip: truncated extra"};
    }
    const std::size_t xlen =
        static_cast<unsigned char>(input[offset]) |
        (static_cast<std::size_t>(static_cast<unsigned char>(input[offset + 1]))
         << 8);
    offset += 2 + xlen;
  }
  for (const unsigned char string_flag : {0x08, 0x10}) {  // FNAME, FCOMMENT
    if (flags & string_flag) {
      const std::size_t end = input.find('\0', offset);
      if (end == std::string_view::npos) {
        return Error{ErrorCode::kParseError, "gzip: unterminated string"};
      }
      offset = end + 1;
    }
  }
  if (flags & 0x02) offset += 2;  // FHCRC
  if (offset + 8 > input.size()) {
    return Error{ErrorCode::kParseError, "gzip: truncated"};
  }

  Result<std::string> body =
      inflate(input.substr(offset, input.size() - offset - 8), max_output);
  if (!body.ok()) return body.error();

  const std::string_view trailer = input.substr(input.size() - 8);
  std::uint32_t expected_crc = 0;
  std::uint32_t expected_size = 0;
  for (int i = 3; i >= 0; --i) {
    expected_crc = (expected_crc << 8) |
                   static_cast<unsigned char>(trailer[static_cast<std::size_t>(i)]);
    expected_size =
        (expected_size << 8) |
        static_cast<unsigned char>(trailer[static_cast<std::size_t>(i + 4)]);
  }
  if (crc32(body.value()) != expected_crc) {
    return Error{ErrorCode::kParseError, "gzip: CRC mismatch"};
  }
  if ((body.value().size() & 0xFFFFFFFFu) != expected_size) {
    return Error{ErrorCode::kParseError, "gzip: ISIZE mismatch"};
  }
  return body;
}

}  // namespace bsoap::compress
