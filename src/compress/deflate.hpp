// DEFLATE (RFC 1951) and gzip (RFC 1952), from scratch.
//
// gSOAP ships transport compression and the paper lists it among the
// complementary optimizations ("they can be used when an RPC call must be
// serialized the first time; differential serialization can then be used for
// subsequent calls"). This module provides the substrate: an LZ77 +
// fixed-Huffman DEFLATE compressor (valid RFC 1951 output any inflater can
// read) and a full inflater (stored, fixed and dynamic Huffman blocks, so it
// can decode third-party streams too), plus the gzip framing with CRC-32.
//
// The ablation bench compares gzip-compressed full serialization against
// differential serialization — quantifying the paper's claim that the two
// compose rather than compete.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace bsoap::compress {

/// Raw DEFLATE stream (no zlib/gzip wrapper).
std::string deflate(std::string_view input);

/// Inflates a raw DEFLATE stream. `max_output` bounds decompression bombs.
Result<std::string> inflate(std::string_view input,
                            std::size_t max_output = 1u << 30);

/// CRC-32 (IEEE 802.3, as used by gzip).
std::uint32_t crc32(std::string_view data,
                    std::uint32_t seed = 0) noexcept;

/// gzip member: header + deflate body + CRC32 + ISIZE.
std::string gzip_compress(std::string_view input);
Result<std::string> gzip_decompress(std::string_view input,
                                    std::size_t max_output = 1u << 30);

}  // namespace bsoap::compress
