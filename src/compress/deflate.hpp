// DEFLATE (RFC 1951), zlib (RFC 1950) and gzip (RFC 1952), from scratch.
//
// gSOAP ships transport compression and the paper lists it among the
// complementary optimizations ("they can be used when an RPC call must be
// serialized the first time; differential serialization can then be used for
// subsequent calls"). This module provides the substrate: an LZ77 +
// fixed-Huffman DEFLATE compressor (valid RFC 1951 output any inflater can
// read) and a full inflater (stored, fixed and dynamic Huffman blocks, so it
// can decode third-party streams too), plus the gzip framing with CRC-32 and
// the zlib framing with Adler-32.
//
// The zlib wrapper carries FDICT: a compressor primed with a preset
// dictionary (DeflateStream::preset) records the dictionary's Adler-32 as
// the stream's DICTID, and the inflater refuses to decode against a
// different dictionary — this is how the diff-wire layer guarantees both
// sides preset the window from the same pinned template bytes.
//
// The ablation bench compares gzip-compressed full serialization against
// differential serialization — quantifying the paper's claim that the two
// compose rather than compete.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace bsoap::compress {

/// Adler-32 (RFC 1950), the zlib checksum and FDICT dictionary id.
std::uint32_t adler32(std::string_view data,
                      std::uint32_t seed = 1) noexcept;

/// Reusable DEFLATE compressor. One instance amortizes the hash-chain
/// allocations across calls (the one-shot `deflate()` free function rebuilds
/// them per call), and can preset the LZ77 history window from a dictionary
/// so matches reach back into bytes that never enter the stream — the
/// differential trick at the compression layer: a body near-identical to the
/// dictionary compresses to almost nothing.
class DeflateStream {
 public:
  /// Presets the history window. Only the last 32 KiB matter (the LZ77
  /// window); longer dictionaries are tail-truncated. Clears any previous
  /// dictionary when called with an empty view.
  void preset(std::string_view dict);

  /// Adler-32 of the effective (possibly tail-truncated) dictionary — the
  /// DICTID both sides must agree on. 0 when no dictionary is set.
  std::uint32_t dictionary_id() const noexcept { return dict_id_; }

  bool has_dictionary() const noexcept { return !dict_.empty(); }

  /// Compresses `input` into one raw DEFLATE stream (fixed-Huffman, single
  /// final block), with matches allowed to reference the preset dictionary.
  /// The dictionary persists across calls; each call is an independent
  /// stream.
  std::string compress(std::string_view input);

 private:
  std::string dict_;
  std::uint32_t dict_id_ = 0;
  std::vector<std::int32_t> head_;
  std::vector<std::int32_t> prev_;
  std::string work_;  // dict + input, contiguous so matches can span the seam
};

/// Raw DEFLATE stream (no zlib/gzip wrapper).
std::string deflate(std::string_view input);

/// Inflates a raw DEFLATE stream. `max_output` bounds decompression bombs.
/// A non-empty `dict` seeds the back-reference window (the counterpart of
/// DeflateStream::preset); the returned string contains only the stream's
/// own output, never the dictionary bytes.
Result<std::string> inflate(std::string_view input,
                            std::size_t max_output = 1u << 30,
                            std::string_view dict = {});

/// CRC-32 (IEEE 802.3, as used by gzip).
std::uint32_t crc32(std::string_view data,
                    std::uint32_t seed = 0) noexcept;

/// zlib stream (RFC 1950): 2-byte header + deflate body + Adler-32. With a
/// preset dictionary the header carries FDICT and the dictionary's Adler-32
/// as DICTID, so the receiving side can verify it holds the same bytes.
std::string zlib_compress(std::string_view input, std::string_view dict = {});
std::string zlib_compress(DeflateStream& stream, std::string_view input);

/// Decodes a zlib stream. If the stream carries FDICT, `dict` must hash to
/// the recorded DICTID (kInvalidArgument "zlib: dictionary mismatch"
/// otherwise — a clean error, never garbage output). A stream without FDICT
/// ignores `dict`.
Result<std::string> zlib_decompress(std::string_view input,
                                    std::size_t max_output = 1u << 30,
                                    std::string_view dict = {});

/// gzip member: header + deflate body + CRC32 + ISIZE.
std::string gzip_compress(std::string_view input);
Result<std::string> gzip_decompress(std::string_view input,
                                    std::size_t max_output = 1u << 30);

}  // namespace bsoap::compress
