// Retry policy for resilient sends.
//
// Declarative knobs — attempt bound, overall deadline, exponential backoff
// with jitter, and a retryable-code predicate over ErrorCode — executed by
// ResilientSender. The policy itself depends on nothing but the error
// model, so any layer can embed one.
//
// Which errors are retryable (default predicate):
//   kIoError     — the write failed mid-stream; a fresh connection may work
//   kClosed      — the peer closed (keep-alive idle timeout, restart)
//   kTimeout     — the peer was too slow; transient by assumption
//   kUnavailable — no connection could be established (dial refused/failed)
// Everything else (kInvalidArgument, kProtocolError, kParseError, ...)
// reflects a request or peer defect a retry cannot fix and fails fast.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace bsoap::resilience {

/// The default retryable set (see header comment).
bool default_retryable(ErrorCode code) noexcept;

struct RetryPolicy {
  /// Total tries including the first (1 = no retries).
  std::uint32_t max_attempts = 3;
  /// Backoff before the first retry; doubles (times `multiplier`) per
  /// further retry, capped at max_backoff.
  std::chrono::milliseconds initial_backoff{10};
  double multiplier = 2.0;
  std::chrono::milliseconds max_backoff{1000};
  /// Overall budget across attempts and backoff sleeps (0 = unbounded).
  /// A retry whose backoff would cross the deadline is not attempted.
  std::chrono::milliseconds deadline{0};
  /// Equal jitter: sleep delay/2 + uniform(0, delay/2), decorrelating
  /// retry storms from concurrent senders.
  bool jitter = true;
  /// Seed for the jitter stream (deterministic tests).
  std::uint64_t seed = 0x5eed;
  /// Overrides the retryable set; empty uses default_retryable.
  std::function<bool(ErrorCode)> retryable;

  // --- named fluent setters ---
  RetryPolicy& with_max_attempts(std::uint32_t n) {
    max_attempts = n;
    return *this;
  }
  RetryPolicy& with_initial_backoff(std::chrono::milliseconds d) {
    initial_backoff = d;
    return *this;
  }
  RetryPolicy& with_multiplier(double m) {
    multiplier = m;
    return *this;
  }
  RetryPolicy& with_max_backoff(std::chrono::milliseconds d) {
    max_backoff = d;
    return *this;
  }
  RetryPolicy& with_deadline(std::chrono::milliseconds d) {
    deadline = d;
    return *this;
  }
  RetryPolicy& with_jitter(bool on) {
    jitter = on;
    return *this;
  }
  RetryPolicy& with_seed(std::uint64_t s) {
    seed = s;
    return *this;
  }
  RetryPolicy& with_retryable(std::function<bool(ErrorCode)> pred) {
    retryable = std::move(pred);
    return *this;
  }

  bool is_retryable(ErrorCode code) const {
    return retryable ? retryable(code) : default_retryable(code);
  }

  /// Backoff before the retry following the `failed_attempts`-th failure
  /// (1-based): exponential, capped, jittered via `rng`.
  std::chrono::milliseconds backoff_for(std::uint32_t failed_attempts,
                                        Rng& rng) const;
};

}  // namespace bsoap::resilience
