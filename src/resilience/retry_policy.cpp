#include "resilience/retry_policy.hpp"

namespace bsoap::resilience {

bool default_retryable(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kIoError:
    case ErrorCode::kClosed:
    case ErrorCode::kTimeout:
    case ErrorCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

std::chrono::milliseconds RetryPolicy::backoff_for(
    std::uint32_t failed_attempts, Rng& rng) const {
  if (failed_attempts == 0 || initial_backoff.count() <= 0) {
    return std::chrono::milliseconds{0};
  }
  // Exponential growth, capped early so the loop cannot overflow.
  double delay = static_cast<double>(initial_backoff.count());
  const double cap = static_cast<double>(max_backoff.count());
  for (std::uint32_t i = 1; i < failed_attempts && delay < cap; ++i) {
    delay *= multiplier;
  }
  if (cap > 0 && delay > cap) delay = cap;
  auto ms = static_cast<std::int64_t>(delay);
  if (jitter && ms > 1) {
    const std::int64_t half = ms / 2;
    ms = half + static_cast<std::int64_t>(
                    rng.next_below(static_cast<std::uint64_t>(ms - half) + 1));
  }
  return std::chrono::milliseconds{ms};
}

}  // namespace bsoap::resilience
