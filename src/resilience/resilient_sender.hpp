// ResilientSender: the retry loop that makes differential serialization
// safe under connection failure.
//
// Each attempt checks a connection out of the pool, arms the pipeline's
// update journal, and sends. On failure the lease is discarded (the stream
// may hold a partial message) and the pipeline repairs template state:
//
//            ┌────────────── attempt ───────────────┐
//            │ checkout → arm journal → send        │
//            └──────┬───────────────────────┬───────┘
//                 ok│                       │error
//                   ▼                       ▼
//            commit journal          discard lease
//            return outcome     recover_failed_send()
//                                ├─ kRolledBack: template restored exactly,
//                                │  changed fields dirty again → retry
//                                ├─ kInvalidated: template erased/rebuilt
//                                │  → retry is a clean first-time send
//                                └─ kNone: nothing to repair → retry
//
// Retries happen only for the policy's retryable codes, within the attempt
// and deadline budget, after a jittered exponential backoff. A fixed pool
// (legacy single-transport client) never retries: the one stream may hold
// partial bytes of the failed message, and resending would interleave.
//
// Header-only by design: this sits above core (SendPipeline) and net
// (ConnectionPool); the compiled bsoap_resilience library carries only the
// policy so the dependency graph stays a DAG (core → resilience → common).
#pragma once

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/send_pipeline.hpp"
#include "core/template_builder.hpp"
#include "net/connection_pool.hpp"
#include "resilience/retry_policy.hpp"

namespace bsoap::resilience {

/// What a successful resilient send yields: the report (with attempts and
/// recovery filled in) plus the lease it succeeded on, so the caller can
/// read a response off the same connection before checking it back in.
struct SendOutcome {
  core::SendReport report;
  net::ConnectionPool::Lease lease;
};

class ResilientSender {
 public:
  /// The pipeline and pool must outlive the sender.
  ResilientSender(core::SendPipeline& pipeline, net::ConnectionPool& pool,
                  RetryPolicy policy, std::string path)
      : pipeline_(pipeline),
        pool_(pool),
        policy_(std::move(policy)),
        path_(std::move(path)),
        rng_(policy_.seed) {}

  /// Transparent send with retry (store-resolved template).
  Result<SendOutcome> send(const soap::RpcCall& call) {
    return run(
        [&](const core::SendDestination& dest) {
          return pipeline_.send(call, dest);
        },
        nullptr, nullptr);
  }

  /// Tracked send with retry (caller-owned template). If recovery had to
  /// invalidate the template, it is rebuilt from `call` in place and the
  /// succeeding attempt reports kFirstTime.
  Result<SendOutcome> send_tracked(core::MessageTemplate& tmpl,
                                   const soap::RpcCall& call) {
    return run(
        [&](const core::SendDestination& dest) {
          return pipeline_.send_tracked(tmpl, call, dest);
        },
        &tmpl, &call);
  }

  const RetryPolicy& policy() const { return policy_; }

 private:
  template <typename SendFn>
  Result<SendOutcome> run(SendFn&& do_send, core::MessageTemplate* tracked,
                          const soap::RpcCall* tracked_call) {
    using Clock = std::chrono::steady_clock;
    const Clock::time_point start = Clock::now();
    // A fixed pool's single stream may hold partial bytes of a failed
    // message; a retry over it would interleave. Send once.
    const std::uint32_t max_attempts =
        pool_.fixed() ? 1 : std::max<std::uint32_t>(1, policy_.max_attempts);

    core::Recovery worst = core::Recovery::kNone;
    bool rebuilt_tracked = false;
    Error last;
    for (std::uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
      Result<net::ConnectionPool::Lease> lease = pool_.checkout();
      if (!lease.ok()) {
        last = std::move(lease).error();  // no template state was touched
      } else {
        pipeline_.set_journal(&journal_);
        Result<core::SendReport> sent = do_send(
            core::SendDestination{&lease.value().transport(), path_});
        if (sent.ok()) {
          pipeline_.set_journal(nullptr);
          SendOutcome outcome;
          outcome.report = std::move(sent).value();
          outcome.report.attempts = attempt;
          outcome.report.recovery = worst;
          if (rebuilt_tracked) {
            outcome.report.match = core::MatchKind::kFirstTime;
          }
          outcome.lease = std::move(lease).value();
          return outcome;
        }
        last = std::move(sent).error();
        lease.value().discard();
        const core::Recovery recovery = pipeline_.recover_failed_send();
        pipeline_.set_journal(nullptr);
        if (recovery == core::Recovery::kInvalidated) {
          worst = core::Recovery::kInvalidated;
          if (tracked != nullptr) {
            // The caller owns this template; rebuild it from the current
            // values so the retry serializes a clean first-time message.
            core::rebuild_template(*tracked, *tracked_call);
            rebuilt_tracked = true;
          }
        } else if (recovery == core::Recovery::kRolledBack &&
                   worst == core::Recovery::kNone) {
          worst = core::Recovery::kRolledBack;
        }
      }
      if (!policy_.is_retryable(last.code)) return last;
      if (attempt == max_attempts) break;
      const std::chrono::milliseconds delay =
          policy_.backoff_for(attempt, rng_);
      if (policy_.deadline.count() > 0) {
        const auto elapsed = std::chrono::duration_cast<
            std::chrono::milliseconds>(Clock::now() - start);
        if (elapsed + delay >= policy_.deadline) break;
      }
      if (delay.count() > 0) std::this_thread::sleep_for(delay);
    }
    // A single-attempt send (fixed pool or max_attempts=1) surfaces the
    // underlying error unchanged — nothing was exhausted.
    if (max_attempts == 1) return last;
    return Error{ErrorCode::kRetryExhausted,
                 "send failed after " + std::to_string(max_attempts) +
                     " attempt(s); last: " + last.to_string()};
  }

  core::SendPipeline& pipeline_;
  net::ConnectionPool& pool_;
  RetryPolicy policy_;
  std::string path_;
  Rng rng_;
  core::UpdateJournal journal_;
};

}  // namespace bsoap::resilience
