#include "net/transport.hpp"

#include <sys/socket.h>

#include <cstring>

namespace bsoap::net {

void SocketTransport::shutdown_send() {
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_WR);
}

void SocketTransport::shutdown_both() {
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
}

Result<std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>>
make_socketpair_transports() {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) < 0) {
    return Error{ErrorCode::kIoError,
                 std::string("socketpair: ") + std::strerror(errno)};
  }
  Fd a(sv[0]);
  Fd b(sv[1]);
  (void)apply_paper_socket_options(a.get());
  (void)apply_paper_socket_options(b.get());
  return std::make_pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>(
      std::make_unique<SocketTransport>(std::move(a)),
      std::make_unique<SocketTransport>(std::move(b)));
}

}  // namespace bsoap::net
