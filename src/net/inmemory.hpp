// In-memory transport pair: a thread-safe byte pipe.
//
// Used by unit tests for deterministic, port-free client/server runs, and by
// the phase-breakdown ablation where the "network" must cost (almost)
// nothing.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>

#include "net/transport.hpp"

namespace bsoap::net {

namespace detail {

/// One direction of the pipe.
struct PipeChannel {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<char> bytes;
  bool closed = false;

  void write(const char* data, std::size_t n) {
    {
      std::lock_guard<std::mutex> lock(mu);
      bytes.insert(bytes.end(), data, data + n);
    }
    cv.notify_all();
  }

  std::size_t read(char* out, std::size_t n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return !bytes.empty() || closed; });
    const std::size_t take = std::min(n, bytes.size());
    for (std::size_t i = 0; i < take; ++i) {
      out[i] = bytes.front();
      bytes.pop_front();
    }
    return take;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mu);
      closed = true;
    }
    cv.notify_all();
  }
};

}  // namespace detail

class InMemoryTransport final : public Transport {
 public:
  using Transport::send;
  InMemoryTransport(std::shared_ptr<detail::PipeChannel> out,
                    std::shared_ptr<detail::PipeChannel> in)
      : out_(std::move(out)), in_(std::move(in)) {}

  ~InMemoryTransport() override { shutdown_send(); }

  Status send(const char* data, std::size_t n) override {
    if (out_->closed) return Error{ErrorCode::kClosed, "pipe closed"};
    out_->write(data, n);
    return Status{};
  }

  Status send_slices(std::span<const ConstSlice> slices) override {
    for (const ConstSlice& s : slices) {
      BSOAP_RETURN_IF_ERROR(send(s.data, s.len));
    }
    return Status{};
  }

  Result<std::size_t> recv(char* out, std::size_t n) override {
    return in_->read(out, n);
  }

  void shutdown_send() override { out_->close(); }

  void shutdown_both() override {
    out_->close();
    in_->close();
  }

 private:
  std::shared_ptr<detail::PipeChannel> out_;
  std::shared_ptr<detail::PipeChannel> in_;
};

/// Creates the two connected endpoints of an in-memory pipe.
inline std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_inmemory_transports() {
  auto a_to_b = std::make_shared<detail::PipeChannel>();
  auto b_to_a = std::make_shared<detail::PipeChannel>();
  return {std::make_unique<InMemoryTransport>(a_to_b, b_to_a),
          std::make_unique<InMemoryTransport>(b_to_a, a_to_b)};
}

}  // namespace bsoap::net
