// Deterministic fault injection for the client resilience layer.
//
// Wraps a Transport and misbehaves on a seeded schedule: drop the
// connection after exactly N forwarded bytes, probabilistic short writes,
// latency spikes, and dial refusals. Tests use exact byte cuts to assert
// recovery behaviour; bench_resilience uses the probabilistic knobs to
// measure differential-send throughput under injected failure rates.
//
// All randomness comes from common/rng.hpp (xoshiro256**), so a given seed
// reproduces the same fault schedule bit-for-bit.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "net/connection_pool.hpp"
#include "net/transport.hpp"

namespace bsoap::net {

/// The faults one wrapped connection injects.
struct FaultPlan {
  /// Drop the connection after exactly this many forwarded bytes
  /// (0 = disabled). Bytes up to the threshold are delivered; the write
  /// crossing it forwards the remainder up to the threshold, shuts the
  /// connection down, and returns kIoError. Every later operation returns
  /// kClosed.
  std::uint64_t fail_after_bytes = 0;

  /// Probability, per send call, of a short write: a random prefix of the
  /// payload is forwarded, then the connection breaks as above.
  double write_failure_rate = 0.0;

  /// Probability, per send call, of sleeping `latency` before forwarding
  /// (a slow-peer spike, not a failure).
  double latency_spike_rate = 0.0;
  std::chrono::milliseconds latency{0};

  /// Probability that a dial through faulty_dialer is refused outright
  /// (kUnavailable) instead of producing a connection.
  double connect_refusal_rate = 0.0;

  /// Seed for the plan's random stream.
  std::uint64_t seed = 1;
};

class FaultInjectingTransport final : public Transport {
 public:
  using Transport::send;
  FaultInjectingTransport(std::unique_ptr<Transport> inner, FaultPlan plan)
      : inner_(std::move(inner)), plan_(plan), rng_(plan.seed) {}

  Status send(const char* data, std::size_t n) override;
  Status send_slices(std::span<const ConstSlice> slices) override;
  Result<std::size_t> recv(char* out, std::size_t n) override;
  void shutdown_send() override { inner_->shutdown_send(); }
  void shutdown_both() override { inner_->shutdown_both(); }
  /// Deliberately -1: pool liveness probes must not see through the fault
  /// wrapper to a healthy inner socket after an injected break.
  int native_handle() const override { return -1; }

  std::uint64_t bytes_forwarded() const { return forwarded_; }
  bool broken() const { return broken_; }

 private:
  /// Forwards `prefix` bytes of the payload, then severs the connection.
  Status break_after(const char* data, std::size_t prefix);
  void maybe_latency_spike();

  std::unique_ptr<Transport> inner_;
  FaultPlan plan_;
  Rng rng_;
  std::uint64_t forwarded_ = 0;
  bool broken_ = false;
};

/// Wraps a dialer so every connection it produces injects `plan`. Each
/// dialed connection gets a distinct derived seed (seed + dial count), and
/// plan.connect_refusal_rate is applied before the inner dial.
Dialer faulty_dialer(Dialer inner, FaultPlan plan);

}  // namespace bsoap::net
