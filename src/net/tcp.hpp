// Loopback TCP listener/connector used by the benchmark harness and the
// example servers.
#pragma once

#include <cstdint>
#include <memory>

#include "common/error.hpp"
#include "net/transport.hpp"

namespace bsoap::net {

class TcpListener {
 public:
  /// Binds 127.0.0.1 on `port` (0 = ephemeral) and listens.
  static Result<TcpListener> bind(std::uint16_t port = 0);

  /// The actual bound port.
  std::uint16_t port() const { return port_; }

  /// Blocks until a client connects; paper socket options are applied.
  Result<std::unique_ptr<Transport>> accept();

  /// Non-blocking accept for readiness-driven servers: returns nullptr when
  /// no connection is pending (the listener must be set non-blocking first).
  /// Accepted sockets get the paper options and are left in blocking mode;
  /// the caller flips them via Transport::set_nonblocking.
  Result<std::unique_ptr<Transport>> try_accept();

  /// Switches the listening socket to non-blocking mode (for try_accept
  /// driven by an EventPoller).
  Status set_nonblocking() { return net::set_nonblocking(fd_.get()); }

  int native_handle() const { return fd_.get(); }

  TcpListener(TcpListener&&) noexcept = default;
  TcpListener& operator=(TcpListener&&) noexcept = default;

 private:
  TcpListener(Fd fd, std::uint16_t port) : fd_(std::move(fd)), port_(port) {}

  Fd fd_;
  std::uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:port with the paper socket options applied.
Result<std::unique_ptr<Transport>> tcp_connect(std::uint16_t port);

}  // namespace bsoap::net
