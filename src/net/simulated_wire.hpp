// Simulated-bandwidth transport wrapper.
//
// The paper's clients send over Gigabit Ethernet, so message *size* carries a
// wire cost that loopback hides (loopback is memory-bandwidth limited). This
// wrapper adds the analytic serialization delay of a link: time = bytes * 8 /
// bandwidth, busy-waiting so that the added latency is included in the Send
// Time measurement exactly where the real wire would put it. Used by the
// stuffing benchmarks, where larger padded messages must cost more on the
// wire (paper Figures 10 and 11).
#pragma once

#include <memory>

#include "common/timing.hpp"
#include "net/transport.hpp"

namespace bsoap::net {

class SimulatedWireTransport final : public Transport {
 public:
  using Transport::send;
  /// Wraps `inner`, modelling a link of `bits_per_second`.
  SimulatedWireTransport(std::unique_ptr<Transport> inner,
                         double bits_per_second)
      : inner_(std::move(inner)), bits_per_second_(bits_per_second) {}

  Status send(const char* data, std::size_t n) override {
    const Status st = inner_->send(data, n);
    if (st.ok()) delay_for_bytes(n);
    return st;
  }

  Status send_slices(std::span<const ConstSlice> slices) override {
    std::size_t total = 0;
    for (const ConstSlice& s : slices) total += s.len;
    const Status st = inner_->send_slices(slices);
    if (st.ok()) delay_for_bytes(total);
    return st;
  }

  Result<std::size_t> recv(char* out, std::size_t n) override {
    return inner_->recv(out, n);
  }

  void shutdown_send() override { inner_->shutdown_send(); }
  void shutdown_both() override { inner_->shutdown_both(); }

 private:
  void delay_for_bytes(std::size_t n) {
    const double seconds = static_cast<double>(n) * 8.0 / bits_per_second_;
    const auto target_ns = static_cast<std::int64_t>(seconds * 1e9);
    StopWatch watch;
    while (watch.elapsed_ns() < target_ns) {
      // Busy-wait: the modelled time is short (microseconds to a few
      // milliseconds) and must be attributed to the caller's Send Time.
    }
  }

  std::unique_ptr<Transport> inner_;
  double bits_per_second_;
};

inline std::unique_ptr<Transport> simulate_gigabit(
    std::unique_ptr<Transport> inner) {
  return std::make_unique<SimulatedWireTransport>(std::move(inner), 1e9);
}

}  // namespace bsoap::net
