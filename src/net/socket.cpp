#include "net/socket.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>
#if defined(__linux__)
#include <linux/errqueue.h>
#endif

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace bsoap::net {
namespace {

Error errno_error(const char* what) {
  return Error{ErrorCode::kIoError,
               std::string(what) + ": " + std::strerror(errno)};
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status apply_paper_socket_options(int fd) {
  const int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof(one)) < 0) {
    return errno_error("setsockopt(SO_KEEPALIVE)");
  }
  // TCP_NODELAY only applies to TCP sockets; ignore failures on AF_UNIX.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  // The paper additionally pins SO_SNDBUF = SO_RCVBUF = 32768. That is
  // faithful on a real Gigabit link (their setup), but on loopback the tiny
  // fixed windows interact with zero-window probing and turn >32 KiB sends
  // into multi-second stalls on some kernels — a substrate artifact that
  // would swamp every measurement. Default to the kernel's auto-tuned
  // buffers; export BSOAP_PAPER_SOCKBUF=1 to force the paper's values.
  static const bool use_paper_buffers = [] {
    const char* env = std::getenv("BSOAP_PAPER_SOCKBUF");
    return env != nullptr && env[0] == '1';
  }();
  if (use_paper_buffers) {
    const int buf_size = 32768;
    if (::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &buf_size, sizeof(buf_size)) < 0) {
      return errno_error("setsockopt(SO_SNDBUF)");
    }
    if (::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &buf_size, sizeof(buf_size)) < 0) {
      return errno_error("setsockopt(SO_RCVBUF)");
    }
  }
  return Status{};
}

void arm_quickack(int fd) noexcept {
#ifdef TCP_QUICKACK
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_QUICKACK, &one, sizeof(one));
#else
  (void)fd;
#endif
}

Status set_nonblocking(int fd, bool enabled) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return errno_error("fcntl(F_GETFL)");
  const int want = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && ::fcntl(fd, F_SETFL, want) < 0) {
    return errno_error("fcntl(F_SETFL)");
  }
  return Status{};
}

Result<IoResult> read_nonblocking(int fd, char* out, std::size_t n) {
  for (;;) {
    const ssize_t got = ::read(fd, out, n);
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return IoResult{0, /*would_block=*/true};
      }
      return errno_error("read");
    }
    return IoResult{static_cast<std::size_t>(got), false};
  }
}

Result<IoResult> write_nonblocking(int fd, const char* data, std::size_t n) {
  for (;;) {
    const ssize_t written = ::write(fd, data, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return IoResult{0, /*would_block=*/true};
      }
      return errno_error("write");
    }
    return IoResult{static_cast<std::size_t>(written), false};
  }
}

Status write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t written = ::write(fd, data, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      return errno_error("write");
    }
    data += written;
    n -= static_cast<std::size_t>(written);
  }
  return Status{};
}

Status writev_all(int fd, std::span<const ConstSlice> slices) {
  // Build an iovec array once; advance through it on short writes.
  std::vector<iovec> iov;
  iov.reserve(slices.size());
  for (const ConstSlice& s : slices) {
    if (s.len == 0) continue;
    iov.push_back(iovec{const_cast<char*>(s.data), s.len});
  }
  std::size_t index = 0;
  while (index < iov.size()) {
    constexpr std::size_t kMaxIov = 64;  // below IOV_MAX everywhere
    const std::size_t batch = std::min(iov.size() - index, kMaxIov);
    const ssize_t written = ::writev(fd, iov.data() + index, static_cast<int>(batch));
    if (written < 0) {
      if (errno == EINTR) continue;
      return errno_error("writev");
    }
    std::size_t remaining = static_cast<std::size_t>(written);
    while (remaining > 0 && index < iov.size()) {
      if (remaining >= iov[index].iov_len) {
        remaining -= iov[index].iov_len;
        ++index;
      } else {
        iov[index].iov_base = static_cast<char*>(iov[index].iov_base) + remaining;
        iov[index].iov_len -= remaining;
        remaining = 0;
      }
    }
  }
  return Status{};
}

Result<IoResult> writev_nonblocking(int fd,
                                    std::span<const ConstSlice> slices) {
  std::vector<iovec> iov;
  iov.reserve(slices.size());
  for (const ConstSlice& s : slices) {
    if (s.len == 0) continue;
    iov.push_back(iovec{const_cast<char*>(s.data), s.len});
  }
  std::size_t total = 0;
  std::size_t index = 0;
  while (index < iov.size()) {
    constexpr std::size_t kMaxIov = 64;  // below IOV_MAX everywhere
    const std::size_t batch = std::min(iov.size() - index, kMaxIov);
    const ssize_t written =
        ::writev(fd, iov.data() + index, static_cast<int>(batch));
    if (written < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return IoResult{total, /*would_block=*/true};
      }
      return errno_error("writev");
    }
    total += static_cast<std::size_t>(written);
    std::size_t remaining = static_cast<std::size_t>(written);
    while (remaining > 0 && index < iov.size()) {
      if (remaining >= iov[index].iov_len) {
        remaining -= iov[index].iov_len;
        ++index;
      } else {
        iov[index].iov_base =
            static_cast<char*>(iov[index].iov_base) + remaining;
        iov[index].iov_len -= remaining;
        remaining = 0;
      }
    }
  }
  return IoResult{total, false};
}

bool arm_zerocopy(int fd) noexcept {
#if defined(SO_ZEROCOPY)
  const int one = 1;
  return ::setsockopt(fd, SOL_SOCKET, SO_ZEROCOPY, &one, sizeof(one)) == 0;
#else
  (void)fd;
  return false;
#endif
}

Result<bool> writev_all_zerocopy(int fd, std::span<const ConstSlice> slices) {
#if defined(MSG_ZEROCOPY) && defined(SO_EE_ORIGIN_ZEROCOPY)
  std::vector<iovec> iov;
  iov.reserve(slices.size());
  for (const ConstSlice& s : slices) {
    if (s.len == 0) continue;
    iov.push_back(iovec{const_cast<char*>(s.data), s.len});
  }
  std::size_t index = 0;
  std::uint32_t zc_sends = 0;  // completions the error queue owes us
  bool zerocopy = true;
  while (index < iov.size()) {
    constexpr std::size_t kMaxIov = 64;
    const std::size_t batch = std::min(iov.size() - index, kMaxIov);
    msghdr msg{};
    msg.msg_iov = iov.data() + index;
    msg.msg_iovlen = batch;
    const ssize_t written = ::sendmsg(fd, &msg, zerocopy ? MSG_ZEROCOPY : 0);
    if (written < 0) {
      if (errno == EINTR) continue;
      if (zerocopy &&
          (errno == EOPNOTSUPP || errno == ENOBUFS || errno == EINVAL)) {
        // The path is unusable. Before any bytes left: tell the caller to
        // use the plain writev path. Mid-stream (optmem exhausted): finish
        // this message with copying sends — the wire cannot tell.
        if (zc_sends == 0 && index == 0) return false;
        zerocopy = false;
        continue;
      }
      return errno_error("sendmsg");
    }
    if (zerocopy && written > 0) ++zc_sends;
    std::size_t remaining = static_cast<std::size_t>(written);
    while (remaining > 0 && index < iov.size()) {
      if (remaining >= iov[index].iov_len) {
        remaining -= iov[index].iov_len;
        ++index;
      } else {
        iov[index].iov_base =
            static_cast<char*>(iov[index].iov_base) + remaining;
        iov[index].iov_len -= remaining;
        remaining = 0;
      }
    }
  }
  // Reap every completion notification before returning: each MSG_ZEROCOPY
  // sendmsg pins the caller's pages until the kernel posts its sequence
  // number (ranges [ee_info, ee_data]) on the error queue. Callers reuse
  // and mutate these buffers (message templates!) the moment we return, so
  // returning with outstanding references would hand the peer torn bytes.
  std::uint32_t reaped = 0;
  int stalls = 0;  // poll timeouts + wakeups that carried no completion
  while (reaped < zc_sends) {
    char control[512];
    msghdr msg{};
    msg.msg_control = control;
    msg.msg_controllen = sizeof(control);
    const ssize_t got = ::recvmsg(fd, &msg, MSG_ERRQUEUE | MSG_DONTWAIT);
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (++stalls >= 500) {
          return Error{ErrorCode::kIoError,
                       "MSG_ZEROCOPY completion reap stalled"};
        }
        pollfd pfd{fd, 0, 0};  // errqueue readiness is POLLERR, always polled
        const int r = ::poll(&pfd, 1, 10);
        if (r < 0 && errno != EINTR) return errno_error("poll(errqueue)");
        continue;
      }
      return errno_error("recvmsg(MSG_ERRQUEUE)");
    }
    for (cmsghdr* cm = CMSG_FIRSTHDR(&msg); cm != nullptr;
         cm = CMSG_NXTHDR(&msg, cm)) {
      if (!((cm->cmsg_level == SOL_IP && cm->cmsg_type == IP_RECVERR) ||
            (cm->cmsg_level == SOL_IPV6 && cm->cmsg_type == IPV6_RECVERR))) {
        continue;
      }
      sock_extended_err err;
      std::memcpy(&err, CMSG_DATA(cm), sizeof(err));
      if (err.ee_origin != SO_EE_ORIGIN_ZEROCOPY) continue;
      reaped += err.ee_data - err.ee_info + 1;  // completions coalesce
      stalls = 0;
    }
  }
  return true;
#else
  (void)fd;
  (void)slices;
  return false;
#endif
}

Result<std::size_t> read_some(int fd, char* out, std::size_t n) {
  for (;;) {
    const ssize_t got = ::read(fd, out, n);
    if (got < 0) {
      if (errno == EINTR) continue;
      return errno_error("read");
    }
    return static_cast<std::size_t>(got);
  }
}

Status read_exact(int fd, char* out, std::size_t n) {
  while (n > 0) {
    Result<std::size_t> got = read_some(fd, out, n);
    if (!got.ok()) return got.error();
    if (got.value() == 0) {
      return Error{ErrorCode::kClosed, "connection closed mid-read"};
    }
    out += got.value();
    n -= got.value();
  }
  return Status{};
}

}  // namespace bsoap::net
