#include "net/connection_pool.hpp"

#include <cerrno>
#include <sys/socket.h>

namespace bsoap::net {

bool transport_alive(const Transport& transport) {
  const int fd = transport.native_handle();
  if (fd < 0) return true;  // in-memory / wrapped transports: no probe
  char probe;
  const ssize_t n = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
  if (n == 0) return false;  // orderly close from the peer
  if (n > 0) return true;    // unread response data; the stream is open
  return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
}

void ConnectionPool::add(std::unique_ptr<Transport> transport) {
  std::lock_guard<std::mutex> lock(mu_);
  idle_.push_back(std::move(transport));
}

Result<ConnectionPool::Lease> ConnectionPool::checkout() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    while (!idle_.empty()) {
      std::unique_ptr<Transport> t = std::move(idle_.back());
      idle_.pop_back();
      if (transport_alive(*t)) {
        ++stats_.reuses;
        return Lease(this, std::move(t));
      }
      ++stats_.liveness_closes;  // dead idle connection: close and keep looking
    }
  }
  if (fixed()) {
    return Error{ErrorCode::kUnavailable,
                 "connection pool empty and no dialer configured"};
  }
  Result<std::unique_ptr<Transport>> dialed = options_.dial();
  if (!dialed.ok()) {
    return Error{ErrorCode::kUnavailable,
                 "dial failed: " + dialed.error().to_string()};
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.dials;
  }
  return Lease(this, std::move(dialed).value());
}

void ConnectionPool::checkin(std::unique_ptr<Transport> transport) {
  std::lock_guard<std::mutex> lock(mu_);
  if (idle_.size() < options_.max_idle) {
    idle_.push_back(std::move(transport));
  }
  // else: transport destructor closes the surplus connection
}

void ConnectionPool::discard(std::unique_ptr<Transport> transport) {
  if (fixed()) {
    // A fixed pool cannot replace connections; returning the transport
    // preserves the legacy single-connection client's behaviour (it kept
    // sending on its one transport regardless). Retry loops detect this via
    // fixed() and do not retry on a stream that may hold partial bytes.
    std::lock_guard<std::mutex> lock(mu_);
    idle_.push_back(std::move(transport));
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.discards;
  // transport destructor closes the connection
}

}  // namespace bsoap::net
