#include "net/drain_server.hpp"

namespace bsoap::net {

Result<std::unique_ptr<DrainServer>> DrainServer::start() {
  Result<TcpListener> listener = TcpListener::bind();
  if (!listener.ok()) return listener.error();

  auto server = std::unique_ptr<DrainServer>(new DrainServer());
  server->port_ = listener.value().port();
  server->accept_thread_ = std::thread(
      [srv = server.get(), l = std::make_shared<TcpListener>(
                               std::move(listener.value()))]() mutable {
        for (;;) {
          Result<std::unique_ptr<Transport>> conn = l->accept();
          if (!conn.ok()) return;
          if (srv->stopping_.load()) return;
          std::lock_guard<std::mutex> lock(srv->workers_mu_);
          srv->workers_.push_back(
              std::make_unique<DrainWorker>(std::move(conn.value())));
        }
      });
  return server;
}

DrainServer::~DrainServer() { stop(); }

void DrainServer::stop() {
  if (stopping_.exchange(true)) return;
  // Unblock the accept() call with a throwaway connection.
  (void)tcp_connect(port_);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::lock_guard<std::mutex> lock(workers_mu_);
  for (auto& w : workers_) w->abort();
  for (auto& w : workers_) w->join();
}

std::uint64_t DrainServer::bytes_drained() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(workers_mu_);
  for (const auto& w : workers_) total += w->bytes_drained();
  return total;
}

}  // namespace bsoap::net
