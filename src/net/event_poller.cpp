#include "net/event_poller.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace bsoap::net {
namespace {

Error errno_error(const char* what) {
  return Error{ErrorCode::kIoError,
               std::string(what) + ": " + std::strerror(errno)};
}

std::uint32_t epoll_mask(bool read, bool write) {
  std::uint32_t events = EPOLLRDHUP;
  if (read) events |= EPOLLIN;
  if (write) events |= EPOLLOUT;
  return events;
}

}  // namespace

Result<EventPoller> EventPoller::create() {
  Fd epfd(::epoll_create1(EPOLL_CLOEXEC));
  if (!epfd.valid()) return errno_error("epoll_create1");
  return EventPoller(std::move(epfd));
}

Status EventPoller::add(int fd, std::uint64_t tag, bool read, bool write) {
  epoll_event ev{};
  ev.events = epoll_mask(read, write);
  ev.data.u64 = tag;
  if (::epoll_ctl(epfd_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
    return errno_error("epoll_ctl(ADD)");
  }
  return Status{};
}

Status EventPoller::modify(int fd, std::uint64_t tag, bool read, bool write) {
  epoll_event ev{};
  ev.events = epoll_mask(read, write);
  ev.data.u64 = tag;
  if (::epoll_ctl(epfd_.get(), EPOLL_CTL_MOD, fd, &ev) < 0) {
    return errno_error("epoll_ctl(MOD)");
  }
  return Status{};
}

Status EventPoller::remove(int fd) {
  if (::epoll_ctl(epfd_.get(), EPOLL_CTL_DEL, fd, nullptr) < 0) {
    return errno_error("epoll_ctl(DEL)");
  }
  return Status{};
}

Result<std::size_t> EventPoller::wait(std::span<Event> out, int timeout_ms) {
  if (out.empty()) return std::size_t{0};
  constexpr std::size_t kMaxBatch = 128;
  epoll_event raw[kMaxBatch];
  const int cap =
      static_cast<int>(out.size() < kMaxBatch ? out.size() : kMaxBatch);
  for (;;) {
    const int n = ::epoll_wait(epfd_.get(), raw, cap, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_error("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      Event& e = out[static_cast<std::size_t>(i)];
      e.tag = raw[i].data.u64;
      e.readable = (raw[i].events & EPOLLIN) != 0;
      e.writable = (raw[i].events & EPOLLOUT) != 0;
      e.hangup = (raw[i].events & (EPOLLHUP | EPOLLRDHUP | EPOLLERR)) != 0;
    }
    return static_cast<std::size_t>(n);
  }
}

Result<WakeupFd> WakeupFd::create() {
  Fd fd(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!fd.valid()) return errno_error("eventfd");
  return WakeupFd(std::move(fd));
}

void WakeupFd::signal() noexcept {
  const std::uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t n = ::write(fd_.get(), &one, sizeof(one));
}

void WakeupFd::drain() noexcept {
  std::uint64_t counter = 0;
  [[maybe_unused]] const ssize_t n =
      ::read(fd_.get(), &counter, sizeof(counter));
}

}  // namespace bsoap::net
