// The paper's "dummy SOAP server": accepts bytes and discards them without
// deserializing or parsing, so that the client-side Send Time is isolated.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/tcp.hpp"
#include "net/transport.hpp"

namespace bsoap::net {

/// Drains a single transport on a background thread until end-of-stream.
class DrainWorker {
 public:
  explicit DrainWorker(std::unique_ptr<Transport> transport)
      : transport_(std::move(transport)), thread_([this] { run(); }) {}

  ~DrainWorker() { join(); }

  void join() {
    if (thread_.joinable()) thread_.join();
  }

  /// Aborts the transport so a blocked recv() wakes with end-of-stream.
  void abort() { transport_->shutdown_both(); }

  std::uint64_t bytes_drained() const { return bytes_.load(); }

 private:
  void run() {
    char buf[64 * 1024];
    const int fd = transport_->native_handle();
    for (;;) {
      if (fd >= 0) arm_quickack(fd);  // Linux clears it after each use
      Result<std::size_t> got = transport_->recv(buf, sizeof(buf));
      if (!got.ok() || got.value() == 0) return;
      bytes_.fetch_add(got.value(), std::memory_order_relaxed);
    }
  }

  std::unique_ptr<Transport> transport_;
  std::atomic<std::uint64_t> bytes_{0};
  std::thread thread_;
};

/// TCP drain server: accepts connections on a loopback port and drains each
/// on its own thread.
class DrainServer {
 public:
  static Result<std::unique_ptr<DrainServer>> start();
  ~DrainServer();

  std::uint16_t port() const { return port_; }
  std::uint64_t bytes_drained() const;

  /// Stops accepting; existing connections drain until their peers close.
  void stop();

 private:
  DrainServer() = default;

  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::vector<std::unique_ptr<DrainWorker>> workers_;
  mutable std::mutex workers_mu_;
};

}  // namespace bsoap::net
