// Transport abstraction over which SOAP messages travel.
//
// The benchmark harness mirrors the paper's setup — a client sending to a
// dummy server that drains bytes without parsing — but lets the medium vary:
// loopback TCP (default), a Unix socketpair, an in-memory pipe for
// deterministic unit tests, or a simulated-bandwidth wrapper that adds the
// size-proportional wire cost of the paper's Gigabit Ethernet link.
#pragma once

#include <memory>
#include <span>

#include "common/error.hpp"
#include "net/socket.hpp"

namespace bsoap::net {

class Transport {
 public:
  virtual ~Transport() = default;

  virtual Status send(const char* data, std::size_t n) = 0;
  virtual Status send_slices(std::span<const ConstSlice> slices) = 0;
  virtual Result<std::size_t> recv(char* out, std::size_t n) = 0;

  /// Switches the transport to (or from) non-blocking mode, arming the
  /// EAGAIN-aware recv_some/send_some below. Transports without a readiness
  /// notion report kUnsupported; callers fall back to the blocking path.
  virtual Status set_nonblocking(bool enabled) {
    (void)enabled;
    return Error{ErrorCode::kUnsupported, "transport has no non-blocking mode"};
  }

  /// One read attempt: would_block instead of blocking when no bytes are
  /// buffered. On a blocking transport this degenerates to recv().
  virtual Result<IoResult> recv_some(char* out, std::size_t n) {
    Result<std::size_t> got = recv(out, n);
    if (!got.ok()) return got.error();
    return IoResult{got.value(), false};
  }

  /// One write attempt: transfers as much as the peer window accepts and
  /// reports the shortfall via would_block. On a blocking transport this
  /// writes everything.
  virtual Result<IoResult> send_some(const char* data, std::size_t n) {
    BSOAP_RETURN_IF_ERROR(send(data, n));
    return IoResult{n, false};
  }

  /// Slice-preserving send_some: drains as many of the slices as the peer
  /// window accepts (n = total bytes written, in slice order) and reports
  /// the shortfall via would_block. Socket transports gather the slices
  /// into one writev; the default walks them through send_some.
  virtual Result<IoResult> send_slices_some(
      std::span<const ConstSlice> slices) {
    std::size_t total = 0;
    for (const ConstSlice& s : slices) {
      std::size_t off = 0;
      while (off < s.len) {
        Result<IoResult> sent = send_some(s.data + off, s.len - off);
        if (!sent.ok()) return sent.error();
        off += sent.value().n;
        total += sent.value().n;
        if (sent.value().would_block) return IoResult{total, true};
      }
    }
    return IoResult{total, false};
  }

  /// Closes the write side so the peer sees end-of-stream.
  virtual void shutdown_send() = 0;

  /// Aborts both directions: a thread blocked in recv() on this transport
  /// wakes with end-of-stream. Used to stop server workers.
  virtual void shutdown_both() { shutdown_send(); }

  /// Underlying socket descriptor, or -1 for non-socket transports.
  virtual int native_handle() const { return -1; }

  Status send(std::string_view text) { return send(text.data(), text.size()); }
};

/// MSG_ZEROCOPY pays page-pinning setup per send; below this size the
/// copy through the socket buffer is cheaper than the pin + completion
/// round-trip (kernel guidance says ~10 KB; we round up a little).
inline constexpr std::size_t kZeroCopyMinBytes = 16 * 1024;

/// Transport backed by a connected socket (TCP or Unix).
class SocketTransport final : public Transport {
 public:
  using Transport::send;
  explicit SocketTransport(Fd fd) : fd_(std::move(fd)) {}

  Status send(const char* data, std::size_t n) override {
    return write_all(fd_.get(), data, n);
  }
  Status send_slices(std::span<const ConstSlice> slices) override {
    if (zerocopy_) {
      std::size_t total = 0;
      for (const ConstSlice& s : slices) total += s.len;
      if (total >= kZeroCopyMinBytes) {
        Result<bool> zc = writev_all_zerocopy(fd_.get(), slices);
        if (!zc.ok()) return zc.error();
        if (zc.value()) return Status{};
        zerocopy_ = false;  // kernel refused outright: stop asking
      }
    }
    return writev_all(fd_.get(), slices);
  }
  Result<std::size_t> recv(char* out, std::size_t n) override {
    return read_some(fd_.get(), out, n);
  }
  Status set_nonblocking(bool enabled) override {
    return net::set_nonblocking(fd_.get(), enabled);
  }
  Result<IoResult> recv_some(char* out, std::size_t n) override {
    return read_nonblocking(fd_.get(), out, n);
  }
  Result<IoResult> send_some(const char* data, std::size_t n) override {
    return write_nonblocking(fd_.get(), data, n);
  }
  Result<IoResult> send_slices_some(
      std::span<const ConstSlice> slices) override {
    return writev_nonblocking(fd_.get(), slices);
  }
  void shutdown_send() override;
  void shutdown_both() override;
  int native_handle() const override { return fd_.get(); }

  int fd() const { return fd_.get(); }

  /// Opts large send_slices() calls (>= kZeroCopyMinBytes) into
  /// MSG_ZEROCOPY. No-op where the socket does not support it; a kernel
  /// that later refuses the flag demotes the transport back to the
  /// copying path silently. Returns whether zerocopy is now armed.
  bool enable_zerocopy() {
    zerocopy_ = arm_zerocopy(fd_.get());
    return zerocopy_;
  }
  bool zerocopy_enabled() const { return zerocopy_; }

 private:
  Fd fd_;
  bool zerocopy_ = false;
};

/// Creates a connected AF_UNIX socketpair with the paper's socket options.
Result<std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>>
make_socketpair_transports();

}  // namespace bsoap::net
