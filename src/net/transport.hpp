// Transport abstraction over which SOAP messages travel.
//
// The benchmark harness mirrors the paper's setup — a client sending to a
// dummy server that drains bytes without parsing — but lets the medium vary:
// loopback TCP (default), a Unix socketpair, an in-memory pipe for
// deterministic unit tests, or a simulated-bandwidth wrapper that adds the
// size-proportional wire cost of the paper's Gigabit Ethernet link.
#pragma once

#include <memory>
#include <span>

#include "common/error.hpp"
#include "net/socket.hpp"

namespace bsoap::net {

class Transport {
 public:
  virtual ~Transport() = default;

  virtual Status send(const char* data, std::size_t n) = 0;
  virtual Status send_slices(std::span<const ConstSlice> slices) = 0;
  virtual Result<std::size_t> recv(char* out, std::size_t n) = 0;

  /// Closes the write side so the peer sees end-of-stream.
  virtual void shutdown_send() = 0;

  /// Aborts both directions: a thread blocked in recv() on this transport
  /// wakes with end-of-stream. Used to stop server workers.
  virtual void shutdown_both() { shutdown_send(); }

  /// Underlying socket descriptor, or -1 for non-socket transports.
  virtual int native_handle() const { return -1; }

  Status send(std::string_view text) { return send(text.data(), text.size()); }
};

/// Transport backed by a connected socket (TCP or Unix).
class SocketTransport final : public Transport {
 public:
  using Transport::send;
  explicit SocketTransport(Fd fd) : fd_(std::move(fd)) {}

  Status send(const char* data, std::size_t n) override {
    return write_all(fd_.get(), data, n);
  }
  Status send_slices(std::span<const ConstSlice> slices) override {
    return writev_all(fd_.get(), slices);
  }
  Result<std::size_t> recv(char* out, std::size_t n) override {
    return read_some(fd_.get(), out, n);
  }
  void shutdown_send() override;
  void shutdown_both() override;
  int native_handle() const override { return fd_.get(); }

  int fd() const { return fd_.get(); }

 private:
  Fd fd_;
};

/// Creates a connected AF_UNIX socketpair with the paper's socket options.
Result<std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>>
make_socketpair_transports();

}  // namespace bsoap::net
