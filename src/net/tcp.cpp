#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace bsoap::net {
namespace {

Error errno_error(const char* what) {
  return Error{ErrorCode::kIoError,
               std::string(what) + ": " + std::strerror(errno)};
}

/// Opt-in MSG_ZEROCOPY for large sends on every TCP transport this module
/// creates (BSOAP_ZEROCOPY=1). Off by default: zerocopy only pays off past
/// kZeroCopyMinBytes and pins pages the caller must not need early.
std::unique_ptr<Transport> finish_tcp_transport(Fd fd) {
  static const bool want_zerocopy = [] {
    const char* env = std::getenv("BSOAP_ZEROCOPY");
    return env != nullptr && env[0] == '1';
  }();
  auto transport = std::make_unique<SocketTransport>(std::move(fd));
  if (want_zerocopy) (void)transport->enable_zerocopy();
  return transport;
}

}  // namespace

Result<TcpListener> TcpListener::bind(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return errno_error("socket");
  const int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return errno_error("bind");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return errno_error("getsockname");
  }
  // Backlog sized for bursts of keep-alive clients (the reactor admits
  // thousands of connections; the kernel queue must not be the bottleneck).
  if (::listen(fd.get(), 128) < 0) return errno_error("listen");
  return TcpListener(std::move(fd), ntohs(addr.sin_port));
}

Result<std::unique_ptr<Transport>> TcpListener::accept() {
  for (;;) {
    const int client = ::accept(fd_.get(), nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      return errno_error("accept");
    }
    Fd cfd(client);
    BSOAP_RETURN_IF_ERROR(apply_paper_socket_options(cfd.get()));
    return finish_tcp_transport(std::move(cfd));
  }
}

Result<std::unique_ptr<Transport>> TcpListener::try_accept() {
  for (;;) {
    const int client = ::accept(fd_.get(), nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return std::unique_ptr<Transport>{};  // nothing pending
      }
      return errno_error("accept");
    }
    Fd cfd(client);
    BSOAP_RETURN_IF_ERROR(apply_paper_socket_options(cfd.get()));
    return finish_tcp_transport(std::move(cfd));
  }
}

Result<std::unique_ptr<Transport>> tcp_connect(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return errno_error("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    return errno_error("connect");
  }
  BSOAP_RETURN_IF_ERROR(apply_paper_socket_options(fd.get()));
  return finish_tcp_transport(std::move(fd));
}

}  // namespace bsoap::net
