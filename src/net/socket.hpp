// Thin RAII wrappers over POSIX sockets.
//
// The paper's measurement endpoint is the final send() system call on a
// socket configured with SO_KEEPALIVE, TCP_NODELAY and 32 KiB send/receive
// buffers; apply_paper_socket_options reproduces that configuration.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "common/error.hpp"

namespace bsoap::net {

/// Owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void reset();
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Socket options used in the paper's performance study (Section 4):
/// SO_KEEPALIVE and TCP_NODELAY always; the paper's fixed 32 KiB
/// SO_SNDBUF/SO_RCVBUF only when BSOAP_PAPER_SOCKBUF=1 is exported (fixed
/// tiny windows cause pathological zero-window stalls on loopback — see the
/// implementation note).
Status apply_paper_socket_options(int fd);

/// Arms TCP_QUICKACK (Linux resets it after use, so re-arm per read). The
/// paper's server is a separate machine whose NIC ACKs promptly; on loopback
/// the 32 KiB sends are below the huge loopback MSS, so without quickack the
/// receiver defers ACKs ~40 ms and send() stalls on a full SO_SNDBUF —
/// an artifact of the substrate, not of the system under test. No-op for
/// non-TCP sockets.
void arm_quickack(int fd) noexcept;

/// Outcome of one non-blocking I/O attempt on a readiness-driven socket.
/// `would_block` distinguishes EAGAIN (retry when the poller reports the fd
/// ready again) from real progress; on reads, n == 0 with would_block ==
/// false is end-of-stream.
struct IoResult {
  std::size_t n = 0;
  bool would_block = false;
};

/// Sets (or clears) O_NONBLOCK on the descriptor.
Status set_nonblocking(int fd, bool enabled = true);

/// One read attempt that reports EAGAIN instead of blocking. The fd should
/// be non-blocking; on a blocking fd this simply blocks like read_some.
Result<IoResult> read_nonblocking(int fd, char* out, std::size_t n);

/// One write attempt: writes as much as the socket buffer accepts and
/// reports the shortfall via would_block rather than spinning.
Result<IoResult> write_nonblocking(int fd, const char* data, std::size_t n);

/// Blocking write of the whole buffer, retrying on EINTR / short writes.
Status write_all(int fd, const char* data, std::size_t n);

/// Scatter-gather write of all slices (writev loop). Used to send chunked
/// message templates without first linearizing them.
struct ConstSlice {
  const char* data;
  std::size_t len;
};
Status writev_all(int fd, std::span<const ConstSlice> slices);

/// Scatter-gather write that drains as much as the socket buffer accepts
/// and reports the shortfall via would_block instead of spinning. `n` is
/// the total bytes written across slices; on would_block the caller owns
/// the unwritten suffix (resume from byte n of the logical stream). The
/// slice-preserving counterpart of write_nonblocking.
Result<IoResult> writev_nonblocking(int fd, std::span<const ConstSlice> slices);

/// Arms SO_ZEROCOPY on the socket. Returns false where the kernel or the
/// address family does not support it (AF_UNIX, pre-4.14 kernels) — the
/// caller then keeps using the copying writev path.
bool arm_zerocopy(int fd) noexcept;

/// Blocking scatter-gather write using sendmsg(MSG_ZEROCOPY): the kernel
/// pins the caller's pages instead of copying them into the socket buffer.
/// Every completion notification the sends generate is reaped from the
/// error queue BEFORE returning, so on return the kernel holds no
/// reference to the pages and the caller may mutate them immediately —
/// exactly writev_all's contract, just without the copy.
///
/// Returns false (with nothing written) when the first send reports the
/// path unusable (EOPNOTSUPP / ENOBUFS): the caller falls back to
/// writev_all. A mid-stream ENOBUFS downgrades the remainder to regular
/// sends internally; the call still completes the full write.
Result<bool> writev_all_zerocopy(int fd, std::span<const ConstSlice> slices);

/// Blocking read; returns 0 at end of stream.
Result<std::size_t> read_some(int fd, char* out, std::size_t n);

/// Reads exactly n bytes or fails.
Status read_exact(int fd, char* out, std::size_t n);

}  // namespace bsoap::net
