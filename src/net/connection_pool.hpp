// Bounded keep-alive connection pool (client resilience layer).
//
// A pool owns the idle connections to one endpoint. Senders check a
// connection out (reusing an idle one when it is still alive, dialing a
// fresh one otherwise), send over it, and either check it back in (healthy:
// keep-alive reuse) or discard it (a failed send leaves the stream in an
// unknown state — retrying on it would interleave bytes mid-message).
//
// Liveness on checkout is "the peer has not closed": a zero-byte MSG_PEEK
// probe. A server that closed an idle connection (e.g. the server runtime's
// idle timeout) is detected here and the checkout falls through to a
// reconnect — the keep-alive reconnect the resilient client is built on.
// Pending readable data does NOT fail the probe; send-only flows may leave
// unread response bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "net/transport.hpp"

namespace bsoap::net {

/// Establishes one new connection to a pool's endpoint.
using Dialer = std::function<Result<std::unique_ptr<Transport>>()>;

/// Non-owning Transport wrapper: seeds a fixed pool with a transport the
/// caller owns (the legacy single-connection client construction).
class BorrowedTransport final : public Transport {
 public:
  using Transport::send;
  explicit BorrowedTransport(Transport& inner) : inner_(inner) {}

  Status send(const char* data, std::size_t n) override {
    return inner_.send(data, n);
  }
  Status send_slices(std::span<const ConstSlice> slices) override {
    return inner_.send_slices(slices);
  }
  Result<std::size_t> recv(char* out, std::size_t n) override {
    return inner_.recv(out, n);
  }
  void shutdown_send() override { inner_.shutdown_send(); }
  void shutdown_both() override { inner_.shutdown_both(); }
  int native_handle() const override { return inner_.native_handle(); }

 private:
  Transport& inner_;
};

class ConnectionPool {
 public:
  struct Options {
    /// Idle connections retained for reuse; excess checkins are closed.
    std::size_t max_idle = 4;
    /// Establishes new connections. Empty = fixed pool: only connections
    /// seeded via add() circulate, and checkout with none available fails
    /// with kUnavailable instead of reconnecting.
    Dialer dial;
  };

  struct Stats {
    std::uint64_t dials = 0;            ///< connections established
    std::uint64_t reuses = 0;           ///< checkouts served from idle
    std::uint64_t liveness_closes = 0;  ///< idle connections found dead
    std::uint64_t discards = 0;         ///< connections dropped after failure
  };

  /// Exclusive use of one pooled connection. Move-only RAII: destruction
  /// without an explicit checkin() discards the connection (the safe side —
  /// an abandoned lease's stream state is unknown).
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept = default;
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = other.pool_;
        transport_ = std::move(other.transport_);
        other.pool_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    bool valid() const { return transport_ != nullptr; }
    Transport& transport() { return *transport_; }

    /// Returns the connection for reuse (it is healthy: the send — and any
    /// response read — completed). The lease becomes invalid.
    void checkin() {
      if (valid()) pool_->checkin(std::move(transport_));
      pool_ = nullptr;
    }

    /// Drops the connection (a send or read failed on it; the stream state
    /// is unknown). The lease becomes invalid.
    void discard() {
      if (valid()) pool_->discard(std::move(transport_));
      pool_ = nullptr;
    }

   private:
    friend class ConnectionPool;
    Lease(ConnectionPool* pool, std::unique_ptr<Transport> transport)
        : pool_(pool), transport_(std::move(transport)) {}

    void release() {
      if (valid()) pool_->discard(std::move(transport_));
      pool_ = nullptr;
    }

    ConnectionPool* pool_ = nullptr;
    std::unique_ptr<Transport> transport_;
  };

  explicit ConnectionPool(Options options) : options_(std::move(options)) {}

  ConnectionPool(const ConnectionPool&) = delete;
  ConnectionPool& operator=(const ConnectionPool&) = delete;

  /// Seeds the pool with an established connection (fixed pools).
  void add(std::unique_ptr<Transport> transport);

  /// True when the pool cannot dial: it only circulates seeded connections.
  bool fixed() const { return !options_.dial; }

  /// Pops an idle connection that is still alive, else dials a new one.
  /// Fails with kUnavailable when the dial fails or a fixed pool is empty.
  Result<Lease> checkout();

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  std::size_t idle_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return idle_.size();
  }

 private:
  void checkin(std::unique_ptr<Transport> transport);
  void discard(std::unique_ptr<Transport> transport);

  Options options_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Transport>> idle_;  ///< LIFO: warmest first
  Stats stats_;
};

/// "Has the peer closed?" — zero-byte MSG_PEEK probe on the transport's
/// socket. Non-socket transports (fd < 0) are presumed alive. Pending
/// readable data counts as alive.
bool transport_alive(const Transport& transport);

}  // namespace bsoap::net
