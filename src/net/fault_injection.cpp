#include "net/fault_injection.hpp"

#include <algorithm>
#include <thread>

namespace bsoap::net {
namespace {

constexpr const char* kBrokenMsg = "fault injection: connection broken";

}  // namespace

void FaultInjectingTransport::maybe_latency_spike() {
  if (plan_.latency_spike_rate > 0.0 && plan_.latency.count() > 0 &&
      rng_.next_unit_double() < plan_.latency_spike_rate) {
    std::this_thread::sleep_for(plan_.latency);
  }
}

Status FaultInjectingTransport::break_after(const char* data,
                                            std::size_t prefix) {
  if (prefix > 0) {
    const Status st = inner_->send(data, prefix);
    if (st.ok()) forwarded_ += prefix;
  }
  broken_ = true;
  // Sever both directions so the peer sees the cut and any response read on
  // this connection fails like a real dropped link.
  inner_->shutdown_both();
  return Error{ErrorCode::kIoError,
               "fault injection: connection dropped after " +
                   std::to_string(forwarded_) + " bytes"};
}

Status FaultInjectingTransport::send(const char* data, std::size_t n) {
  if (broken_) return Error{ErrorCode::kClosed, kBrokenMsg};
  maybe_latency_spike();
  if (plan_.write_failure_rate > 0.0 &&
      rng_.next_unit_double() < plan_.write_failure_rate) {
    // Short write: a random prefix reaches the wire, then the link drops.
    return break_after(data, static_cast<std::size_t>(rng_.next_below(n + 1)));
  }
  if (plan_.fail_after_bytes > 0) {
    const std::uint64_t remaining =
        forwarded_ >= plan_.fail_after_bytes
            ? 0
            : plan_.fail_after_bytes - forwarded_;
    if (n > remaining) {
      return break_after(data, static_cast<std::size_t>(remaining));
    }
  }
  const Status st = inner_->send(data, n);
  if (st.ok()) {
    forwarded_ += n;
  } else {
    broken_ = true;
  }
  return st;
}

Status FaultInjectingTransport::send_slices(
    std::span<const ConstSlice> slices) {
  // One gathered write is one fault opportunity: a real transport turns the
  // whole slice list into a single writev, so the drop probability must not
  // scale with how finely the sender sliced the same bytes. A cut lands at
  // a byte offset across the logical stream, preserving the byte-exact
  // short-write semantics.
  if (broken_) return Error{ErrorCode::kClosed, kBrokenMsg};
  maybe_latency_spike();
  std::size_t total = 0;
  for (const ConstSlice& s : slices) total += s.len;
  std::size_t cut = total + 1;  // past the end: no cut
  if (plan_.write_failure_rate > 0.0 &&
      rng_.next_unit_double() < plan_.write_failure_rate) {
    cut = static_cast<std::size_t>(rng_.next_below(total + 1));
  }
  if (plan_.fail_after_bytes > 0) {
    const std::uint64_t remaining =
        forwarded_ >= plan_.fail_after_bytes
            ? 0
            : plan_.fail_after_bytes - forwarded_;
    if (total > remaining) cut = std::min<std::size_t>(cut, remaining);
  }
  if (cut <= total) {
    std::size_t left = cut;
    for (const ConstSlice& s : slices) {
      const std::size_t take = std::min(left, s.len);
      if (take > 0) {
        const Status st = inner_->send(s.data, take);
        if (!st.ok()) break;
        forwarded_ += take;
      }
      left -= take;
      if (left == 0) break;
    }
    broken_ = true;
    inner_->shutdown_both();
    return Error{ErrorCode::kIoError,
                 "fault injection: connection dropped after " +
                     std::to_string(forwarded_) + " bytes"};
  }
  for (const ConstSlice& s : slices) {
    if (s.len == 0) continue;
    const Status st = inner_->send(s.data, s.len);
    if (!st.ok()) {
      broken_ = true;
      return st;
    }
    forwarded_ += s.len;
  }
  return Status{};
}

Result<std::size_t> FaultInjectingTransport::recv(char* out, std::size_t n) {
  if (broken_) return Error{ErrorCode::kClosed, kBrokenMsg};
  return inner_->recv(out, n);
}

Dialer faulty_dialer(Dialer inner, FaultPlan plan) {
  struct State {
    Dialer dial;
    FaultPlan plan;
    Rng rng;
    std::uint64_t dial_count = 0;
    State(Dialer d, const FaultPlan& p) : dial(std::move(d)), plan(p), rng(p.seed) {}
  };
  auto state = std::make_shared<State>(std::move(inner), plan);
  return [state]() -> Result<std::unique_ptr<Transport>> {
    if (state->plan.connect_refusal_rate > 0.0 &&
        state->rng.next_unit_double() < state->plan.connect_refusal_rate) {
      return Error{ErrorCode::kUnavailable, "fault injection: dial refused"};
    }
    Result<std::unique_ptr<Transport>> conn = state->dial();
    if (!conn.ok()) return conn.error();
    FaultPlan per_conn = state->plan;
    per_conn.seed = state->plan.seed + (++state->dial_count);
    return std::unique_ptr<Transport>(new FaultInjectingTransport(
        std::move(conn).value(), per_conn));
  };
}

}  // namespace bsoap::net
