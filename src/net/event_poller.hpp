// Readiness notification for the reactor: a thin RAII wrapper over
// epoll_create1/ctl/wait plus an eventfd-based cross-thread wakeup.
//
// EventPoller is level-triggered (the reactor re-reads/re-writes until
// EAGAIN, so level semantics cannot lose events) and carries one opaque
// 64-bit tag per registered descriptor — the reactor stores connection ids
// there so an event resolves to its connection without an fd-keyed lookup.
#pragma once

#include <cstdint>
#include <span>

#include "common/error.hpp"
#include "net/socket.hpp"

namespace bsoap::net {

class EventPoller {
 public:
  /// One readiness event: the registered tag plus what the fd is ready for.
  /// `hangup`/`error` fold EPOLLHUP/EPOLLRDHUP/EPOLLERR; the reactor treats
  /// them as "readable" (the next read observes EOF or the error).
  struct Event {
    std::uint64_t tag = 0;
    bool readable = false;
    bool writable = false;
    bool hangup = false;
  };

  static Result<EventPoller> create();

  Status add(int fd, std::uint64_t tag, bool read, bool write);
  Status modify(int fd, std::uint64_t tag, bool read, bool write);
  Status remove(int fd);

  /// Blocks up to `timeout_ms` (-1 = until an event) and fills `out`.
  /// Returns the number of events delivered (0 on timeout). EINTR retries
  /// internally.
  Result<std::size_t> wait(std::span<Event> out, int timeout_ms);

  EventPoller(EventPoller&&) noexcept = default;
  EventPoller& operator=(EventPoller&&) noexcept = default;

 private:
  explicit EventPoller(Fd epfd) : epfd_(std::move(epfd)) {}

  Fd epfd_;
};

/// Cross-thread wakeup for an EventPoller loop: worker threads signal() when
/// they push a completion; the loop registers fd() for reads and drain()s
/// the counter when it fires. Signals coalesce (eventfd is a counter), so a
/// burst of completions costs one wakeup.
class WakeupFd {
 public:
  static Result<WakeupFd> create();

  /// Async-signal-safe enough for worker threads: one 8-byte write.
  void signal() noexcept;

  /// Consumes all pending signals. Call when fd() reports readable.
  void drain() noexcept;

  int fd() const { return fd_.get(); }

  WakeupFd(WakeupFd&&) noexcept = default;
  WakeupFd& operator=(WakeupFd&&) noexcept = default;

 private:
  explicit WakeupFd(Fd fd) : fd_(std::move(fd)) {}

  Fd fd_;
};

}  // namespace bsoap::net
