// gSOAP-like baseline client: full serialization on every send.
//
// Stands in for the gSOAP 2.x comparator from the paper's evaluation (see
// DESIGN.md, substitutions). Architecture mirrors gSOAP: one contiguous
// auto-growing send buffer that is reused across calls (capacity persists),
// tight per-type conversion loops, serialization from scratch on every
// invocation, HTTP POST framing with Content-Length or HTTP/1.1 chunking.
#pragma once

#include <memory>
#include <string>

#include "buffer/sinks.hpp"
#include "common/error.hpp"
#include "http/connection.hpp"
#include "net/transport.hpp"
#include "soap/value.hpp"

namespace bsoap::baseline {

class GSoapLikeClient {
 public:
  /// The transport must outlive the client.
  explicit GSoapLikeClient(net::Transport& transport,
                           std::string endpoint_path = "/")
      : transport_(transport),
        connection_(transport),
        endpoint_path_(std::move(endpoint_path)) {}

  /// Serializes `call` from scratch and sends it; does not read a response
  /// (the paper's Send Time protocol). Returns bytes put on the wire.
  Result<std::size_t> send_call(const soap::RpcCall& call);

  /// Full RPC: send, then read and parse the response envelope.
  Result<soap::Value> invoke(const soap::RpcCall& call);

  /// Bytes of the last serialized envelope (excluding HTTP framing).
  std::size_t last_envelope_size() const { return last_envelope_size_; }

 private:
  Status send_envelope(const soap::RpcCall& call);

  net::Transport& transport_;
  http::HttpConnection connection_;
  std::string endpoint_path_;
  buffer::StringSink sink_;  // reused: capacity persists across calls
  std::size_t last_envelope_size_ = 0;
};

}  // namespace bsoap::baseline
