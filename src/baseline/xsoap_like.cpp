#include "baseline/xsoap_like.hpp"

#include <memory>
#include <sstream>
#include <vector>

#include "soap/constants.hpp"
#include "xml/escape.hpp"

namespace bsoap::baseline {
namespace {

using soap::Value;
using soap::ValueKind;

/// Boxed scalar: one heap allocation per value, like java.lang.Double /
/// java.lang.Integer in pre-autoboxing-era Java SOAP stacks.
template <typename T>
struct Box {
  explicit Box(T v) : value(v) {}
  T value;
};

std::string convert_double(double v) {
  // ostringstream: locale-aware stream formatting, the cost analogue of
  // Double.toString(); precision 17 guarantees round-trip.
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

std::string convert_int(std::int32_t v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

std::string element(const std::string& name, const std::string& attrs,
                    const std::string& content) {
  std::string out;
  out += "<";
  out += name;
  out += attrs;
  out += ">";
  out += content;
  out += "</";
  out += name;
  out += ">";
  return out;
}

std::string serialize_value(const std::string& name, const Value& value);

std::string serialize_array_items(const Value& value) {
  std::string items;
  switch (value.kind()) {
    case ValueKind::kDoubleArray:
      for (const double v : value.doubles()) {
        auto boxed = std::make_unique<Box<double>>(v);
        items += element("item", "", convert_double(boxed->value));
      }
      break;
    case ValueKind::kIntArray:
      for (const std::int32_t v : value.ints()) {
        auto boxed = std::make_unique<Box<std::int32_t>>(v);
        items += element("item", "", convert_int(boxed->value));
      }
      break;
    case ValueKind::kMioArray:
      for (const soap::Mio& m : value.mios()) {
        std::string mio;
        mio += element("x", "", convert_int(m.x));
        mio += element("y", "", convert_int(m.y));
        mio += element("v", "", convert_double(m.value));
        items += element("item", "", mio);
      }
      break;
    default:
      break;
  }
  return items;
}

std::string array_type(std::string_view elem, std::size_t n) {
  std::ostringstream os;
  os << " xsi:type=\"SOAP-ENC:Array\" SOAP-ENC:arrayType=\"" << elem << "["
     << n << "]\"";
  return os.str();
}

std::string serialize_value(const std::string& name, const Value& value) {
  switch (value.kind()) {
    case ValueKind::kInt32:
      return element(name, " xsi:type=\"xsd:int\"", convert_int(value.as_int()));
    case ValueKind::kInt64: {
      std::ostringstream os;
      os << value.as_int64();
      return element(name, " xsi:type=\"xsd:long\"", os.str());
    }
    case ValueKind::kDouble:
      return element(name, " xsi:type=\"xsd:double\"",
                     convert_double(value.as_double()));
    case ValueKind::kBool:
      return element(name, " xsi:type=\"xsd:boolean\"",
                     value.as_bool() ? "true" : "false");
    case ValueKind::kString: {
      std::string escaped;
      xml::escape_append(escaped, value.as_string());
      return element(name, " xsi:type=\"xsd:string\"", escaped);
    }
    case ValueKind::kDoubleArray:
      return element(name, array_type("xsd:double", value.doubles().size()),
                     serialize_array_items(value));
    case ValueKind::kIntArray:
      return element(name, array_type("xsd:int", value.ints().size()),
                     serialize_array_items(value));
    case ValueKind::kMioArray:
      return element(name, array_type("ns1:MIO", value.mios().size()),
                     serialize_array_items(value));
    case ValueKind::kStruct: {
      std::string members;
      for (const Value::Member& m : value.members()) {
        members += serialize_value(m.name, m.value);
      }
      return element(name, "", members);
    }
  }
  return {};
}

}  // namespace

Result<std::size_t> XSoapLikeClient::send_call(const soap::RpcCall& call) {
  std::string params;
  for (const soap::Param& p : call.params) {
    params += serialize_value(p.name, p.value);
  }
  const std::string method_tag = "ns1:" + call.method;
  std::string body = element(
      method_tag, " xmlns:ns1=\"" + call.service_namespace + "\"", params);

  std::string envelope = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
  std::string envelope_attrs;
  envelope_attrs += " xmlns:SOAP-ENV=\"";
  envelope_attrs += soap::kSoapEnvelopeNs;
  envelope_attrs += "\" xmlns:SOAP-ENC=\"";
  envelope_attrs += soap::kSoapEncodingNs;
  envelope_attrs += "\" xmlns:xsi=\"";
  envelope_attrs += soap::kXsiNs;
  envelope_attrs += "\" xmlns:xsd=\"";
  envelope_attrs += soap::kXsdNs;
  envelope_attrs += "\"";
  envelope += element("SOAP-ENV:Envelope", envelope_attrs,
                      element("SOAP-ENV:Body", "", body));
  last_envelope_size_ = envelope.size();

  http::HttpRequest head;
  head.target = endpoint_path_;
  head.headers.push_back(http::Header{"Host", "localhost"});
  head.headers.push_back(
      http::Header{"Content-Type", "text/xml; charset=utf-8"});
  head.headers.push_back(http::Header{"SOAPAction", "\"" + call.method + "\""});
  const net::ConstSlice slices[] = {
      net::ConstSlice{envelope.data(), envelope.size()}};
  BSOAP_RETURN_IF_ERROR(connection_.send_request(std::move(head), slices));
  return last_envelope_size_;
}

}  // namespace bsoap::baseline
