// XSOAP-like baseline client.
//
// XSOAP 1.2 is a Java toolkit; the paper compares against it to show where a
// managed-runtime SOAP stack sits (consistently slower than both C/C++
// implementations). We cannot run the JVM here, so this client emulates the
// *cost profile* of Java-era serialization in C++ (see DESIGN.md):
//   * every element is built as a separate heap-allocated std::string and
//     concatenated up the tree (Java StringBuffer-style growth),
//   * every scalar is boxed (one heap allocation per value, like
//     java.lang.Double), and
//   * numbers are converted through std::ostringstream (locale-aware
//     formatting machinery, the analogue of Double.toString's cost).
// EXPERIMENTS.md only relies on the *ordering* this produces — XSOAP slower
// than gSOAP and bSOAP — exactly how the paper uses the comparison.
#pragma once

#include <memory>
#include <string>

#include "common/error.hpp"
#include "http/connection.hpp"
#include "net/transport.hpp"
#include "soap/value.hpp"

namespace bsoap::baseline {

class XSoapLikeClient {
 public:
  explicit XSoapLikeClient(net::Transport& transport,
                           std::string endpoint_path = "/")
      : connection_(transport), endpoint_path_(std::move(endpoint_path)) {}

  /// Serializes `call` (allocation-heavy) and sends it without awaiting a
  /// response. Returns bytes put on the wire.
  Result<std::size_t> send_call(const soap::RpcCall& call);

  std::size_t last_envelope_size() const { return last_envelope_size_; }

 private:
  http::HttpConnection connection_;
  std::string endpoint_path_;
  std::size_t last_envelope_size_ = 0;
};

}  // namespace bsoap::baseline
