#include "baseline/gsoap_like.hpp"

#include "soap/envelope_reader.hpp"
#include "soap/envelope_writer.hpp"
#include "soap/soap_server.hpp"

namespace bsoap::baseline {

Status GSoapLikeClient::send_envelope(const soap::RpcCall& call) {
  sink_.clear();
  soap::write_rpc_envelope(sink_, call);
  last_envelope_size_ = sink_.size();

  http::HttpRequest head;
  head.method = "POST";
  head.target = endpoint_path_;
  head.headers.push_back(http::Header{"Host", "localhost"});
  head.headers.push_back(
      http::Header{"Content-Type", "text/xml; charset=utf-8"});
  head.headers.push_back(http::Header{"SOAPAction", "\"" + call.method + "\""});
  const net::ConstSlice body[] = {
      net::ConstSlice{sink_.str().data(), sink_.str().size()}};
  return connection_.send_request(std::move(head), body);
}

Result<std::size_t> GSoapLikeClient::send_call(const soap::RpcCall& call) {
  BSOAP_RETURN_IF_ERROR(send_envelope(call));
  return last_envelope_size_;
}

Result<soap::Value> GSoapLikeClient::invoke(const soap::RpcCall& call) {
  BSOAP_RETURN_IF_ERROR(send_envelope(call));
  Result<http::HttpResponse> response = connection_.read_response();
  if (!response.ok()) return response.error();
  if (response.value().status != 200) {
    return Error{ErrorCode::kProtocolError,
                 "HTTP status " + std::to_string(response.value().status)};
  }
  Result<soap::RpcCall> envelope =
      soap::read_rpc_envelope(response.value().body);
  if (!envelope.ok()) return envelope.error();
  return soap::extract_rpc_result(envelope.value(), call.method);
}

}  // namespace bsoap::baseline
