// Wall-clock timing used by the benchmark harness. The paper measures "Send
// Time": timer started before message preparation, stopped right after the
// final send() system call returns.
#pragma once

#include <chrono>
#include <cstdint>

namespace bsoap {

/// Monotonic stopwatch with nanosecond resolution.
class StopWatch {
 public:
  StopWatch() { reset(); }

  void reset() { start_ = clock::now(); }

  /// Nanoseconds since construction or the last reset().
  std::int64_t elapsed_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                start_)
        .count();
  }

  double elapsed_ms() const {
    return static_cast<double>(elapsed_ns()) / 1e6;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Simple running statistics (mean/min/max) over timing samples.
class TimingStats {
 public:
  void add(double sample_ms) {
    count_ += 1;
    sum_ += sample_ms;
    if (sample_ms < min_) min_ = sample_ms;
    if (sample_ms > max_) max_ = sample_ms;
  }

  std::int64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 1e300;
  double max_ = -1e300;
};

}  // namespace bsoap
