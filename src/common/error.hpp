// Lightweight error handling for the bsoap libraries.
//
// We deliberately avoid exceptions on hot paths (serialization runs per
// message); fallible setup/IO functions return Result<T>, hot paths use
// preconditions enforced with BSOAP_ASSERT.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace bsoap {

/// Coarse error categories used across the library.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kParseError,
  kIoError,
  kClosed,
  kTimeout,
  kProtocolError,
  kNotFound,
  kUnsupported,
  kInternal,
  kUnavailable,     ///< no connection could be established (dial refused/failed)
  kRetryExhausted,  ///< a retrying sender gave up; message holds the last error
};

/// Human-readable name for an ErrorCode.
const char* error_code_name(ErrorCode code) noexcept;

/// An error: a category plus a free-form message.
struct Error {
  ErrorCode code = ErrorCode::kOk;
  std::string message;

  Error() = default;
  Error(ErrorCode c, std::string msg) : code(c), message(std::move(msg)) {}

  bool ok() const noexcept { return code == ErrorCode::kOk; }

  /// "kParseError: unexpected '<' at offset 12"
  std::string to_string() const;

  static Error success() { return Error{}; }
};

/// Minimal expected-like result type: either a value or an Error.
///
/// Usage:
///   Result<int> r = parse(...);
///   if (!r.ok()) return r.error();
///   use(r.value());
template <typename T>
class Result {
 public:
  Result(T value) : storage_(std::move(value)) {}                // NOLINT(google-explicit-constructor)
  Result(Error error) : storage_(std::move(error)) {}            // NOLINT(google-explicit-constructor)
  Result(ErrorCode code, std::string msg) : storage_(Error{code, std::move(msg)}) {}

  bool ok() const noexcept { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const noexcept { return ok(); }

  T& value() & { return std::get<T>(storage_); }
  const T& value() const& { return std::get<T>(storage_); }
  T&& value() && { return std::get<T>(std::move(storage_)); }

  const Error& error() const& { return std::get<Error>(storage_); }
  Error&& error() && { return std::get<Error>(std::move(storage_)); }

  /// Returns the value or aborts with the error message (tests/examples).
  T& value_or_die() & {
    if (!ok()) {
      std::fprintf(stderr, "bsoap: fatal: %s\n", error().to_string().c_str());
      std::abort();
    }
    return value();
  }
  T value_or_die() && {
    if (!ok()) {
      std::fprintf(stderr, "bsoap: fatal: %s\n", error().to_string().c_str());
      std::abort();
    }
    return std::move(*this).value();
  }

 private:
  std::variant<T, Error> storage_;
};

/// Result<void> analogue.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)
  Status(ErrorCode code, std::string msg) : error_(code, std::move(msg)) {}

  bool ok() const noexcept { return error_.ok(); }
  explicit operator bool() const noexcept { return ok(); }
  const Error& error() const& { return error_; }

  void check() const {
    if (!ok()) {
      std::fprintf(stderr, "bsoap: fatal: %s\n", error_.to_string().c_str());
      std::abort();
    }
  }

 private:
  Error error_;
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line);
}  // namespace detail

}  // namespace bsoap

/// Precondition check that stays on in release builds: serialization templates
/// are stateful and silent corruption is worse than a crash.
#define BSOAP_ASSERT(expr)                                          \
  do {                                                              \
    if (!(expr)) ::bsoap::detail::assert_fail(#expr, __FILE__, __LINE__); \
  } while (0)

/// Propagate an error from an expression yielding Status.
#define BSOAP_RETURN_IF_ERROR(expr)              \
  do {                                           \
    ::bsoap::Status _st = (expr);                \
    if (!_st.ok()) return _st.error();           \
  } while (0)
