#include "common/error.hpp"

namespace bsoap {

const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "kOk";
    case ErrorCode::kInvalidArgument: return "kInvalidArgument";
    case ErrorCode::kOutOfRange: return "kOutOfRange";
    case ErrorCode::kParseError: return "kParseError";
    case ErrorCode::kIoError: return "kIoError";
    case ErrorCode::kClosed: return "kClosed";
    case ErrorCode::kTimeout: return "kTimeout";
    case ErrorCode::kProtocolError: return "kProtocolError";
    case ErrorCode::kNotFound: return "kNotFound";
    case ErrorCode::kUnsupported: return "kUnsupported";
    case ErrorCode::kInternal: return "kInternal";
    case ErrorCode::kUnavailable: return "kUnavailable";
    case ErrorCode::kRetryExhausted: return "kRetryExhausted";
  }
  return "kUnknown";
}

std::string Error::to_string() const {
  std::string out = error_code_name(code);
  if (!message.empty()) {
    out += ": ";
    out += message;
  }
  return out;
}

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "bsoap: assertion failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}
}  // namespace detail

}  // namespace bsoap
