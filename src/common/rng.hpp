// Deterministic pseudo-random generation for tests, benchmarks and workload
// generators. We use xoshiro256** rather than <random> engines so that the
// exact sequences are stable across standard-library versions — benchmark
// workloads must be reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <limits>

namespace bsoap {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform signed 32-bit integer over the full range.
  std::int32_t next_i32() { return static_cast<std::int32_t>(next_u64()); }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_unit_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Double with uniformly random bit pattern, excluding NaN and infinity.
  /// Exercises the full dynamic range of the dtoa routines.
  double next_finite_double() {
    for (;;) {
      const std::uint64_t bits = next_u64();
      const std::uint64_t exponent = (bits >> 52) & 0x7ff;
      if (exponent == 0x7ff) continue;  // NaN / inf
      double d;
      static_assert(sizeof(d) == sizeof(bits));
      __builtin_memcpy(&d, &bits, sizeof(d));
      return d;
    }
  }

  /// True with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) {
    return next_below(den) < num;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace bsoap
