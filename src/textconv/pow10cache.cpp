#include "textconv/pow10cache.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "common/error.hpp"

namespace bsoap::textconv {
namespace {

// Minimal little-endian bignum, just enough for exact 10^q.
class BigNum {
 public:
  explicit BigNum(std::uint64_t v) { words_.push_back(v); }

  void mul_small(std::uint64_t m) {
    unsigned __int128 carry = 0;
    for (auto& w : words_) {
      const unsigned __int128 p = static_cast<unsigned __int128>(w) * m + carry;
      w = static_cast<std::uint64_t>(p);
      carry = p >> 64;
    }
    if (carry != 0) words_.push_back(static_cast<std::uint64_t>(carry));
  }

  /// Index of the most significant set bit (0-based). Value must be nonzero.
  int top_bit() const {
    std::size_t i = words_.size();
    while (i > 0 && words_[i - 1] == 0) --i;
    BSOAP_ASSERT(i > 0);
    const int word_bits = 63 - __builtin_clzll(words_[i - 1]);
    return static_cast<int>(i - 1) * 64 + word_bits;
  }

  /// Bit at index idx, with indices below zero reading as zero.
  std::uint64_t get_bit(int idx) const {
    if (idx < 0) return 0;
    const std::size_t word = static_cast<std::size_t>(idx) / 64;
    const int bit = idx % 64;
    if (word >= words_.size()) return 0;
    return (words_[word] >> bit) & 1;
  }

  /// Extracts the 64 bits below and including the top bit, plus the guard
  /// bit used for round-to-nearest.
  void top64(std::uint64_t* out_f, bool* out_round_up) const {
    const int top = top_bit();
    const int low = top - 63;
    std::uint64_t f = 0;
    for (int bit = top; bit >= low; --bit) f = (f << 1) | get_bit(bit);
    *out_f = f;
    *out_round_up = get_bit(low - 1) != 0;
  }

  bool greater_equal(const BigNum& rhs) const {
    const std::size_t n = std::max(words_.size(), rhs.words_.size());
    for (std::size_t i = n; i-- > 0;) {
      const std::uint64_t a = i < words_.size() ? words_[i] : 0;
      const std::uint64_t b = i < rhs.words_.size() ? rhs.words_[i] : 0;
      if (a != b) return a > b;
    }
    return true;  // equal
  }

  /// Schoolbook subtraction. Precondition: *this >= rhs.
  void subtract(const BigNum& rhs) {
    std::uint64_t borrow = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::uint64_t r = i < rhs.words_.size() ? rhs.words_[i] : 0;
      const std::uint64_t sub = r + borrow;
      const std::uint64_t before = words_[i];
      std::uint64_t next_borrow = (sub < r) ? 1u : 0u;  // r + borrow wrapped
      if (before < sub) next_borrow = 1;
      words_[i] = before - sub;
      borrow = next_borrow;
    }
    BSOAP_ASSERT(borrow == 0);
  }

  void shift_left_1() {
    std::uint64_t carry = 0;
    for (auto& w : words_) {
      const std::uint64_t next_carry = w >> 63;
      w = (w << 1) | carry;
      carry = next_carry;
    }
    if (carry) words_.push_back(carry);
  }

 private:
  std::vector<std::uint64_t> words_;
};

DiyFp round_and_normalize(std::uint64_t f, int e, bool round_up) {
  if (round_up) {
    if (f == ~0ull) {  // carry out of the significand: renormalize
      f = 1ull << 63;
      ++e;
    } else {
      ++f;
    }
  }
  return DiyFp{f, e};
}

DiyFp compute_pow10_nonneg(int q) {
  // Exact integer 10^q, then the top 64 bits rounded to nearest.
  BigNum n(1);
  for (int i = 0; i < q; ++i) n.mul_small(10);
  std::uint64_t f = 0;
  bool round_up = false;
  n.top64(&f, &round_up);
  return round_and_normalize(f, n.top_bit() - 63, round_up);
}

DiyFp compute_pow10_negative(int q) {
  // 10^q = 1 / 10^(-q) via binary long division, emitting normalized bits.
  BigNum divisor(1);
  for (int i = 0; i < -q; ++i) divisor.mul_small(10);

  BigNum remainder(1);
  int exponent = 0;  // weight (power of two) of the next quotient bit
  while (!remainder.greater_equal(divisor)) {
    remainder.shift_left_1();
    --exponent;
  }
  std::uint64_t f = 0;
  bool guard = false;
  for (int produced = 0; produced < 65; ++produced) {
    int bit = 0;
    if (remainder.greater_equal(divisor)) {
      bit = 1;
      remainder.subtract(divisor);
    }
    if (produced < 64) {
      f = (f << 1) | static_cast<std::uint64_t>(bit);
    } else {
      guard = bit != 0;
    }
    remainder.shift_left_1();
  }
  return round_and_normalize(f, exponent - 63, guard);
}

struct Pow10Table {
  std::array<DiyFp, kPow10CacheMax - kPow10CacheMin + 1> entries;

  Pow10Table() {
    for (int q = kPow10CacheMin; q <= kPow10CacheMax; ++q) {
      entries[static_cast<std::size_t>(q - kPow10CacheMin)] =
          q >= 0 ? compute_pow10_nonneg(q) : compute_pow10_negative(q);
    }
  }
};

}  // namespace

DiyFp cached_pow10(int q) noexcept {
  static const Pow10Table table;  // thread-safe magic static
  BSOAP_ASSERT(q >= kPow10CacheMin && q <= kPow10CacheMax);
  return table.entries[static_cast<std::size_t>(q - kPow10CacheMin)];
}

}  // namespace bsoap::textconv
