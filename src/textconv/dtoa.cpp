#include "textconv/dtoa.hpp"

#include <array>
#include <bit>
#include <cstring>

#include "common/error.hpp"
#include "textconv/itoa.hpp"
#include "textconv/pow10cache.hpp"
#include "textconv/swar.hpp"

namespace bsoap::textconv {
namespace {

constexpr std::uint64_t kHiddenBit = 1ull << 52;
constexpr std::uint64_t kSignificandMask = kHiddenBit - 1;
constexpr int kExponentBias = 1075;  // so that value = f * 2^e exactly

// Grisu works with the scaled product in a fixed exponent window; this range
// keeps p1 within 32 bits and guarantees delta*10 cannot overflow 64 bits.
constexpr int kAlpha = -60;
constexpr int kGamma = -34;

DiyFp diyfp_from_double(double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const std::uint64_t raw_exponent = (bits >> 52) & 0x7ff;
  const std::uint64_t significand = bits & kSignificandMask;
  if (raw_exponent == 0) {  // subnormal
    return DiyFp{significand, 1 - kExponentBias};
  }
  return DiyFp{significand + kHiddenBit,
               static_cast<int>(raw_exponent) - kExponentBias};
}

DiyFp normalize_scalar(DiyFp v) {
  while ((v.f & (1ull << 63)) == 0) {
    v.f <<= 1;
    --v.e;
  }
  return v;
}

// Branchless normalize: one countl_zero instead of up to 11 shift-test
// iterations (subnormals shift furthest). Same result for every nonzero f.
DiyFp normalize_fast(DiyFp v) {
  const int shift = std::countl_zero(v.f);
  return DiyFp{v.f << shift, v.e - shift};
}

DiyFp normalize(DiyFp v, bool fast) {
  return fast ? normalize_fast(v) : normalize_scalar(v);
}

/// Computes the normalized boundaries m- and m+ of the rounding interval
/// around `v`: every real in (m-, m+) rounds to this double.
void normalized_boundaries(DiyFp v, DiyFp* minus, DiyFp* plus, bool fast) {
  DiyFp pl{(v.f << 1) + 1, v.e - 1};
  pl = normalize(pl, fast);
  DiyFp mi;
  if (v.f == kHiddenBit && v.e != 1 - kExponentBias) {
    // Lower neighbour is in the next binade: the interval is asymmetric.
    mi = DiyFp{(v.f << 2) - 1, v.e - 2};
  } else {
    mi = DiyFp{(v.f << 1) - 1, v.e - 1};
  }
  mi.f <<= mi.e - pl.e;
  mi.e = pl.e;
  *minus = mi;
  *plus = pl;
}

/// Nudges the last generated digit towards w (the exact scaled value) while
/// remaining inside the rounding interval — this is what makes the output
/// usually-shortest and always round-trippable.
void grisu_round(char* buffer, int len, std::uint64_t delta,
                 std::uint64_t rest, std::uint64_t ten_kappa,
                 std::uint64_t wp_w) {
  while (rest < wp_w && delta - rest >= ten_kappa &&
         (rest + ten_kappa < wp_w || wp_w - rest > rest + ten_kappa - wp_w)) {
    --buffer[len - 1];
    rest += ten_kappa;
  }
}

void digit_gen_scalar(DiyFp w, DiyFp mp, std::uint64_t delta,
                      DecimalDigits* out) {
  const DiyFp one{1ull << -mp.e, mp.e};
  const std::uint64_t wp_w = mp.sub(w).f;
  std::uint32_t p1 = static_cast<std::uint32_t>(mp.f >> -one.e);
  std::uint64_t p2 = mp.f & (one.f - 1);
  int kappa = scalar::decimal_digits_u32(p1);
  int len = 0;

  while (kappa > 0) {
    const std::uint32_t div = swar::kPow10U32[kappa - 1];
    const std::uint32_t d = p1 / div;
    p1 %= div;
    if (d != 0 || len != 0) out->digits[len++] = static_cast<char>('0' + d);
    --kappa;
    const std::uint64_t rest = (static_cast<std::uint64_t>(p1) << -one.e) + p2;
    if (rest <= delta) {
      out->k += kappa;
      out->length = len;
      grisu_round(out->digits, len, delta, rest,
                  static_cast<std::uint64_t>(div) << -one.e, wp_w);
      return;
    }
  }

  for (;;) {
    p2 *= 10;
    delta *= 10;
    const int d = static_cast<int>(p2 >> -one.e);
    if (d != 0 || len != 0) out->digits[len++] = static_cast<char>('0' + d);
    p2 &= one.f - 1;
    --kappa;
    if (p2 < delta) {
      out->k += kappa;
      out->length = len;
      grisu_round(out->digits, len, delta, p2, one.f,
                  wp_w * swar::kPow10U64[-kappa]);
      return;
    }
  }
}

// The scalar integral loop above runs a serial chain of ~5 hardware divides
// by RUNTIME powers of ten (the compiler cannot strength-reduce a variable
// divisor), plus an early-exit test per digit — the single hottest sequence
// in PSM double updates. The exit test is rest <= delta with
// rest = (p1 mod 10^kappa) << -e + p2. Two loop invariants collapse it:
//   * delta < one.f (= 2^-e) holds for every normal double — delta is ~2
//     units of the scaled significand's last place, around 2^11, while
//     2^-e >= 2^34 — so any nonzero remainder alone exceeds delta;
//   * p2 and delta do not change inside the integral loop, so when
//     p2 > delta the zero-remainder case cannot exit either.
// Under those two conditions NO integral-loop exit can ever fire and the
// whole divide/check chain is exactly "emit the digits of p1": one SWAR
// ascii conversion. The remaining cases (subnormal-wide intervals,
// trailing-zero significands with tiny p2) fall back to the reference loop,
// so the output is byte-identical by construction; the differential tests
// in tests/test_textconv.cpp hold it to that.
void digit_gen_fast(DiyFp w, DiyFp mp, std::uint64_t delta,
                    DecimalDigits* out) {
  const DiyFp one{1ull << -mp.e, mp.e};
  const std::uint64_t wp_w = mp.sub(w).f;
  const std::uint32_t p1 = static_cast<std::uint32_t>(mp.f >> -one.e);
  std::uint64_t p2 = mp.f & (one.f - 1);

  if (delta >= one.f || p2 <= delta) {
    digit_gen_scalar(w, mp, delta, out);
    return;
  }

  int len = 0;
  if (p1 != 0) {
    const int nd = swar::digits_u32(p1);
    if (nd <= 8) {
      swar::store_exact(out->digits, swar::ascii8(p1) >> ((8 - nd) * 8),
                        static_cast<unsigned>(nd));
    } else {
      const std::uint32_t head = p1 / 100000000u;  // constant divisor
      swar::store_exact(out->digits,
                        swar::ascii8(head) >> ((8 - (nd - 8)) * 8),
                        static_cast<unsigned>(nd - 8));
      swar::store8(out->digits + nd - 8, swar::ascii8(p1 % 100000000u));
    }
    len = nd;
  }

  // Fractional digits: the recurrence is already multiply-only (x10 per
  // digit; x100 pairing would overflow — p2 < 2^60 gives no headroom proof
  // for delta*100), and its exit test must run per digit, so it is shared
  // with the scalar loop. (A batch-parallel form computing digit m straight
  // from p2 * 10^m mod 2^s was measured no faster: out-of-order execution
  // already hides the 4-cycle serial chain under the stores and checks.)
  int kappa = 0;
  for (;;) {
    p2 *= 10;
    delta *= 10;
    const int d = static_cast<int>(p2 >> -one.e);
    if (d != 0 || len != 0) out->digits[len++] = static_cast<char>('0' + d);
    p2 &= one.f - 1;
    --kappa;
    if (p2 < delta) {
      out->k += kappa;
      out->length = len;
      grisu_round(out->digits, len, delta, p2, one.f,
                  wp_w * swar::kPow10U64[-kappa]);
      return;
    }
  }
}

// The q estimate below costs a serial int->double convert, double divide
// and double->int convert per conversion, followed by up to three guarded
// cached_pow10 lookups — and its inputs depend ONLY on w_plus.e, which for
// normalized boundaries spans a small fixed range. The fast tier replaces
// the whole sequence with one table lookup whose entries are precomputed by
// running the EXACT scalar estimate + correction loops per exponent, so the
// chosen power (and therefore every output byte) cannot diverge.
constexpr int kScaleMinE = -1140;  // subnormal boundaries bottom out at -1137
constexpr int kScaleMaxE = 965;    // DBL_MAX boundaries top out at 960
struct ScaledPow10 {
  std::uint64_t f;
  std::int32_t e;
  std::int32_t q;
};

int estimate_q(int plus_e) {
  // Pick q so that the scaled product exponent lands in [kAlpha, kGamma]:
  // we need w_plus.e + c.e + 64 in that window and c.e ~ q*log2(10) - 63.
  return static_cast<int>(((kAlpha + kGamma) / 2 - 64 + 63 - plus_e) /
                          3.3219280948873623);
}

const ScaledPow10* scale_table() {
  static const auto* table = [] {
    auto* t = new std::array<ScaledPow10, kScaleMaxE - kScaleMinE + 1>;
    for (int e = kScaleMinE; e <= kScaleMaxE; ++e) {
      int q = estimate_q(e);
      DiyFp c = cached_pow10(q);
      while (e + c.e + 64 < kAlpha) c = cached_pow10(++q);
      while (e + c.e + 64 > kGamma) c = cached_pow10(--q);
      (*t)[static_cast<std::size_t>(e - kScaleMinE)] = {
          c.f, c.e, static_cast<std::int32_t>(q)};
    }
    return t;
  }();
  return table->data();
}

void grisu2_impl(double value, DecimalDigits* out, bool fast) {
  BSOAP_ASSERT(value > 0.0);
  const DiyFp v = diyfp_from_double(value);
  DiyFp w_minus, w_plus;
  normalized_boundaries(v, &w_minus, &w_plus, fast);
  const DiyFp w = normalize(v, fast);

  int q;
  DiyFp c;
  if (fast) {
    BSOAP_ASSERT(w_plus.e >= kScaleMinE && w_plus.e <= kScaleMaxE);
    const ScaledPow10& s = scale_table()[w_plus.e - kScaleMinE];
    c = DiyFp{s.f, s.e};
    q = s.q;
  } else {
    q = estimate_q(w_plus.e);
    c = cached_pow10(q);
    while (w_plus.e + c.e + 64 < kAlpha) c = cached_pow10(++q);
    while (w_plus.e + c.e + 64 > kGamma) c = cached_pow10(--q);
  }

  const DiyFp W = w.mul(c);
  DiyFp Wp = w_plus.mul(c);
  DiyFp Wm = w_minus.mul(c);
  // Shrink the interval by one unit on each side to absorb the (<1 ulp)
  // error introduced by the cached power multiplication.
  ++Wm.f;
  --Wp.f;

  out->k = -q;
  out->length = 0;
  if (fast) {
    digit_gen_fast(W, Wp, Wp.f - Wm.f, out);
  } else {
    digit_gen_scalar(W, Wp, Wp.f - Wm.f, out);
  }
}

// `padded` says digits points into a DecimalDigits buffer (8-byte reads
// past the digit count are in-bounds), letting the fast tier replace the
// variable-length memcpy calls with inline wide copies. The public
// format_decimal takes arbitrary caller buffers and must pass false.
int format_decimal_impl(char* out, const char* digits, int length, int k,
                        bool fast, bool padded) {
  const auto copy = [&](char* dst, const char* src, int n) {
    if (fast && padded) {
      swar::copy_digits(dst, src, static_cast<unsigned>(n));
    } else {
      std::memcpy(dst, src, static_cast<std::size_t>(n));
    }
  };
  char* p = out;
  const int point = length + k;  // value = 0.digits * 10^point

  if (length <= point && point <= 17) {
    // 1234000 — digits followed by trailing zeros.
    copy(p, digits, length);
    p += length;
    if (fast) {
      // Wide zero fill; exact-length stores (a variable-length memset here
      // costs a libc call at every site).
      swar::fill_zeros(p, static_cast<unsigned>(point - length));  // <= 16
      p += point - length;
    } else {
      for (int i = length; i < point; ++i) *p++ = '0';
    }
  } else if (0 < point && point < length) {
    // 12.34 — decimal point inside the digit string.
    copy(p, digits, point);
    p += point;
    *p++ = '.';
    copy(p, digits + point, length - point);
    p += length - point;
  } else if (-4 < point && point <= 0) {
    // 0.0001234 — leading zeros after the decimal point.
    *p++ = '0';
    *p++ = '.';
    if (fast) {
      swar::fill_zeros(p, static_cast<unsigned>(-point));  // <= 3 bytes
      p += -point;
    } else {
      for (int i = 0; i < -point; ++i) *p++ = '0';
    }
    copy(p, digits, length);
    p += length;
  } else {
    // 1.234e-308 — scientific notation.
    *p++ = digits[0];
    if (length > 1) {
      *p++ = '.';
      copy(p, digits + 1, length - 1);
      p += length - 1;
    }
    *p++ = 'e';
    // The exponent write lands at out + 20 in the worst case
    // ("-2.2250738585072014e" + up to 4 chars = exactly kMaxDoubleChars):
    // both write_i32 tiers store exactly their returned length, so this
    // never touches byte 24.
    p += fast ? write_i32(p, point - 1) : scalar::write_i32(p, point - 1);
  }
  return static_cast<int>(p - out);
}

int write_double_impl(char* out, double value, bool fast) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const bool negative = (bits >> 63) != 0;
  const std::uint64_t magnitude_bits = bits & ~(1ull << 63);

  char* p = out;
  if (negative) *p++ = '-';

  if (magnitude_bits == 0) {  // +0.0 / -0.0
    *p++ = '0';
    return static_cast<int>(p - out);
  }
  const std::uint64_t raw_exponent = (magnitude_bits >> 52);
  if (raw_exponent == 0x7ff) {
    if ((magnitude_bits & kSignificandMask) != 0) {
      // NaN: sign is not significant in the lexical form.
      std::memcpy(out, "NaN", 3);
      return 3;
    }
    std::memcpy(p, "INF", 3);
    return static_cast<int>(p - out) + 3;
  }

  double magnitude = value;
  if (negative) magnitude = -magnitude;
  DecimalDigits dec;
  grisu2_impl(magnitude, &dec, fast);
  p += format_decimal_impl(p, dec.digits, dec.length, dec.k, fast,
                           /*padded=*/true);
  const int total = static_cast<int>(p - out);
  BSOAP_ASSERT(total <= kMaxDoubleChars);
  return total;
}

}  // namespace

void grisu2(double value, DecimalDigits* out) noexcept {
  grisu2_impl(value, out, textconv_vectorized());
}

int format_decimal(char* out, const char* digits, int length, int k) noexcept {
  return format_decimal_impl(out, digits, length, k, textconv_vectorized(),
                             /*padded=*/false);
}

int write_double(char* out, double value) noexcept {
  return write_double_impl(out, value, textconv_vectorized());
}

int serialized_length_double(double value) noexcept {
  char scratch[kMaxDoubleChars];
  return write_double(scratch, value);
}

namespace scalar {

void grisu2(double value, DecimalDigits* out) noexcept {
  grisu2_impl(value, out, false);
}

int format_decimal(char* out, const char* digits, int length, int k) noexcept {
  return format_decimal_impl(out, digits, length, k, false,
                             /*padded=*/false);
}

int write_double(char* out, double value) noexcept {
  return write_double_impl(out, value, false);
}

}  // namespace scalar

}  // namespace bsoap::textconv
