#include "textconv/dtoa.hpp"

#include <cstring>

#include "common/error.hpp"
#include "textconv/itoa.hpp"
#include "textconv/pow10cache.hpp"

namespace bsoap::textconv {
namespace {

constexpr std::uint64_t kHiddenBit = 1ull << 52;
constexpr std::uint64_t kSignificandMask = kHiddenBit - 1;
constexpr int kExponentBias = 1075;  // so that value = f * 2^e exactly

// Grisu works with the scaled product in a fixed exponent window; this range
// keeps p1 within 32 bits and guarantees delta*10 cannot overflow 64 bits.
constexpr int kAlpha = -60;
constexpr int kGamma = -34;

DiyFp diyfp_from_double(double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const std::uint64_t raw_exponent = (bits >> 52) & 0x7ff;
  const std::uint64_t significand = bits & kSignificandMask;
  if (raw_exponent == 0) {  // subnormal
    return DiyFp{significand, 1 - kExponentBias};
  }
  return DiyFp{significand + kHiddenBit,
               static_cast<int>(raw_exponent) - kExponentBias};
}

DiyFp normalize(DiyFp v) {
  while ((v.f & (1ull << 63)) == 0) {
    v.f <<= 1;
    --v.e;
  }
  return v;
}

/// Computes the normalized boundaries m- and m+ of the rounding interval
/// around `v`: every real in (m-, m+) rounds to this double.
void normalized_boundaries(DiyFp v, DiyFp* minus, DiyFp* plus) {
  DiyFp pl{(v.f << 1) + 1, v.e - 1};
  pl = normalize(pl);
  DiyFp mi;
  if (v.f == kHiddenBit && v.e != 1 - kExponentBias) {
    // Lower neighbour is in the next binade: the interval is asymmetric.
    mi = DiyFp{(v.f << 2) - 1, v.e - 2};
  } else {
    mi = DiyFp{(v.f << 1) - 1, v.e - 1};
  }
  mi.f <<= mi.e - pl.e;
  mi.e = pl.e;
  *minus = mi;
  *plus = pl;
}

int count_decimal_digits_u32(std::uint32_t n) {
  return decimal_digits_u32(n);
}

constexpr std::uint32_t kPow10U32[] = {1u,       10u,       100u,     1000u,
                                       10000u,   100000u,   1000000u, 10000000u,
                                       100000000u, 1000000000u};

constexpr std::uint64_t kPow10U64[] = {
    1ull,
    10ull,
    100ull,
    1000ull,
    10000ull,
    100000ull,
    1000000ull,
    10000000ull,
    100000000ull,
    1000000000ull,
    10000000000ull,
    100000000000ull,
    1000000000000ull,
    10000000000000ull,
    100000000000000ull,
    1000000000000000ull,
    10000000000000000ull,
    100000000000000000ull,
    1000000000000000000ull,
    10000000000000000000ull};

/// Nudges the last generated digit towards w (the exact scaled value) while
/// remaining inside the rounding interval — this is what makes the output
/// usually-shortest and always round-trippable.
void grisu_round(char* buffer, int len, std::uint64_t delta,
                 std::uint64_t rest, std::uint64_t ten_kappa,
                 std::uint64_t wp_w) {
  while (rest < wp_w && delta - rest >= ten_kappa &&
         (rest + ten_kappa < wp_w || wp_w - rest > rest + ten_kappa - wp_w)) {
    --buffer[len - 1];
    rest += ten_kappa;
  }
}

void digit_gen(DiyFp w, DiyFp mp, std::uint64_t delta, DecimalDigits* out) {
  const DiyFp one{1ull << -mp.e, mp.e};
  const std::uint64_t wp_w = mp.sub(w).f;
  std::uint32_t p1 = static_cast<std::uint32_t>(mp.f >> -one.e);
  std::uint64_t p2 = mp.f & (one.f - 1);
  int kappa = count_decimal_digits_u32(p1);
  int len = 0;

  while (kappa > 0) {
    const std::uint32_t div = kPow10U32[kappa - 1];
    const std::uint32_t d = p1 / div;
    p1 %= div;
    if (d != 0 || len != 0) out->digits[len++] = static_cast<char>('0' + d);
    --kappa;
    const std::uint64_t rest = (static_cast<std::uint64_t>(p1) << -one.e) + p2;
    if (rest <= delta) {
      out->k += kappa;
      out->length = len;
      grisu_round(out->digits, len, delta, rest,
                  static_cast<std::uint64_t>(div) << -one.e, wp_w);
      return;
    }
  }

  for (;;) {
    p2 *= 10;
    delta *= 10;
    const int d = static_cast<int>(p2 >> -one.e);
    if (d != 0 || len != 0) out->digits[len++] = static_cast<char>('0' + d);
    p2 &= one.f - 1;
    --kappa;
    if (p2 < delta) {
      out->k += kappa;
      out->length = len;
      grisu_round(out->digits, len, delta, p2, one.f,
                  wp_w * kPow10U64[-kappa]);
      return;
    }
  }
}

}  // namespace

void grisu2(double value, DecimalDigits* out) noexcept {
  BSOAP_ASSERT(value > 0.0);
  const DiyFp v = diyfp_from_double(value);
  DiyFp w_minus, w_plus;
  normalized_boundaries(v, &w_minus, &w_plus);
  const DiyFp w = normalize(v);

  // Pick q so that the scaled product exponent lands in [kAlpha, kGamma]:
  // we need w_plus.e + c.e + 64 in that window and c.e ~ q*log2(10) - 63.
  int q = static_cast<int>(((kAlpha + kGamma) / 2 - 64 + 63 - w_plus.e) /
                           3.3219280948873623);
  DiyFp c = cached_pow10(q);
  while (w_plus.e + c.e + 64 < kAlpha) c = cached_pow10(++q);
  while (w_plus.e + c.e + 64 > kGamma) c = cached_pow10(--q);

  const DiyFp W = w.mul(c);
  DiyFp Wp = w_plus.mul(c);
  DiyFp Wm = w_minus.mul(c);
  // Shrink the interval by one unit on each side to absorb the (<1 ulp)
  // error introduced by the cached power multiplication.
  ++Wm.f;
  --Wp.f;

  out->k = -q;
  out->length = 0;
  digit_gen(W, Wp, Wp.f - Wm.f, out);
}

int format_decimal(char* out, const char* digits, int length, int k) noexcept {
  char* p = out;
  const int point = length + k;  // value = 0.digits * 10^point

  if (length <= point && point <= 17) {
    // 1234000 — digits followed by trailing zeros.
    std::memcpy(p, digits, static_cast<std::size_t>(length));
    p += length;
    for (int i = length; i < point; ++i) *p++ = '0';
  } else if (0 < point && point < length) {
    // 12.34 — decimal point inside the digit string.
    std::memcpy(p, digits, static_cast<std::size_t>(point));
    p += point;
    *p++ = '.';
    std::memcpy(p, digits + point, static_cast<std::size_t>(length - point));
    p += length - point;
  } else if (-4 < point && point <= 0) {
    // 0.0001234 — leading zeros after the decimal point.
    *p++ = '0';
    *p++ = '.';
    for (int i = 0; i < -point; ++i) *p++ = '0';
    std::memcpy(p, digits, static_cast<std::size_t>(length));
    p += length;
  } else {
    // 1.234e-308 — scientific notation.
    *p++ = digits[0];
    if (length > 1) {
      *p++ = '.';
      std::memcpy(p, digits + 1, static_cast<std::size_t>(length - 1));
      p += length - 1;
    }
    *p++ = 'e';
    p += write_i32(p, point - 1);
  }
  return static_cast<int>(p - out);
}

int write_double(char* out, double value) noexcept {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const bool negative = (bits >> 63) != 0;
  const std::uint64_t magnitude_bits = bits & ~(1ull << 63);

  char* p = out;
  if (negative) *p++ = '-';

  if (magnitude_bits == 0) {  // +0.0 / -0.0
    *p++ = '0';
    return static_cast<int>(p - out);
  }
  const std::uint64_t raw_exponent = (magnitude_bits >> 52);
  if (raw_exponent == 0x7ff) {
    if ((magnitude_bits & kSignificandMask) != 0) {
      // NaN: sign is not significant in the lexical form.
      std::memcpy(out, "NaN", 3);
      return 3;
    }
    std::memcpy(p, "INF", 3);
    return static_cast<int>(p - out) + 3;
  }

  double magnitude = value;
  if (negative) magnitude = -magnitude;
  DecimalDigits dec;
  grisu2(magnitude, &dec);
  p += format_decimal(p, dec.digits, dec.length, dec.k);
  const int total = static_cast<int>(p - out);
  BSOAP_ASSERT(total <= kMaxDoubleChars);
  return total;
}

int serialized_length_double(double value) noexcept {
  char scratch[kMaxDoubleChars];
  return write_double(scratch, value);
}

}  // namespace bsoap::textconv
