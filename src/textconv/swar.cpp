#include "textconv/swar.hpp"

#include <cstdlib>

namespace bsoap::textconv {

namespace detail {

std::atomic<std::uint8_t> g_textconv_tier_plus1{0};

TextconvTier init_textconv_tier() noexcept {
  const char* force = std::getenv("BSOAP_FORCE_SCALAR_TEXTCONV");
  TextconvTier tier;
  if (force != nullptr && force[0] != '\0' &&
      !(force[0] == '0' && force[1] == '\0')) {
    tier = TextconvTier::kScalar;
  } else {
    tier = detect_textconv_tier();
  }
  // Racing first queries compute the same value; the store is idempotent.
  g_textconv_tier_plus1.store(static_cast<std::uint8_t>(tier) + 1,
                              std::memory_order_relaxed);
  return tier;
}

}  // namespace detail

TextconvTier detect_textconv_tier() noexcept {
#if defined(__SSE2__)
  // SSE2 is part of the x86-64 baseline; no cpuid probe needed.
  return TextconvTier::kSse2;
#else
  // The SWAR kernels are plain 64-bit integer code: valid everywhere.
  return TextconvTier::kSwar;
#endif
}

void set_textconv_tier(TextconvTier tier) noexcept {
#if !defined(__SSE2__)
  if (tier == TextconvTier::kSse2) tier = TextconvTier::kSwar;
#endif
  detail::g_textconv_tier_plus1.store(static_cast<std::uint8_t>(tier) + 1,
                                      std::memory_order_relaxed);
}

}  // namespace bsoap::textconv
