// double -> ASCII conversion: shortest-round-trip decimal via Grisu2.
//
// This is the conversion the paper identifies as consuming ~90% of SOAP
// end-to-end time when done naively (sprintf "%.17g" through the locale
// machinery). We implement Loitsch's Grisu2: scale the value and its
// neighbour boundaries by a cached power of ten so the significand becomes a
// fixed-point number, then peel decimal digits while staying inside the
// rounding interval. The result always parses back to the same double and is
// at most kMaxDoubleChars (24) characters.
//
// Special values use the XML Schema lexical forms: "INF", "-INF", "NaN".
#pragma once

#include <cstdint>

#include "textconv/widths.hpp"

namespace bsoap::textconv {

/// Decimal significand/exponent pair: value ~= digits * 10^k where `digits`
/// is the integer formed by digits[0..length). Grisu emits at most 20
/// digits; the buffer is padded to 28 so the vectorized formatter may read
/// (never write) full 8-byte words from any digit offset.
struct DecimalDigits {
  char digits[28];
  int length = 0;
  int k = 0;
};

/// Core Grisu2 digit generation. `value` must be finite and strictly
/// positive. The produced digits round-trip (parsing digits*10^k yields
/// exactly `value`) and are usually the shortest such representation.
void grisu2(double value, DecimalDigits* out) noexcept;

/// Renders digits*10^k in the %g style used for xsd:double lexicals: plain
/// notation when the decimal point falls within [-3, 17], exponent notation
/// otherwise. Returns the number of characters written.
int format_decimal(char* out, const char* digits, int length, int k) noexcept;

/// Writes the shortest round-trip decimal for `value` (any double, including
/// zero, negatives, infinities and NaN). Returns the length, <= 24. No NUL
/// terminator is written; `out` must hold kMaxDoubleChars characters.
int write_double(char* out, double value) noexcept;

/// Length write_double would produce (writes into scratch storage).
int serialized_length_double(double value) noexcept;

/// The pre-vectorization scalar path (runtime-divisor digit loop, byte-wise
/// zero fills), kept callable as the differential-test reference and the
/// BSOAP_FORCE_SCALAR_TEXTCONV kill-switch target. Identical bytes to the
/// top-level functions on every input.
namespace scalar {
void grisu2(double value, DecimalDigits* out) noexcept;
int format_decimal(char* out, const char* digits, int length, int k) noexcept;
int write_double(char* out, double value) noexcept;
}  // namespace scalar

}  // namespace bsoap::textconv
