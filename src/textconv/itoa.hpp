// Integer -> ASCII conversion.
//
// These routines are on the serialization hot path: they write directly into
// caller-provided storage and return the number of characters produced. No
// NUL terminator is written. Buffers must be at least kMax*Chars long.
#pragma once

#include <cstdint>

#include "textconv/widths.hpp"

namespace bsoap::textconv {

/// Writes the decimal representation of `value`. Returns the length.
int write_u32(char* out, std::uint32_t value) noexcept;
int write_i32(char* out, std::int32_t value) noexcept;
int write_u64(char* out, std::uint64_t value) noexcept;
int write_i64(char* out, std::int64_t value) noexcept;

/// Number of characters write_* would produce, without writing.
int decimal_digits_u32(std::uint32_t value) noexcept;
int decimal_digits_u64(std::uint64_t value) noexcept;
int serialized_length_i32(std::int32_t value) noexcept;
int serialized_length_i64(std::int64_t value) noexcept;

}  // namespace bsoap::textconv
