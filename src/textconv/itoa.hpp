// Integer -> ASCII conversion.
//
// These routines are on the serialization hot path: they write directly into
// caller-provided storage and return the number of characters produced. No
// NUL terminator is written. Buffers must be at least kMax*Chars long.
//
// The top-level functions dispatch on textconv_tier() (see swar.hpp):
// SWAR/SSE2 emission by default, the scalar reference under the
// BSOAP_FORCE_SCALAR_TEXTCONV kill-switch. Every tier produces identical
// bytes and never writes past out + <returned length>.
#pragma once

#include <cstdint>

#include "textconv/widths.hpp"

namespace bsoap::textconv {

/// Writes the decimal representation of `value`. Returns the length.
int write_u32(char* out, std::uint32_t value) noexcept;
int write_i32(char* out, std::int32_t value) noexcept;
int write_u64(char* out, std::uint64_t value) noexcept;
int write_i64(char* out, std::int64_t value) noexcept;

/// Number of characters write_* would produce, without writing. Branchless
/// (forwards to widths.hpp's value_width_* kernels) on every tier.
int decimal_digits_u32(std::uint32_t value) noexcept;
int decimal_digits_u64(std::uint64_t value) noexcept;
int serialized_length_i32(std::int32_t value) noexcept;
int serialized_length_i64(std::int64_t value) noexcept;

/// The pre-vectorization scalar implementations, kept callable so the
/// differential tests and the scalar bench tier exercise genuinely
/// independent code (digit-pair LUT emission, compare-chain widths).
namespace scalar {
int write_u32(char* out, std::uint32_t value) noexcept;
int write_i32(char* out, std::int32_t value) noexcept;
int write_u64(char* out, std::uint64_t value) noexcept;
int write_i64(char* out, std::int64_t value) noexcept;
int decimal_digits_u32(std::uint32_t value) noexcept;
int decimal_digits_u64(std::uint64_t value) noexcept;
}  // namespace scalar

}  // namespace bsoap::textconv
