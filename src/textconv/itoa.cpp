#include "textconv/itoa.hpp"

#include "textconv/swar.hpp"

namespace bsoap::textconv {
namespace {

// Two-digit lookup table: writes pairs of digits per iteration, halving the
// number of divisions compared to the naive loop.
constexpr char kDigitPairs[] =
    "00010203040506070809"
    "10111213141516171819"
    "20212223242526272829"
    "30313233343536373839"
    "40414243444546474849"
    "50515253545556575859"
    "60616263646566676869"
    "70717273747576777879"
    "80818283848586878889"
    "90919293949596979899";

template <typename U>
int write_unsigned(char* out, U value, int len) {
  char* p = out + len;
  while (value >= 100) {
    const unsigned idx = static_cast<unsigned>(value % 100) * 2;
    value /= 100;
    *--p = kDigitPairs[idx + 1];
    *--p = kDigitPairs[idx];
  }
  if (value >= 10) {
    const unsigned idx = static_cast<unsigned>(value) * 2;
    *--p = kDigitPairs[idx + 1];
    *--p = kDigitPairs[idx];
  } else {
    *--p = static_cast<char>('0' + value);
  }
  return len;
}

}  // namespace

namespace scalar {

int decimal_digits_u32(std::uint32_t v) noexcept {
  // Branchy but branch-predictor friendly: small values dominate in practice.
  if (v < 10) return 1;
  if (v < 100) return 2;
  if (v < 1000) return 3;
  if (v < 10000) return 4;
  if (v < 100000) return 5;
  if (v < 1000000) return 6;
  if (v < 10000000) return 7;
  if (v < 100000000) return 8;
  if (v < 1000000000) return 9;
  return 10;
}

int decimal_digits_u64(std::uint64_t v) noexcept {
  int digits = 1;
  for (;;) {
    if (v < 10) return digits;
    if (v < 100) return digits + 1;
    if (v < 1000) return digits + 2;
    if (v < 10000) return digits + 3;
    v /= 10000;
    digits += 4;
  }
}

int write_u32(char* out, std::uint32_t value) noexcept {
  return write_unsigned(out, value, scalar::decimal_digits_u32(value));
}

int write_u64(char* out, std::uint64_t value) noexcept {
  return write_unsigned(out, value, scalar::decimal_digits_u64(value));
}

int write_i32(char* out, std::int32_t value) noexcept {
  std::uint32_t magnitude = static_cast<std::uint32_t>(value);
  if (value < 0) {
    *out++ = '-';
    magnitude = 0u - magnitude;
    return 1 + scalar::write_u32(out, magnitude);
  }
  return scalar::write_u32(out, magnitude);
}

int write_i64(char* out, std::int64_t value) noexcept {
  std::uint64_t magnitude = static_cast<std::uint64_t>(value);
  if (value < 0) {
    *out++ = '-';
    magnitude = 0ull - magnitude;
    return 1 + scalar::write_u64(out, magnitude);
  }
  return scalar::write_u64(out, magnitude);
}

}  // namespace scalar

int decimal_digits_u32(std::uint32_t v) noexcept { return value_width_u32(v); }

int decimal_digits_u64(std::uint64_t v) noexcept { return value_width_u64(v); }

int write_u32(char* out, std::uint32_t value) noexcept {
  if (textconv_vectorized()) return swar::write_u32(out, value);
  return scalar::write_u32(out, value);
}

int write_u64(char* out, std::uint64_t value) noexcept {
  const TextconvTier tier = textconv_tier();
  if (tier != TextconvTier::kScalar) {
    return swar::write_u64(out, value, tier == TextconvTier::kSse2);
  }
  return scalar::write_u64(out, value);
}

int write_i32(char* out, std::int32_t value) noexcept {
  std::uint32_t magnitude = static_cast<std::uint32_t>(value);
  if (value < 0) {
    *out++ = '-';
    magnitude = 0u - magnitude;
    return 1 + write_u32(out, magnitude);
  }
  return write_u32(out, magnitude);
}

int write_i64(char* out, std::int64_t value) noexcept {
  std::uint64_t magnitude = static_cast<std::uint64_t>(value);
  if (value < 0) {
    *out++ = '-';
    magnitude = 0ull - magnitude;
    return 1 + write_u64(out, magnitude);
  }
  return write_u64(out, magnitude);
}

int serialized_length_i32(std::int32_t value) noexcept {
  return value_width_i32(value);
}

int serialized_length_i64(std::int64_t value) noexcept {
  return value_width_i64(value);
}

}  // namespace bsoap::textconv
