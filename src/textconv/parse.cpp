#include "textconv/parse.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

namespace bsoap::textconv {
namespace {

bool is_digit(char c) { return c >= '0' && c <= '9'; }

// Powers of ten exactly representable as doubles (10^0 .. 10^22).
constexpr double kExactPow10[] = {1e0,  1e1,  1e2,  1e3,  1e4,  1e5,
                                  1e6,  1e7,  1e8,  1e9,  1e10, 1e11,
                                  1e12, 1e13, 1e14, 1e15, 1e16, 1e17,
                                  1e18, 1e19, 1e20, 1e21, 1e22};
constexpr int kMaxExactPow10 = 22;

template <typename U>
Result<U> parse_unsigned_body(std::string_view text, U max_value) {
  if (text.empty()) return Error{ErrorCode::kParseError, "empty integer"};
  U value = 0;
  for (const char c : text) {
    if (!is_digit(c)) {
      return Error{ErrorCode::kParseError,
                   std::string("invalid digit '") + c + "'"};
    }
    const U digit = static_cast<U>(c - '0');
    if (value > (max_value - digit) / 10) {
      return Error{ErrorCode::kOutOfRange, "integer overflow"};
    }
    value = value * 10 + digit;
  }
  return value;
}

template <typename S, typename U>
Result<S> parse_signed(std::string_view text) {
  bool negative = false;
  if (!text.empty() && (text.front() == '-' || text.front() == '+')) {
    negative = text.front() == '-';
    text.remove_prefix(1);
  }
  const U max_magnitude =
      negative ? static_cast<U>(std::numeric_limits<S>::max()) + 1
               : static_cast<U>(std::numeric_limits<S>::max());
  Result<U> magnitude = parse_unsigned_body<U>(text, max_magnitude);
  if (!magnitude.ok()) return magnitude.error();
  const U m = magnitude.value();
  return negative ? static_cast<S>(0 - m) : static_cast<S>(m);
}

}  // namespace

Result<std::int32_t> parse_i32(std::string_view text) {
  return parse_signed<std::int32_t, std::uint32_t>(text);
}

Result<std::int64_t> parse_i64(std::string_view text) {
  return parse_signed<std::int64_t, std::uint64_t>(text);
}

Result<std::uint64_t> parse_u64(std::string_view text) {
  if (!text.empty() && text.front() == '+') text.remove_prefix(1);
  return parse_unsigned_body<std::uint64_t>(
      text, std::numeric_limits<std::uint64_t>::max());
}

ParseDoubleCounters& parse_double_counters() {
  static ParseDoubleCounters counters;
  return counters;
}

Result<double> parse_double(std::string_view text) {
  if (text.empty()) return Error{ErrorCode::kParseError, "empty double"};

  // xsd:double special lexicals.
  if (text == "INF" || text == "+INF") {
    return std::numeric_limits<double>::infinity();
  }
  if (text == "-INF") return -std::numeric_limits<double>::infinity();
  if (text == "NaN") return std::numeric_limits<double>::quiet_NaN();

  std::string_view rest = text;
  bool negative = false;
  if (rest.front() == '-' || rest.front() == '+') {
    negative = rest.front() == '-';
    rest.remove_prefix(1);
  }
  if (rest.empty()) return Error{ErrorCode::kParseError, "sign only"};

  // Scan mantissa: digits [ '.' digits ].
  std::uint64_t mantissa = 0;
  int mantissa_digits = 0;
  int truncated_digits = 0;  // digits dropped because mantissa would overflow
  int fraction_digits = 0;
  bool seen_digit = false;
  bool seen_point = false;
  std::size_t i = 0;
  for (; i < rest.size(); ++i) {
    const char c = rest[i];
    if (is_digit(c)) {
      seen_digit = true;
      if (mantissa_digits < 19) {
        mantissa = mantissa * 10 + static_cast<std::uint64_t>(c - '0');
        if (mantissa != 0) ++mantissa_digits;
        if (seen_point) ++fraction_digits;
      } else {
        ++truncated_digits;
        if (seen_point) ++fraction_digits;  // position still counts
      }
    } else if (c == '.') {
      if (seen_point) return Error{ErrorCode::kParseError, "double '.'"};
      seen_point = true;
    } else {
      break;
    }
  }
  if (!seen_digit) return Error{ErrorCode::kParseError, "no digits"};

  int exp10 = 0;
  if (i < rest.size() && (rest[i] == 'e' || rest[i] == 'E')) {
    ++i;
    bool exp_negative = false;
    if (i < rest.size() && (rest[i] == '-' || rest[i] == '+')) {
      exp_negative = rest[i] == '-';
      ++i;
    }
    if (i >= rest.size() || !is_digit(rest[i])) {
      return Error{ErrorCode::kParseError, "bad exponent"};
    }
    int e = 0;
    for (; i < rest.size() && is_digit(rest[i]); ++i) {
      if (e < 100000) e = e * 10 + (rest[i] - '0');
    }
    exp10 = exp_negative ? -e : e;
  }
  if (i != rest.size()) {
    return Error{ErrorCode::kParseError, "trailing characters in double"};
  }

  const int effective_exp = exp10 - fraction_digits + truncated_digits;

  // Clinger fast path: both the mantissa and 10^|exp| are exactly
  // representable, so one multiply/divide is correctly rounded.
  if (truncated_digits == 0 && mantissa < (1ull << 53)) {
    if (effective_exp >= 0 && effective_exp <= kMaxExactPow10) {
      parse_double_counters().fast_path.fetch_add(1, std::memory_order_relaxed);
      const double v = static_cast<double>(mantissa) * kExactPow10[effective_exp];
      return negative ? -v : v;
    }
    if (effective_exp < 0 && effective_exp >= -kMaxExactPow10) {
      parse_double_counters().fast_path.fetch_add(1, std::memory_order_relaxed);
      const double v = static_cast<double>(mantissa) / kExactPow10[-effective_exp];
      return negative ? -v : v;
    }
  }

  // Slow path: delegate to strtod on a NUL-terminated copy.
  parse_double_counters().slow_path.fetch_add(1, std::memory_order_relaxed);
  const std::string copy(text);
  char* end = nullptr;
  const double v = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) {
    return Error{ErrorCode::kParseError, "strtod rejected input"};
  }
  return v;
}

}  // namespace bsoap::textconv
