// Exactly-rounded cached powers of ten for the Grisu2 algorithm.
//
// Grisu needs, for a decimal exponent q, a 64-bit normalized binary
// approximation of 10^q (a "DiyFp": f * 2^e with 2^63 <= f < 2^64) that is
// correctly rounded to the nearest representable value. Hand-copied tables
// are a classic source of silent bugs, so this module *computes* the table
// once at startup with an exact arbitrary-precision routine:
//   q >= 0 : take the top 64 bits of the exact integer 10^q (round to nearest)
//   q <  0 : binary long division of 1 by 10^-q, emitting normalized bits
#pragma once

#include <cstdint>

namespace bsoap::textconv {

/// A floating-point value f * 2^e with full 64-bit significand ("do it
/// yourself floating point", after Loitsch's Grisu paper).
struct DiyFp {
  std::uint64_t f = 0;
  int e = 0;

  /// Full 128-bit product rounded to 64 bits; exponents add plus 64.
  DiyFp mul(const DiyFp& rhs) const noexcept {
    const unsigned __int128 p =
        static_cast<unsigned __int128>(f) * static_cast<unsigned __int128>(rhs.f);
    std::uint64_t hi = static_cast<std::uint64_t>(p >> 64);
    const std::uint64_t lo = static_cast<std::uint64_t>(p);
    if (lo & (1ull << 63)) ++hi;  // round to nearest
    return DiyFp{hi, e + rhs.e + 64};
  }

  DiyFp sub(const DiyFp& rhs) const noexcept {
    // Precondition: same exponent and f >= rhs.f.
    return DiyFp{f - rhs.f, e};
  }
};

/// Smallest and largest decimal exponents the cache can serve. Doubles span
/// roughly 10^-324 .. 10^308; Grisu scales by up to ~10^342.
inline constexpr int kPow10CacheMin = -348;
inline constexpr int kPow10CacheMax = 348;

/// Returns the correctly rounded normalized DiyFp for 10^q.
/// q must lie in [kPow10CacheMin, kPow10CacheMax]. Thread-safe; the table is
/// computed once on first use.
DiyFp cached_pow10(int q) noexcept;

}  // namespace bsoap::textconv
