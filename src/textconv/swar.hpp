// SWAR / SIMD kernels for number -> ASCII conversion, plus the runtime
// dispatch tier that selects between them and the scalar reference code.
//
// The serialization hot path (RunWriter::rewrite_value and the bulk-update
// fused scan+rewrite) spends its time converting int/double values to text.
// The scalar code pays one hardware divide per digit pair and a compare
// chain per width query; the kernels here replace both:
//
//   * digits_u32 / digits_u64 — branchless decimal width: integer log2 via
//     countl_zero, a *1233>>12 log10 estimate, and one table compare
//     (Bit Twiddling Hacks "integer log base 10"). Feeds widths.hpp's
//     value_width_* helpers, the stuffing logic and dtoa's kappa seed.
//   * ascii8 — eight decimal digits at once inside one uint64: two
//     constant-divisor splits put four 2-digit values into 16-bit lanes,
//     then one multiply-mask round splits every lane into tens/ones
//     simultaneously (SIMD within a register).
//   * store-exact helpers — emission writes wide words that END at
//     out + length, so no byte past the returned length is ever touched
//     and the existing "buffer holds kMax*Chars" contract is unchanged.
//
// Dispatch tiers (runtime, cheapest capable tier wins):
//   kScalar — the pre-existing scalar code, kept verbatim under
//             textconv::scalar:: as the differential-test reference and the
//             BSOAP_FORCE_SCALAR_TEXTCONV kill-switch target;
//   kSwar   — portable 64-bit SWAR (any architecture);
//   kSse2   — x86-64: additionally pairs two ascii8 groups into single
//             16-byte stores for >= 17-digit u64 values.
// AVX2 was evaluated and intentionally NOT added: every bounded SOAP field
// is at most kMaxDoubleChars (24) wide, so 32-byte lanes never fill and the
// ymm<->gpr traffic costs more than the stores it would save.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace bsoap::textconv {

/// Which conversion implementation the process is using. Ordered by
/// capability; see the file comment for what each tier adds.
enum class TextconvTier : std::uint8_t { kScalar = 0, kSwar = 1, kSse2 = 2 };

namespace detail {
/// Active tier + 1; 0 means "not yet initialized". Constant-initialized so
/// the hot-path query below is a single relaxed load with no static guard.
extern std::atomic<std::uint8_t> g_textconv_tier_plus1;
/// Reads BSOAP_FORCE_SCALAR_TEXTCONV / detects the CPU, stores, returns.
TextconvTier init_textconv_tier() noexcept;
}  // namespace detail

/// The active tier: CPU detection, overridden to kScalar when the
/// BSOAP_FORCE_SCALAR_TEXTCONV environment variable is set (non-empty,
/// not "0"), overridden again by set_textconv_tier(). Cheap enough to
/// query per conversion (one relaxed atomic load).
inline TextconvTier textconv_tier() noexcept {
  const std::uint8_t t =
      detail::g_textconv_tier_plus1.load(std::memory_order_relaxed);
  if (t != 0) [[likely]] {
    return static_cast<TextconvTier>(t - 1);
  }
  return detail::init_textconv_tier();
}

/// Runtime override, e.g. for benches that A/B scalar vs vectorized paths
/// inside one process. Takes effect for subsequent conversions on any
/// thread; output bytes are identical across tiers, so flipping mid-stream
/// is safe.
void set_textconv_tier(TextconvTier tier) noexcept;

/// What the CPU supports, ignoring the environment and any override.
TextconvTier detect_textconv_tier() noexcept;

inline bool textconv_vectorized() noexcept {
  return textconv_tier() != TextconvTier::kScalar;
}

namespace swar {

inline constexpr std::uint32_t kPow10U32[10] = {
    1u,      10u,      100u,      1000u,      10000u,
    100000u, 1000000u, 10000000u, 100000000u, 1000000000u};

inline constexpr std::uint64_t kPow10U64[20] = {1ull,
                                                10ull,
                                                100ull,
                                                1000ull,
                                                10000ull,
                                                100000ull,
                                                1000000ull,
                                                10000000ull,
                                                100000000ull,
                                                1000000000ull,
                                                10000000000ull,
                                                100000000000ull,
                                                1000000000000ull,
                                                10000000000000ull,
                                                100000000000000ull,
                                                1000000000000000ull,
                                                10000000000000000ull,
                                                100000000000000000ull,
                                                1000000000000000000ull,
                                                10000000000000000000ull};

/// Decimal digit count of v (1 for 0). Branchless: lg2 via countl_zero,
/// floor(lg2 * log10(2)) via *1233>>12, one table compare to fix up.
/// v|1 leaves the digit count unchanged (v+1 == 10^k would require an even
/// 10^k - 1, which never happens) and makes v == 0 well-defined.
inline int digits_u32(std::uint32_t v) noexcept {
  const std::uint32_t u = v | 1u;
  const unsigned lg2 = 31u ^ static_cast<unsigned>(std::countl_zero(u));
  const unsigned t = ((lg2 + 1u) * 1233u) >> 12;  // <= 9
  return static_cast<int>(t + 1u - (u < kPow10U32[t] ? 1u : 0u));
}

inline int digits_u64(std::uint64_t v) noexcept {
  const std::uint64_t u = v | 1u;
  const unsigned lg2 = 63u ^ static_cast<unsigned>(std::countl_zero(u));
  const unsigned t = ((lg2 + 1u) * 1233u) >> 12;  // <= 19
  return static_cast<int>(t + 1u - (u < kPow10U64[t] ? 1u : 0u));
}

/// Converts value < 10^8 into eight ASCII digits packed in a uint64, most
/// significant digit in the lowest byte (little-endian store order), zero
/// padded on the left.
///
/// Lane algebra: hi|lo are placed in 32-bit lanes; (x*10486)>>20 is a
/// per-lane divide by 100 (valid for lane values < 4.3e6 — the high lane's
/// quotient bits land exactly back at its lane base because the product
/// stays under 2^27 per lane); (x*103)>>10 is the same trick per 16-bit
/// lane for the final divide by 10 (valid below 1706).
inline std::uint64_t ascii8(std::uint32_t value) noexcept {
  const std::uint64_t hi = value / 10000u;  // constant divisors: no div issued
  const std::uint64_t lo = value % 10000u;
  const std::uint64_t merged = hi | (lo << 32);
  const std::uint64_t top =
      ((merged * 10486u) >> 20) & 0x0000007F0000007Full;  // [hi/100, lo/100]
  const std::uint64_t bot = merged - top * 100u;          // [hi%100, lo%100]
  const std::uint64_t pairs = (bot << 16) | top;  // 4 x 16-bit 2-digit lanes
  const std::uint64_t tens =
      ((pairs * 103u) >> 10) & 0x000F000F000F000Full;
  const std::uint64_t ones = pairs - tens * 10u;
  return tens | (ones << 8) | 0x3030303030303030ull;
}

/// Stores the low 8 bytes of a packed digit word (first digit = low byte).
inline void store8(char* out, std::uint64_t packed) noexcept {
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out, &packed, 8);
  } else {
    for (int i = 0; i < 8; ++i) {
      out[i] = static_cast<char>(packed >> (8 * i));
    }
  }
}

/// Stores exactly n (1..8) low bytes of a packed digit word — never writes
/// past out + n, so callers with exactly-sized regions stay safe.
inline void store_exact(char* out, std::uint64_t packed, unsigned n) noexcept {
  if (n == 8u) {
    store8(out, packed);
    return;
  }
  if constexpr (std::endian::native == std::endian::little) {
    if (n & 4u) {
      const std::uint32_t w = static_cast<std::uint32_t>(packed);
      std::memcpy(out, &w, 4);
      out += 4;
      packed >>= 32;
    }
    if (n & 2u) {
      const std::uint16_t w = static_cast<std::uint16_t>(packed);
      std::memcpy(out, &w, 2);
      out += 2;
      packed >>= 16;
    }
    if (n & 1u) *out = static_cast<char>(packed);
  } else {
    for (unsigned i = 0; i < n; ++i) {
      out[i] = static_cast<char>(packed >> (8 * i));
    }
  }
}

/// Copies exactly n (0..20) bytes with wide loads/stores. dst is written
/// for exactly n bytes; src however must be READABLE for 8 bytes past any
/// offset below n (DecimalDigits pads its digit buffer for this — do not
/// use with arbitrary caller buffers).
inline void copy_digits(char* dst, const char* src, unsigned n) noexcept {
  if constexpr (std::endian::native == std::endian::little) {
    unsigned i = 0;
    while (i + 8u <= n) {
      std::uint64_t w;
      std::memcpy(&w, src + i, 8);
      std::memcpy(dst + i, &w, 8);
      i += 8u;
    }
    if (i < n) {
      std::uint64_t w;
      std::memcpy(&w, src + i, 8);
      store_exact(dst + i, w, n - i);
    }
  } else {
    for (unsigned i = 0; i < n; ++i) dst[i] = src[i];
  }
}

/// Writes exactly n repeated-byte characters with wide stores; never
/// touches out + n or beyond.
inline void fill_bytes(char* out, unsigned n, std::uint64_t pattern) noexcept {
  while (n >= 8u) {
    store8(out, pattern);
    out += 8;
    n -= 8u;
  }
  store_exact(out, pattern, n);  // n == 0 stores nothing
}

/// Writes exactly n '0' characters (dtoa's zero-padding fills).
inline void fill_zeros(char* out, unsigned n) noexcept {
  fill_bytes(out, n, 0x3030303030303030ull);
}

/// Writes exactly n ' ' characters (the rewrite engine's stuffing pads).
inline void fill_spaces(char* out, unsigned n) noexcept {
  fill_bytes(out, n, 0x2020202020202020ull);
}

/// Writes value's decimal digits (no sign) and returns the width. Wide
/// stores end exactly at out + width.
inline int write_u32(char* out, std::uint32_t value) noexcept {
  const int len = digits_u32(value);
  if (value < 100000000u) {
    store_exact(out, ascii8(value) >> ((8 - len) * 8),
                static_cast<unsigned>(len));
    return len;
  }
  const std::uint32_t head = value / 100000000u;  // 1..42
  const int head_len = len - 8;
  store_exact(out, ascii8(head) >> ((8 - head_len) * 8),
              static_cast<unsigned>(head_len));
  store8(out + head_len, ascii8(value % 100000000u));
  return len;
}

inline int write_u64(char* out, std::uint64_t value, bool sse2) noexcept {
  if (value < 100000000ull) {
    return write_u32(out, static_cast<std::uint32_t>(value));
  }
  const int len = digits_u64(value);
  if (value < 10000000000000000ull) {  // 9..16 digits: head + one 8-group
    const std::uint32_t head =
        static_cast<std::uint32_t>(value / 100000000ull);  // < 10^8
    const int head_len = len - 8;
    store_exact(out, ascii8(head) >> ((8 - head_len) * 8),
                static_cast<unsigned>(head_len));
    store8(out + head_len, ascii8(static_cast<std::uint32_t>(
                               value % 100000000ull)));
    return len;
  }
  // 17..20 digits: head + two 8-groups (one 16-byte store on the SSE2 tier).
  const std::uint32_t head =
      static_cast<std::uint32_t>(value / 10000000000000000ull);  // 1..1844
  const std::uint64_t rest = value % 10000000000000000ull;
  const int head_len = len - 16;
  store_exact(out, ascii8(head) >> ((8 - head_len) * 8),
              static_cast<unsigned>(head_len));
  const std::uint64_t mid =
      ascii8(static_cast<std::uint32_t>(rest / 100000000ull));
  const std::uint64_t low =
      ascii8(static_cast<std::uint32_t>(rest % 100000000ull));
#if defined(__SSE2__)
  if (sse2) {
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(out + head_len),
        _mm_set_epi64x(static_cast<long long>(low),
                       static_cast<long long>(mid)));
    return len;
  }
#else
  (void)sse2;
#endif
  store8(out + head_len, mid);
  store8(out + head_len + 8, low);
  return len;
}

}  // namespace swar
}  // namespace bsoap::textconv
