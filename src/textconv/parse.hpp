// ASCII -> number parsing for SOAP deserialization and the XML parser.
//
// Integer parsing is exact with overflow detection. Double parsing uses the
// Clinger fast path (exact when the decimal mantissa fits in 53 bits and the
// power of ten is exactly representable) and falls back to strtod for the
// hard cases — deserialization is not the paper's bottleneck, serialization
// is, so we optimize the common scientific-data shapes and keep the fallback
// simple and correct.
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>

#include "common/error.hpp"

namespace bsoap::textconv {

/// Parses a full string as a decimal integer (optional leading '-'/'+').
/// Fails on empty input, trailing junk, or overflow.
Result<std::int32_t> parse_i32(std::string_view text);
Result<std::int64_t> parse_i64(std::string_view text);
Result<std::uint64_t> parse_u64(std::string_view text);

/// Parses a full string as an xsd:double lexical (decimal or scientific
/// notation, plus "INF", "-INF", "NaN"). Fails on empty input or junk.
Result<double> parse_double(std::string_view text);

/// Statistics for tests: how often the exact fast path was taken. Atomic —
/// parsing runs concurrently on the server runtime's worker pool.
struct ParseDoubleCounters {
  std::atomic<std::uint64_t> fast_path{0};
  std::atomic<std::uint64_t> slow_path{0};
};
ParseDoubleCounters& parse_double_counters();

}  // namespace bsoap::textconv
