// Maximum serialized widths for SOAP base types.
//
// The paper (Section 4.4) relies on every non-string type having a bounded
// serialized width: 11 characters for 32-bit integers ("-2147483648"), 24 for
// IEEE-754 doubles ("-2.2250738585072014e-308"), and 46 for a Mesh Interface
// Object (int,int,double = 11 + 11 + 24). Stuffing pads fields to these
// widths so that later updates never need to shift the message.
#pragma once

namespace bsoap::textconv {

inline constexpr int kMaxInt32Chars = 11;   // "-2147483648"
inline constexpr int kMaxUInt32Chars = 10;  // "4294967295"
inline constexpr int kMaxInt64Chars = 20;   // "-9223372036854775808"
inline constexpr int kMaxUInt64Chars = 20;  // "18446744073709551615"
inline constexpr int kMaxDoubleChars = 24;  // sign + 17 digits + '.' + "e-308"
inline constexpr int kMaxFloatChars = 15;   // sign + 9 digits + '.' + "e-45"

/// Paper Section 4.3/4.4: MIO = struct { int, int, double }.
inline constexpr int kMaxMioChars = kMaxInt32Chars + kMaxInt32Chars + kMaxDoubleChars;  // 46
inline constexpr int kMinMioChars = 3;    // "0", "0", "0"
inline constexpr int kMinDoubleChars = 1; // "0"
inline constexpr int kMinInt32Chars = 1;  // "0"

}  // namespace bsoap::textconv
