// Maximum serialized widths for SOAP base types.
//
// The paper (Section 4.4) relies on every non-string type having a bounded
// serialized width: 11 characters for 32-bit integers ("-2147483648"), 24 for
// IEEE-754 doubles ("-2.2250738585072014e-308"), and 46 for a Mesh Interface
// Object (int,int,double = 11 + 11 + 24). Stuffing pads fields to these
// widths so that later updates never need to shift the message.
#pragma once

#include <cstdint>

#include "textconv/swar.hpp"

namespace bsoap::textconv {

inline constexpr int kMaxInt32Chars = 11;   // "-2147483648"
inline constexpr int kMaxUInt32Chars = 10;  // "4294967295"
inline constexpr int kMaxInt64Chars = 20;   // "-9223372036854775808"
inline constexpr int kMaxUInt64Chars = 20;  // "18446744073709551615"
inline constexpr int kMaxDoubleChars = 24;  // sign + 17 digits + '.' + "e-308"
inline constexpr int kMaxFloatChars = 15;   // sign + 9 digits + '.' + "e-45"

/// Paper Section 4.3/4.4: MIO = struct { int, int, double }.
inline constexpr int kMaxMioChars = kMaxInt32Chars + kMaxInt32Chars + kMaxDoubleChars;  // 46
inline constexpr int kMinMioChars = 3;    // "0", "0", "0"
inline constexpr int kMinDoubleChars = 1; // "0"
inline constexpr int kMinInt32Chars = 1;  // "0"

/// Serialized width (sign + digits) of an integer value — the quantity the
/// stuffing policy and segment-fit checks compare against the kMax*Chars
/// bounds above. Branchless (see swar.hpp); tier-independent, since every
/// tier produces identical bytes.
inline int value_width_u32(std::uint32_t v) noexcept {
  return swar::digits_u32(v);
}

inline int value_width_u64(std::uint64_t v) noexcept {
  return swar::digits_u64(v);
}

inline int value_width_i32(std::int32_t v) noexcept {
  const std::uint32_t sign = v < 0 ? 1u : 0u;
  const std::uint32_t magnitude =
      v < 0 ? 0u - static_cast<std::uint32_t>(v) : static_cast<std::uint32_t>(v);
  return static_cast<int>(sign) + swar::digits_u32(magnitude);
}

inline int value_width_i64(std::int64_t v) noexcept {
  const std::uint64_t sign = v < 0 ? 1u : 0u;
  const std::uint64_t magnitude =
      v < 0 ? 0ull - static_cast<std::uint64_t>(v)
            : static_cast<std::uint64_t>(v);
  return static_cast<int>(sign) + swar::digits_u64(magnitude);
}

}  // namespace bsoap::textconv
