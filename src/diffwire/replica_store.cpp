#include "diffwire/replica_store.hpp"

#include <cstring>

#include "compress/deflate.hpp"

namespace bsoap::diffwire {

namespace {
/// DEFLATE window size: a preset dictionary beyond this is unreachable.
constexpr std::size_t kMaxDictBytes = 32 * 1024;

std::string_view dict_tail(std::string_view body) {
  if (body.size() <= kMaxDictBytes) return body;
  return body.substr(body.size() - kMaxDictBytes);
}
}  // namespace

bool ReplicaStore::pin(std::uint64_t id, std::string_view body,
                       std::uint64_t* generation) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t gen = ++generation_counter_;
  if (generation != nullptr) *generation = gen;
  const auto it = index_.find(id);
  if (it != index_.end()) {
    Replica& replica = *it->second;
    bytes_ -= replica.body.size() + replica.dict.size();
    replica.body.assign(body);
    replica.epoch = 0;
    replica.dict.assign(options_.retain_dictionaries ? dict_tail(body)
                                                     : std::string_view{});
    replica.generation = gen;
    replica.attachment.reset();  // it described the replaced body
    bytes_ += replica.body.size() + replica.dict.size();
    lru_.splice(lru_.begin(), lru_, it->second);
    ++counters_.repins;
    enforce_budget_locked();
    return true;
  }
  lru_.push_front(Replica{id, std::string(body), 0,
                          options_.retain_dictionaries
                              ? std::string(dict_tail(body))
                              : std::string{},
                          gen, nullptr});
  index_[id] = lru_.begin();
  bytes_ += lru_.front().body.size() + lru_.front().dict.size();
  ++counters_.pins;
  enforce_budget_locked();
  return false;
}

bool ReplicaStore::attach(std::uint64_t id, std::uint64_t generation,
                          std::shared_ptr<ReplicaAttachment> attachment) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(id);
  if (it == index_.end() || it->second->generation != generation) return false;
  it->second->attachment = std::move(attachment);
  return true;
}

std::shared_ptr<ReplicaAttachment> ReplicaStore::attachment(
    std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(id);
  if (it == index_.end()) return nullptr;
  return it->second->attachment;
}

Result<std::string> ReplicaStore::decode_preset(std::uint64_t id,
                                                std::string_view body,
                                                std::size_t max_output) {
  std::string dict;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(id);
    if (it == index_.end()) {
      ++counters_.nacks;
      return Error{ErrorCode::kNotFound, "template not pinned"};
    }
    dict = it->second->dict;  // copy: the inflate runs outside the lock
  }
  Result<std::string> decoded = compress::zlib_decompress(body, max_output, dict);
  if (decoded.ok()) return decoded;
  // Undecodable preset body: same treatment as a bad patch frame — erase
  // the replica so the NACK answer drives the sender's full-send re-pin.
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(id);
    if (it != index_.end()) remove_locked(it->second);
    ++counters_.nacks;
  }
  return decoded.error();
}

Status ReplicaStore::apply(const PatchFrame& frame, std::string* reconstructed,
                           ApplyInfo* info) {
  const PatchHeader& h = frame.header;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(h.template_id);
  if (it == index_.end()) {
    ++counters_.nacks;
    return Error{ErrorCode::kNotFound, "template not pinned"};
  }
  Replica& replica = *it->second;
  if (h.epoch != replica.epoch + 1) {
    return nack_locked(it->second, h.template_id,
                       "epoch " + std::to_string(h.epoch) + " != expected " +
                           std::to_string(replica.epoch + 1));
  }
  if (h.body_len != replica.body.size()) {
    return nack_locked(it->second, h.template_id, "body length mismatch");
  }
  for (const PatchRun& run : frame.runs) {
    if (run.length > replica.body.size() ||
        run.offset > replica.body.size() - run.length) {
      return nack_locked(it->second, h.template_id, "run out of bounds");
    }
  }
  // All runs bounds-checked: apply, then verify before exposing the result.
  for (const PatchRun& run : frame.runs) {
    std::memcpy(replica.body.data() + run.offset, run.data, run.length);
  }
  if (fnv1a(replica.body) != h.checksum) {
    return nack_locked(it->second, h.template_id, "checksum mismatch");
  }
  replica.epoch = h.epoch;
  reconstructed->assign(replica.body);
  if (info != nullptr) {
    info->attachment = replica.attachment;
    info->generation = replica.generation;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++counters_.applies;
  if (h.replay() || frame.runs.empty()) ++counters_.replays;
  return Status{};
}

bool ReplicaStore::invalidate(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(id);
  if (it == index_.end()) return false;
  remove_locked(it->second);
  return true;
}

void ReplicaStore::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

ReplicaStore::Stats ReplicaStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = counters_;
  s.pinned_replicas = lru_.size();
  s.pinned_bytes = bytes_;
  return s;
}

Status ReplicaStore::nack_locked(LruIter it, std::uint64_t id,
                                 const std::string& reason) {
  (void)id;
  remove_locked(it);
  ++counters_.nacks;
  return Error{ErrorCode::kProtocolError, reason};
}

void ReplicaStore::remove_locked(LruIter it) {
  bytes_ -= it->body.size() + it->dict.size();
  index_.erase(it->id);
  lru_.erase(it);
}

void ReplicaStore::enforce_budget_locked() {
  while (lru_.size() > 1 &&
         (lru_.size() > options_.max_replicas ||
          (options_.max_bytes != 0 && bytes_ > options_.max_bytes))) {
    remove_locked(std::prev(lru_.end()));
    ++counters_.evictions;
  }
}

}  // namespace bsoap::diffwire
