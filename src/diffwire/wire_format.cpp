#include "diffwire/wire_format.hpp"

#include <cstring>

#include "http/http_message.hpp"

namespace bsoap::diffwire {

namespace {

void append_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t read_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

std::uint64_t read_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

}  // namespace

std::string format_template_id(std::uint64_t id) {
  static const char* hex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = hex[id & 0xf];
    id >>= 4;
  }
  return out;
}

bool parse_template_id(std::string_view text, std::uint64_t* id) {
  if (text.size() != 16) return false;
  std::uint64_t v = 0;
  for (const char c : text) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *id = v;
  return true;
}

void append_patch_header(std::string& out, const PatchHeader& header) {
  out.append(kMagic, sizeof(kMagic));
  out.push_back(static_cast<char>(header.version));
  out.push_back(static_cast<char>(header.flags));
  append_u16(out, 0);  // reserved
  append_u64(out, header.template_id);
  append_u32(out, header.epoch);
  append_u32(out, header.run_count);
  append_u32(out, header.body_len);
  append_u64(out, header.checksum);
}

void append_run_header(std::string& out, std::uint32_t offset,
                       std::uint32_t length) {
  append_u32(out, offset);
  append_u32(out, length);
}

Result<PatchFrame> decode_patch(std::string_view body) {
  if (body.size() < kFrameHeaderSize) {
    return Error{ErrorCode::kProtocolError, "patch frame truncated"};
  }
  const char* p = body.data();
  if (std::memcmp(p, kMagic, sizeof(kMagic)) != 0) {
    return Error{ErrorCode::kProtocolError, "patch frame bad magic"};
  }
  PatchFrame frame;
  frame.header.version = static_cast<std::uint8_t>(p[4]);
  if (frame.header.version != kVersion) {
    return Error{ErrorCode::kProtocolError,
                 "patch frame version " +
                     std::to_string(frame.header.version) + " unsupported"};
  }
  frame.header.flags = static_cast<std::uint8_t>(p[5]);
  frame.header.template_id = read_u64(p + 8);
  frame.header.epoch = read_u32(p + 16);
  frame.header.run_count = read_u32(p + 20);
  frame.header.body_len = read_u32(p + 24);
  frame.header.checksum = read_u64(p + 28);

  std::size_t pos = kFrameHeaderSize;
  frame.runs.reserve(frame.header.run_count);
  for (std::uint32_t i = 0; i < frame.header.run_count; ++i) {
    if (body.size() - pos < kRunHeaderSize) {
      return Error{ErrorCode::kProtocolError, "patch run header truncated"};
    }
    PatchRun run;
    run.offset = read_u32(p + pos);
    run.length = read_u32(p + pos + 4);
    pos += kRunHeaderSize;
    if (body.size() - pos < run.length) {
      return Error{ErrorCode::kProtocolError, "patch run payload truncated"};
    }
    run.data = p + pos;
    pos += run.length;
    frame.runs.push_back(run);
  }
  if (pos != body.size()) {
    return Error{ErrorCode::kProtocolError,
                 "patch frame has trailing bytes"};
  }
  return frame;
}

std::string render_nack_response(std::uint64_t template_id,
                                 std::string_view reason) {
  std::string body = "diff-wire nack: ";
  body.append(reason);
  body.push_back('\n');
  http::HttpResponse response;
  response.status = kNackStatus;
  response.reason = "Conflict";
  response.headers.push_back(http::Header{kDiffHeader, kNackValue});
  response.headers.push_back(
      http::Header{kTemplateHeader, format_template_id(template_id)});
  response.headers.push_back(http::Header{"Content-Type", "text/plain"});
  response.headers.push_back(
      http::Header{"Content-Length", std::to_string(body.size())});
  return http::serialize_response_head(response) + body;
}

}  // namespace bsoap::diffwire
