// Diff-wire protocol: frame format and negotiation header constants.
//
// Differential serialization (the paper) saves serialization CPU, but every
// send still ships the full envelope; the diff-wire protocol extends the
// saving to the socket. Client and server pin a template by ID (negotiated
// over HTTP headers on a full send), after which a non-structural update
// crosses the wire as a binary patch frame carrying only the dirty runs the
// update stage already computed — the Jelly-Patch idea applied to bSOAP's
// DUT runs. A content match degenerates to a header-only "replay" frame.
//
// Negotiation rides custom headers on the normal SOAP POST / response:
//
//   full send   C→S   X-BSoap-Diff: v1          offer: pin this body under
//                     X-BSoap-Template: <16hex> the given template ID
//   response    S→C   X-BSoap-Diff: ack         replica pinned (epoch 0)
//                     X-BSoap-Template: <16hex>
//   patch send  C→S   Content-Type: application/x-bsoap-patch
//                     X-BSoap-Diff: patch       body = one PatchFrame
//   nack        S→C   HTTP 409 +
//                     X-BSoap-Diff: nack        replica unusable: sender
//                     X-BSoap-Template: <16hex> must fall back to full+offer
//
// Every full send (first-time or structural fallback) re-offers, so the
// replica is re-pinned at epoch 0 whenever the patch chain breaks. Patch
// frames carry an epoch the receiver checks strictly (+1 per applied
// frame); a lost or replayed frame therefore NACKs instead of silently
// corrupting the replica, and the whole-body FNV-1a checksum backstops the
// epoch chain.
//
// Binary frame layout (all integers little-endian):
//
//   offset  size  field
//        0     4  magic "BSDP"
//        4     1  version (1)
//        5     1  flags (bit0 = replay: run_count is 0, body unchanged)
//        6     2  reserved (0)
//        8     8  template_id
//       16     4  epoch
//       20     4  run_count
//       24     4  body_len      (reconstructed body size; patches never
//                                change the length — structural updates
//                                fall back to full sends)
//       28     8  checksum      (FNV-1a 64 over the reconstructed body)
//       36   ...  run_count × { offset u32, length u32, bytes[length] }
//
// This layer is deliberately core-free: it knows HTTP headers and bytes,
// not templates. SendPipeline extracts runs from its update journal and
// hands generic (offset, length) records down here.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace bsoap::diffwire {

// --- negotiation headers ---------------------------------------------------

inline constexpr const char* kDiffHeader = "X-BSoap-Diff";
inline constexpr const char* kTemplateHeader = "X-BSoap-Template";
inline constexpr const char* kOfferValue = "v1";
inline constexpr const char* kAckValue = "ack";
inline constexpr const char* kNackValue = "nack";
inline constexpr const char* kPatchValue = "patch";
inline constexpr const char* kPatchContentType = "application/x-bsoap-patch";

// Second differential layer: template-preset wire compression. A client
// willing to preset-code adds `X-BSoap-Coding: deflate-preset` to its
// offers; the server echoes the header on the ack when the coding is
// enabled. Once acked, patch frames and structural-fallback full re-offers
// go out zlib-compressed with the DEFLATE window preset from the pinned
// generation's body (RFC 1950 FDICT — the DICTID commits both sides to the
// same dictionary bytes). A preset-coded body carries its template ID in
// kTemplateHeader, since the in-band ID is unreadable before decoding; a
// body the receiver cannot decode (replica evicted, dictionary drift)
// NACKs like any other replica conflict, so the coding inherits the
// protocol's full-send self-healing.
inline constexpr const char* kCodingHeader = "X-BSoap-Coding";
inline constexpr const char* kCodingPresetValue = "deflate-preset";

/// HTTP status a NACK answer carries (the patch conflicted with the
/// receiver's replica state).
inline constexpr int kNackStatus = 409;

/// Template IDs travel as fixed-width 16-digit lowercase hex.
std::string format_template_id(std::uint64_t id);
/// Parses a 16-digit hex template ID; false on malformed input.
bool parse_template_id(std::string_view text, std::uint64_t* id);

// --- checksum --------------------------------------------------------------

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x00000100000001b3ull;

/// FNV-1a 64. `state` chains calls, so a chunked body hashes without being
/// linearized: h = fnv1a(c0); h = fnv1a(c1, h); ...
inline std::uint64_t fnv1a(const char* data, std::size_t n,
                           std::uint64_t state = kFnvOffset) {
  for (std::size_t i = 0; i < n; ++i) {
    state ^= static_cast<unsigned char>(data[i]);
    state *= kFnvPrime;
  }
  return state;
}
inline std::uint64_t fnv1a(std::string_view text,
                           std::uint64_t state = kFnvOffset) {
  return fnv1a(text.data(), text.size(), state);
}

// --- patch frames ----------------------------------------------------------

inline constexpr char kMagic[4] = {'B', 'S', 'D', 'P'};
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::uint8_t kFlagReplay = 0x01;
inline constexpr std::size_t kFrameHeaderSize = 36;
inline constexpr std::size_t kRunHeaderSize = 8;

struct PatchHeader {
  std::uint8_t version = kVersion;
  std::uint8_t flags = 0;
  std::uint64_t template_id = 0;
  std::uint32_t epoch = 0;
  std::uint32_t run_count = 0;
  std::uint32_t body_len = 0;
  std::uint64_t checksum = 0;

  bool replay() const { return (flags & kFlagReplay) != 0; }
};

/// One decoded run record; `data` points into the frame the patch was
/// decoded from and is valid only while that buffer lives.
struct PatchRun {
  std::uint32_t offset = 0;
  std::uint32_t length = 0;
  const char* data = nullptr;
};

struct PatchFrame {
  PatchHeader header;
  std::vector<PatchRun> runs;
};

/// Appends the 36-byte frame header. The writer appends run records after
/// it: append_run_header then exactly `length` payload bytes each.
void append_patch_header(std::string& out, const PatchHeader& header);
void append_run_header(std::string& out, std::uint32_t offset,
                       std::uint32_t length);

/// Decodes a complete frame (an HTTP request body). Validates magic,
/// version and exact length; run bounds against body_len are the
/// ReplicaStore's job (it owns the replica the offsets index).
Result<PatchFrame> decode_patch(std::string_view body);

// --- canned responses ------------------------------------------------------

/// Renders the full HTTP 409 NACK answer (headers above + a short plain
/// text body), Content-Length framed so the sender's response reader stays
/// in sync and the connection survives.
std::string render_nack_response(std::uint64_t template_id,
                                 std::string_view reason);

}  // namespace bsoap::diffwire
