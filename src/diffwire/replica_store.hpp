// Receiver-side pinned replicas for the diff-wire protocol.
//
// The receiver's half of template pinning: the last full body seen for each
// template ID, kept verbatim so a patch frame reconstructs the sender's
// current envelope by overwriting dirty runs in place. The store is shared
// by every worker (blocking pool or reactor dispatch), so one mutex guards
// the map — a patch apply is short (a few memcpys plus one checksum pass)
// and requests for one template arrive serialized per connection anyway.
//
// Every validation failure is a NACK, and a NACK erases the replica: the
// sender's next send is a full body with a fresh offer, which re-pins at
// epoch 0. That makes the protocol self-healing — worst case it degrades to
// today's full-body sends, never to a corrupted reconstruction:
//
//   unknown ID          the offer was evicted or never arrived
//   epoch mismatch      a patch was lost, replayed, or another sender
//                       re-pinned the ID
//   body_len mismatch   structural drift (should be unreachable: structural
//                       updates fall back to full sends)
//   run out of bounds   malformed or mis-matched frame
//   checksum mismatch   any divergence the epoch chain missed
//
// Replicas are LRU-bounded by count and bytes, like TemplateStore: a pin
// past the budget evicts the least recently used replica, whose sender
// simply falls back to a full send on its next patch (NACK → re-pin).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/error.hpp"
#include "diffwire/wire_format.hpp"

namespace bsoap::diffwire {

/// Opaque per-replica state a higher layer hangs off a pinned replica —
/// e.g. the server's cached parse of the replica body. The store only
/// manages its lifetime: a re-pin drops the attachment (the body it
/// described is gone) and an eviction or NACK releases the store's
/// reference, while in-flight holders keep theirs via the shared_ptr.
class ReplicaAttachment {
 public:
  virtual ~ReplicaAttachment() = default;
};

class ReplicaStore {
 public:
  struct Options {
    std::size_t max_replicas = 64;
    std::size_t max_bytes = 0;  ///< 0 = no byte budget
    /// Keep a preset-compression dictionary (the pin-generation body tail,
    /// ≤ 32 KiB) alongside each replica so preset-coded bodies can be
    /// decoded. Dictionary bytes count against max_bytes. Enabled by the
    /// server when the deflate-preset coding is on.
    bool retain_dictionaries = false;
  };

  ReplicaStore() = default;
  explicit ReplicaStore(const Options& options) : options_(options) {}

  /// Pins (or re-pins) `body` under `id` at epoch 0. Returns true when the
  /// ID was already pinned — a re-offer, i.e. the sender fell back to a
  /// full send after a NACK, invalidation or structural update. Any pin
  /// starts a new generation and drops the previous attachment; the new
  /// generation is written to `*generation` when non-null, for a later
  /// attach().
  bool pin(std::uint64_t id, std::string_view body,
           std::uint64_t* generation = nullptr);

  /// What apply() observed under its lock, for callers that maintain
  /// per-replica attachments.
  struct ApplyInfo {
    std::shared_ptr<ReplicaAttachment> attachment;  ///< null if none attached
    std::uint64_t generation = 0;
  };

  /// Applies a decoded patch frame onto the pinned replica: validates ID,
  /// epoch, body length, run bounds and the whole-body checksum, then
  /// copies the reconstructed body into `reconstructed` and advances the
  /// replica's epoch. On any validation failure the replica is erased and
  /// an error describing the NACK reason is returned (kNotFound for an
  /// unknown ID, kProtocolError otherwise). On success `*info` (when
  /// non-null) receives the replica's attachment and generation.
  Status apply(const PatchFrame& frame, std::string* reconstructed,
               ApplyInfo* info = nullptr);

  /// Attaches per-replica state to `id`, but only while the replica is
  /// still the same pin generation the caller observed — a racing re-pin
  /// makes the attachment stale (it describes the old body) and the attach
  /// is refused. Returns true when attached.
  bool attach(std::uint64_t id, std::uint64_t generation,
              std::shared_ptr<ReplicaAttachment> attachment);

  /// The current attachment of `id` (test/ops hook; null when absent).
  std::shared_ptr<ReplicaAttachment> attachment(std::uint64_t id) const;

  /// Decodes a preset-coded (zlib FDICT) body against `id`'s pin-generation
  /// dictionary. The dictionary is copied under the lock and the inflate
  /// runs outside it, so a large body never stalls other workers. Any
  /// failure — unknown ID (kNotFound), dictionary mismatch, corrupt stream,
  /// `max_output` exceeded — erases the replica and counts a NACK, exactly
  /// like a bad patch frame: the sender falls back to an identity full send
  /// and re-pins.
  Result<std::string> decode_preset(std::uint64_t id, std::string_view body,
                                    std::size_t max_output);

  /// Drops one replica (true if it was pinned). Test/ops hook: the next
  /// patch for the ID NACKs, driving the sender's full-send fallback.
  bool invalidate(std::uint64_t id);

  /// Drops every replica (NACK-storm injection for tests and benches).
  void clear();

  struct Stats {
    std::uint64_t pins = 0;     ///< offers accepted (first pin per ID)
    std::uint64_t repins = 0;   ///< offers that replaced a pinned replica
    std::uint64_t applies = 0;  ///< patch frames applied (incl. replays)
    std::uint64_t replays = 0;  ///< header-only frames (run_count 0)
    std::uint64_t nacks = 0;    ///< rejected frames (replica erased)
    std::uint64_t evictions = 0;
    std::uint64_t pinned_replicas = 0;  ///< gauge
    std::uint64_t pinned_bytes = 0;     ///< gauge
  };
  Stats stats() const;

 private:
  struct Replica {
    std::uint64_t id = 0;
    std::string body;
    std::uint32_t epoch = 0;
    /// Pin-generation dictionary: the tail (≤ 32 KiB) of the body as it was
    /// pinned. Fixed until the next re-pin — `body` mutates under patches,
    /// but both sides preset from the offer-time bytes, so the dictionary
    /// must not follow.
    std::string dict;
    /// Monotonic pin counter: attach() refuses stale generations.
    std::uint64_t generation = 0;
    std::shared_ptr<ReplicaAttachment> attachment;
  };
  using LruIter = std::list<Replica>::iterator;

  /// Erases under the held lock and counts the NACK.
  Status nack_locked(LruIter it, std::uint64_t id, const std::string& reason);
  void remove_locked(LruIter it);
  void enforce_budget_locked();

  Options options_;
  mutable std::mutex mu_;
  std::list<Replica> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, LruIter> index_;
  std::size_t bytes_ = 0;
  std::uint64_t generation_counter_ = 0;
  Stats counters_;
};

}  // namespace bsoap::diffwire
