// Sender-side diff-wire negotiation state.
//
// One ClientSession per client instance tracks, per wire template ID, where
// the pinning handshake stands:
//
//     kNew ──full send + offer──► kOffered ──ack read──► kPinned(epoch 1)
//       ▲                            │                        │
//       │                            │full send re-offers     │patch sent:
//       │                            ▼ (stays offered)        ▼ epoch+1
//       └────────── nack read / unpin ◄───────────────────────┘
//
// Only kPinned sends patch frames; an offered-but-unacked ID keeps sending
// full bodies (offers are free — two headers). The state machine never
// blocks a send: any doubt resolves to a full send, and the receiver's
// epoch/checksum validation plus NACK fallback make that always correct.
//
// Wire IDs are the call's structure signature mixed with a per-session
// token, so two clients sending the same call shape pin distinct replicas
// server-side instead of clobbering each other's (a collision is not a
// correctness problem — the epoch chain NACKs and both fall back — just a
// performance one). Tokens are process-locally unique; across processes a
// collision degrades to the same NACK fallback.
//
// Not thread-safe, matching BsoapClient: one client, one sending thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

namespace bsoap::diffwire {

/// Client-side diff-wire counters (the satellite dashboard numbers).
struct ClientDiffStats {
  std::uint64_t offers_sent = 0;     ///< full sends carrying the offer header
  std::uint64_t acks = 0;            ///< offers the receiver acknowledged
  std::uint64_t patch_sends = 0;     ///< patch frames sent (incl. replays)
  std::uint64_t patch_replays = 0;   ///< header-only frames (content match)
  std::uint64_t patch_nacks = 0;     ///< NACKs read back (replica conflict)
  std::uint64_t fallback_full_sends = 0;  ///< full resends a NACK forced
  std::uint64_t bytes_saved = 0;     ///< Σ (logical body − patch frame) bytes
};

class ClientSession {
 public:
  ClientSession() : token_(next_token()) {}
  /// Fixed token (tests that need reproducible wire IDs).
  explicit ClientSession(std::uint64_t token) : token_(token) {}

  /// The on-wire template ID for a call structure signature.
  std::uint64_t wire_id(std::uint64_t signature) const {
    return mix(signature ^ token_);
  }

  /// True when `id` is pinned; `*epoch` receives the epoch the next patch
  /// frame must carry.
  bool should_patch(std::uint64_t id, std::uint32_t* epoch) const {
    const auto it = states_.find(id);
    if (it == states_.end() || it->second.state != State::kPinned) {
      return false;
    }
    *epoch = it->second.next_epoch;
    return true;
  }

  /// A full send carrying the offer header went out: the ID is offered
  /// (pinned state resets — the receiver re-pinned at epoch 0 and must ack
  /// again before patches resume).
  void note_offer_sent(std::uint64_t id) {
    Entry& e = states_[id];
    e.state = State::kOffered;
    e.next_epoch = 1;
    last_offer_ = id;
    ++stats_.offers_sent;
  }

  /// A patch frame was written in full: advance the epoch optimistically.
  /// If the receiver never processed it, the next frame's epoch gap NACKs
  /// and the sender falls back — never silently diverges.
  void note_patch_sent(std::uint64_t id, std::size_t logical_bytes,
                       std::size_t frame_bytes, bool replay) {
    Entry& e = states_[id];
    ++e.next_epoch;
    ++stats_.patch_sends;
    if (replay) ++stats_.patch_replays;
    if (logical_bytes > frame_bytes) {
      stats_.bytes_saved += logical_bytes - frame_bytes;
    }
  }

  /// An ack for `id` was read: offered → pinned. Ignored unless offered
  /// (a stale ack must not resurrect an unpinned ID).
  void note_ack(std::uint64_t id) {
    const auto it = states_.find(id);
    if (it == states_.end() || it->second.state != State::kOffered) return;
    it->second.state = State::kPinned;
    it->second.next_epoch = 1;
    ++stats_.acks;
  }

  /// A NACK for `id` was read: forget the pin; the caller resends full.
  void note_nack(std::uint64_t id) {
    states_.erase(id);
    ++stats_.patch_nacks;
    ++stats_.fallback_full_sends;
  }

  /// The wire ID the most recent offer went out under (0 = none yet) —
  /// lets the response reader ack without re-deriving the signature.
  std::uint64_t last_offer() const { return last_offer_; }

  // --- preset wire compression (the second differential layer) -----------

  /// Records the dictionary for `id`'s current pin generation: the tail of
  /// the full body that went out with the offer, i.e. the bytes the server
  /// pinned. Both sides preset the DEFLATE window from this generation's
  /// bytes until the next re-offer replaces it. No-op for an unknown ID
  /// (call after note_offer_sent).
  void set_dictionary(std::uint64_t id, std::string_view dict) {
    const auto it = states_.find(id);
    if (it == states_.end()) return;
    it->second.dict.assign(dict);
  }

  /// The server acked preset coding for `id` (kCodingHeader on a response).
  void note_coding_ack(std::uint64_t id) {
    const auto it = states_.find(id);
    if (it == states_.end()) return;
    it->second.coding_acked = true;
  }

  /// True when sends under `id` may go out preset-coded: the server acked
  /// the coding and a pin-generation dictionary is held. A NACK erases the
  /// entry (note_nack), so a stale dictionary can never outlive its pin.
  bool coding_ready(std::uint64_t id) const {
    const auto it = states_.find(id);
    return it != states_.end() && it->second.coding_acked &&
           !it->second.dict.empty();
  }

  /// The current pin generation's dictionary (empty view when none).
  std::string_view dictionary(std::uint64_t id) const {
    const auto it = states_.find(id);
    return it != states_.end() ? std::string_view(it->second.dict)
                               : std::string_view{};
  }

  const ClientDiffStats& stats() const { return stats_; }

 private:
  enum class State { kOffered, kPinned };
  struct Entry {
    State state = State::kOffered;
    std::uint32_t next_epoch = 1;
    /// Preset-coding state: the pin generation's dictionary bytes and
    /// whether the server acked the coding. coding_acked survives re-offers
    /// (the server re-acks on every offer response; if its replica is gone
    /// the preset body NACKs and note_nack clears everything).
    std::string dict;
    bool coding_acked = false;
  };

  /// splitmix64 finalizer: spreads signature ^ token over all 64 bits.
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  static std::uint64_t next_token() {
    static std::atomic<std::uint64_t> counter{0};
    return mix(counter.fetch_add(1, std::memory_order_relaxed) + 1);
  }

  std::uint64_t token_;
  std::unordered_map<std::uint64_t, Entry> states_;
  std::uint64_t last_offer_ = 0;
  ClientDiffStats stats_;
};

}  // namespace bsoap::diffwire
