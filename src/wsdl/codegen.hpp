// C++ client stub generation from WSDL (the wsdl2h/soapcpp2 role in gSOAP).
#pragma once

#include <string>

#include "common/error.hpp"
#include "wsdl/model.hpp"

namespace bsoap::wsdl {

struct CodegenOptions {
  /// Namespace for the generated stub classes.
  std::string cpp_namespace = "bsoap_stubs";
  /// Generated class name suffix.
  std::string class_suffix = "Stub";
};

/// Generates a self-contained C++ header with one stub class per service:
/// typed methods per operation that build the RpcCall, invoke it through a
/// BsoapClient (so repeated calls get differential serialization), and
/// decode the typed result. Fails on types the mapping cannot express.
Result<std::string> generate_client_stub(const WsdlDocument& document,
                                         const CodegenOptions& options);

}  // namespace bsoap::wsdl
