#include "wsdl/parser.hpp"

#include <string>

#include "xml/pull_parser.hpp"
#include "xml/qname.hpp"

namespace bsoap::wsdl {
namespace {

using xml::XmlEvent;
using xml::XmlPullParser;

std::string_view local_name(const XmlPullParser& parser) {
  return xml::split_qname(parser.name()).local;
}

std::string attribute_or_empty(const XmlPullParser& parser,
                               std::string_view name) {
  // WSDL attributes are unprefixed except the wsdl:arrayType annotation;
  // match by local name so prefixed variants also resolve.
  for (const xml::XmlAttribute& attr : parser.attributes()) {
    if (attr.name == name || xml::split_qname(attr.name).local == name) {
      return attr.value;
    }
  }
  return {};
}

/// Consumes events until the end of the current element.
Status skip_subtree(XmlPullParser* parser) {
  std::size_t depth = 1;
  while (depth > 0) {
    Result<XmlEvent> event = parser->next();
    if (!event.ok()) return event.error();
    if (event.value() == XmlEvent::kStartElement) ++depth;
    else if (event.value() == XmlEvent::kEndElement) --depth;
    else if (event.value() == XmlEvent::kEof) {
      return Error{ErrorCode::kParseError, "EOF inside WSDL element"};
    }
  }
  return Status{};
}

class WsdlParser {
 public:
  explicit WsdlParser(std::string_view document) : parser_(document) {}

  Result<WsdlDocument> parse() {
    Result<XmlEvent> event = parser_.next();
    if (!event.ok()) return event.error();
    if (event.value() != XmlEvent::kStartElement ||
        local_name(parser_) != "definitions") {
      return Error{ErrorCode::kParseError, "expected <definitions>"};
    }
    doc_.name = attribute_or_empty(parser_, "name");
    doc_.target_namespace = attribute_or_empty(parser_, "targetNamespace");

    for (;;) {
      event = parser_.next();
      if (!event.ok()) return event.error();
      if (event.value() == XmlEvent::kEndElement) break;  // </definitions>
      if (event.value() == XmlEvent::kText) continue;
      if (event.value() != XmlEvent::kStartElement) {
        return Error{ErrorCode::kParseError, "unexpected EOF in definitions"};
      }
      const std::string_view section = local_name(parser_);
      if (section == "types") {
        BSOAP_RETURN_IF_ERROR(parse_types());
      } else if (section == "message") {
        BSOAP_RETURN_IF_ERROR(parse_message());
      } else if (section == "portType") {
        BSOAP_RETURN_IF_ERROR(parse_port_type());
      } else if (section == "binding") {
        BSOAP_RETURN_IF_ERROR(parse_binding());
      } else if (section == "service") {
        BSOAP_RETURN_IF_ERROR(parse_service());
      } else {
        BSOAP_RETURN_IF_ERROR(skip_subtree(&parser_));  // documentation etc.
      }
    }

    resolve_array_parts();
    BSOAP_RETURN_IF_ERROR(doc_.validate());
    return std::move(doc_);
  }

 private:
  Status parse_types() {
    // <types> … <schema> … complexTypes … — other schema content skipped.
    std::size_t depth = 1;
    while (depth > 0) {
      Result<XmlEvent> event = parser_.next();
      if (!event.ok()) return event.error();
      switch (event.value()) {
        case XmlEvent::kStartElement:
          if (local_name(parser_) == "complexType") {
            BSOAP_RETURN_IF_ERROR(parse_complex_type());
          } else {
            ++depth;
          }
          break;
        case XmlEvent::kEndElement:
          --depth;
          break;
        case XmlEvent::kText:
          break;
        case XmlEvent::kEof:
          return Error{ErrorCode::kParseError, "EOF inside <types>"};
      }
    }
    return Status{};
  }

  Status parse_complex_type() {
    ComplexType type;
    type.name = attribute_or_empty(parser_, "name");
    if (type.name.empty()) {
      return Error{ErrorCode::kParseError, "complexType without name"};
    }
    std::size_t depth = 1;
    while (depth > 0) {
      Result<XmlEvent> event = parser_.next();
      if (!event.ok()) return event.error();
      switch (event.value()) {
        case XmlEvent::kStartElement: {
          const std::string_view elem = local_name(parser_);
          if (elem == "element") {
            TypedField field;
            field.name = attribute_or_empty(parser_, "name");
            const std::string type_attr = attribute_or_empty(parser_, "type");
            field.type = xsd_type_from_qname(type_attr);
            if (field.type == XsdType::kComplex) {
              field.type_name = std::string(xml::split_qname(type_attr).local);
            }
            type.fields.push_back(std::move(field));
          } else if (elem == "attribute") {
            // SOAP-ENC array restriction: wsdl:arrayType="xsd:double[]".
            std::string array_type = attribute_or_empty(parser_, "arrayType");
            if (!array_type.empty()) {
              const std::size_t bracket = array_type.find('[');
              if (bracket != std::string::npos) {
                array_type.resize(bracket);
              }
              type.array_of = array_type;
            }
          }
          ++depth;
          break;
        }
        case XmlEvent::kEndElement:
          --depth;
          break;
        case XmlEvent::kText:
          break;
        case XmlEvent::kEof:
          return Error{ErrorCode::kParseError, "EOF inside complexType"};
      }
    }
    doc_.types.push_back(std::move(type));
    return Status{};
  }

  Status parse_message() {
    Message message;
    message.name = attribute_or_empty(parser_, "name");
    for (;;) {
      Result<XmlEvent> event = parser_.next();
      if (!event.ok()) return event.error();
      if (event.value() == XmlEvent::kEndElement) break;
      if (event.value() == XmlEvent::kText) continue;
      if (event.value() != XmlEvent::kStartElement) {
        return Error{ErrorCode::kParseError, "EOF inside <message>"};
      }
      if (local_name(parser_) == "part") {
        TypedField part;
        part.name = attribute_or_empty(parser_, "name");
        const std::string type_attr = attribute_or_empty(parser_, "type");
        part.type = xsd_type_from_qname(type_attr);
        if (part.type == XsdType::kComplex) {
          part.type_name = std::string(xml::split_qname(type_attr).local);
        }
        message.parts.push_back(std::move(part));
      }
      BSOAP_RETURN_IF_ERROR(skip_subtree(&parser_));
    }
    doc_.messages.push_back(std::move(message));
    return Status{};
  }

  Status parse_port_type() {
    PortType port_type;
    port_type.name = attribute_or_empty(parser_, "name");
    for (;;) {
      Result<XmlEvent> event = parser_.next();
      if (!event.ok()) return event.error();
      if (event.value() == XmlEvent::kEndElement) break;
      if (event.value() == XmlEvent::kText) continue;
      if (event.value() != XmlEvent::kStartElement) {
        return Error{ErrorCode::kParseError, "EOF inside <portType>"};
      }
      if (local_name(parser_) != "operation") {
        BSOAP_RETURN_IF_ERROR(skip_subtree(&parser_));
        continue;
      }
      Operation op;
      op.name = attribute_or_empty(parser_, "name");
      for (;;) {
        event = parser_.next();
        if (!event.ok()) return event.error();
        if (event.value() == XmlEvent::kEndElement) break;
        if (event.value() == XmlEvent::kText) continue;
        if (event.value() != XmlEvent::kStartElement) {
          return Error{ErrorCode::kParseError, "EOF inside <operation>"};
        }
        const std::string_view role = local_name(parser_);
        const std::string message_attr = attribute_or_empty(parser_, "message");
        const std::string local(xml::split_qname(message_attr).local);
        if (role == "input") op.input_message = local;
        else if (role == "output") op.output_message = local;
        BSOAP_RETURN_IF_ERROR(skip_subtree(&parser_));
      }
      port_type.operations.push_back(std::move(op));
    }
    doc_.port_types.push_back(std::move(port_type));
    return Status{};
  }

  Status parse_binding() {
    // Only soapAction values are extracted; the rest mirrors the portType.
    std::size_t depth = 1;
    std::string current_operation;
    while (depth > 0) {
      Result<XmlEvent> event = parser_.next();
      if (!event.ok()) return event.error();
      switch (event.value()) {
        case XmlEvent::kStartElement: {
          const std::string_view elem = local_name(parser_);
          if (elem == "operation") {
            const std::string name = attribute_or_empty(parser_, "name");
            if (!name.empty()) {
              current_operation = name;
            } else if (!current_operation.empty()) {
              // <soap:operation soapAction="...">
              const std::string action =
                  attribute_or_empty(parser_, "soapAction");
              if (!action.empty()) {
                set_soap_action(current_operation, action);
              }
            }
          }
          ++depth;
          break;
        }
        case XmlEvent::kEndElement:
          --depth;
          break;
        case XmlEvent::kText:
          break;
        case XmlEvent::kEof:
          return Error{ErrorCode::kParseError, "EOF inside <binding>"};
      }
    }
    return Status{};
  }

  Status parse_service() {
    Service service;
    service.name = attribute_or_empty(parser_, "name");
    for (;;) {
      Result<XmlEvent> event = parser_.next();
      if (!event.ok()) return event.error();
      if (event.value() == XmlEvent::kEndElement) break;
      if (event.value() == XmlEvent::kText) continue;
      if (event.value() != XmlEvent::kStartElement) {
        return Error{ErrorCode::kParseError, "EOF inside <service>"};
      }
      if (local_name(parser_) != "port") {
        BSOAP_RETURN_IF_ERROR(skip_subtree(&parser_));
        continue;
      }
      ServicePort port;
      port.name = attribute_or_empty(parser_, "name");
      port.binding =
          std::string(xml::split_qname(attribute_or_empty(parser_, "binding")).local);
      for (;;) {
        event = parser_.next();
        if (!event.ok()) return event.error();
        if (event.value() == XmlEvent::kEndElement) break;
        if (event.value() == XmlEvent::kText) continue;
        if (event.value() != XmlEvent::kStartElement) {
          return Error{ErrorCode::kParseError, "EOF inside <port>"};
        }
        if (local_name(parser_) == "address") {
          port.location = attribute_or_empty(parser_, "location");
        }
        BSOAP_RETURN_IF_ERROR(skip_subtree(&parser_));
      }
      service.ports.push_back(std::move(port));
    }
    doc_.services.push_back(std::move(service));
    return Status{};
  }

  void set_soap_action(const std::string& operation, const std::string& action) {
    for (PortType& pt : doc_.port_types) {
      for (Operation& op : pt.operations) {
        if (op.name == operation) op.soap_action = action;
      }
    }
    pending_actions_.emplace_back(operation, action);
  }

  /// Message parts referencing array complexTypes become kArray with the
  /// element type resolved; soapActions recorded before portTypes parse are
  /// re-applied.
  void resolve_array_parts() {
    for (Message& m : doc_.messages) {
      for (TypedField& part : m.parts) {
        if (part.type != XsdType::kComplex) continue;
        const ComplexType* type = doc_.find_type(part.type_name);
        if (type != nullptr && type->is_array()) {
          part.type = XsdType::kArray;
          part.type_name = type->array_of;
        }
      }
    }
    for (ComplexType& t : doc_.types) {
      for (TypedField& f : t.fields) {
        if (f.type != XsdType::kComplex) continue;
        const ComplexType* type = doc_.find_type(f.type_name);
        if (type != nullptr && type->is_array()) {
          f.type = XsdType::kArray;
          f.type_name = type->array_of;
        }
      }
    }
    for (const auto& [operation, action] : pending_actions_) {
      for (PortType& pt : doc_.port_types) {
        for (Operation& op : pt.operations) {
          if (op.name == operation) op.soap_action = action;
        }
      }
    }
  }

  XmlPullParser parser_;
  WsdlDocument doc_;
  std::vector<std::pair<std::string, std::string>> pending_actions_;
};

}  // namespace

Result<WsdlDocument> parse_wsdl(std::string_view document) {
  return WsdlParser(document).parse();
}

}  // namespace bsoap::wsdl
