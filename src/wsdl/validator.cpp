#include "wsdl/validator.hpp"

#include "xml/qname.hpp"

namespace bsoap::wsdl {
namespace {

using soap::Value;
using soap::ValueKind;

Error mismatch(const std::string& what) {
  return Error{ErrorCode::kInvalidArgument, what};
}

Status validate_value(const WsdlDocument& document, const TypedField& field,
                      const Value& value);

Status validate_struct(const WsdlDocument& document, const ComplexType& type,
                       const Value& value) {
  if (value.kind() != ValueKind::kStruct) {
    return mismatch("expected struct for complexType " + type.name);
  }
  if (value.members().size() != type.fields.size()) {
    return mismatch("complexType " + type.name + " expects " +
                    std::to_string(type.fields.size()) + " members, got " +
                    std::to_string(value.members().size()));
  }
  for (std::size_t i = 0; i < type.fields.size(); ++i) {
    const TypedField& field = type.fields[i];
    const Value::Member& member = value.members()[i];
    if (member.name != field.name) {
      return mismatch("complexType " + type.name + " member " +
                      std::to_string(i) + " should be '" + field.name +
                      "', got '" + member.name + "'");
    }
    BSOAP_RETURN_IF_ERROR(validate_value(document, field, member.value));
  }
  return Status{};
}

Status validate_array(const WsdlDocument& document, const TypedField& field,
                      const Value& value) {
  const XsdType element = xsd_type_from_qname(field.type_name);
  switch (element) {
    case XsdType::kDouble:
    case XsdType::kFloat:
      if (value.kind() != ValueKind::kDoubleArray) {
        return mismatch("part " + field.name + " expects a double array");
      }
      return Status{};
    case XsdType::kInt:
    case XsdType::kLong:
      if (value.kind() != ValueKind::kIntArray) {
        return mismatch("part " + field.name + " expects an int array");
      }
      return Status{};
    case XsdType::kComplex: {
      const std::string_view local = xml::split_qname(field.type_name).local;
      if (local == "MIO") {
        if (value.kind() != ValueKind::kMioArray) {
          return mismatch("part " + field.name + " expects an MIO array");
        }
        return Status{};
      }
      // Generic struct arrays are modelled as a struct of repeated members;
      // accept a struct whose members each validate against the element
      // complexType.
      const ComplexType* element_type = document.find_type(local);
      if (element_type == nullptr) {
        return mismatch("unknown array element type " +
                        std::string(field.type_name));
      }
      if (value.kind() != ValueKind::kStruct) {
        return mismatch("part " + field.name + " expects an array value");
      }
      for (const Value::Member& member : value.members()) {
        BSOAP_RETURN_IF_ERROR(
            validate_struct(document, *element_type, member.value));
      }
      return Status{};
    }
    default:
      return mismatch("unsupported array element type " +
                      std::string(field.type_name));
  }
}

Status validate_value(const WsdlDocument& document, const TypedField& field,
                      const Value& value) {
  switch (field.type) {
    case XsdType::kInt:
      if (value.kind() != ValueKind::kInt32) {
        return mismatch("field " + field.name + " expects xsd:int");
      }
      return Status{};
    case XsdType::kLong:
      if (value.kind() != ValueKind::kInt64 &&
          value.kind() != ValueKind::kInt32) {
        return mismatch("field " + field.name + " expects xsd:long");
      }
      return Status{};
    case XsdType::kDouble:
    case XsdType::kFloat:
      if (value.kind() != ValueKind::kDouble) {
        return mismatch("field " + field.name + " expects xsd:double");
      }
      return Status{};
    case XsdType::kBoolean:
      if (value.kind() != ValueKind::kBool) {
        return mismatch("field " + field.name + " expects xsd:boolean");
      }
      return Status{};
    case XsdType::kString:
      if (value.kind() != ValueKind::kString) {
        return mismatch("field " + field.name + " expects xsd:string");
      }
      return Status{};
    case XsdType::kComplex: {
      if (field.type_name == "MIO") {
        // MIOs may appear as a struct {x, y, v}.
        if (value.kind() == ValueKind::kStruct) return Status{};
        return mismatch("field " + field.name + " expects an MIO struct");
      }
      const ComplexType* type = document.find_type(field.type_name);
      if (type == nullptr) {
        return mismatch("unknown complexType " + field.type_name);
      }
      return validate_struct(document, *type, value);
    }
    case XsdType::kArray:
      return validate_array(document, field, value);
  }
  return Status{};
}

}  // namespace

Status validate_call(const WsdlDocument& document, const soap::RpcCall& call) {
  const Operation* op = document.find_operation(call.method);
  if (op == nullptr) {
    return Error{ErrorCode::kNotFound, "no operation '" + call.method + "'"};
  }
  if (call.service_namespace != document.target_namespace) {
    return mismatch("namespace '" + call.service_namespace +
                    "' does not match targetNamespace '" +
                    document.target_namespace + "'");
  }
  const Message* input = document.find_message(op->input_message);
  BSOAP_ASSERT(input != nullptr);  // guaranteed by WsdlDocument::validate
  if (call.params.size() != input->parts.size()) {
    return mismatch("operation " + call.method + " expects " +
                    std::to_string(input->parts.size()) + " params, got " +
                    std::to_string(call.params.size()));
  }
  for (std::size_t i = 0; i < input->parts.size(); ++i) {
    if (call.params[i].name != input->parts[i].name) {
      return mismatch("param " + std::to_string(i) + " should be '" +
                      input->parts[i].name + "', got '" + call.params[i].name +
                      "'");
    }
    BSOAP_RETURN_IF_ERROR(
        validate_value(document, input->parts[i], call.params[i].value));
  }
  return Status{};
}

Status validate_result(const WsdlDocument& document,
                       std::string_view operation_name,
                       const soap::Value& result) {
  const Operation* op = document.find_operation(operation_name);
  if (op == nullptr) {
    return Error{ErrorCode::kNotFound,
                 "no operation '" + std::string(operation_name) + "'"};
  }
  if (op->output_message.empty()) {
    return Error{ErrorCode::kInvalidArgument,
                 "operation '" + op->name + "' is one-way"};
  }
  const Message* output = document.find_message(op->output_message);
  BSOAP_ASSERT(output != nullptr);
  if (output->parts.empty()) return Status{};
  return validate_value(document, output->parts.front(), result);
}

Result<soap::RpcCall> make_call_skeleton(const WsdlDocument& document,
                                         std::string_view operation_name,
                                         std::size_t array_size) {
  const Operation* op = document.find_operation(operation_name);
  if (op == nullptr) {
    return Error{ErrorCode::kNotFound,
                 "no operation '" + std::string(operation_name) + "'"};
  }
  const Message* input = document.find_message(op->input_message);
  BSOAP_ASSERT(input != nullptr);

  soap::RpcCall call;
  call.method = op->name;
  call.service_namespace = document.target_namespace;
  for (const TypedField& part : input->parts) {
    Value value;
    switch (part.type) {
      case XsdType::kInt: value = Value::from_int(0); break;
      case XsdType::kLong: value = Value::from_int64(0); break;
      case XsdType::kDouble:
      case XsdType::kFloat: value = Value::from_double(0.0); break;
      case XsdType::kBoolean: value = Value::from_bool(false); break;
      case XsdType::kString: value = Value::from_string(""); break;
      case XsdType::kArray: {
        const XsdType element = xsd_type_from_qname(part.type_name);
        if (element == XsdType::kDouble || element == XsdType::kFloat) {
          value = Value::from_double_array(std::vector<double>(array_size, 0.0));
        } else if (element == XsdType::kInt || element == XsdType::kLong) {
          value = Value::from_int_array(
              std::vector<std::int32_t>(array_size, 0));
        } else if (xml::split_qname(part.type_name).local == "MIO") {
          value = Value::from_mio_array(
              std::vector<soap::Mio>(array_size, soap::Mio{}));
        } else {
          return Error{ErrorCode::kUnsupported,
                       "cannot build skeleton for array of " + part.type_name};
        }
        break;
      }
      case XsdType::kComplex: {
        const ComplexType* type = document.find_type(part.type_name);
        if (type == nullptr) {
          return Error{ErrorCode::kNotFound,
                       "unknown complexType " + part.type_name};
        }
        Value structure = Value::make_struct();
        for (const TypedField& field : type->fields) {
          switch (field.type) {
            case XsdType::kInt: structure.add_member(field.name, Value::from_int(0)); break;
            case XsdType::kLong: structure.add_member(field.name, Value::from_int64(0)); break;
            case XsdType::kDouble:
            case XsdType::kFloat: structure.add_member(field.name, Value::from_double(0.0)); break;
            case XsdType::kBoolean: structure.add_member(field.name, Value::from_bool(false)); break;
            default: structure.add_member(field.name, Value::from_string("")); break;
          }
        }
        value = std::move(structure);
        break;
      }
    }
    call.params.push_back(soap::Param{part.name, std::move(value)});
  }
  return call;
}

}  // namespace bsoap::wsdl
