// Validation of RPC calls against a WSDL description.
//
// Differential serialization relies on calls keeping the same structure; a
// WSDL-validated call is guaranteed to match its operation's message shape,
// so template reuse is safe by construction.
#pragma once

#include "common/error.hpp"
#include "soap/value.hpp"
#include "wsdl/model.hpp"

namespace bsoap::wsdl {

/// Checks that `call` matches an operation of `document`: the method exists,
/// the namespace equals the target namespace, parameter names/order follow
/// the input message parts, and each value's kind matches the declared type
/// (arrays element-wise, structs field-wise against their complexType).
Status validate_call(const WsdlDocument& document, const soap::RpcCall& call);

/// Checks a response value against the operation's output message.
Status validate_result(const WsdlDocument& document,
                       std::string_view operation_name,
                       const soap::Value& result);

/// Builds a default-initialized RpcCall skeleton (zeros/empty strings,
/// arrays sized `array_size`) for an operation — useful for creating bound
/// messages whose structure is WSDL-derived.
Result<soap::RpcCall> make_call_skeleton(const WsdlDocument& document,
                                         std::string_view operation_name,
                                         std::size_t array_size);

}  // namespace bsoap::wsdl
