// WSDL 1.1 document generation from a WsdlDocument model.
#pragma once

#include <string>

#include "wsdl/model.hpp"

namespace bsoap::wsdl {

/// Serializes the model as a WSDL 1.1 document with an RPC/encoded SOAP 1.1
/// binding per portType. The output round-trips through parse_wsdl.
std::string write_wsdl(const WsdlDocument& document);

/// Convenience builder for constructing documents programmatically.
class ServiceBuilder {
 public:
  ServiceBuilder(std::string service_name, std::string target_namespace);

  /// Declares a struct complexType.
  ServiceBuilder& add_struct_type(std::string name,
                                  std::vector<TypedField> fields);

  /// Declares a SOAP-ENC array type (name, element type qname).
  ServiceBuilder& add_array_type(std::string name, std::string element_type);

  /// Declares an operation: request parts plus an optional result type.
  /// Messages "<op>Request"/"<op>Response" are created automatically.
  ServiceBuilder& add_operation(std::string name,
                                std::vector<TypedField> inputs,
                                TypedField output);
  ServiceBuilder& add_one_way_operation(std::string name,
                                        std::vector<TypedField> inputs);

  /// Sets the endpoint URL.
  ServiceBuilder& set_location(std::string url);

  WsdlDocument build() const;

 private:
  WsdlDocument doc_;
  std::string location_ = "http://localhost/";
};

}  // namespace bsoap::wsdl
