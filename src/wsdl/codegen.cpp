#include "wsdl/codegen.hpp"

#include "xml/qname.hpp"

namespace bsoap::wsdl {
namespace {

/// C++ parameter type for a WSDL field, or empty if unmappable.
std::string cpp_param_type(const TypedField& field) {
  switch (field.type) {
    case XsdType::kInt: return "std::int32_t";
    case XsdType::kLong: return "std::int64_t";
    case XsdType::kDouble:
    case XsdType::kFloat: return "double";
    case XsdType::kBoolean: return "bool";
    case XsdType::kString: return "const std::string&";
    case XsdType::kComplex: return "const bsoap::soap::Value&";
    case XsdType::kArray: {
      const XsdType element = xsd_type_from_qname(field.type_name);
      if (element == XsdType::kDouble || element == XsdType::kFloat) {
        return "const std::vector<double>&";
      }
      if (element == XsdType::kInt || element == XsdType::kLong) {
        return "const std::vector<std::int32_t>&";
      }
      if (xml::split_qname(field.type_name).local == "MIO") {
        return "const std::vector<bsoap::soap::Mio>&";
      }
      return {};
    }
  }
  return {};
}

/// Expression converting a C++ argument into a soap::Value.
std::string to_value_expr(const TypedField& field) {
  const std::string arg = field.name;
  switch (field.type) {
    case XsdType::kInt: return "bsoap::soap::Value::from_int(" + arg + ")";
    case XsdType::kLong: return "bsoap::soap::Value::from_int64(" + arg + ")";
    case XsdType::kDouble:
    case XsdType::kFloat:
      return "bsoap::soap::Value::from_double(" + arg + ")";
    case XsdType::kBoolean: return "bsoap::soap::Value::from_bool(" + arg + ")";
    case XsdType::kString:
      return "bsoap::soap::Value::from_string(" + arg + ")";
    case XsdType::kComplex: return arg;
    case XsdType::kArray: {
      const XsdType element = xsd_type_from_qname(field.type_name);
      if (element == XsdType::kDouble || element == XsdType::kFloat) {
        return "bsoap::soap::Value::from_double_array(" + arg + ")";
      }
      if (element == XsdType::kInt || element == XsdType::kLong) {
        return "bsoap::soap::Value::from_int_array(" + arg + ")";
      }
      return "bsoap::soap::Value::from_mio_array(" + arg + ")";
    }
  }
  return arg;
}

/// Return type and value-decoding expression for an output part.
struct ResultMapping {
  std::string cpp_type;
  std::string decode;  ///< expression over `value` (a soap::Value)
};

ResultMapping result_mapping(const TypedField& part) {
  switch (part.type) {
    case XsdType::kInt: return {"std::int32_t", "value.as_int()"};
    case XsdType::kLong: return {"std::int64_t", "value.as_int64()"};
    case XsdType::kDouble:
    case XsdType::kFloat: return {"double", "value.as_double()"};
    case XsdType::kBoolean: return {"bool", "value.as_bool()"};
    case XsdType::kString: return {"std::string", "value.as_string()"};
    case XsdType::kArray: {
      const XsdType element = xsd_type_from_qname(part.type_name);
      if (element == XsdType::kDouble || element == XsdType::kFloat) {
        return {"std::vector<double>", "value.doubles()"};
      }
      if (element == XsdType::kInt || element == XsdType::kLong) {
        return {"std::vector<std::int32_t>", "value.ints()"};
      }
      return {"std::vector<bsoap::soap::Mio>", "value.mios()"};
    }
    case XsdType::kComplex:
      return {"bsoap::soap::Value", "value"};
  }
  return {"bsoap::soap::Value", "value"};
}

}  // namespace

Result<std::string> generate_client_stub(const WsdlDocument& document,
                                         const CodegenOptions& options) {
  std::string out;
  out += "// Generated from WSDL '" + document.name +
         "' by bsoap wsdl2cpp. Do not edit.\n";
  out += "#pragma once\n\n";
  out += "#include <cstdint>\n#include <string>\n#include <utility>\n";
  out += "#include <vector>\n\n";
  out += "#include \"core/client.hpp\"\n#include \"net/transport.hpp\"\n";
  out += "#include \"soap/value.hpp\"\n\n";
  out += "namespace " + options.cpp_namespace + " {\n";

  for (const Service& service : document.services) {
    const std::string class_name = service.name + options.class_suffix;
    out += "\n/// Client stub for service \"" + service.name + "\" (" +
           document.target_namespace + ").\n";
    out += "class " + class_name + " {\n public:\n";
    out += "  explicit " + class_name +
           "(bsoap::net::Transport& transport,\n"
           "      bsoap::core::BsoapClientConfig config = {})\n"
           "      : client_(transport, std::move(config)) {}\n\n";

    for (const PortType& port_type : document.port_types) {
      for (const Operation& op : port_type.operations) {
        const Message* input = document.find_message(op.input_message);
        BSOAP_ASSERT(input != nullptr);

        // Signature.
        std::string params;
        for (const TypedField& part : input->parts) {
          const std::string type = cpp_param_type(part);
          if (type.empty()) {
            return Error{ErrorCode::kUnsupported,
                         "operation " + op.name + " part " + part.name +
                             ": no C++ mapping for type " + part.type_name};
          }
          if (!params.empty()) params += ", ";
          params += type + " " + part.name;
        }

        std::string build_call;
        build_call += "    bsoap::soap::RpcCall call;\n";
        build_call += "    call.method = \"" + op.name + "\";\n";
        build_call += "    call.service_namespace = \"" +
                      document.target_namespace + "\";\n";
        for (const TypedField& part : input->parts) {
          build_call += "    call.params.push_back({\"" + part.name + "\", " +
                        to_value_expr(part) + "});\n";
        }

        if (op.output_message.empty()) {
          // One-way: send without awaiting a response.
          out += "  bsoap::Result<bsoap::core::SendReport> " + op.name + "(" +
                 params + ") {\n" + build_call +
                 "    return client_.send_call(call);\n  }\n\n";
          continue;
        }
        const Message* output = document.find_message(op.output_message);
        BSOAP_ASSERT(output != nullptr);
        const ResultMapping mapping =
            output->parts.empty()
                ? ResultMapping{"bsoap::soap::Value", "value"}
                : result_mapping(output->parts.front());
        out += "  bsoap::Result<" + mapping.cpp_type + "> " + op.name + "(" +
               params + ") {\n" + build_call;
        out += "    bsoap::Result<bsoap::soap::Value> result = "
               "client_.invoke(call);\n";
        out += "    if (!result.ok()) return result.error();\n";
        out += "    const bsoap::soap::Value& value = result.value();\n";
        out += "    return " + mapping.decode + ";\n  }\n\n";
      }
    }

    out += "  bsoap::core::BsoapClient& client() { return client_; }\n\n";
    out += " private:\n  bsoap::core::BsoapClient client_;\n};\n";
  }

  out += "\n}  // namespace " + options.cpp_namespace + "\n";
  return out;
}

}  // namespace bsoap::wsdl
