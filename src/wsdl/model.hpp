// WSDL 1.1 document model.
//
// Web Services are described by WSDL (paper Section 1: "WSDL provides a
// precise description of a Web Service interface and of the communication
// protocols it supports"). This module models the subset used by SOAP 1.1
// RPC/encoded services — types (a small XML Schema subset), messages, port
// types, bindings and services — and is consumed by the parser, writer,
// call validator, and C++ stub generator.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "soap/value.hpp"

namespace bsoap::wsdl {

/// XML Schema base types supported for message parts.
enum class XsdType {
  kInt,
  kLong,
  kDouble,
  kFloat,
  kBoolean,
  kString,
  kComplex,  ///< named complexType defined in <types>
  kArray,    ///< SOAP-ENC array of a given element type
};

const char* xsd_type_name(XsdType type) noexcept;

/// Resolves "xsd:int" etc.; kComplex for anything namespaced elsewhere.
XsdType xsd_type_from_qname(std::string_view qname) noexcept;

/// A typed slot: element of a complexType sequence or a message part.
struct TypedField {
  std::string name;
  XsdType type = XsdType::kString;
  /// For kComplex: the complexType name; for kArray: the element type qname
  /// (e.g. "xsd:double" or "tns:MIO").
  std::string type_name;
};

/// <complexType name="..."><sequence>…</sequence></complexType>, or a
/// SOAP-ENC array restriction when `array_of` is nonempty.
struct ComplexType {
  std::string name;
  std::vector<TypedField> fields;
  std::string array_of;  ///< element type qname; empty for struct types

  bool is_array() const { return !array_of.empty(); }
};

/// <message name="..."><part name="..." type="..."/></message>
struct Message {
  std::string name;
  std::vector<TypedField> parts;
};

/// One <operation> of a portType, with resolved input/output messages.
struct Operation {
  std::string name;
  std::string input_message;   ///< message name (local)
  std::string output_message;  ///< empty for one-way operations
  std::string soap_action;     ///< from the binding
};

struct PortType {
  std::string name;
  std::vector<Operation> operations;
};

/// <service><port> endpoint address.
struct ServicePort {
  std::string name;
  std::string binding;
  std::string location;  ///< soap:address location URL
};

struct Service {
  std::string name;
  std::vector<ServicePort> ports;
};

/// A parsed WSDL document (single inlined schema, single portType binding —
/// the shape produced by period toolkits for RPC/encoded services).
struct WsdlDocument {
  std::string name;
  std::string target_namespace;
  std::vector<ComplexType> types;
  std::vector<Message> messages;
  std::vector<PortType> port_types;
  std::vector<Service> services;

  const ComplexType* find_type(std::string_view type_name) const;
  const Message* find_message(std::string_view message_name) const;
  const Operation* find_operation(std::string_view operation_name) const;

  /// Structural sanity: every referenced message/type exists.
  Status validate() const;
};

}  // namespace bsoap::wsdl
