// WSDL 1.1 parser (subset: inlined schema, RPC/encoded SOAP binding).
#pragma once

#include <string_view>

#include "common/error.hpp"
#include "wsdl/model.hpp"

namespace bsoap::wsdl {

/// Parses a WSDL document. Supported structure: <definitions> with <types>
/// (one inlined <schema> with complexTypes: sequences and SOAP-ENC array
/// restrictions), <message>/<part type=...>, <portType>/<operation>,
/// <binding> (soapAction extraction), and <service>/<port>/<soap:address>.
Result<WsdlDocument> parse_wsdl(std::string_view document);

}  // namespace bsoap::wsdl
