#include "wsdl/writer.hpp"

#include <cctype>

#include "buffer/sinks.hpp"
#include "soap/constants.hpp"
#include "xml/writer.hpp"

namespace bsoap::wsdl {
namespace {

std::string array_wrapper_name(const WsdlDocument& document,
                               const TypedField& part) {
  for (const ComplexType& type : document.types) {
    if (type.is_array() && type.array_of == part.type_name) return type.name;
  }
  // No declared wrapper: synthesize a stable name from the element type.
  std::string name = part.type_name;
  const std::size_t colon = name.find(':');
  if (colon != std::string::npos) name = name.substr(colon + 1);
  if (!name.empty()) {
    name[0] = static_cast<char>(
        std::toupper(static_cast<unsigned char>(name[0])));
  }
  return name + "Array";
}

std::string field_type_qname(const TypedField& field) {
  switch (field.type) {
    case XsdType::kComplex:
      return "tns:" + field.type_name;
    case XsdType::kArray:
      // Array parts reference the generated array complexType; callers
      // using the builder get "<Elem>Array" names.
      return "tns:" + field.type_name;
    default:
      return xsd_type_name(field.type);
  }
}

}  // namespace

std::string write_wsdl(const WsdlDocument& document) {
  buffer::StringSink sink;
  xml::XmlWriter<buffer::StringSink> writer(sink);
  writer.declaration();
  writer.start_element("wsdl:definitions");
  writer.attribute("name", document.name);
  writer.attribute("targetNamespace", document.target_namespace);
  writer.attribute("xmlns:wsdl", "http://schemas.xmlsoap.org/wsdl/");
  writer.attribute("xmlns:soap", "http://schemas.xmlsoap.org/wsdl/soap/");
  writer.attribute("xmlns:xsd", soap::kXsdNs);
  writer.attribute("xmlns:SOAP-ENC", soap::kSoapEncodingNs);
  writer.attribute("xmlns:tns", document.target_namespace);

  // <types> — one inlined schema.
  if (!document.types.empty()) {
    writer.start_element("wsdl:types");
    writer.start_element("xsd:schema");
    writer.attribute("targetNamespace", document.target_namespace);
    for (const ComplexType& type : document.types) {
      writer.start_element("xsd:complexType");
      writer.attribute("name", type.name);
      if (type.is_array()) {
        writer.start_element("xsd:complexContent");
        writer.start_element("xsd:restriction");
        writer.attribute("base", "SOAP-ENC:Array");
        writer.start_element("xsd:attribute");
        writer.attribute("ref", "SOAP-ENC:arrayType");
        writer.attribute("wsdl:arrayType", type.array_of + "[]");
        writer.end_element();
        writer.end_element();
        writer.end_element();
      } else {
        writer.start_element("xsd:sequence");
        for (const TypedField& field : type.fields) {
          writer.start_element("xsd:element");
          writer.attribute("name", field.name);
          writer.attribute("type", field_type_qname(field));
          writer.end_element();
        }
        writer.end_element();
      }
      writer.end_element();
    }
    writer.end_element();
    writer.end_element();
  }

  for (const Message& message : document.messages) {
    writer.start_element("wsdl:message");
    writer.attribute("name", message.name);
    for (const TypedField& part : message.parts) {
      writer.start_element("wsdl:part");
      writer.attribute("name", part.name);
      if (part.type == XsdType::kArray) {
        // Array parts reference their complexType wrapper by name if one is
        // declared; fall back to the raw element qname annotation.
        writer.attribute("type", "tns:" + array_wrapper_name(document, part));
      } else {
        writer.attribute("type", field_type_qname(part));
      }
      writer.end_element();
    }
    writer.end_element();
  }

  for (const PortType& port_type : document.port_types) {
    writer.start_element("wsdl:portType");
    writer.attribute("name", port_type.name);
    for (const Operation& op : port_type.operations) {
      writer.start_element("wsdl:operation");
      writer.attribute("name", op.name);
      writer.start_element("wsdl:input");
      writer.attribute("message", "tns:" + op.input_message);
      writer.end_element();
      if (!op.output_message.empty()) {
        writer.start_element("wsdl:output");
        writer.attribute("message", "tns:" + op.output_message);
        writer.end_element();
      }
      writer.end_element();
    }
    writer.end_element();

    // RPC/encoded SOAP binding mirroring the portType.
    writer.start_element("wsdl:binding");
    writer.attribute("name", port_type.name + "Binding");
    writer.attribute("type", "tns:" + port_type.name);
    writer.start_element("soap:binding");
    writer.attribute("style", "rpc");
    writer.attribute("transport", "http://schemas.xmlsoap.org/soap/http");
    writer.end_element();
    for (const Operation& op : port_type.operations) {
      writer.start_element("wsdl:operation");
      writer.attribute("name", op.name);
      writer.start_element("soap:operation");
      writer.attribute("soapAction",
                       op.soap_action.empty() ? op.name : op.soap_action);
      writer.end_element();
      writer.start_element("wsdl:input");
      writer.start_element("soap:body");
      writer.attribute("use", "encoded");
      writer.attribute("namespace", document.target_namespace);
      writer.attribute("encodingStyle", soap::kSoapEncodingNs);
      writer.end_element();
      writer.end_element();
      if (!op.output_message.empty()) {
        writer.start_element("wsdl:output");
        writer.start_element("soap:body");
        writer.attribute("use", "encoded");
        writer.attribute("namespace", document.target_namespace);
        writer.attribute("encodingStyle", soap::kSoapEncodingNs);
        writer.end_element();
        writer.end_element();
      }
      writer.end_element();
    }
    writer.end_element();
  }

  for (const Service& service : document.services) {
    writer.start_element("wsdl:service");
    writer.attribute("name", service.name);
    for (const ServicePort& port : service.ports) {
      writer.start_element("wsdl:port");
      writer.attribute("name", port.name);
      writer.attribute("binding", "tns:" + port.binding);
      writer.start_element("soap:address");
      writer.attribute("location", port.location);
      writer.end_element();
      writer.end_element();
    }
    writer.end_element();
  }

  writer.end_element();
  writer.finish();
  return sink.take();
}

ServiceBuilder::ServiceBuilder(std::string service_name,
                               std::string target_namespace) {
  doc_.name = service_name;
  doc_.target_namespace = std::move(target_namespace);
  PortType port_type;
  port_type.name = service_name + "PortType";
  doc_.port_types.push_back(std::move(port_type));
  Service service;
  service.name = std::move(service_name);
  doc_.services.push_back(std::move(service));
}

ServiceBuilder& ServiceBuilder::add_struct_type(std::string name,
                                                std::vector<TypedField> fields) {
  ComplexType type;
  type.name = std::move(name);
  type.fields = std::move(fields);
  doc_.types.push_back(std::move(type));
  return *this;
}

ServiceBuilder& ServiceBuilder::add_array_type(std::string name,
                                               std::string element_type) {
  ComplexType type;
  type.name = std::move(name);
  type.array_of = std::move(element_type);
  doc_.types.push_back(std::move(type));
  return *this;
}

ServiceBuilder& ServiceBuilder::add_operation(std::string name,
                                              std::vector<TypedField> inputs,
                                              TypedField output) {
  Message request;
  request.name = name + "Request";
  request.parts = std::move(inputs);
  Message response;
  response.name = name + "Response";
  output.name = output.name.empty() ? "return" : output.name;
  response.parts.push_back(std::move(output));

  Operation op;
  op.name = name;
  op.input_message = request.name;
  op.output_message = response.name;
  op.soap_action = std::move(name);

  doc_.messages.push_back(std::move(request));
  doc_.messages.push_back(std::move(response));
  doc_.port_types.front().operations.push_back(std::move(op));
  return *this;
}

ServiceBuilder& ServiceBuilder::add_one_way_operation(
    std::string name, std::vector<TypedField> inputs) {
  Message request;
  request.name = name + "Request";
  request.parts = std::move(inputs);
  Operation op;
  op.name = name;
  op.input_message = request.name;
  op.soap_action = std::move(name);
  doc_.messages.push_back(std::move(request));
  doc_.port_types.front().operations.push_back(std::move(op));
  return *this;
}

ServiceBuilder& ServiceBuilder::set_location(std::string url) {
  location_ = std::move(url);
  return *this;
}

WsdlDocument ServiceBuilder::build() const {
  WsdlDocument doc = doc_;
  ServicePort port;
  port.name = doc.services.front().name + "Port";
  port.binding = doc.port_types.front().name + "Binding";
  port.location = location_;
  doc.services.front().ports.push_back(std::move(port));
  return doc;
}

}  // namespace bsoap::wsdl
