#include "wsdl/model.hpp"

#include "xml/qname.hpp"

namespace bsoap::wsdl {

const char* xsd_type_name(XsdType type) noexcept {
  switch (type) {
    case XsdType::kInt: return "xsd:int";
    case XsdType::kLong: return "xsd:long";
    case XsdType::kDouble: return "xsd:double";
    case XsdType::kFloat: return "xsd:float";
    case XsdType::kBoolean: return "xsd:boolean";
    case XsdType::kString: return "xsd:string";
    case XsdType::kComplex: return "(complex)";
    case XsdType::kArray: return "(array)";
  }
  return "?";
}

XsdType xsd_type_from_qname(std::string_view qname) noexcept {
  const std::string_view local = xml::split_qname(qname).local;
  if (local == "int" || local == "integer") return XsdType::kInt;
  if (local == "long") return XsdType::kLong;
  if (local == "double" || local == "decimal") return XsdType::kDouble;
  if (local == "float") return XsdType::kFloat;
  if (local == "boolean") return XsdType::kBoolean;
  if (local == "string") return XsdType::kString;
  return XsdType::kComplex;
}

const ComplexType* WsdlDocument::find_type(std::string_view type_name) const {
  const std::string_view local = xml::split_qname(type_name).local;
  for (const ComplexType& t : types) {
    if (t.name == local) return &t;
  }
  return nullptr;
}

const Message* WsdlDocument::find_message(std::string_view message_name) const {
  const std::string_view local = xml::split_qname(message_name).local;
  for (const Message& m : messages) {
    if (m.name == local) return &m;
  }
  return nullptr;
}

const Operation* WsdlDocument::find_operation(
    std::string_view operation_name) const {
  for (const PortType& pt : port_types) {
    for (const Operation& op : pt.operations) {
      if (op.name == operation_name) return &op;
    }
  }
  return nullptr;
}

Status WsdlDocument::validate() const {
  for (const PortType& pt : port_types) {
    for (const Operation& op : pt.operations) {
      if (find_message(op.input_message) == nullptr) {
        return Error{ErrorCode::kNotFound,
                     "operation " + op.name + " references unknown message " +
                         op.input_message};
      }
      if (!op.output_message.empty() &&
          find_message(op.output_message) == nullptr) {
        return Error{ErrorCode::kNotFound,
                     "operation " + op.name + " references unknown message " +
                         op.output_message};
      }
    }
  }
  for (const Message& m : messages) {
    for (const TypedField& part : m.parts) {
      const bool complex_ref =
          part.type == XsdType::kComplex ||
          (part.type == XsdType::kArray &&
           xsd_type_from_qname(part.type_name) == XsdType::kComplex);
      if (complex_ref && find_type(part.type_name) == nullptr) {
        return Error{ErrorCode::kNotFound,
                     "message " + m.name + " part " + part.name +
                         " references unknown type " + part.type_name};
      }
    }
  }
  for (const ComplexType& t : types) {
    for (const TypedField& f : t.fields) {
      if (f.type == XsdType::kComplex && find_type(f.type_name) == nullptr) {
        return Error{ErrorCode::kNotFound,
                     "type " + t.name + " field " + f.name +
                         " references unknown type " + f.type_name};
      }
    }
  }
  return Status{};
}

}  // namespace bsoap::wsdl
