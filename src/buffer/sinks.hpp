// Byte sinks used by the XML writer and the serializers.
//
// The writer is templated on a Sink so that the same emission code serves
// the chunked template store (bSOAP), a plain contiguous buffer (the
// gSOAP-like baseline) and a counting null sink (phase-breakdown ablation).
//
// Sink concept:
//   void append(const char* data, std::size_t n);
//   void append(std::string_view text);
//   char* reserve_contiguous(std::size_t n);   // scratch for direct writes
//   void commit(std::size_t written);
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "buffer/chunked_buffer.hpp"

namespace bsoap::buffer {

/// Contiguous auto-growing sink (the conventional-toolkit layout).
class StringSink {
 public:
  void append(const char* data, std::size_t n) { out_.append(data, n); }
  void append(std::string_view text) { out_.append(text); }

  char* reserve_contiguous(std::size_t n) {
    base_size_ = out_.size();
    out_.resize(base_size_ + n);
    return out_.data() + base_size_;
  }
  void commit(std::size_t written) { out_.resize(base_size_ + written); }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }
  std::size_t size() const { return out_.size(); }
  void clear() { out_.clear(); }

 private:
  std::string out_;
  std::size_t base_size_ = 0;
};

/// Discards bytes but counts them; isolates conversion cost from copy cost.
class NullSink {
 public:
  void append(const char*, std::size_t n) { count_ += n; }
  void append(std::string_view text) { count_ += text.size(); }
  char* reserve_contiguous(std::size_t n) {
    if (scratch_.size() < n) scratch_.resize(n);
    return scratch_.data();
  }
  void commit(std::size_t written) { count_ += written; }

  std::size_t size() const { return count_; }
  void clear() { count_ = 0; }

 private:
  std::size_t count_ = 0;
  std::string scratch_;
};

// ChunkedBuffer already models the Sink concept directly.
static_assert(sizeof(ChunkedBuffer) > 0);

}  // namespace bsoap::buffer
