#include "buffer/chunked_buffer.hpp"

#include <algorithm>
#include <cstring>

namespace bsoap::buffer {

ChunkedBuffer::ChunkedBuffer(ChunkConfig config) : config_(config) {
  BSOAP_ASSERT(config_.chunk_size > 0);
  BSOAP_ASSERT(config_.payload_limit() > 0);
}

ChunkedBuffer::Chunk ChunkedBuffer::make_chunk(std::size_t capacity) const {
  Chunk c;
  c.data = std::make_unique<char[]>(capacity);
  c.capacity = capacity;
  c.size = 0;
  return c;
}

void ChunkedBuffer::append(const char* data, std::size_t n) {
  BSOAP_ASSERT(reserved_ == 0);
  while (n > 0) {
    if (chunks_.empty() || last().size >= config_.payload_limit()) {
      chunks_.push_back(make_chunk(config_.chunk_size));
    }
    Chunk& c = last();
    const std::size_t room = config_.payload_limit() - c.size;
    const std::size_t take = std::min(room, n);
    std::memcpy(c.data.get() + c.size, data, take);
    c.size += take;
    total_size_ += take;
    data += take;
    n -= take;
  }
}

char* ChunkedBuffer::reserve_contiguous(std::size_t n) {
  BSOAP_ASSERT(reserved_ == 0);
  BSOAP_ASSERT(n <= config_.payload_limit());
  if (chunks_.empty() || config_.payload_limit() - last().size < n) {
    chunks_.push_back(make_chunk(config_.chunk_size));
  }
  reserved_ = n;
  return last().data.get() + last().size;
}

void ChunkedBuffer::commit(std::size_t written) {
  BSOAP_ASSERT(written <= reserved_);
  last().size += written;
  total_size_ += written;
  reserved_ = 0;
}

BufPos ChunkedBuffer::end_pos() const {
  if (chunks_.empty()) return BufPos{0, 0};
  return BufPos{static_cast<std::uint32_t>(chunks_.size() - 1),
                static_cast<std::uint32_t>(chunks_.back().size)};
}

std::string_view ChunkedBuffer::chunk_view(std::size_t i) const {
  BSOAP_ASSERT(i < chunks_.size());
  return std::string_view(chunks_[i].data.get(), chunks_[i].size);
}

std::size_t ChunkedBuffer::chunk_capacity(std::size_t i) const {
  BSOAP_ASSERT(i < chunks_.size());
  return chunks_[i].capacity;
}

char* ChunkedBuffer::at(BufPos pos) {
  BSOAP_ASSERT(pos.chunk < chunks_.size());
  Chunk& c = chunks_[pos.chunk];
  BSOAP_ASSERT(pos.offset <= c.size);
  return c.data.get() + pos.offset;
}

const char* ChunkedBuffer::at(BufPos pos) const {
  return const_cast<ChunkedBuffer*>(this)->at(pos);
}

std::string ChunkedBuffer::linearize() const {
  std::string out;
  out.reserve(total_size_);
  for (const Chunk& c : chunks_) out.append(c.data.get(), c.size);
  return out;
}

void ChunkedBuffer::read_at(BufPos pos, char* out, std::size_t n) const {
  std::size_t chunk = pos.chunk;
  std::size_t offset = pos.offset;
  while (n > 0) {
    BSOAP_ASSERT(chunk < chunks_.size());
    const Chunk& c = chunks_[chunk];
    const std::size_t take = std::min(n, c.size - offset);
    std::memcpy(out, c.data.get() + offset, take);
    out += take;
    n -= take;
    ++chunk;
    offset = 0;
  }
}

void ChunkedBuffer::write_at(BufPos pos, const char* data, std::size_t n) {
  BSOAP_ASSERT(pos.chunk < chunks_.size());
  Chunk& c = chunks_[pos.chunk];
  BSOAP_ASSERT(pos.offset + n <= c.size);
  std::memcpy(c.data.get() + pos.offset, data, n);
}

ExpandResult ChunkedBuffer::expand_at(BufPos pos, std::size_t old_len,
                                      std::size_t new_len) {
  BSOAP_ASSERT(new_len >= old_len);
  BSOAP_ASSERT(pos.chunk < chunks_.size());
  ExpandResult result;
  const std::size_t delta = new_len - old_len;
  if (delta == 0) return result;

  Chunk* c = &chunks_[pos.chunk];
  const std::size_t region_end = pos.offset + old_len;
  BSOAP_ASSERT(region_end <= c->size);
  const std::size_t tail_len = c->size - region_end;

  if (c->size + delta <= c->capacity) {
    // Fast path: enough slack at the end of the chunk; shift the tail.
    result.outcome = ExpandOutcome::kSlack;
  } else if (c->size + delta <= config_.split_threshold) {
    // Reallocate this chunk into a larger memory region.
    const std::size_t new_capacity =
        std::max(c->size + delta + config_.tail_reserve, c->capacity * 2);
    Chunk bigger = make_chunk(new_capacity);
    std::memcpy(bigger.data.get(), c->data.get(), c->size);
    bigger.size = c->size;
    *c = std::move(bigger);
    result.outcome = ExpandOutcome::kRealloc;
  } else {
    // Split: the tail after the expanded region moves to a new chunk
    // inserted right after this one.
    const std::size_t new_capacity =
        std::max(config_.chunk_size, tail_len + config_.tail_reserve);
    Chunk tail_chunk = make_chunk(new_capacity);
    std::memcpy(tail_chunk.data.get(), c->data.get() + region_end, tail_len);
    tail_chunk.size = tail_len;
    c->size = region_end;
    chunks_.insert(chunks_.begin() + pos.chunk + 1, std::move(tail_chunk));
    c = &chunks_[pos.chunk];  // vector may have reallocated
    result.outcome = ExpandOutcome::kSplit;
    result.split_offset = region_end;
    // If even the region alone no longer fits, grow this chunk too.
    if (pos.offset + new_len > c->capacity) {
      Chunk bigger = make_chunk(pos.offset + new_len + config_.tail_reserve);
      std::memcpy(bigger.data.get(), c->data.get(), c->size);
      bigger.size = c->size;
      *c = std::move(bigger);
    }
    c->size = pos.offset + new_len;
    total_size_ += delta;
    return result;
  }

  // kSlack / kRealloc: shift the tail right by delta.
  char* base = c->data.get();
  std::memmove(base + region_end + delta, base + region_end, tail_len);
  c->size += delta;
  total_size_ += delta;
  return result;
}

void ChunkedBuffer::contract_at(BufPos pos, std::size_t old_len,
                                std::size_t new_len) {
  BSOAP_ASSERT(new_len <= old_len);
  BSOAP_ASSERT(pos.chunk < chunks_.size());
  Chunk& c = chunks_[pos.chunk];
  const std::size_t region_end = pos.offset + old_len;
  BSOAP_ASSERT(region_end <= c.size);
  const std::size_t delta = old_len - new_len;
  if (delta == 0) return;
  char* base = c.data.get();
  std::memmove(base + region_end - delta, base + region_end,
               c.size - region_end);
  c.size -= delta;
  total_size_ -= delta;
}

std::vector<ChunkedBuffer::Slice> ChunkedBuffer::slices() const {
  std::vector<Slice> out;
  out.reserve(chunks_.size());
  for (const Chunk& c : chunks_) {
    if (c.size > 0) out.push_back(Slice{c.data.get(), c.size});
  }
  return out;
}

ChunkedBuffer ChunkedBuffer::clone() const {
  BSOAP_ASSERT(reserved_ == 0);
  ChunkedBuffer out(config_);
  out.chunks_.reserve(chunks_.size());
  for (const Chunk& c : chunks_) {
    Chunk copy = make_chunk(c.capacity);
    std::memcpy(copy.data.get(), c.data.get(), c.size);
    copy.size = c.size;
    out.chunks_.push_back(std::move(copy));
  }
  out.total_size_ = total_size_;
  return out;
}

void ChunkedBuffer::clear() {
  chunks_.clear();
  total_size_ = 0;
  reserved_ = 0;
}

bool ChunkedBuffer::check_invariants() const {
  std::size_t sum = 0;
  for (const Chunk& c : chunks_) {
    if (c.size > c.capacity) return false;
    if (c.capacity == 0 || c.data == nullptr) return false;
    sum += c.size;
  }
  return sum == total_size_ && reserved_ == 0;
}

}  // namespace bsoap::buffer
