// Chunked message storage (paper Section 3.2).
//
// Serialized SOAP templates are not stored contiguously: the message lives in
// variable-sized, potentially noncontiguous chunks so that on-the-fly
// expansion ("shifting") moves at most one chunk's tail instead of the whole
// message. Three configurable parameters — mirrored from the paper — govern
// behaviour: the default chunk size, the threshold above which a chunk is
// split in two rather than reallocated, and the slack left empty at the end
// of each chunk so small shifts need no allocation at all.
//
// Positions into the store are (chunk index, offset) pairs rather than raw
// pointers: a shift then only renumbers offsets within a single chunk, and a
// split renumbers chunk indices after the split point (see DutTable).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace bsoap::buffer {

/// Tuning knobs from the paper: "Configurable parameters determine the
/// default initial chunk size, the threshold at which chunks are split into
/// two, and the space that is initially left empty at the end of a chunk."
struct ChunkConfig {
  std::size_t chunk_size = 32 * 1024;   ///< capacity of newly created chunks
  std::size_t split_threshold = 64 * 1024;  ///< grow past this => split
  std::size_t tail_reserve = 512;       ///< slack kept empty while building

  /// Bytes of a fresh chunk usable during initial serialization.
  std::size_t payload_limit() const {
    return tail_reserve < chunk_size ? chunk_size - tail_reserve : chunk_size;
  }
};

/// A stable position in a ChunkedBuffer.
struct BufPos {
  std::uint32_t chunk = 0;
  std::uint32_t offset = 0;

  bool operator==(const BufPos&) const = default;
  /// Document order: chunk first, then offset.
  bool operator<(const BufPos& rhs) const {
    return chunk != rhs.chunk ? chunk < rhs.chunk : offset < rhs.offset;
  }
};

/// How an expand_at call made room for the larger field.
enum class ExpandOutcome {
  kSlack,    ///< tail moved right within existing capacity
  kRealloc,  ///< chunk reallocated to a larger capacity, then tail moved
  kSplit,    ///< tail split off into a freshly inserted chunk
};

struct ExpandResult {
  ExpandOutcome outcome = ExpandOutcome::kSlack;
  /// Valid for kSplit: bytes at offsets >= split_offset in the original
  /// chunk moved to the inserted chunk (same relative order, rebased to 0).
  std::size_t split_offset = 0;
};

/// Append-plus-in-place-edit byte store backed by a list of chunks.
class ChunkedBuffer {
 public:
  explicit ChunkedBuffer(ChunkConfig config = {});

  ChunkedBuffer(ChunkedBuffer&&) noexcept = default;
  ChunkedBuffer& operator=(ChunkedBuffer&&) noexcept = default;

  const ChunkConfig& config() const { return config_; }

  // --- building ---------------------------------------------------------

  /// Appends bytes at the end, opening new chunks as needed. The data may be
  /// split across chunk boundaries (used for tags and literal markup).
  void append(const char* data, std::size_t n);
  void append(std::string_view text) { append(text.data(), text.size()); }

  /// Reserves `n` contiguous bytes at the end for direct writing and returns
  /// the pointer; a new chunk is opened if the current one cannot fit them.
  /// Caller writes up to `n` bytes then calls commit(written).
  /// n must not exceed the chunk payload size.
  char* reserve_contiguous(std::size_t n);
  void commit(std::size_t written);

  /// Position of the bytes handed out by the last reserve_contiguous call.
  /// Valid between reserve_contiguous and commit.
  BufPos reserved_pos() const {
    BSOAP_ASSERT(!chunks_.empty());
    return BufPos{static_cast<std::uint32_t>(chunks_.size() - 1),
                  static_cast<std::uint32_t>(chunks_.back().size)};
  }

  /// Position one past the last byte (where the next append lands is not
  /// guaranteed to be this position if a new chunk is opened).
  BufPos end_pos() const;

  // --- reading ----------------------------------------------------------

  std::size_t total_size() const { return total_size_; }
  std::size_t chunk_count() const { return chunks_.size(); }
  std::string_view chunk_view(std::size_t i) const;
  std::size_t chunk_capacity(std::size_t i) const;

  /// Pointer to the byte at `pos`. pos.offset may equal the chunk size only
  /// for the final chunk (end position).
  char* at(BufPos pos);
  const char* at(BufPos pos) const;

  /// Copies the whole message into one string (tests, linearized sends).
  std::string linearize() const;

  /// Read `n` bytes starting at `pos`, possibly across chunks.
  void read_at(BufPos pos, char* out, std::size_t n) const;

  // --- in-place editing (differential serialization) ---------------------

  /// Overwrites `n` bytes at `pos`. The region must lie within one chunk —
  /// serialized fields are always stored contiguously.
  void write_at(BufPos pos, const char* data, std::size_t n);

  /// Grows the region [pos, pos+old_len) to new_len bytes, moving the tail
  /// of the chunk right. Bytes of the region itself are preserved (the
  /// caller rewrites them); new bytes are uninitialized. Returns how room
  /// was made so the caller can renumber its positions:
  ///   kSlack/kRealloc: offsets > pos.offset+old_len in this chunk move
  ///                    right by (new_len - old_len);
  ///   kSplit: offsets >= split_offset move to chunk pos.chunk+1 at
  ///           (offset - split_offset); later chunk indices shift by +1;
  ///           then the in-chunk rule applies to what remained.
  ExpandResult expand_at(BufPos pos, std::size_t old_len, std::size_t new_len);

  /// Shrinks the region [pos, pos+old_len) to new_len, moving the chunk tail
  /// left. Offsets > pos.offset+old_len move left by (old_len - new_len).
  void contract_at(BufPos pos, std::size_t old_len, std::size_t new_len);

  /// Gathers all chunks as (pointer, length) slices for scatter-gather IO.
  struct Slice {
    const char* data;
    std::size_t len;
  };
  std::vector<Slice> slices() const;

  /// Appends the nonempty chunks to `out` as `SliceT{data, len}` — lets a
  /// send path fill its (reusable) net-layer slice vector directly instead
  /// of materializing a Slice vector and re-wrapping it per send.
  template <typename SliceT>
  void append_slices(std::vector<SliceT>& out) const {
    out.reserve(out.size() + chunks_.size());
    for (const Chunk& c : chunks_) {
      if (c.size > 0) out.push_back(SliceT{c.data.get(), c.size});
    }
  }

  /// Deep copy: same chunk layout (sizes and capacities), same bytes. Chunk
  /// geometry must match exactly — positions recorded in a DUT table remain
  /// valid against the copy. Must not be called with a reservation open.
  ChunkedBuffer clone() const;

  /// Removes all content but keeps the configuration.
  void clear();

  /// Internal consistency check (tests): sizes/capacities are coherent.
  bool check_invariants() const;

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
    std::size_t capacity = 0;
  };

  Chunk make_chunk(std::size_t capacity) const;
  Chunk& last() { return chunks_.back(); }

  ChunkConfig config_;
  std::vector<Chunk> chunks_;
  std::size_t total_size_ = 0;
  std::size_t reserved_ = 0;  // outstanding reserve_contiguous amount
};

}  // namespace bsoap::buffer
