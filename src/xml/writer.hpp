// Streaming XML writer, templated on the output sink.
//
// The same emission code serves all serializers in the repo: bSOAP writes
// into a ChunkedBuffer (the template store), the gSOAP-like baseline into a
// contiguous StringSink, and the phase-breakdown ablation into a NullSink.
// Numeric fast paths reserve contiguous bytes in the sink and convert in
// place, avoiding intermediate copies — exactly the structure whose cost the
// paper measures.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "textconv/dtoa.hpp"
#include "textconv/itoa.hpp"
#include "xml/escape.hpp"

namespace bsoap::xml {

template <typename Sink>
class XmlWriter {
 public:
  explicit XmlWriter(Sink& sink) : sink_(sink) {}

  /// <?xml version="1.0" encoding="UTF-8"?>
  void declaration() {
    sink_.append(std::string_view("<?xml version=\"1.0\" encoding=\"UTF-8\"?>"));
  }

  /// Opens <qname ...; attributes may follow until content or end_element.
  void start_element(std::string_view qname) {
    close_open_tag();
    sink_.append(std::string_view("<"));
    sink_.append(qname);
    stack_.emplace_back(qname);
    tag_open_ = true;
  }

  /// Writes name="value" inside the currently open start tag.
  void attribute(std::string_view name, std::string_view value) {
    BSOAP_ASSERT(tag_open_);
    sink_.append(std::string_view(" "));
    sink_.append(name);
    sink_.append(std::string_view("=\""));
    escape_into(sink_, value);
    sink_.append(std::string_view("\""));
  }

  /// Closes the innermost element: "/>" if it had no content, else </qname>.
  void end_element() {
    BSOAP_ASSERT(!stack_.empty());
    if (tag_open_) {
      sink_.append(std::string_view("/>"));
      tag_open_ = false;
    } else {
      sink_.append(std::string_view("</"));
      sink_.append(std::string_view(stack_.back()));
      sink_.append(std::string_view(">"));
    }
    stack_.pop_back();
  }

  /// Escaped character data.
  void text(std::string_view value) {
    close_open_tag();
    escape_into(sink_, value);
  }

  /// Unescaped output (numbers, prevalidated markup).
  void raw(std::string_view value) {
    close_open_tag();
    sink_.append(value);
  }

  /// Fast path: decimal integer as element content.
  void int_text(std::int32_t value) {
    close_open_tag();
    char* p = sink_.reserve_contiguous(textconv::kMaxInt32Chars);
    sink_.commit(static_cast<std::size_t>(textconv::write_i32(p, value)));
  }

  void int64_text(std::int64_t value) {
    close_open_tag();
    char* p = sink_.reserve_contiguous(textconv::kMaxInt64Chars);
    sink_.commit(static_cast<std::size_t>(textconv::write_i64(p, value)));
  }

  /// Fast path: shortest-round-trip double as element content.
  void double_text(double value) {
    close_open_tag();
    char* p = sink_.reserve_contiguous(textconv::kMaxDoubleChars);
    sink_.commit(static_cast<std::size_t>(textconv::write_double(p, value)));
  }

  /// Number of elements currently open.
  std::size_t depth() const { return stack_.size(); }

  /// Finishes the document: all elements must have been closed.
  void finish() {
    BSOAP_ASSERT(stack_.empty());
    BSOAP_ASSERT(!tag_open_);
  }

  Sink& sink() { return sink_; }

 private:
  void close_open_tag() {
    if (tag_open_) {
      sink_.append(std::string_view(">"));
      tag_open_ = false;
    }
  }

  Sink& sink_;
  std::vector<std::string> stack_;
  bool tag_open_ = false;
};

}  // namespace bsoap::xml
