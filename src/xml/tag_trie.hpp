// Byte-wise trie for XML tag matching.
//
// Chiu et al. [6] (paper Section 5, related work) accelerate SOAP
// deserialization with trie structures "so that XML tags are parsed only
// once": a known tag set compiles into a trie and incoming names resolve to
// small integer ids in one pass, replacing repeated string comparisons. This
// is the schema-specific parsing substrate the paper positions differential
// serialization against (the techniques compose).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace bsoap::xml {

class TagTrie {
 public:
  static constexpr int kNoMatch = -1;

  TagTrie() { nodes_.push_back(Node{}); }

  /// Inserts a tag and returns its id (insertion order, starting at 0).
  /// Re-inserting an existing tag returns the original id.
  int add(std::string_view tag) {
    std::size_t node = 0;
    for (const char c : tag) {
      const auto byte = static_cast<unsigned char>(c);
      std::int32_t next = nodes_[node].children[byte];
      if (next < 0) {
        next = static_cast<std::int32_t>(nodes_.size());
        nodes_[node].children[byte] = next;
        nodes_.push_back(Node{});
      }
      node = static_cast<std::size_t>(next);
    }
    if (nodes_[node].id < 0) {
      nodes_[node].id = tag_count_++;
    }
    return nodes_[node].id;
  }

  /// Resolves a tag to its id; kNoMatch if absent.
  int match(std::string_view tag) const {
    std::size_t node = 0;
    for (const char c : tag) {
      const std::int32_t next =
          nodes_[node].children[static_cast<unsigned char>(c)];
      if (next < 0) return kNoMatch;
      node = static_cast<std::size_t>(next);
    }
    return nodes_[node].id;
  }

  int size() const { return tag_count_; }

 private:
  struct Node {
    Node() { children.fill(-1); }
    std::array<std::int32_t, 256> children;
    std::int32_t id = -1;
  };

  std::vector<Node> nodes_;
  std::int32_t tag_count_ = 0;
};

}  // namespace bsoap::xml
