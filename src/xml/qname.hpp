// Qualified-name utilities and namespace scope tracking.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace bsoap::xml {

/// Splits "prefix:local" into its parts; prefix is empty if there is none.
struct QName {
  std::string_view prefix;
  std::string_view local;
};

QName split_qname(std::string_view qname) noexcept;

/// Tracks in-scope namespace bindings while walking parser events.
///
/// Call push_scope() with the attributes of each start element and
/// pop_scope() after the matching end element; resolve() maps a prefix to
/// the innermost bound URI.
class NamespaceTracker {
 public:
  struct Binding {
    std::string prefix;
    std::string uri;
  };

  /// Enters an element scope, recording any xmlns / xmlns:p attributes.
  /// `attribute_names`/`attribute_values` run parallel.
  void push_scope(const std::vector<std::pair<std::string_view, std::string_view>>& xmlns_attrs);

  /// Convenience overload for parser attributes: caller extracts pairs.
  void push_empty_scope();

  void pop_scope();

  /// URI bound to `prefix`, or empty if unbound. The empty prefix resolves
  /// the default namespace.
  std::string_view resolve(std::string_view prefix) const;

  /// Resolves the namespace of a qualified element name.
  std::string_view resolve_qname(std::string_view qname) const {
    return resolve(split_qname(qname).prefix);
  }

  std::size_t depth() const { return scope_sizes_.size(); }

 private:
  std::vector<Binding> bindings_;       // stack of active bindings
  std::vector<std::size_t> scope_sizes_;  // bindings added per scope
};

}  // namespace bsoap::xml
