#include "xml/qname.hpp"

namespace bsoap::xml {

QName split_qname(std::string_view qname) noexcept {
  const std::size_t colon = qname.find(':');
  if (colon == std::string_view::npos) {
    return QName{std::string_view{}, qname};
  }
  return QName{qname.substr(0, colon), qname.substr(colon + 1)};
}

void NamespaceTracker::push_scope(
    const std::vector<std::pair<std::string_view, std::string_view>>&
        xmlns_attrs) {
  std::size_t added = 0;
  for (const auto& [name, value] : xmlns_attrs) {
    if (name == "xmlns") {
      bindings_.push_back(Binding{"", std::string(value)});
      ++added;
    } else if (name.size() > 6 && name.substr(0, 6) == "xmlns:") {
      bindings_.push_back(Binding{std::string(name.substr(6)), std::string(value)});
      ++added;
    }
  }
  scope_sizes_.push_back(added);
}

void NamespaceTracker::push_empty_scope() { scope_sizes_.push_back(0); }

void NamespaceTracker::pop_scope() {
  if (scope_sizes_.empty()) return;
  const std::size_t n = scope_sizes_.back();
  scope_sizes_.pop_back();
  bindings_.resize(bindings_.size() - n);
}

std::string_view NamespaceTracker::resolve(std::string_view prefix) const {
  for (std::size_t i = bindings_.size(); i-- > 0;) {
    if (bindings_[i].prefix == prefix) return bindings_[i].uri;
  }
  return {};
}

}  // namespace bsoap::xml
