// XML character-data escaping and entity decoding.
#pragma once

#include <string>
#include <string_view>

namespace bsoap::xml {

/// True if `text` contains no character that must be escaped in element
/// content or attribute values (&, <, >, ", ').
bool needs_escaping(std::string_view text) noexcept;

/// Appends `text` to `out` with the five predefined entities applied.
void escape_append(std::string& out, std::string_view text);

/// Escapes into an arbitrary sink (see buffer/sinks.hpp for the concept).
template <typename Sink>
void escape_into(Sink& sink, std::string_view text) {
  std::size_t flushed = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    std::string_view entity;
    switch (text[i]) {
      case '&': entity = "&amp;"; break;
      case '<': entity = "&lt;"; break;
      case '>': entity = "&gt;"; break;
      case '"': entity = "&quot;"; break;
      case '\'': entity = "&apos;"; break;
      default: continue;
    }
    if (i > flushed) sink.append(text.data() + flushed, i - flushed);
    sink.append(entity);
    flushed = i + 1;
  }
  if (text.size() > flushed) {
    sink.append(text.data() + flushed, text.size() - flushed);
  }
}

/// Decodes the predefined entities and numeric character references
/// (&#...; / &#x...;, ASCII and basic UTF-8 output). Returns false on a
/// malformed reference.
bool unescape(std::string_view text, std::string* out);

}  // namespace bsoap::xml
