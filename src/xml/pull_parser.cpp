#include "xml/pull_parser.hpp"

#include <cctype>

#include "xml/escape.hpp"

namespace bsoap::xml {
namespace {

bool is_name_start(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || c == '_' ||
         c == ':';
}

bool is_name_char(char c) {
  return is_name_start(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

bool is_ws(char c) { return c == ' ' || c == '\t' || c == '\r' || c == '\n'; }

}  // namespace

XmlPullParser::XmlPullParser(std::string_view doc, Options options)
    : doc_(doc), options_(options) {}

Error XmlPullParser::error_at(std::string msg) const {
  msg += " at offset ";
  msg += std::to_string(pos_);
  return Error{ErrorCode::kParseError, std::move(msg)};
}

void XmlPullParser::skip_whitespace() {
  while (pos_ < doc_.size() && is_ws(doc_[pos_])) ++pos_;
}

std::string_view XmlPullParser::read_name() {
  const std::size_t start = pos_;
  if (pos_ < doc_.size() && is_name_start(doc_[pos_])) {
    ++pos_;
    while (pos_ < doc_.size() && is_name_char(doc_[pos_])) ++pos_;
  }
  return doc_.substr(start, pos_ - start);
}

Result<XmlEvent> XmlPullParser::next() {
  if (pending_self_close_) {
    pending_self_close_ = false;
    BSOAP_ASSERT(!stack_.empty());
    name_ = stack_.back();
    stack_.pop_back();
    return XmlEvent::kEndElement;
  }

  for (;;) {
    if (pos_ >= doc_.size()) {
      if (!stack_.empty()) {
        return error_at("unexpected end of document inside <" +
                        std::string(stack_.back()) + ">");
      }
      event_begin_ = pos_;
      return XmlEvent::kEof;
    }

    event_begin_ = pos_;
    if (doc_[pos_] != '<') {
      Result<XmlEvent> text = parse_text();
      if (!text.ok()) return text;
      if (text.value() == XmlEvent::kText && options_.skip_whitespace_text) {
        bool all_ws = true;
        for (const char c : text_) {
          if (!is_ws(c)) {
            all_ws = false;
            break;
          }
        }
        if (all_ws) continue;
      }
      return text;
    }

    // '<' dispatch.
    if (pos_ + 1 >= doc_.size()) return error_at("dangling '<'");
    const char c = doc_[pos_ + 1];
    if (c == '/') return parse_end_tag();
    if (c == '?') {
      BSOAP_RETURN_IF_ERROR(skip_processing_instruction());
      continue;
    }
    if (c == '!') {
      if (doc_.compare(pos_, 4, "<!--") == 0) {
        BSOAP_RETURN_IF_ERROR(skip_comment());
        continue;
      }
      if (doc_.compare(pos_, 9, "<![CDATA[") == 0) return parse_cdata();
      return error_at("unsupported markup declaration");
    }
    return parse_start_tag();
  }
}

Result<XmlEvent> XmlPullParser::parse_text() {
  const std::size_t start = pos_;
  while (pos_ < doc_.size() && doc_[pos_] != '<') ++pos_;
  if (stack_.empty()) {
    // Character data outside the root element: only whitespace is legal.
    for (std::size_t i = start; i < pos_; ++i) {
      if (!is_ws(doc_[i])) return error_at("text outside root element");
    }
    if (pos_ >= doc_.size()) {
      if (!root_seen_) return error_at("document has no root element");
      event_begin_ = pos_;
      return XmlEvent::kEof;
    }
    // Re-dispatch from next() by treating this as skippable.
    text_.clear();
    return next();
  }
  if (!unescape(doc_.substr(start, pos_ - start), &text_)) {
    return error_at("malformed entity reference");
  }
  return XmlEvent::kText;
}

Result<XmlEvent> XmlPullParser::parse_cdata() {
  pos_ += 9;  // "<![CDATA["
  const std::size_t close = doc_.find("]]>", pos_);
  if (close == std::string_view::npos) return error_at("unterminated CDATA");
  if (stack_.empty()) return error_at("CDATA outside root element");
  text_.assign(doc_.substr(pos_, close - pos_));
  pos_ = close + 3;
  return XmlEvent::kText;
}

Status XmlPullParser::skip_comment() {
  pos_ += 4;  // "<!--"
  const std::size_t close = doc_.find("-->", pos_);
  if (close == std::string_view::npos) return error_at("unterminated comment");
  pos_ = close + 3;
  return Status{};
}

Status XmlPullParser::skip_processing_instruction() {
  pos_ += 2;  // "<?"
  const std::size_t close = doc_.find("?>", pos_);
  if (close == std::string_view::npos) {
    return error_at("unterminated processing instruction");
  }
  pos_ = close + 2;
  return Status{};
}

Status XmlPullParser::parse_attributes() {
  attributes_.clear();
  for (;;) {
    skip_whitespace();
    if (pos_ >= doc_.size()) return error_at("unterminated start tag");
    const char c = doc_[pos_];
    if (c == '>' || c == '/') return Status{};
    const std::string_view attr_name = read_name();
    if (attr_name.empty()) return error_at("expected attribute name");
    skip_whitespace();
    if (pos_ >= doc_.size() || doc_[pos_] != '=') {
      return error_at("expected '=' after attribute name");
    }
    ++pos_;
    skip_whitespace();
    if (pos_ >= doc_.size() || (doc_[pos_] != '"' && doc_[pos_] != '\'')) {
      return error_at("expected quoted attribute value");
    }
    const char quote = doc_[pos_++];
    const std::size_t value_start = pos_;
    while (pos_ < doc_.size() && doc_[pos_] != quote) {
      if (doc_[pos_] == '<') return error_at("'<' in attribute value");
      ++pos_;
    }
    if (pos_ >= doc_.size()) return error_at("unterminated attribute value");
    XmlAttribute attr;
    attr.name = attr_name;
    if (!unescape(doc_.substr(value_start, pos_ - value_start), &attr.value)) {
      return error_at("malformed entity in attribute value");
    }
    ++pos_;  // closing quote
    attributes_.push_back(std::move(attr));
  }
}

Result<XmlEvent> XmlPullParser::parse_start_tag() {
  if (root_seen_ && stack_.empty()) {
    return error_at("multiple root elements");
  }
  ++pos_;  // '<'
  name_ = read_name();
  if (name_.empty()) return error_at("expected element name");
  BSOAP_RETURN_IF_ERROR(parse_attributes());
  if (doc_[pos_] == '/') {
    if (pos_ + 1 >= doc_.size() || doc_[pos_ + 1] != '>') {
      return error_at("expected '/>'");
    }
    pos_ += 2;
    stack_.push_back(name_);
    pending_self_close_ = true;
    root_seen_ = true;
    return XmlEvent::kStartElement;
  }
  BSOAP_ASSERT(doc_[pos_] == '>');
  ++pos_;
  stack_.push_back(name_);
  root_seen_ = true;
  return XmlEvent::kStartElement;
}

Result<XmlEvent> XmlPullParser::parse_end_tag() {
  pos_ += 2;  // "</"
  const std::string_view closing = read_name();
  skip_whitespace();
  if (pos_ >= doc_.size() || doc_[pos_] != '>') {
    return error_at("expected '>' in end tag");
  }
  ++pos_;
  if (stack_.empty()) return error_at("unmatched end tag </" + std::string(closing) + ">");
  if (stack_.back() != closing) {
    return error_at("mismatched end tag </" + std::string(closing) +
                    ">, expected </" + std::string(stack_.back()) + ">");
  }
  name_ = stack_.back();
  stack_.pop_back();
  return XmlEvent::kEndElement;
}

const XmlAttribute* XmlPullParser::find_attribute(
    std::string_view attr_name) const {
  for (const XmlAttribute& attr : attributes_) {
    if (attr.name == attr_name) return &attr;
  }
  return nullptr;
}

}  // namespace bsoap::xml
