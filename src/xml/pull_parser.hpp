// Non-validating streaming (pull) XML parser.
//
// Supports the subset of XML 1.0 needed by SOAP 1.1 payloads: declarations,
// comments, processing instructions, CDATA, attributes, the predefined and
// numeric entities, and self-closing tags. Well-formedness (tag nesting) is
// enforced. The parser reports byte regions for every event, which the
// differential deserializer (paper Section 6, future work) uses to skip
// re-parsing unchanged regions of an incoming message.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace bsoap::xml {

enum class XmlEvent {
  kStartElement,
  kEndElement,
  kText,
  kEof,
};

struct XmlAttribute {
  std::string_view name;  ///< view into the document
  std::string value;      ///< entity-decoded
};

class XmlPullParser {
 public:
  struct Options {
    /// Drop text events that are pure whitespace (significant for SOAP
    /// because stuffing pads fields with whitespace — values are trimmed by
    /// the typed accessors instead).
    bool skip_whitespace_text = false;
  };

  /// The document must outlive the parser; names are views into it.
  explicit XmlPullParser(std::string_view doc) : XmlPullParser(doc, Options{}) {}
  XmlPullParser(std::string_view doc, Options options);

  /// Advances to the next event.
  Result<XmlEvent> next();

  /// Element qname; valid after kStartElement / kEndElement.
  std::string_view name() const { return name_; }

  /// Decoded character data; valid after kText.
  const std::string& text() const { return text_; }

  /// Attributes of the last start element.
  const std::vector<XmlAttribute>& attributes() const { return attributes_; }

  /// Looks up an attribute by qname; nullptr if absent.
  const XmlAttribute* find_attribute(std::string_view attr_name) const;

  /// Byte range [begin, end) of the last event in the document.
  std::size_t event_begin() const { return event_begin_; }
  std::size_t event_end() const { return pos_; }

  /// Current element nesting depth.
  std::size_t depth() const { return stack_.size(); }

 private:
  Result<XmlEvent> parse_start_tag();
  Result<XmlEvent> parse_end_tag();
  Result<XmlEvent> parse_text();
  Status skip_comment();
  Status skip_processing_instruction();
  Result<XmlEvent> parse_cdata();
  Status parse_attributes();
  std::string_view read_name();
  void skip_whitespace();
  Error error_at(std::string msg) const;

  std::string_view doc_;
  Options options_;
  std::size_t pos_ = 0;
  std::size_t event_begin_ = 0;

  std::string_view name_;
  std::string text_;
  std::vector<XmlAttribute> attributes_;
  std::vector<std::string_view> stack_;
  bool pending_self_close_ = false;
  bool root_seen_ = false;
};

}  // namespace bsoap::xml
