#include "xml/escape.hpp"

#include <cstdint>

namespace bsoap::xml {

bool needs_escaping(std::string_view text) noexcept {
  for (const char c : text) {
    if (c == '&' || c == '<' || c == '>' || c == '"' || c == '\'') return true;
  }
  return false;
}

void escape_append(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
}

namespace {

void append_utf8(std::string* out, std::uint32_t cp) {
  if (cp < 0x80) {
    *out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    *out += static_cast<char>(0xC0 | (cp >> 6));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    *out += static_cast<char>(0xE0 | (cp >> 12));
    *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    *out += static_cast<char>(0xF0 | (cp >> 18));
    *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

}  // namespace

bool unescape(std::string_view text, std::string* out) {
  out->clear();
  out->reserve(text.size());
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (c != '&') {
      *out += c;
      ++i;
      continue;
    }
    const std::size_t semi = text.find(';', i + 1);
    if (semi == std::string_view::npos) return false;
    const std::string_view entity = text.substr(i + 1, semi - i - 1);
    if (entity == "amp") {
      *out += '&';
    } else if (entity == "lt") {
      *out += '<';
    } else if (entity == "gt") {
      *out += '>';
    } else if (entity == "quot") {
      *out += '"';
    } else if (entity == "apos") {
      *out += '\'';
    } else if (!entity.empty() && entity[0] == '#') {
      std::uint32_t cp = 0;
      bool any = false;
      if (entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X')) {
        for (std::size_t k = 2; k < entity.size(); ++k) {
          const char h = entity[k];
          std::uint32_t digit;
          if (h >= '0' && h <= '9') digit = static_cast<std::uint32_t>(h - '0');
          else if (h >= 'a' && h <= 'f') digit = static_cast<std::uint32_t>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') digit = static_cast<std::uint32_t>(h - 'A' + 10);
          else return false;
          cp = cp * 16 + digit;
          any = true;
          if (cp > 0x10FFFF) return false;
        }
      } else {
        for (std::size_t k = 1; k < entity.size(); ++k) {
          const char d = entity[k];
          if (d < '0' || d > '9') return false;
          cp = cp * 10 + static_cast<std::uint32_t>(d - '0');
          any = true;
          if (cp > 0x10FFFF) return false;
        }
      }
      if (!any) return false;
      append_utf8(out, cp);
    } else {
      return false;  // undefined entity (no DTD support)
    }
    i = semi + 1;
  }
  return true;
}

}  // namespace bsoap::xml
