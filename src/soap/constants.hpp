// SOAP 1.1 namespace URIs, prefixes and fixed markup fragments.
#pragma once

#include <string_view>

namespace bsoap::soap {

inline constexpr std::string_view kSoapEnvelopeNs =
    "http://schemas.xmlsoap.org/soap/envelope/";
inline constexpr std::string_view kSoapEncodingNs =
    "http://schemas.xmlsoap.org/soap/encoding/";
inline constexpr std::string_view kXsiNs =
    "http://www.w3.org/2001/XMLSchema-instance";
inline constexpr std::string_view kXsdNs = "http://www.w3.org/2001/XMLSchema";

inline constexpr std::string_view kEnvelopeTag = "SOAP-ENV:Envelope";
inline constexpr std::string_view kBodyTag = "SOAP-ENV:Body";
inline constexpr std::string_view kHeaderTag = "SOAP-ENV:Header";
inline constexpr std::string_view kFaultTag = "SOAP-ENV:Fault";

/// Element name used for array members in SOAP encoding.
inline constexpr std::string_view kArrayItemTag = "item";

/// xsd type names.
inline constexpr std::string_view kXsdInt = "xsd:int";
inline constexpr std::string_view kXsdLong = "xsd:long";
inline constexpr std::string_view kXsdDouble = "xsd:double";
inline constexpr std::string_view kXsdString = "xsd:string";
inline constexpr std::string_view kXsdBoolean = "xsd:boolean";

}  // namespace bsoap::soap
