// DIME — Direct Internet Message Encapsulation (IBM/Microsoft draft,
// paper reference [16]).
//
// DIME frames a SOAP envelope plus binary attachments as a sequence of
// length-prefixed records, avoiding both ASCII conversion and base64
// expansion — the most aggressive of the binary-format proposals the paper's
// related work weighs against differential serialization.
//
// Record layout (draft-nielsen-dime-02):
//   byte 0 : VERSION(5) | MB | ME | CF
//   byte 1 : TYPE_T(4)  | RESERVED(4)
//   u16    : OPTIONS_LENGTH          u16 : ID_LENGTH
//   u16    : TYPE_LENGTH             u32 : DATA_LENGTH
//   then OPTIONS, ID, TYPE, DATA — each padded to a 4-byte boundary.
// All integers big-endian.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace bsoap::soap {

enum class DimeTypeFormat : std::uint8_t {
  kUnchanged = 0x0,
  kMediaType = 0x1,  ///< TYPE holds a MIME media type
  kUri = 0x2,        ///< TYPE holds a URI
  kUnknown = 0x3,
  kNone = 0x4,
};

struct DimeRecord {
  bool message_begin = false;  ///< MB
  bool message_end = false;    ///< ME
  bool chunked = false;        ///< CF
  DimeTypeFormat type_format = DimeTypeFormat::kMediaType;
  std::string id;
  std::string type;  ///< e.g. "text/xml" or "application/octet-stream"
  std::string data;
};

/// Serializes records into a DIME message. Callers set MB/ME or use
/// make_dime_message which sets them automatically.
std::string write_dime(const std::vector<DimeRecord>& records);

/// Builds a message: first record the SOAP envelope (text/xml), remaining
/// records attachments; MB/ME flags are assigned.
std::string make_dime_message(std::string_view envelope,
                              const std::vector<DimeRecord>& attachments);

/// Parses a complete DIME message into its records.
Result<std::vector<DimeRecord>> parse_dime(std::string_view message);

}  // namespace bsoap::soap
