// Conventional (full) SOAP 1.1 envelope serialization.
//
// This is the classic serialize-everything-per-send path: the gSOAP-like
// baseline uses it with a contiguous StringSink, bSOAP uses it (with a
// ChunkedBuffer sink) for first-time sends, and the phase ablation uses it
// with a NullSink. Array element loops are hand-rolled — one tag append, one
// in-place number conversion, one closing tag — matching how generated stubs
// of the era serialized dense scientific arrays.
#pragma once

#include <string>

#include "soap/constants.hpp"
#include "soap/value.hpp"
#include "textconv/dtoa.hpp"
#include "textconv/itoa.hpp"
#include "xml/writer.hpp"

namespace bsoap::soap {

namespace detail {

/// <item>NUMBER</item> loops for dense arrays.
template <typename Sink>
void write_double_array_items(Sink& sink, const std::vector<double>& values) {
  for (const double v : values) {
    sink.append(std::string_view("<item>"));
    char* p = sink.reserve_contiguous(textconv::kMaxDoubleChars);
    sink.commit(static_cast<std::size_t>(textconv::write_double(p, v)));
    sink.append(std::string_view("</item>"));
  }
}

template <typename Sink>
void write_int_array_items(Sink& sink, const std::vector<std::int32_t>& values) {
  for (const std::int32_t v : values) {
    sink.append(std::string_view("<item>"));
    char* p = sink.reserve_contiguous(textconv::kMaxInt32Chars);
    sink.commit(static_cast<std::size_t>(textconv::write_i32(p, v)));
    sink.append(std::string_view("</item>"));
  }
}

template <typename Sink>
void write_mio_array_items(Sink& sink, const std::vector<Mio>& values) {
  for (const Mio& m : values) {
    sink.append(std::string_view("<item><x>"));
    char* p = sink.reserve_contiguous(textconv::kMaxInt32Chars);
    sink.commit(static_cast<std::size_t>(textconv::write_i32(p, m.x)));
    sink.append(std::string_view("</x><y>"));
    p = sink.reserve_contiguous(textconv::kMaxInt32Chars);
    sink.commit(static_cast<std::size_t>(textconv::write_i32(p, m.y)));
    sink.append(std::string_view("</y><v>"));
    p = sink.reserve_contiguous(textconv::kMaxDoubleChars);
    sink.commit(static_cast<std::size_t>(textconv::write_double(p, m.value)));
    sink.append(std::string_view("</v></item>"));
  }
}

/// arrayType attribute value, e.g. "xsd:double[4096]".
inline std::string array_type_attr(std::string_view element_type, std::size_t n) {
  std::string out(element_type);
  out += '[';
  out += std::to_string(n);
  out += ']';
  return out;
}

template <typename Sink>
void write_value(xml::XmlWriter<Sink>& writer, std::string_view element_name,
                 const Value& value, std::string_view id = {}) {
  Sink& sink = writer.sink();
  switch (value.kind()) {
    case ValueKind::kInt32:
      writer.start_element(element_name);
      if (!id.empty()) writer.attribute("id", id);
      writer.attribute("xsi:type", kXsdInt);
      writer.int_text(value.as_int());
      writer.end_element();
      break;
    case ValueKind::kInt64:
      writer.start_element(element_name);
      if (!id.empty()) writer.attribute("id", id);
      writer.attribute("xsi:type", kXsdLong);
      writer.int64_text(value.as_int64());
      writer.end_element();
      break;
    case ValueKind::kDouble:
      writer.start_element(element_name);
      if (!id.empty()) writer.attribute("id", id);
      writer.attribute("xsi:type", kXsdDouble);
      writer.double_text(value.as_double());
      writer.end_element();
      break;
    case ValueKind::kBool:
      writer.start_element(element_name);
      if (!id.empty()) writer.attribute("id", id);
      writer.attribute("xsi:type", kXsdBoolean);
      writer.text(value.as_bool() ? "true" : "false");
      writer.end_element();
      break;
    case ValueKind::kString:
      writer.start_element(element_name);
      if (!id.empty()) writer.attribute("id", id);
      writer.attribute("xsi:type", kXsdString);
      writer.text(value.as_string());
      writer.end_element();
      break;
    case ValueKind::kDoubleArray:
      writer.start_element(element_name);
      if (!id.empty()) writer.attribute("id", id);
      writer.attribute("xsi:type", "SOAP-ENC:Array");
      writer.attribute("SOAP-ENC:arrayType",
                       array_type_attr(kXsdDouble, value.doubles().size()));
      writer.raw("");  // close the start tag before the raw item loop
      write_double_array_items(sink, value.doubles());
      writer.end_element();
      break;
    case ValueKind::kIntArray:
      writer.start_element(element_name);
      if (!id.empty()) writer.attribute("id", id);
      writer.attribute("xsi:type", "SOAP-ENC:Array");
      writer.attribute("SOAP-ENC:arrayType",
                       array_type_attr(kXsdInt, value.ints().size()));
      writer.raw("");
      write_int_array_items(sink, value.ints());
      writer.end_element();
      break;
    case ValueKind::kMioArray:
      writer.start_element(element_name);
      if (!id.empty()) writer.attribute("id", id);
      writer.attribute("xsi:type", "SOAP-ENC:Array");
      writer.attribute("SOAP-ENC:arrayType",
                       array_type_attr("ns1:MIO", value.mios().size()));
      writer.raw("");
      write_mio_array_items(sink, value.mios());
      writer.end_element();
      break;
    case ValueKind::kStruct:
      writer.start_element(element_name);
      if (!id.empty()) writer.attribute("id", id);
      for (const Value::Member& m : value.members()) {
        write_value(writer, m.name, m.value);
      }
      // An empty struct still needs its start tag closed.
      if (value.members().empty()) writer.raw("");
      writer.end_element();
      break;
  }
}

}  // namespace detail

/// Serializes a complete SOAP 1.1 RPC request envelope for `call`.
template <typename Sink>
void write_rpc_envelope(Sink& sink, const RpcCall& call) {
  xml::XmlWriter<Sink> writer(sink);
  writer.declaration();
  writer.start_element(kEnvelopeTag);
  writer.attribute("xmlns:SOAP-ENV", kSoapEnvelopeNs);
  writer.attribute("xmlns:SOAP-ENC", kSoapEncodingNs);
  writer.attribute("xmlns:xsi", kXsiNs);
  writer.attribute("xmlns:xsd", kXsdNs);
  writer.attribute("SOAP-ENV:encodingStyle", kSoapEncodingNs);
  writer.start_element(kBodyTag);

  std::string method_tag = "ns1:" + call.method;
  writer.start_element(method_tag);
  writer.attribute("xmlns:ns1", call.service_namespace);
  for (const Param& p : call.params) {
    detail::write_value(writer, p.name, p.value);
  }
  if (call.params.empty()) writer.raw("");
  writer.end_element();  // method
  writer.end_element();  // Body
  writer.end_element();  // Envelope
  writer.finish();
}


/// Multi-reference encoding options (SOAP 1.1 Section 5 "multi-ref
/// accessors", paper Section 5 related work).
struct MultiRefOptions {
  /// Values eligible for deduplication: strings at least this long, and any
  /// struct. Scalars are never worth a reference.
  std::size_t min_string_length = 8;
};

/// Serializes `call` with multi-ref encoding: parameter values that appear
/// more than once (equal strings/structs) are serialized a single time as an
/// independent <multiRef id="ref-N"> element and referenced from each use
/// via href="#ref-N" — shrinking the message and the serialization work.
template <typename Sink>
void write_rpc_envelope_multiref(Sink& sink, const RpcCall& call,
                                 const MultiRefOptions& options = {}) {
  // Group eligible parameter values by equality.
  struct Group {
    const Value* value;
    std::string ref_id;
    std::vector<std::size_t> params;
  };
  std::vector<Group> groups;
  std::vector<int> param_group(call.params.size(), -1);
  for (std::size_t i = 0; i < call.params.size(); ++i) {
    const Value& v = call.params[i].value;
    const bool eligible =
        v.kind() == ValueKind::kStruct ||
        (v.kind() == ValueKind::kString &&
         v.as_string().size() >= options.min_string_length);
    if (!eligible) continue;
    bool placed = false;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (*groups[g].value == v) {
        groups[g].params.push_back(i);
        param_group[i] = static_cast<int>(g);
        placed = true;
        break;
      }
    }
    if (!placed) {
      Group group;
      group.value = &v;
      group.params.push_back(i);
      param_group[i] = static_cast<int>(groups.size());
      groups.push_back(std::move(group));
    }
  }
  // Only groups with two or more uses become references.
  std::size_t next_ref = 1;
  for (Group& group : groups) {
    if (group.params.size() >= 2) {
      group.ref_id = "ref-" + std::to_string(next_ref++);
    }
  }

  xml::XmlWriter<Sink> writer(sink);
  writer.declaration();
  writer.start_element(kEnvelopeTag);
  writer.attribute("xmlns:SOAP-ENV", kSoapEnvelopeNs);
  writer.attribute("xmlns:SOAP-ENC", kSoapEncodingNs);
  writer.attribute("xmlns:xsi", kXsiNs);
  writer.attribute("xmlns:xsd", kXsdNs);
  writer.attribute("SOAP-ENV:encodingStyle", kSoapEncodingNs);
  writer.start_element(kBodyTag);

  std::string method_tag = "ns1:" + call.method;
  writer.start_element(method_tag);
  writer.attribute("xmlns:ns1", call.service_namespace);
  for (std::size_t i = 0; i < call.params.size(); ++i) {
    const int g = param_group[i];
    if (g >= 0 && !groups[static_cast<std::size_t>(g)].ref_id.empty()) {
      writer.start_element(call.params[i].name);
      writer.attribute("href",
                       "#" + groups[static_cast<std::size_t>(g)].ref_id);
      writer.end_element();
    } else {
      detail::write_value(writer, call.params[i].name, call.params[i].value);
    }
  }
  if (call.params.empty()) writer.raw("");
  writer.end_element();  // method

  // Independent multiRef elements, one per shared value.
  for (const Group& group : groups) {
    if (group.ref_id.empty()) continue;
    detail::write_value(writer, "multiRef", *group.value, group.ref_id);
  }

  writer.end_element();  // Body
  writer.end_element();  // Envelope
  writer.finish();
}

}  // namespace bsoap::soap
