#include "soap/value.hpp"

namespace bsoap::soap {

Value Value::from_int(std::int32_t v) {
  Value out;
  out.kind_ = ValueKind::kInt32;
  out.i_ = v;
  return out;
}

Value Value::from_int64(std::int64_t v) {
  Value out;
  out.kind_ = ValueKind::kInt64;
  out.i_ = v;
  return out;
}

Value Value::from_double(double v) {
  Value out;
  out.kind_ = ValueKind::kDouble;
  out.d_ = v;
  return out;
}

Value Value::from_bool(bool v) {
  Value out;
  out.kind_ = ValueKind::kBool;
  out.i_ = v ? 1 : 0;
  return out;
}

Value Value::from_string(std::string v) {
  Value out;
  out.kind_ = ValueKind::kString;
  out.s_ = std::move(v);
  return out;
}

Value Value::from_double_array(std::vector<double> v) {
  Value out;
  out.kind_ = ValueKind::kDoubleArray;
  out.doubles_ = std::move(v);
  return out;
}

Value Value::from_int_array(std::vector<std::int32_t> v) {
  Value out;
  out.kind_ = ValueKind::kIntArray;
  out.ints_ = std::move(v);
  return out;
}

Value Value::from_mio_array(std::vector<Mio> v) {
  Value out;
  out.kind_ = ValueKind::kMioArray;
  out.mios_ = std::move(v);
  return out;
}

Value Value::make_struct() {
  Value out;
  out.kind_ = ValueKind::kStruct;
  return out;
}

std::vector<Value::Member>& Value::members() {
  BSOAP_ASSERT(kind_ == ValueKind::kStruct);
  return members_;
}

const std::vector<Value::Member>& Value::members() const {
  BSOAP_ASSERT(kind_ == ValueKind::kStruct);
  return members_;
}

Value& Value::add_member(std::string name, Value value) {
  BSOAP_ASSERT(kind_ == ValueKind::kStruct);
  members_.push_back(Member{std::move(name), std::move(value)});
  return members_.back().value;
}

std::size_t Value::leaf_count() const {
  switch (kind_) {
    case ValueKind::kInt32:
    case ValueKind::kInt64:
    case ValueKind::kDouble:
    case ValueKind::kBool:
    case ValueKind::kString:
      return 1;
    case ValueKind::kDoubleArray:
      return doubles_.size();
    case ValueKind::kIntArray:
      return ints_.size();
    case ValueKind::kMioArray:
      return mios_.size() * 3;
    case ValueKind::kStruct: {
      std::size_t total = 0;
      for (const Member& m : members_) total += m.value.leaf_count();
      return total;
    }
  }
  return 0;
}

bool Value::operator==(const Value& rhs) const {
  if (kind_ != rhs.kind_) return false;
  switch (kind_) {
    case ValueKind::kInt32:
    case ValueKind::kInt64:
    case ValueKind::kBool:
      return i_ == rhs.i_;
    case ValueKind::kDouble:
      return d_ == rhs.d_;
    case ValueKind::kString:
      return s_ == rhs.s_;
    case ValueKind::kDoubleArray:
      return doubles_ == rhs.doubles_;
    case ValueKind::kIntArray:
      return ints_ == rhs.ints_;
    case ValueKind::kMioArray:
      return mios_ == rhs.mios_;
    case ValueKind::kStruct:
      return members_ == rhs.members_;
  }
  return false;
}

bool Value::same_structure(const Value& rhs) const {
  if (kind_ != rhs.kind_) return false;
  switch (kind_) {
    case ValueKind::kInt32:
    case ValueKind::kInt64:
    case ValueKind::kBool:
    case ValueKind::kDouble:
    case ValueKind::kString:
      return true;
    case ValueKind::kDoubleArray:
      return doubles_.size() == rhs.doubles_.size();
    case ValueKind::kIntArray:
      return ints_.size() == rhs.ints_.size();
    case ValueKind::kMioArray:
      return mios_.size() == rhs.mios_.size();
    case ValueKind::kStruct: {
      if (members_.size() != rhs.members_.size()) return false;
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (members_[i].name != rhs.members_[i].name) return false;
        if (!members_[i].value.same_structure(rhs.members_[i].value)) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

namespace {

std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) {
  // 64-bit mix in the boost::hash_combine tradition.
  return seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 12) + (seed >> 4));
}

std::uint64_t hash_string(std::uint64_t seed, std::string_view s) {
  // FNV-1a folded into the running seed.
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : s) {
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
  }
  return hash_combine(seed, h);
}

std::uint64_t hash_structure(std::uint64_t seed, const Value& v) {
  seed = hash_combine(seed, static_cast<std::uint64_t>(v.kind()));
  switch (v.kind()) {
    case ValueKind::kDoubleArray:
      return hash_combine(seed, v.doubles().size());
    case ValueKind::kIntArray:
      return hash_combine(seed, v.ints().size());
    case ValueKind::kMioArray:
      return hash_combine(seed, v.mios().size());
    case ValueKind::kStruct: {
      for (const Value::Member& m : v.members()) {
        seed = hash_string(seed, m.name);
        seed = hash_structure(seed, m.value);
      }
      return seed;
    }
    default:
      return seed;
  }
}

}  // namespace

std::uint64_t RpcCall::structure_signature() const {
  std::uint64_t seed = hash_string(0, method);
  seed = hash_string(seed, service_namespace);
  for (const Param& p : params) {
    seed = hash_string(seed, p.name);
    seed = hash_structure(seed, p.value);
  }
  return seed;
}

bool RpcCall::same_structure(const RpcCall& rhs) const {
  if (method != rhs.method || service_namespace != rhs.service_namespace) {
    return false;
  }
  if (params.size() != rhs.params.size()) return false;
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].name != rhs.params[i].name) return false;
    if (!params[i].value.same_structure(rhs.params[i].value)) return false;
  }
  return true;
}

}  // namespace bsoap::soap
