#include "soap/envelope_reader.hpp"

#include <map>
#include <string>

#include "soap/constants.hpp"
#include "textconv/parse.hpp"
#include "xml/pull_parser.hpp"
#include "xml/qname.hpp"
#include "xml/tag_trie.hpp"

namespace bsoap::soap {
namespace {

using xml::XmlEvent;
using xml::XmlPullParser;

bool is_ws(char c) { return c == ' ' || c == '\t' || c == '\r' || c == '\n'; }

std::string_view trim(std::string_view s) {
  while (!s.empty() && is_ws(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_ws(s.back())) s.remove_suffix(1);
  return s;
}

Error type_error(std::string_view what, std::string_view text) {
  return Error{ErrorCode::kParseError,
               std::string("bad ") + std::string(what) + " lexical: '" +
                   std::string(text) + "'"};
}

/// Collects the text content of the current element (parser just consumed
/// its start tag) and consumes the matching end tag. Fails if child
/// elements appear.
Result<std::string> read_text_content(XmlPullParser* parser) {
  std::string content;
  for (;;) {
    Result<XmlEvent> event = parser->next();
    if (!event.ok()) return event.error();
    switch (event.value()) {
      case XmlEvent::kText:
        content += parser->text();
        break;
      case XmlEvent::kEndElement:
        return content;
      case XmlEvent::kStartElement:
        return Error{ErrorCode::kParseError,
                     "unexpected child element <" + std::string(parser->name()) +
                         "> in scalar content"};
      case XmlEvent::kEof:
        return Error{ErrorCode::kParseError, "EOF inside element"};
    }
  }
}

using MultiRefMap = std::map<std::string, Value>;

Result<Value> read_value(XmlPullParser* parser, const MultiRefMap* multirefs);

/// Consumes events to the end of the current element.
Status skip_subtree(XmlPullParser* parser) {
  std::size_t depth = 1;
  while (depth > 0) {
    Result<XmlEvent> event = parser->next();
    if (!event.ok()) return event.error();
    if (event.value() == XmlEvent::kStartElement) ++depth;
    else if (event.value() == XmlEvent::kEndElement) --depth;
    else if (event.value() == XmlEvent::kEof) {
      return Error{ErrorCode::kParseError, "EOF inside element"};
    }
  }
  return Status{};
}

/// Reads one MIO: <item><x>..</x><y>..</y><v>..</v></item>; the start tag of
/// <item> has been consumed.
Result<Mio> read_mio(XmlPullParser* parser) {
  Mio mio;
  int field = 0;
  for (;;) {
    Result<XmlEvent> event = parser->next();
    if (!event.ok()) return event.error();
    if (event.value() == XmlEvent::kEndElement) {
      if (field != 3) {
        return Error{ErrorCode::kParseError, "MIO with missing fields"};
      }
      return mio;
    }
    if (event.value() == XmlEvent::kText) continue;  // inter-element space
    if (event.value() != XmlEvent::kStartElement) {
      return Error{ErrorCode::kParseError, "EOF inside MIO"};
    }
    // Trie-based tag dispatch (Chiu et al. [6]): member names resolve to
    // slot ids in one pass instead of repeated string compares.
    static const xml::TagTrie& mio_trie = *[] {
      auto* trie = new xml::TagTrie();
      trie->add("x");
      trie->add("y");
      trie->add("v");
      return trie;
    }();
    const int slot = mio_trie.match(parser->name());
    if (slot < 0) {
      return Error{ErrorCode::kParseError,
                   "unknown MIO member: " + std::string(parser->name())};
    }
    Result<std::string> text = read_text_content(parser);
    if (!text.ok()) return text.error();
    const std::string_view lexical = trim(text.value());
    if (slot == 2) {
      Result<double> v = textconv::parse_double(lexical);
      if (!v.ok()) return type_error("MIO double", lexical);
      mio.value = v.value();
    } else {
      Result<std::int32_t> v = textconv::parse_i32(lexical);
      if (!v.ok()) return type_error("MIO int", lexical);
      (slot == 0 ? mio.x : mio.y) = v.value();
    }
    ++field;
  }
}

/// Reads a SOAP-ENC:Array given the arrayType attribute value; the array's
/// start tag has been consumed.
Result<Value> read_array(XmlPullParser* parser, std::string_view array_type) {
  const std::size_t bracket = array_type.find('[');
  const std::string_view element_type =
      bracket == std::string_view::npos ? array_type
                                        : array_type.substr(0, bracket);
  const std::string_view local = xml::split_qname(element_type).local;

  enum class Elem { kDouble, kInt, kMio } elem;
  if (local == "double" || local == "float") elem = Elem::kDouble;
  else if (local == "int" || local == "long") elem = Elem::kInt;
  else if (local == "MIO") elem = Elem::kMio;
  else {
    return Error{ErrorCode::kUnsupported,
                 "unsupported arrayType: " + std::string(array_type)};
  }

  std::vector<double> doubles;
  std::vector<std::int32_t> ints;
  std::vector<Mio> mios;
  for (;;) {
    Result<XmlEvent> event = parser->next();
    if (!event.ok()) return event.error();
    if (event.value() == XmlEvent::kEndElement) break;
    if (event.value() == XmlEvent::kText) continue;  // whitespace between items
    if (event.value() != XmlEvent::kStartElement) {
      return Error{ErrorCode::kParseError, "EOF inside array"};
    }
    if (elem == Elem::kMio) {
      Result<Mio> mio = read_mio(parser);
      if (!mio.ok()) return mio.error();
      mios.push_back(mio.value());
      continue;
    }
    Result<std::string> text = read_text_content(parser);
    if (!text.ok()) return text.error();
    const std::string_view lexical = trim(text.value());
    if (elem == Elem::kDouble) {
      Result<double> v = textconv::parse_double(lexical);
      if (!v.ok()) return type_error("double", lexical);
      doubles.push_back(v.value());
    } else {
      Result<std::int32_t> v = textconv::parse_i32(lexical);
      if (!v.ok()) return type_error("int", lexical);
      ints.push_back(v.value());
    }
  }
  switch (elem) {
    case Elem::kDouble: return Value::from_double_array(std::move(doubles));
    case Elem::kInt: return Value::from_int_array(std::move(ints));
    case Elem::kMio: return Value::from_mio_array(std::move(mios));
  }
  return Error{ErrorCode::kInternal, "unreachable"};
}

/// Reads the value whose start tag the parser just consumed.
Result<Value> read_value(XmlPullParser* parser, const MultiRefMap* multirefs) {
  // Multi-ref accessor: <name href="#ref-N"/> refers to an independent
  // element serialized once elsewhere in the Body (SOAP 1.1 Section 5).
  if (const xml::XmlAttribute* href = parser->find_attribute("href")) {
    std::string id = href->value;
    if (!id.empty() && id.front() == '#') id.erase(0, 1);
    BSOAP_RETURN_IF_ERROR(skip_subtree(parser));  // consume the empty element
    if (multirefs != nullptr) {
      const auto it = multirefs->find(id);
      if (it != multirefs->end()) return it->second;
    }
    return Error{ErrorCode::kParseError, "unresolved multiRef '#" + id + "'"};
  }

  std::string xsi_type;
  std::string array_type;
  if (const xml::XmlAttribute* attr = parser->find_attribute("xsi:type")) {
    xsi_type = attr->value;
  }
  if (const xml::XmlAttribute* attr =
          parser->find_attribute("SOAP-ENC:arrayType")) {
    array_type = attr->value;
  }

  if (xsi_type == "SOAP-ENC:Array" || !array_type.empty()) {
    if (array_type.empty()) {
      return Error{ErrorCode::kParseError, "Array without arrayType"};
    }
    return read_array(parser, array_type);
  }

  const std::string_view local = xml::split_qname(xsi_type).local;
  if (local == "int" || local == "long" || local == "double" ||
      local == "float" || local == "boolean" || local == "string") {
    Result<std::string> text = read_text_content(parser);
    if (!text.ok()) return text.error();
    if (local == "string") return Value::from_string(std::move(text.value()));
    const std::string_view lexical = trim(text.value());
    if (local == "int") {
      Result<std::int32_t> v = textconv::parse_i32(lexical);
      if (!v.ok()) return type_error("int", lexical);
      return Value::from_int(v.value());
    }
    if (local == "long") {
      Result<std::int64_t> v = textconv::parse_i64(lexical);
      if (!v.ok()) return type_error("long", lexical);
      return Value::from_int64(v.value());
    }
    if (local == "boolean") {
      if (lexical == "true" || lexical == "1") return Value::from_bool(true);
      if (lexical == "false" || lexical == "0") return Value::from_bool(false);
      return type_error("boolean", lexical);
    }
    Result<double> v = textconv::parse_double(lexical);
    if (!v.ok()) return type_error("double", lexical);
    return Value::from_double(v.value());
  }

  // No recognized xsi:type: struct if children follow, else string.
  Value structure = Value::make_struct();
  std::string text_content;
  bool has_children = false;
  for (;;) {
    Result<XmlEvent> event = parser->next();
    if (!event.ok()) return event.error();
    if (event.value() == XmlEvent::kEndElement) break;
    if (event.value() == XmlEvent::kText) {
      text_content += parser->text();
      continue;
    }
    if (event.value() != XmlEvent::kStartElement) {
      return Error{ErrorCode::kParseError, "EOF inside value"};
    }
    has_children = true;
    std::string member_name(parser->name());
    Result<Value> member = read_value(parser, multirefs);
    if (!member.ok()) return member.error();
    structure.add_member(std::move(member_name), std::move(member.value()));
  }
  if (has_children) return structure;
  return Value::from_string(std::move(text_content));
}

}  // namespace


namespace {

/// Pre-pass for multi-ref documents: parses every id-bearing element in the
/// Body into a value, keyed by id. Nested multi-refs are not supported.
Result<std::map<std::string, Value>> collect_multirefs(
    std::string_view document) {
  std::map<std::string, Value> out;
  XmlPullParser scanner(document);
  for (;;) {
    Result<XmlEvent> event = scanner.next();
    if (!event.ok()) return event.error();
    if (event.value() == XmlEvent::kEof) return out;
    if (event.value() != XmlEvent::kStartElement) continue;
    const xml::XmlAttribute* id = scanner.find_attribute("id");
    if (id == nullptr) continue;
    const std::string key = id->value;
    // Parse this element's subtree with a sub-parser over its byte range.
    const std::size_t begin = scanner.event_begin();
    BSOAP_RETURN_IF_ERROR(skip_subtree(&scanner));
    const std::size_t end = scanner.event_end();
    XmlPullParser sub(document.substr(begin, end - begin));
    Result<XmlEvent> sub_event = sub.next();
    if (!sub_event.ok()) return sub_event.error();
    Result<Value> value = read_value(&sub, nullptr);
    if (!value.ok()) return value.error();
    out.emplace(key, std::move(value.value()));
  }
}

}  // namespace

Result<RpcCall> read_rpc_envelope(std::string_view document) {
  XmlPullParser parser(document);

  // Multi-ref pre-pass (only when href accessors are present).
  std::map<std::string, Value> multirefs;
  if (document.find("href=\"#") != std::string_view::npos) {
    Result<std::map<std::string, Value>> collected =
        collect_multirefs(document);
    if (!collected.ok()) return collected.error();
    multirefs = std::move(collected.value());
  }

  // Envelope.
  Result<XmlEvent> event = parser.next();
  if (!event.ok()) return event.error();
  if (event.value() != XmlEvent::kStartElement ||
      xml::split_qname(parser.name()).local != "Envelope") {
    return Error{ErrorCode::kParseError, "expected SOAP Envelope"};
  }

  // Optional Header, then Body.
  for (;;) {
    event = parser.next();
    if (!event.ok()) return event.error();
    if (event.value() == XmlEvent::kText) continue;
    if (event.value() != XmlEvent::kStartElement) {
      return Error{ErrorCode::kParseError, "expected SOAP Body"};
    }
    const std::string_view local = xml::split_qname(parser.name()).local;
    if (local == "Header") {
      // Skip the header subtree.
      std::size_t depth = 1;
      while (depth > 0) {
        event = parser.next();
        if (!event.ok()) return event.error();
        if (event.value() == XmlEvent::kStartElement) ++depth;
        else if (event.value() == XmlEvent::kEndElement) --depth;
        else if (event.value() == XmlEvent::kEof) {
          return Error{ErrorCode::kParseError, "EOF in Header"};
        }
      }
      continue;
    }
    if (local == "Body") break;
    return Error{ErrorCode::kParseError,
                 "unexpected element <" + std::string(parser.name()) + ">"};
  }

  // Method element. Independent id-bearing elements (multiRef definitions)
  // may legally precede it; they were collected in the pre-pass.
  for (;;) {
    event = parser.next();
    if (!event.ok()) return event.error();
    if (event.value() == XmlEvent::kText) continue;
    if (event.value() != XmlEvent::kStartElement) {
      return Error{ErrorCode::kParseError, "expected method element in Body"};
    }
    if (parser.find_attribute("id") != nullptr) {
      BSOAP_RETURN_IF_ERROR(skip_subtree(&parser));
      continue;
    }
    break;
  }

  RpcCall call;
  const xml::QName method = xml::split_qname(parser.name());
  call.method = std::string(method.local);
  std::string xmlns_attr = "xmlns";
  if (!method.prefix.empty()) {
    xmlns_attr += ':';
    xmlns_attr += method.prefix;
  }
  if (const xml::XmlAttribute* ns = parser.find_attribute(xmlns_attr)) {
    call.service_namespace = ns->value;
  }

  // Parameters.
  for (;;) {
    event = parser.next();
    if (!event.ok()) return event.error();
    if (event.value() == XmlEvent::kEndElement) break;  // method end
    if (event.value() == XmlEvent::kText) continue;
    if (event.value() != XmlEvent::kStartElement) {
      return Error{ErrorCode::kParseError, "EOF inside method element"};
    }
    Param param;
    param.name = std::string(parser.name());
    Result<Value> value = read_value(&parser, &multirefs);
    if (!value.ok()) return value.error();
    param.value = std::move(value.value());
    call.params.push_back(std::move(param));
  }

  // Close Body and Envelope, skipping any independent body-level elements
  // (multiRef definitions were collected in the pre-pass).
  for (int closes = 0; closes < 2;) {
    event = parser.next();
    if (!event.ok()) return event.error();
    if (event.value() == XmlEvent::kText) continue;
    if (event.value() == XmlEvent::kStartElement) {
      BSOAP_RETURN_IF_ERROR(skip_subtree(&parser));
      continue;
    }
    if (event.value() != XmlEvent::kEndElement) {
      return Error{ErrorCode::kParseError, "expected envelope close"};
    }
    ++closes;
  }
  return call;
}

}  // namespace bsoap::soap
