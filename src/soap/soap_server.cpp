#include "soap/soap_server.hpp"

#include "buffer/sinks.hpp"
#include "http/connection.hpp"
#include "net/tcp.hpp"
#include "soap/envelope_reader.hpp"
#include "soap/envelope_writer.hpp"

namespace bsoap::soap {

std::string serialize_rpc_response(const std::string& method,
                                   const std::string& service_namespace,
                                   const Value& result) {
  RpcCall response;
  response.method = method + "Response";
  response.service_namespace = service_namespace;
  response.params.push_back(Param{"return", result});
  buffer::StringSink sink;
  write_rpc_envelope(sink, response);
  return sink.take();
}

std::string serialize_rpc_fault(std::string_view fault_code,
                                std::string_view fault_string) {
  buffer::StringSink sink;
  xml::XmlWriter<buffer::StringSink> writer(sink);
  writer.declaration();
  writer.start_element(kEnvelopeTag);
  writer.attribute("xmlns:SOAP-ENV", kSoapEnvelopeNs);
  writer.start_element(kBodyTag);
  writer.start_element(kFaultTag);
  writer.start_element("faultcode");
  writer.text(fault_code);
  writer.end_element();
  writer.start_element("faultstring");
  writer.text(fault_string);
  writer.end_element();
  writer.end_element();  // Fault
  writer.end_element();  // Body
  writer.end_element();  // Envelope
  writer.finish();
  return sink.take();
}

Result<Value> extract_rpc_result(const RpcCall& response,
                                 std::string_view method) {
  if (response.method == "Fault") {
    std::string detail = "SOAP fault";
    for (const Param& p : response.params) {
      if (p.name == "faultstring" && p.value.kind() == ValueKind::kString) {
        detail = p.value.as_string();
      }
    }
    return Error{ErrorCode::kProtocolError, detail};
  }
  if (response.method != std::string(method) + "Response") {
    return Error{ErrorCode::kProtocolError,
                 "unexpected response method: " + response.method};
  }
  for (const Param& p : response.params) {
    if (p.name == "return") return p.value;
  }
  return Error{ErrorCode::kProtocolError, "response without <return>"};
}

Result<std::unique_ptr<SoapHttpServer>> SoapHttpServer::start(
    RpcHandler handler) {
  return start(std::move(handler), SoapServerOptions{});
}

Result<std::unique_ptr<SoapHttpServer>> SoapHttpServer::start(
    RpcHandler handler, SoapServerOptions options) {
  Result<net::TcpListener> listener = net::TcpListener::bind();
  if (!listener.ok()) return listener.error();

  auto server = std::unique_ptr<SoapHttpServer>(new SoapHttpServer());
  server->handler_ = std::move(handler);
  server->options_ = std::move(options);
  server->port_ = listener.value().port();
  server->accept_thread_ = std::thread(
      [srv = server.get(), l = std::make_shared<net::TcpListener>(
                               std::move(listener.value()))]() mutable {
        for (;;) {
          Result<std::unique_ptr<net::Transport>> conn = l->accept();
          if (!conn.ok() || srv->stopping_.load()) return;
          std::lock_guard<std::mutex> lock(srv->workers_mu_);
          ConnectionSlot slot;
          slot.transport = std::shared_ptr<net::Transport>(std::move(conn.value()));
          slot.thread = std::thread(
              [srv, t = slot.transport] { srv->serve_connection(*t); });
          srv->workers_.push_back(std::move(slot));
        }
      });
  return server;
}

void SoapHttpServer::serve_connection(net::Transport& transport) {
  http::HttpConnection conn(transport);

  // Per-connection envelope parser: pluggable so that the differential
  // deserializer can keep its cache across the connection's requests.
  EnvelopeParser parser;
  if (options_.make_parser) {
    parser = options_.make_parser();
  } else {
    parser = [storage = std::make_shared<RpcCall>()](
                 std::string_view body) -> Result<const RpcCall*> {
      Result<RpcCall> parsed = read_rpc_envelope(body);
      if (!parsed.ok()) return parsed.error();
      *storage = std::move(parsed.value());
      return storage.get();
    };
  }

  for (;;) {
    Result<http::HttpRequest> request = conn.read_request();
    if (!request.ok()) return;  // closed or protocol error: drop connection

    std::string body;
    Result<const RpcCall*> call = parser(request.value().body);
    if (!call.ok()) {
      faults_.fetch_add(1);
      body = serialize_rpc_fault("SOAP-ENV:Client", call.error().to_string());
    } else {
      Result<Value> result = handler_(*call.value());
      if (!result.ok()) {
        faults_.fetch_add(1);
        body = serialize_rpc_fault("SOAP-ENV:Server",
                                   result.error().to_string());
      } else {
        served_.fetch_add(1);
        body = serialize_rpc_response(call.value()->method,
                                      call.value()->service_namespace,
                                      result.value());
      }
    }
    http::HttpResponse response;
    response.headers.push_back(
        http::Header{"Content-Type", "text/xml; charset=utf-8"});
    if (!conn.send_response(std::move(response), body).ok()) return;
  }
}

SoapHttpServer::~SoapHttpServer() { stop(); }

void SoapHttpServer::stop() {
  if (stopping_.exchange(true)) return;
  (void)net::tcp_connect(port_);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::lock_guard<std::mutex> lock(workers_mu_);
  // Abort in-flight reads so workers blocked on open client connections
  // observe end-of-stream and exit.
  for (ConnectionSlot& slot : workers_) slot.transport->shutdown_both();
  for (ConnectionSlot& slot : workers_) {
    if (slot.thread.joinable()) slot.thread.join();
  }
}

}  // namespace bsoap::soap
