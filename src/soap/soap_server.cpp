#include "soap/soap_server.hpp"

#include "buffer/sinks.hpp"
#include "soap/envelope_writer.hpp"

// SoapHttpServer's member functions live in src/server/soap_http_server.cpp
// (the bsoap_server library): the class fronts server::ServerRuntime, which
// sits above bsoap_core, and bsoap_soap must stay below it. This file keeps
// only the envelope helpers.

namespace bsoap::soap {

std::string serialize_rpc_response(const std::string& method,
                                   const std::string& service_namespace,
                                   const Value& result) {
  RpcCall response;
  response.method = method + "Response";
  response.service_namespace = service_namespace;
  response.params.push_back(Param{"return", result});
  buffer::StringSink sink;
  write_rpc_envelope(sink, response);
  return sink.take();
}

std::string serialize_rpc_fault(std::string_view fault_code,
                                std::string_view fault_string) {
  buffer::StringSink sink;
  xml::XmlWriter<buffer::StringSink> writer(sink);
  writer.declaration();
  writer.start_element(kEnvelopeTag);
  writer.attribute("xmlns:SOAP-ENV", kSoapEnvelopeNs);
  writer.start_element(kBodyTag);
  writer.start_element(kFaultTag);
  writer.start_element("faultcode");
  writer.text(fault_code);
  writer.end_element();
  writer.start_element("faultstring");
  writer.text(fault_string);
  writer.end_element();
  writer.end_element();  // Fault
  writer.end_element();  // Body
  writer.end_element();  // Envelope
  writer.finish();
  return sink.take();
}

Result<Value> extract_rpc_result(const RpcCall& response,
                                 std::string_view method) {
  if (response.method == "Fault") {
    std::string detail = "SOAP fault";
    for (const Param& p : response.params) {
      if (p.name == "faultstring" && p.value.kind() == ValueKind::kString) {
        detail = p.value.as_string();
      }
    }
    return Error{ErrorCode::kProtocolError, detail};
  }
  if (response.method != std::string(method) + "Response") {
    return Error{ErrorCode::kProtocolError,
                 "unexpected response method: " + response.method};
  }
  for (const Param& p : response.params) {
    if (p.name == "return") return p.value;
  }
  return Error{ErrorCode::kProtocolError, "response without <return>"};
}

}  // namespace bsoap::soap
