// SOAP 1.1 envelope deserialization into an RpcCall.
//
// Used by the validating server, the round-trip test suite, and the
// differential-deserialization extension. Typing rules: xsi:type attributes
// drive scalar/array decoding; elements without xsi:type decode as structs
// (children) or strings (text only). Whitespace around scalar lexicals is
// trimmed — stuffing (paper Section 3.2) pads fields with whitespace that is
// explicitly legal in XML.
#pragma once

#include <string_view>

#include "common/error.hpp"
#include "soap/value.hpp"

namespace bsoap::soap {

/// Parses a complete SOAP request envelope. Fails on malformed XML, a
/// missing Envelope/Body, or type errors in value lexicals.
Result<RpcCall> read_rpc_envelope(std::string_view document);

}  // namespace bsoap::soap
