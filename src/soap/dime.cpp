#include "soap/dime.hpp"

#include <cstring>

namespace bsoap::soap {
namespace {

constexpr std::uint8_t kVersion = 1;

std::size_t padded4(std::size_t n) { return (n + 3) & ~std::size_t{3}; }

void put_u16(std::string* out, std::uint16_t v) {
  *out += static_cast<char>((v >> 8) & 0xFF);
  *out += static_cast<char>(v & 0xFF);
}

void put_u32(std::string* out, std::uint32_t v) {
  *out += static_cast<char>((v >> 24) & 0xFF);
  *out += static_cast<char>((v >> 16) & 0xFF);
  *out += static_cast<char>((v >> 8) & 0xFF);
  *out += static_cast<char>(v & 0xFF);
}

void put_padded(std::string* out, std::string_view field) {
  out->append(field);
  out->append(padded4(field.size()) - field.size(), '\0');
}

std::uint16_t get_u16(const unsigned char* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t get_u32(const unsigned char* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

}  // namespace

std::string write_dime(const std::vector<DimeRecord>& records) {
  std::string out;
  for (const DimeRecord& r : records) {
    BSOAP_ASSERT(r.id.size() <= 0xFFFF);
    BSOAP_ASSERT(r.type.size() <= 0xFFFF);
    BSOAP_ASSERT(r.data.size() <= 0xFFFFFFFFull);
    std::uint8_t byte0 = static_cast<std::uint8_t>(kVersion << 3);
    if (r.message_begin) byte0 |= 0x4;
    if (r.message_end) byte0 |= 0x2;
    if (r.chunked) byte0 |= 0x1;
    out += static_cast<char>(byte0);
    out += static_cast<char>(static_cast<std::uint8_t>(r.type_format) << 4);
    put_u16(&out, 0);  // no options
    put_u16(&out, static_cast<std::uint16_t>(r.id.size()));
    put_u16(&out, static_cast<std::uint16_t>(r.type.size()));
    put_u32(&out, static_cast<std::uint32_t>(r.data.size()));
    put_padded(&out, r.id);
    put_padded(&out, r.type);
    put_padded(&out, r.data);
  }
  return out;
}

std::string make_dime_message(std::string_view envelope,
                              const std::vector<DimeRecord>& attachments) {
  std::vector<DimeRecord> records;
  DimeRecord first;
  first.message_begin = true;
  first.type = "text/xml";
  first.type_format = DimeTypeFormat::kMediaType;
  first.data = std::string(envelope);
  records.push_back(std::move(first));
  for (const DimeRecord& attachment : attachments) {
    records.push_back(attachment);
    records.back().message_begin = false;
    records.back().message_end = false;
  }
  records.back().message_end = true;
  return write_dime(records);
}

Result<std::vector<DimeRecord>> parse_dime(std::string_view message) {
  std::vector<DimeRecord> records;
  const auto* p = reinterpret_cast<const unsigned char*>(message.data());
  std::size_t offset = 0;
  bool saw_end = false;
  while (offset < message.size()) {
    if (saw_end) {
      return Error{ErrorCode::kParseError, "DIME: data after ME record"};
    }
    if (message.size() - offset < 12) {
      return Error{ErrorCode::kParseError, "DIME: truncated record header"};
    }
    const std::uint8_t byte0 = p[offset];
    if ((byte0 >> 3) != kVersion) {
      return Error{ErrorCode::kParseError, "DIME: unsupported version"};
    }
    DimeRecord record;
    record.message_begin = (byte0 & 0x4) != 0;
    record.message_end = (byte0 & 0x2) != 0;
    record.chunked = (byte0 & 0x1) != 0;
    record.type_format = static_cast<DimeTypeFormat>(p[offset + 1] >> 4);
    const std::uint16_t options_length = get_u16(p + offset + 2);
    const std::uint16_t id_length = get_u16(p + offset + 4);
    const std::uint16_t type_length = get_u16(p + offset + 6);
    const std::uint32_t data_length = get_u32(p + offset + 8);
    offset += 12;

    const std::size_t need = padded4(options_length) + padded4(id_length) +
                             padded4(type_length) + padded4(data_length);
    if (message.size() - offset < need) {
      return Error{ErrorCode::kParseError, "DIME: truncated record body"};
    }
    offset += padded4(options_length);  // options ignored
    record.id.assign(message.data() + offset, id_length);
    offset += padded4(id_length);
    record.type.assign(message.data() + offset, type_length);
    offset += padded4(type_length);
    record.data.assign(message.data() + offset, data_length);
    offset += padded4(data_length);

    if (records.empty() && !record.message_begin) {
      return Error{ErrorCode::kParseError, "DIME: first record lacks MB"};
    }
    if (!records.empty() && record.message_begin) {
      return Error{ErrorCode::kParseError, "DIME: duplicate MB"};
    }
    saw_end = record.message_end;
    records.push_back(std::move(record));
  }
  if (records.empty()) {
    return Error{ErrorCode::kParseError, "DIME: empty message"};
  }
  if (!saw_end) {
    return Error{ErrorCode::kParseError, "DIME: missing ME record"};
  }
  return records;
}

}  // namespace bsoap::soap
