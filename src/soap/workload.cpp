#include "soap/workload.hpp"

#include <cstdio>
#include <cstring>
#include <string>

#include "common/error.hpp"
#include "textconv/dtoa.hpp"
#include "textconv/itoa.hpp"
#include "textconv/parse.hpp"

namespace bsoap::soap {

std::vector<double> random_doubles(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (double& v : out) v = rng.next_finite_double();
  return out;
}

std::vector<double> random_unit_doubles(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (double& v : out) v = rng.next_unit_double();
  return out;
}

std::vector<std::int32_t> random_ints(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int32_t> out(n);
  for (std::int32_t& v : out) v = rng.next_i32();
  return out;
}

std::vector<Mio> random_mios(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Mio> out(n);
  for (Mio& m : out) {
    m.x = static_cast<std::int32_t>(rng.next_in(0, 4095));
    m.y = static_cast<std::int32_t>(rng.next_in(0, 4095));
    m.value = rng.next_finite_double();
  }
  return out;
}

std::int32_t int_with_serialized_length(Rng& rng, int chars) {
  BSOAP_ASSERT(chars >= 1 && chars <= 11);
  for (;;) {
    std::int32_t candidate;
    if (chars == 1) {
      candidate = static_cast<std::int32_t>(rng.next_in(1, 9));
    } else if (chars <= 10) {
      // `chars`-digit positive integer with a nonzero leading digit.
      std::int64_t v = rng.next_in(1, 9);
      for (int i = 1; i < chars; ++i) v = v * 10 + rng.next_in(0, 9);
      if (v > 2147483647) continue;
      candidate = static_cast<std::int32_t>(v);
    } else {
      // 11 chars: sign + 10 digits.
      std::int64_t v = rng.next_in(1, 2);  // keep below 2^31
      for (int i = 1; i < 10; ++i) v = v * 10 + rng.next_in(0, 9);
      if (v > 2147483648ll) continue;
      candidate = static_cast<std::int32_t>(-v);
    }
    if (textconv::serialized_length_i32(candidate) == chars) return candidate;
  }
}

double double_with_serialized_length(Rng& rng, int chars) {
  BSOAP_ASSERT(chars >= 1 && chars <= textconv::kMaxDoubleChars);
  for (;;) {
    double candidate = 0.0;
    if (chars == 1) {
      candidate = static_cast<double>(rng.next_in(1, 9));
    } else if (chars <= 16) {
      // `chars`-digit integer with nonzero first and last digits: exactly
      // representable (< 2^53) and its own shortest decimal.
      double v = static_cast<double>(rng.next_in(1, 9));
      for (int i = 1; i < chars - 1; ++i) {
        v = v * 10 + static_cast<double>(rng.next_in(0, 9));
      }
      v = v * 10 + static_cast<double>(rng.next_in(1, 9));
      candidate = v;
    } else {
      // 17..24 chars: scientific notation d.<k-1 digits>e-300 has
      // k + 6 characters (k >= 2); negate for the 24-character maximum.
      const bool negative = chars == 24;
      const int k = negative ? 17 : chars - 6;
      std::string text;
      text += static_cast<char>('1' + rng.next_below(9));
      text += '.';
      for (int i = 1; i < k; ++i) {
        text += static_cast<char>('0' + rng.next_below(10));
      }
      // Nonzero final digit so the lexical has no shorter equivalent.
      text.back() = static_cast<char>('1' + rng.next_below(9));
      text += "e-300";
      Result<double> parsed = textconv::parse_double(text);
      if (!parsed.ok()) continue;
      candidate = negative ? -parsed.value() : parsed.value();
    }
    if (textconv::serialized_length_double(candidate) == chars) {
      return candidate;
    }
  }
}

std::vector<double> doubles_with_serialized_length(std::size_t n, int chars,
                                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (double& v : out) v = double_with_serialized_length(rng, chars);
  return out;
}

std::vector<std::int32_t> ints_with_serialized_length(std::size_t n, int chars,
                                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int32_t> out(n);
  for (std::int32_t& v : out) v = int_with_serialized_length(rng, chars);
  return out;
}

std::vector<Mio> mios_with_serialized_length(std::size_t n, int chars,
                                             std::uint64_t seed) {
  // Split the total across (x, y, value). Prefer maxing the double first —
  // matching the paper's 46 = 11 + 11 + 24 and 36-character intermediates.
  int double_chars = chars - 2;
  int int_chars = 1;
  if (double_chars > textconv::kMaxDoubleChars) {
    double_chars = textconv::kMaxDoubleChars;
    const int rest = chars - double_chars;
    BSOAP_ASSERT(rest >= 2 && rest <= 22);
    int_chars = rest / 2;
    // When the remainder is odd, x gets the extra character.
  }
  const int x_chars = chars - double_chars - int_chars;
  BSOAP_ASSERT(x_chars >= 1 && x_chars <= 11);
  BSOAP_ASSERT(int_chars >= 1 && int_chars <= 11);
  BSOAP_ASSERT(double_chars >= 1);

  Rng rng(seed);
  std::vector<Mio> out(n);
  for (Mio& m : out) {
    m.x = int_with_serialized_length(rng, x_chars);
    m.y = int_with_serialized_length(rng, int_chars);
    m.value = double_with_serialized_length(rng, double_chars);
  }
  return out;
}

namespace {

RpcCall make_call(Value value) {
  RpcCall call;
  call.method = "sendData";
  call.service_namespace = "urn:bsoap-bench";
  call.params.push_back(Param{"data", std::move(value)});
  return call;
}

}  // namespace

RpcCall make_double_array_call(std::vector<double> values) {
  return make_call(Value::from_double_array(std::move(values)));
}

RpcCall make_int_array_call(std::vector<std::int32_t> values) {
  return make_call(Value::from_int_array(std::move(values)));
}

RpcCall make_mio_array_call(std::vector<Mio> values) {
  return make_call(Value::from_mio_array(std::move(values)));
}

}  // namespace bsoap::soap
