#include "soap/base64.hpp"

#include <cstring>

namespace bsoap::soap {
namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

constexpr std::int8_t kInvalid = -1;
constexpr std::int8_t kPad = -2;
constexpr std::int8_t kSpace = -3;

const std::int8_t* decode_table() {
  static const std::int8_t* table = [] {
    static std::int8_t t[256];
    std::memset(t, kInvalid, sizeof(t));
    for (int i = 0; i < 64; ++i) {
      t[static_cast<unsigned char>(kAlphabet[i])] = static_cast<std::int8_t>(i);
    }
    t[static_cast<unsigned char>('=')] = kPad;
    for (const char ws : {' ', '\t', '\r', '\n'}) {
      t[static_cast<unsigned char>(ws)] = kSpace;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::string base64_encode(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    const std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                            data[i + 2];
    out += kAlphabet[(v >> 18) & 0x3F];
    out += kAlphabet[(v >> 12) & 0x3F];
    out += kAlphabet[(v >> 6) & 0x3F];
    out += kAlphabet[v & 0x3F];
  }
  const std::size_t rest = data.size() - i;
  if (rest == 1) {
    const std::uint32_t v = static_cast<std::uint32_t>(data[i]) << 16;
    out += kAlphabet[(v >> 18) & 0x3F];
    out += kAlphabet[(v >> 12) & 0x3F];
    out += "==";
  } else if (rest == 2) {
    const std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8);
    out += kAlphabet[(v >> 18) & 0x3F];
    out += kAlphabet[(v >> 12) & 0x3F];
    out += kAlphabet[(v >> 6) & 0x3F];
    out += '=';
  }
  return out;
}

std::string base64_encode(std::string_view data) {
  return base64_encode(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

Result<std::vector<std::uint8_t>> base64_decode(std::string_view text) {
  const std::int8_t* table = decode_table();
  std::vector<std::uint8_t> out;
  out.reserve(text.size() / 4 * 3);
  std::uint32_t accum = 0;
  int pending = 0;
  int pads = 0;
  for (const char c : text) {
    const std::int8_t v = table[static_cast<unsigned char>(c)];
    if (v == kSpace) continue;
    if (v == kInvalid) {
      return Error{ErrorCode::kParseError,
                   std::string("base64: invalid character '") + c + "'"};
    }
    if (v == kPad) {
      ++pads;
      continue;
    }
    if (pads > 0) {
      return Error{ErrorCode::kParseError, "base64: data after padding"};
    }
    accum = (accum << 6) | static_cast<std::uint32_t>(v);
    if (++pending == 4) {
      out.push_back(static_cast<std::uint8_t>((accum >> 16) & 0xFF));
      out.push_back(static_cast<std::uint8_t>((accum >> 8) & 0xFF));
      out.push_back(static_cast<std::uint8_t>(accum & 0xFF));
      accum = 0;
      pending = 0;
    }
  }
  if (pending == 1 || pending + pads > 4 ||
      (pending > 0 && pending + pads != 4)) {
    return Error{ErrorCode::kParseError, "base64: bad final quantum"};
  }
  if (pending == 3) {
    out.push_back(static_cast<std::uint8_t>((accum >> 10) & 0xFF));
    out.push_back(static_cast<std::uint8_t>((accum >> 2) & 0xFF));
  } else if (pending == 2) {
    out.push_back(static_cast<std::uint8_t>((accum >> 4) & 0xFF));
  }
  return out;
}

std::string base64_pack_doubles(std::span<const double> values) {
  std::vector<std::uint8_t> bytes(values.size() * sizeof(double));
  std::memcpy(bytes.data(), values.data(), bytes.size());
  return base64_encode(bytes);
}

Result<std::vector<double>> base64_unpack_doubles(std::string_view text) {
  Result<std::vector<std::uint8_t>> bytes = base64_decode(text);
  if (!bytes.ok()) return bytes.error();
  if (bytes.value().size() % sizeof(double) != 0) {
    return Error{ErrorCode::kParseError,
                 "base64 payload is not a whole number of doubles"};
  }
  std::vector<double> out(bytes.value().size() / sizeof(double));
  std::memcpy(out.data(), bytes.value().data(), bytes.value().size());
  return out;
}

}  // namespace bsoap::soap
