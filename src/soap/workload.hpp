// Deterministic workload generation for tests, benchmarks and examples.
//
// The paper's experiments control the *serialized width* of values (e.g.
// expand a 1-character double to the 24-character maximum, or stuff MIOs to
// 36 of their 46 maximum characters); these helpers construct values with an
// exact serialized length so the benches can reproduce each figure's setup.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "soap/value.hpp"

namespace bsoap::soap {

/// Uniformly random finite doubles over the full bit range (serialized
/// lengths mostly 17-24 characters — hard mode for the converter).
std::vector<double> random_doubles(std::size_t n, std::uint64_t seed);

/// Random doubles in [0, 1) — the common scientific-payload shape.
std::vector<double> random_unit_doubles(std::size_t n, std::uint64_t seed);

std::vector<std::int32_t> random_ints(std::size_t n, std::uint64_t seed);

std::vector<Mio> random_mios(std::size_t n, std::uint64_t seed);

/// A double whose write_double() length is exactly `chars` (1..24).
double double_with_serialized_length(bsoap::Rng& rng, int chars);

/// An int whose serialized length is exactly `chars` (1..11).
std::int32_t int_with_serialized_length(bsoap::Rng& rng, int chars);

std::vector<double> doubles_with_serialized_length(std::size_t n, int chars,
                                                   std::uint64_t seed);
std::vector<std::int32_t> ints_with_serialized_length(std::size_t n, int chars,
                                                      std::uint64_t seed);

/// MIOs whose total serialized length (x+y+value) is exactly `chars`.
/// Supported totals: 3 (minimum: 1+1+1), any total expressible as
/// int_chars*2 + double_chars with 1<=int_chars<=11, 1<=double_chars<=24;
/// the helper picks a split. The paper uses 3, 36 and 46.
std::vector<Mio> mios_with_serialized_length(std::size_t n, int chars,
                                             std::uint64_t seed);

/// Standard benchmark calls: method "sendData" in "urn:bsoap-bench" with a
/// single array parameter "data".
RpcCall make_double_array_call(std::vector<double> values);
RpcCall make_int_array_call(std::vector<std::int32_t> values);
RpcCall make_mio_array_call(std::vector<Mio> values);

}  // namespace bsoap::soap
