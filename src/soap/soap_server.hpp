// SOAP-over-HTTP server.
//
// Two modes mirror the paper's setups:
//  * a handler-driven service that parses each request envelope and returns
//    a response envelope (used by the examples and integration tests), and
//  * access to a raw drain endpoint lives in net/drain_server.hpp (the
//    paper's dummy server that reads and discards bytes without parsing).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "net/transport.hpp"
#include "soap/value.hpp"

namespace bsoap::soap {

/// Computes the response value for a parsed RPC request.
using RpcHandler = std::function<Result<Value>(const RpcCall&)>;

/// Per-connection envelope parser: body bytes -> parsed call. The returned
/// pointer must stay valid until the next invocation (connections are
/// served sequentially). The default implementation runs a full
/// read_rpc_envelope; bsoap::core supplies a differential-deserialization
/// variant (paper Section 6) via make_diff_deserializing_options().
using EnvelopeParser =
    std::function<Result<const RpcCall*>(std::string_view body)>;

struct SoapServerOptions {
  /// Creates one EnvelopeParser per connection; null uses the default full
  /// parser.
  std::function<EnvelopeParser()> make_parser;
};

class SoapHttpServer {
 public:
  /// Starts listening on an ephemeral loopback port.
  static Result<std::unique_ptr<SoapHttpServer>> start(RpcHandler handler);
  static Result<std::unique_ptr<SoapHttpServer>> start(
      RpcHandler handler, SoapServerOptions options);

  ~SoapHttpServer();

  std::uint16_t port() const { return port_; }

  /// Requests served successfully so far.
  std::uint64_t requests_served() const { return served_.load(); }
  /// Requests that produced a SOAP fault.
  std::uint64_t faults_returned() const { return faults_.load(); }

  void stop();

 private:
  SoapHttpServer() = default;
  void serve_connection(net::Transport& transport);

  struct ConnectionSlot {
    std::thread thread;
    std::shared_ptr<net::Transport> transport;
  };

  RpcHandler handler_;
  SoapServerOptions options_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> faults_{0};
  std::thread accept_thread_;
  std::vector<ConnectionSlot> workers_;
  std::mutex workers_mu_;
};

/// Serializes a response envelope: <methodResponse><return>value</return>.
std::string serialize_rpc_response(const std::string& method,
                                   const std::string& service_namespace,
                                   const Value& result);

/// Serializes a SOAP 1.1 Fault envelope.
std::string serialize_rpc_fault(std::string_view fault_code,
                                std::string_view fault_string);

/// Extracts the <return> value from a parsed response call; checks that the
/// method name is `method` + "Response".
Result<Value> extract_rpc_result(const RpcCall& response,
                                 std::string_view method);

}  // namespace bsoap::soap
