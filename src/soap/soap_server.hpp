// SOAP-over-HTTP server.
//
// Two modes mirror the paper's setups:
//  * a handler-driven service that parses each request envelope and returns
//    a response envelope (used by the examples and integration tests), and
//  * access to a raw drain endpoint lives in net/drain_server.hpp (the
//    paper's dummy server that reads and discards bytes without parsing).
//
// SoapHttpServer is a thin facade over server::ServerRuntime — the bounded
// worker pool with connection lifecycle management and response-side
// differential serialization (src/server/server_runtime.hpp). Use the
// runtime directly for tuning (worker count, timeouts, backlog) and for the
// full ServerStats snapshot.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/error.hpp"
#include "soap/value.hpp"

namespace bsoap::server {
class ServerRuntime;
}  // namespace bsoap::server

namespace bsoap::soap {

/// Computes the response value for a parsed RPC request. Handlers run on
/// the runtime's worker pool: they must be safe to call concurrently.
using RpcHandler = std::function<Result<Value>(const RpcCall&)>;

/// Per-connection envelope parser: body bytes -> parsed call. The returned
/// pointer must stay valid until the next invocation (a connection's
/// requests are served sequentially by one worker). The default
/// implementation runs a full read_rpc_envelope; bsoap::core supplies a
/// differential-deserialization variant (paper Section 6) via
/// make_diff_deserializing_options().
using EnvelopeParser =
    std::function<Result<const RpcCall*>(std::string_view body)>;

struct SoapServerOptions {
  /// Creates one EnvelopeParser per connection; null uses the default full
  /// parser.
  std::function<EnvelopeParser()> make_parser;
};

class SoapHttpServer {
 public:
  /// Starts listening on an ephemeral loopback port.
  static Result<std::unique_ptr<SoapHttpServer>> start(RpcHandler handler);
  static Result<std::unique_ptr<SoapHttpServer>> start(
      RpcHandler handler, SoapServerOptions options);

  ~SoapHttpServer();

  std::uint16_t port() const;

  /// Requests served successfully so far.
  std::uint64_t requests_served() const;
  /// Requests that produced a SOAP fault (bad envelope or handler error).
  std::uint64_t faults_returned() const;

  /// The underlying runtime, for ServerStats and lifecycle detail.
  server::ServerRuntime& runtime() { return *runtime_; }
  const server::ServerRuntime& runtime() const { return *runtime_; }

  /// Graceful drain: in-flight requests finish, then all threads join.
  void stop();

 private:
  SoapHttpServer() = default;

  std::unique_ptr<server::ServerRuntime> runtime_;
};

/// Serializes a response envelope: <methodResponse><return>value</return>.
std::string serialize_rpc_response(const std::string& method,
                                   const std::string& service_namespace,
                                   const Value& result);

/// Serializes a SOAP 1.1 Fault envelope.
std::string serialize_rpc_fault(std::string_view fault_code,
                                std::string_view fault_string);

/// Extracts the <return> value from a parsed response call; checks that the
/// method name is `method` + "Response".
Result<Value> extract_rpc_result(const RpcCall& response,
                                 std::string_view method);

}  // namespace bsoap::soap
