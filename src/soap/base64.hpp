// Base64 (RFC 4648) encode/decode.
//
// The paper's related work (Section 5) lists base64-encoded binary payloads
// among the proposed SOAP binary formats: faster than ASCII conversion but
// at the cost of the simplicity and universality that make SOAP attractive.
// The binary-format ablation quantifies the trade-off.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace bsoap::soap {

std::string base64_encode(std::span<const std::uint8_t> data);
std::string base64_encode(std::string_view data);

/// Decodes; tolerates embedded whitespace (base64 inside XML is often
/// line-wrapped). Fails on other non-alphabet characters or bad padding.
Result<std::vector<std::uint8_t>> base64_decode(std::string_view text);

/// Convenience: pack a double array as little-endian bytes and base64 it —
/// the payload shape a binary-SOAP encoding would ship.
std::string base64_pack_doubles(std::span<const double> values);
Result<std::vector<double>> base64_unpack_doubles(std::string_view text);

}  // namespace bsoap::soap
