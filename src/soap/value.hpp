// The in-memory data model serialized into SOAP messages.
//
// Scientific payloads are dominated by large homogeneous arrays, so arrays
// of double, int and MIO get dedicated dense representations (matching how
// generated gSOAP stubs hold `double*` + length); the generic tree covers
// structs, strings and mixed content for the metadata-style workloads.
//
// A MIO ("mesh interface object", paper Section 4.1) is the struct
// [int, int, double]: two mesh coordinates and a field value, as exchanged
// between coupled PDE solvers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace bsoap::soap {

struct Mio {
  std::int32_t x = 0;
  std::int32_t y = 0;
  double value = 0.0;

  bool operator==(const Mio&) const = default;
};

enum class ValueKind {
  kInt32,
  kInt64,
  kDouble,
  kBool,
  kString,
  kStruct,
  kDoubleArray,
  kIntArray,
  kMioArray,
};

/// Tagged value. Only the member selected by `kind` is meaningful; the dense
/// array members avoid per-element allocation on the hot paths.
class Value {
 public:
  Value() : kind_(ValueKind::kInt32) {}

  static Value from_int(std::int32_t v);
  static Value from_int64(std::int64_t v);
  static Value from_double(double v);
  static Value from_bool(bool v);
  static Value from_string(std::string v);
  static Value from_double_array(std::vector<double> v);
  static Value from_int_array(std::vector<std::int32_t> v);
  static Value from_mio_array(std::vector<Mio> v);
  static Value make_struct();

  ValueKind kind() const { return kind_; }

  std::int32_t as_int() const { BSOAP_ASSERT(kind_ == ValueKind::kInt32); return static_cast<std::int32_t>(i_); }
  std::int64_t as_int64() const { BSOAP_ASSERT(kind_ == ValueKind::kInt64); return i_; }
  double as_double() const { BSOAP_ASSERT(kind_ == ValueKind::kDouble); return d_; }
  bool as_bool() const { BSOAP_ASSERT(kind_ == ValueKind::kBool); return i_ != 0; }
  const std::string& as_string() const { BSOAP_ASSERT(kind_ == ValueKind::kString); return s_; }

  std::vector<double>& doubles() { BSOAP_ASSERT(kind_ == ValueKind::kDoubleArray); return doubles_; }
  const std::vector<double>& doubles() const { BSOAP_ASSERT(kind_ == ValueKind::kDoubleArray); return doubles_; }
  std::vector<std::int32_t>& ints() { BSOAP_ASSERT(kind_ == ValueKind::kIntArray); return ints_; }
  const std::vector<std::int32_t>& ints() const { BSOAP_ASSERT(kind_ == ValueKind::kIntArray); return ints_; }
  std::vector<Mio>& mios() { BSOAP_ASSERT(kind_ == ValueKind::kMioArray); return mios_; }
  const std::vector<Mio>& mios() const { BSOAP_ASSERT(kind_ == ValueKind::kMioArray); return mios_; }

  /// Borrowed dense views for the bulk update path (word-wide scans want a
  /// raw pointer + length, not a vector reference).
  std::span<const double> double_span() const { return doubles(); }
  std::span<const std::int32_t> int_span() const { return ints(); }
  std::span<const Mio> mio_span() const { return mios(); }

  /// Struct members (name, value) in document order.
  struct Member;
  std::vector<Member>& members();
  const std::vector<Member>& members() const;
  Value& add_member(std::string name, Value value);

  /// Number of scalar leaves (ints/doubles/strings) in this value; an MIO
  /// counts as three. Used to size DUT tables.
  std::size_t leaf_count() const;

  /// Deep structural equality including contents.
  bool operator==(const Value& rhs) const;

  /// True if same shape (kind, array lengths, member names) regardless of
  /// scalar contents — the precondition for a structural match.
  bool same_structure(const Value& rhs) const;

 private:
  ValueKind kind_;
  std::int64_t i_ = 0;
  double d_ = 0.0;
  std::string s_;
  std::vector<double> doubles_;
  std::vector<std::int32_t> ints_;
  std::vector<Mio> mios_;
  std::vector<Member> members_;
};

struct Value::Member {
  std::string name;
  Value value;

  bool operator==(const Member& rhs) const {
    return name == rhs.name && value == rhs.value;
  }
};

/// One named RPC parameter.
struct Param {
  std::string name;
  Value value;
};

/// An RPC invocation: method + namespace + parameters.
struct RpcCall {
  std::string method;
  std::string service_namespace;  ///< e.g. "urn:lsa-service"
  std::vector<Param> params;

  /// Structure signature: equal signatures mean a saved template of this
  /// call can be reused (possibly with value rewrites). Covers method,
  /// namespace, parameter names/kinds and array lengths.
  std::uint64_t structure_signature() const;

  bool same_structure(const RpcCall& rhs) const;
};

}  // namespace bsoap::soap
