// Saved message templates and the in-place field rewrite engine.
//
// A MessageTemplate is the serialized form of one previously sent SOAP
// message (stored in noncontiguous chunks) plus its DUT table. Field layout
// within the message (paper Section 3.2):
//
//     <item>VALUE</item>·····<item>...
//           ^value     ^padding (whitespace, legal in XML)
//
// field_width is the character budget for VALUE; when a new value is shorter
// the closing tag is rewritten further left and the remainder padded with
// whitespace ("closing tag shift"); when it no longer fits, space is first
// stolen from a neighbouring field's padding, and failing that the message
// is expanded on the fly ("shifting") — bounded by the chunk, which may
// grow, be reallocated, or split per the ChunkConfig thresholds.
#pragma once

#include <cstdint>

#include "buffer/chunked_buffer.hpp"
#include "core/dut_table.hpp"

namespace bsoap::core {

/// Field width assignment at template-build time (paper Section 3.2 /
/// Section 4.4 "stuffing").
struct StuffingPolicy {
  enum class Mode {
    kExact,    ///< width = current value length (no stuffing)
    kTypeMax,  ///< width = the type's maximum serialized size
    kFixed,    ///< width = fixed_width (clamped up to the value length)
  };

  Mode mode = Mode::kExact;
  std::uint32_t fixed_width = 0;
  /// When a field must be expanded anyway, widen it straight to its type's
  /// maximum serialized size so it never shifts again (pay the shift once).
  bool stuff_on_expand = false;

  std::uint32_t width_for(const LeafTypeInfo& type,
                          std::uint32_t value_len) const {
    switch (mode) {
      case Mode::kExact:
        return value_len;
      case Mode::kTypeMax:
        return type.max_chars == 0 ? value_len
                                   : std::max<std::uint32_t>(type.max_chars,
                                                             value_len);
      case Mode::kFixed:
        return std::max(fixed_width, value_len);
    }
    return value_len;
  }
};

/// The bulk array fast path (SoA shadow planes + dirty-run rewrites).
struct BulkUpdateConfig {
  /// Record ArraySegment descriptors + shadow planes at build time and use
  /// the run-based update path. Off = the per-leaf scalar path everywhere
  /// (the ablation baseline).
  bool enable = true;
  /// Arrays below this element count are not worth a segment descriptor.
  std::uint32_t min_elements = 16;
  /// Segments update on the shared worker pool when they span multiple
  /// chunks, every field provably fits its width (no expansion possible),
  /// and the segment has at least this many leaves.
  std::size_t parallel_min_leaves = 1 << 16;
  /// Master switch for the parallel segment update (serial bulk otherwise).
  bool parallel = true;
};

struct TemplateConfig {
  buffer::ChunkConfig chunk;
  StuffingPolicy stuffing;
  /// Take space from neighbouring fields before shifting the chunk tail
  /// (paper Section 3.2, explored in companion paper [4]).
  bool enable_stealing = true;
  /// How many following entries to scan for a padding donor.
  std::uint32_t steal_scan_limit = 4;
  BulkUpdateConfig bulk;
};

/// Counters exposed for tests, benchmarks and the classifier.
struct TemplateStats {
  std::uint64_t value_rewrites = 0;   ///< fields whose value text was rewritten
  std::uint64_t tag_shifts = 0;       ///< closing tag moved within the field
  std::uint64_t expansions = 0;       ///< fields that outgrew their width
  std::uint64_t steals = 0;           ///< expansions absorbed by a neighbour
  std::uint64_t chunk_shifts = 0;     ///< chunk tail memmoves (slack)
  std::uint64_t chunk_reallocs = 0;   ///< chunk grown into a new region
  std::uint64_t chunk_splits = 0;     ///< chunk split in two
  std::uint64_t bytes_rewritten = 0;  ///< value+tag+pad bytes written

  /// Merges another stats block (parallel workers accumulate locally and
  /// fold in after the join).
  void add(const TemplateStats& rhs) {
    value_rewrites += rhs.value_rewrites;
    tag_shifts += rhs.tag_shifts;
    expansions += rhs.expansions;
    steals += rhs.steals;
    chunk_shifts += rhs.chunk_shifts;
    chunk_reallocs += rhs.chunk_reallocs;
    chunk_splits += rhs.chunk_splits;
    bytes_rewritten += rhs.bytes_rewritten;
  }
};

class MessageTemplate;

/// Transactional record of one differential update (client resilience).
///
/// A failed write after a completed update is poisonous: the template's
/// refreshed shadow copies and cleared dirty bits claim the peer saw bytes
/// it never received, so every later send would silently diff against state
/// the server does not have. Arming a journal before the update makes the
/// rewrite engine capture, per touched field, the pre-rewrite buffer region,
/// DUT entry and shadow copy — plus one up-front snapshot of the dirty mask
/// words and the stats counters — so a failed send rolls back exactly: the
/// template is byte-identical to before the update and every changed field
/// is dirty again, ready for a retry on a fresh connection.
///
/// Cost is O(fields rewritten) + O(mask words); a content match records
/// nothing. Structural updates (expansion by steal/shift/split) move bytes
/// whose pre-move layout was not captured; the journal then reports itself
/// structural and rollback refuses — the caller invalidates the template
/// instead, forcing a clean first-time send.
class UpdateJournal {
 public:
  /// Starts recording against `tmpl` (arms the rewrite-engine hooks).
  /// Any previously captured state is dropped.
  void begin(MessageTemplate& tmpl);

  /// Stops recording and drops the captured state (the send succeeded).
  void commit(MessageTemplate& tmpl);

  /// Restores buffer bytes, DUT entries, shadow copies (strings and SoA
  /// planes), the dirty mask and the stats counters to their begin() state.
  /// Returns false without restoring when the update was structural — the
  /// template must then be invalidated. Disarms either way.
  bool rollback(MessageTemplate& tmpl);

  bool armed() const { return armed_; }
  bool structural() const { return structural_; }
  /// True when the armed update touched nothing (rollback would be a no-op).
  bool empty() const { return records_.empty() && !structural_; }

  /// Appends the DUT indices the armed update touched, in record order (a
  /// leaf may appear more than once if it was re-recorded). While the
  /// update is non-structural these indices' regions have stable positions
  /// and widths, so their post-update bytes are exactly the dirty runs a
  /// diff-wire patch frame needs to carry.
  void touched_fields(std::vector<std::uint32_t>& out) const {
    out.clear();
    out.reserve(records_.size());
    for (const FieldRecord& rec : records_) out.push_back(rec.idx);
  }

  // --- rewrite-engine hooks. Single-threaded: the parallel segment update
  // is disabled while a journal is armed. ---
  void mark_structural() { structural_ = true; }
  void record_field(MessageTemplate& tmpl, std::size_t idx);

 private:
  struct FieldRecord {
    std::uint32_t idx = 0;
    DutEntry entry;              ///< full pre-rewrite entry
    std::uint32_t byte_off = 0;  ///< into bytes_
    std::uint32_t byte_len = 0;  ///< field_width + close_tag_len
    std::uint32_t shadow_string = DutEntry::kNoString;  ///< into strings_
  };

  bool armed_ = false;
  bool structural_ = false;
  std::vector<FieldRecord> records_;
  std::string bytes_;  ///< concatenated pre-rewrite field regions
  std::vector<std::string> strings_;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> dirty_words_;
  std::size_t dirty_count_ = 0;
  TemplateStats stats_;
};

class MessageTemplate {
 public:
  explicit MessageTemplate(const TemplateConfig& config)
      : config_(config), buffer_(config.chunk) {}

  buffer::ChunkedBuffer& buffer() { return buffer_; }
  const buffer::ChunkedBuffer& buffer() const { return buffer_; }
  DutTable& dut() { return dut_; }
  const DutTable& dut() const { return dut_; }
  const TemplateConfig& config() const { return config_; }
  TemplateStats& stats() { return stats_; }
  const TemplateStats& stats() const { return stats_; }

  /// Structure signature of the call this template serializes.
  std::uint64_t signature = 0;

  /// Rewrites the value of DUT entry `idx` with `text` (already in lexical
  /// form, escaped if a string). Performs whatever combination of padding,
  /// closing-tag shifting, stealing and chunk expansion is needed; updates
  /// the entry's serialized_len/field_width and clears nothing (dirty bits
  /// are the caller's concern).
  void rewrite_value(std::size_t idx, const char* text, std::uint32_t len);

  /// Cursor for rewriting a run of entries in ascending index order. The
  /// chunk base pointer is resolved once per chunk and reused with pointer
  /// arithmetic while values fit their fields; a value that outgrows its
  /// width falls back to rewrite_value (the expansion machinery) and
  /// invalidates the cursor, so positions renumbered by a shift/split are
  /// re-resolved. Byte effects and counters are identical to calling
  /// rewrite_value per entry.
  ///
  /// `stats` receives the counters: pass tmpl.stats() on the serial path, a
  /// worker-local block on the parallel path (where the caller must have
  /// proven every value fits — the fallback asserts it is not reached when
  /// writing to foreign stats).
  class RunWriter {
   public:
    RunWriter(MessageTemplate& tmpl, TemplateStats& stats)
        : tmpl_(tmpl), stats_(stats) {}

    void rewrite(std::size_t idx, const char* text, std::uint32_t len);

    /// Typed variants: convert `v` to text and rewrite entry `idx`. On the
    /// vectorized textconv tier the value copy, the shifted closing tag and
    /// the whitespace pad are all written with wide exact stores (no
    /// per-field libc memcpy/memset); on the scalar tier bytes and counters
    /// match write_* into scratch + rewrite() exactly.
    void rewrite_double(std::size_t idx, double v);
    void rewrite_i32(std::size_t idx, std::int32_t v);

   private:
    /// rewrite() for conversion scratch that is readable 8 bytes past
    /// `len` (wide copies may over-read, never over-write).
    void rewrite_padded(std::size_t idx, const char* text, std::uint32_t len);

    /// Vectorized-tier body of the typed rewrites: when the field is
    /// stuffed to at least `max_chars` (every value fits), `conv` writes
    /// the value text straight into the template buffer; otherwise it
    /// converts into scratch and the generic path runs.
    template <typename Convert>
    void rewrite_convert(std::size_t idx, std::uint32_t max_chars,
                         Convert conv);
    static constexpr std::uint32_t kNoChunk = 0xffffffffu;

    MessageTemplate& tmpl_;
    TemplateStats& stats_;
    std::uint32_t chunk_ = kNoChunk;
    char* base_ = nullptr;
  };

  /// Deep copy: chunks, DUT entries, dirty mask, shadow copies (strings and
  /// SoA planes) and stats. Far cheaper than re-serializing the call from
  /// scratch — a few memcpys — which is what makes replica provisioning in
  /// the shared template cache worthwhile. The clone carries no journal: a
  /// template is only cloned while its owner holds it exclusively and no
  /// update is in flight.
  std::unique_ptr<MessageTemplate> clone() const;

  /// Internal consistency: buffer and DUT agree (every entry's region is in
  /// range, value+tag+padding bytes are coherent). Test hook.
  bool check_invariants() const;

  /// The armed recovery journal, or nullptr. Armed via UpdateJournal::begin;
  /// the rewrite engine reports every field it touches while set.
  UpdateJournal* journal() const { return journal_; }

 private:
  friend class UpdateJournal;
  /// Attempts to widen entry `idx` to `new_width` by taking padding from a
  /// following entry in the same chunk. Returns true on success.
  bool try_steal(std::size_t idx, std::uint32_t new_width);

  /// Widens entry `idx` to `new_width` by expanding the chunk (slack /
  /// realloc / split), renumbering the DUT accordingly.
  void expand_by_shifting(std::size_t idx, std::uint32_t new_width);

  TemplateConfig config_;
  buffer::ChunkedBuffer buffer_;
  DutTable dut_;
  TemplateStats stats_;
  UpdateJournal* journal_ = nullptr;
};

}  // namespace bsoap::core
