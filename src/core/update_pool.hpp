// Shared worker pool for parallel segment updates.
//
// Large multi-chunk array segments are rewritten by partitioning their
// element range at chunk transitions and handing each part to a worker, so
// no two threads touch the same chunk. The pool is tiny (the update stage is
// memory-bandwidth bound well before core count matters), lazily started on
// first use, and shared process-wide; concurrent run() callers serialize on
// a job mutex rather than growing the pool.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bsoap::core {

class UpdatePool {
 public:
  /// The process-wide pool, started on first call.
  static UpdatePool& instance();

  /// Workers plus the calling thread — the maximum useful partition count.
  std::size_t concurrency() const { return threads_.size() + 1; }

  /// Runs fn(part) for every part in [0, parts), distributing parts over the
  /// workers and the calling thread; returns when all have completed. fn
  /// must not throw. Safe to call from multiple threads (callers serialize).
  void run(std::size_t parts, const std::function<void(std::size_t)>& fn);

  UpdatePool(const UpdatePool&) = delete;
  UpdatePool& operator=(const UpdatePool&) = delete;

 private:
  UpdatePool();
  ~UpdatePool();

  void worker_loop();
  /// Claims and runs parts until the current job is exhausted.
  void drain(const std::function<void(std::size_t)>& fn);

  std::vector<std::thread> threads_;
  std::mutex job_mutex_;  ///< serializes run() callers

  std::mutex m_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;  ///< bumped per job; workers wake on change
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t parts_ = 0;
  std::size_t next_part_ = 0;
  std::size_t busy_ = 0;  ///< workers still inside the current job
  bool stop_ = false;
};

}  // namespace bsoap::core
