#include "core/template_builder.hpp"

#include <cstring>
#include <string>

#include "soap/constants.hpp"
#include "textconv/dtoa.hpp"
#include "textconv/itoa.hpp"
#include "xml/escape.hpp"

namespace bsoap::core {
namespace {

using soap::Mio;
using soap::Param;
using soap::RpcCall;
using soap::Value;
using soap::ValueKind;

class Builder {
 public:
  explicit Builder(MessageTemplate& tmpl)
      : tmpl_(tmpl), buf_(tmpl.buffer()), dut_(tmpl.dut()) {}

  void build(const RpcCall& call) {
    dut_.reserve(leaf_estimate(call));
    buf_.append("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
    buf_.append("<SOAP-ENV:Envelope xmlns:SOAP-ENV=\"");
    buf_.append(soap::kSoapEnvelopeNs);
    buf_.append("\" xmlns:SOAP-ENC=\"");
    buf_.append(soap::kSoapEncodingNs);
    buf_.append("\" xmlns:xsi=\"");
    buf_.append(soap::kXsiNs);
    buf_.append("\" xmlns:xsd=\"");
    buf_.append(soap::kXsdNs);
    buf_.append("\" SOAP-ENV:encodingStyle=\"");
    buf_.append(soap::kSoapEncodingNs);
    buf_.append("\"><SOAP-ENV:Body><ns1:");
    buf_.append(call.method);
    buf_.append(" xmlns:ns1=\"");
    buf_.append(call.service_namespace);
    buf_.append("\">");
    for (const Param& p : call.params) {
      emit_value(p.name, p.value);
    }
    buf_.append("</ns1:");
    buf_.append(call.method);
    buf_.append("></SOAP-ENV:Body></SOAP-ENV:Envelope>");
    tmpl_.signature = call.structure_signature();
  }

 private:
  static std::size_t leaf_estimate(const RpcCall& call) {
    std::size_t total = 0;
    for (const Param& p : call.params) total += p.value.leaf_count();
    return total;
  }

  /// Emits one serialized leaf — open-tag prefix, value text, closing tag,
  /// policy padding — in a single contiguous reservation (one bounds check
  /// per array element on the hot path); records the DUT entry.
  void emit_leaf(std::string_view prefix, const char* text, std::uint32_t len,
                 LeafType type, std::string_view close_tag,
                 DutEntry::Shadow shadow,
                 std::uint32_t shadow_string = DutEntry::kNoString) {
    const LeafTypeInfo& info = leaf_type_info(type);
    const std::uint32_t width = tmpl_.config().stuffing.width_for(info, len);
    const std::uint32_t region = static_cast<std::uint32_t>(prefix.size()) +
                                 width +
                                 static_cast<std::uint32_t>(close_tag.size());
    char* p = buf_.reserve_contiguous(region);
    buffer::BufPos pos = buf_.reserved_pos();
    pos.offset += static_cast<std::uint32_t>(prefix.size());
    if (!prefix.empty()) {
      std::memcpy(p, prefix.data(), prefix.size());
      p += prefix.size();
    }
    std::memcpy(p, text, len);
    std::memcpy(p + len, close_tag.data(), close_tag.size());
    std::memset(p + len + close_tag.size(), ' ', width - len);
    buf_.commit(region);

    DutEntry entry;
    entry.type = &info;
    entry.pos = pos;
    entry.serialized_len = len;
    entry.field_width = width;
    entry.close_tag_len = static_cast<std::uint32_t>(close_tag.size());
    entry.shadow = shadow;
    entry.shadow_string = shadow_string;
    dut_.add_entry(entry);
  }

  void emit_int_leaf(std::string_view prefix, std::int32_t v,
                     std::string_view close_tag) {
    char text[textconv::kMaxInt32Chars];
    const int len = textconv::write_i32(text, v);
    DutEntry::Shadow shadow;
    shadow.i = v;
    emit_leaf(prefix, text, static_cast<std::uint32_t>(len), LeafType::kInt32,
              close_tag, shadow);
  }

  void emit_int64_leaf(std::string_view prefix, std::int64_t v,
                       std::string_view close_tag) {
    char text[textconv::kMaxInt64Chars];
    const int len = textconv::write_i64(text, v);
    DutEntry::Shadow shadow;
    shadow.i = v;
    emit_leaf(prefix, text, static_cast<std::uint32_t>(len), LeafType::kInt64,
              close_tag, shadow);
  }

  void emit_double_leaf(std::string_view prefix, double v,
                        std::string_view close_tag) {
    char text[textconv::kMaxDoubleChars];
    const int len = textconv::write_double(text, v);
    DutEntry::Shadow shadow;
    shadow.d = v;
    emit_leaf(prefix, text, static_cast<std::uint32_t>(len), LeafType::kDouble,
              close_tag, shadow);
  }

  void emit_bool_leaf(std::string_view prefix, bool v,
                      std::string_view close_tag) {
    const std::string_view text = v ? "true" : "false";
    DutEntry::Shadow shadow;
    shadow.i = v ? 1 : 0;
    emit_leaf(prefix, text.data(), static_cast<std::uint32_t>(text.size()),
              LeafType::kBool, close_tag, shadow);
  }

  void emit_string_leaf(std::string_view prefix, const std::string& v,
                        std::string_view close_tag) {
    std::string escaped;
    xml::escape_append(escaped, v);
    DutEntry::Shadow shadow;
    shadow.i = 0;
    const std::uint32_t shadow_index = dut_.add_string_shadow(v);
    emit_leaf(prefix, escaped.data(),
              static_cast<std::uint32_t>(escaped.size()), LeafType::kString,
              close_tag, shadow, shadow_index);
  }

  /// Whether an array of `n` elements gets an ArraySegment descriptor (and
  /// an SoA shadow plane) for the bulk update path.
  bool segment_worthy(std::size_t n) const {
    const BulkUpdateConfig& bulk = tmpl_.config().bulk;
    return bulk.enable && n >= bulk.min_elements;
  }

  void open_tag(std::string_view name, std::string_view attrs) {
    buf_.append("<");
    buf_.append(name);
    buf_.append(attrs);
    buf_.append(">");
  }

  void emit_value(const std::string& name, const Value& value) {
    const std::string close_tag = "</" + name + ">";
    switch (value.kind()) {
      case ValueKind::kInt32:
        open_tag(name, " xsi:type=\"xsd:int\"");
        emit_int_leaf({}, value.as_int(), close_tag);
        break;
      case ValueKind::kInt64:
        open_tag(name, " xsi:type=\"xsd:long\"");
        emit_int64_leaf({}, value.as_int64(), close_tag);
        break;
      case ValueKind::kDouble:
        open_tag(name, " xsi:type=\"xsd:double\"");
        emit_double_leaf({}, value.as_double(), close_tag);
        break;
      case ValueKind::kBool:
        open_tag(name, " xsi:type=\"xsd:boolean\"");
        emit_bool_leaf({}, value.as_bool(), close_tag);
        break;
      case ValueKind::kString:
        open_tag(name, " xsi:type=\"xsd:string\"");
        emit_string_leaf({}, value.as_string(), close_tag);
        break;
      case ValueKind::kDoubleArray: {
        open_array_tag(name, soap::kXsdDouble, value.doubles().size());
        const std::uint32_t first = static_cast<std::uint32_t>(dut_.size());
        for (const double v : value.doubles()) {
          emit_double_leaf("<item>", v, "</item>");
        }
        if (segment_worthy(value.doubles().size())) {
          dut_.add_double_segment(first, value.doubles().data(),
                                  value.doubles().size());
        }
        buf_.append(close_tag);
        break;
      }
      case ValueKind::kIntArray: {
        open_array_tag(name, soap::kXsdInt, value.ints().size());
        const std::uint32_t first = static_cast<std::uint32_t>(dut_.size());
        for (const std::int32_t v : value.ints()) {
          emit_int_leaf("<item>", v, "</item>");
        }
        if (segment_worthy(value.ints().size())) {
          dut_.add_int_segment(first, value.ints().data(),
                               value.ints().size());
        }
        buf_.append(close_tag);
        break;
      }
      case ValueKind::kMioArray: {
        open_array_tag(name, "ns1:MIO", value.mios().size());
        const std::uint32_t first = static_cast<std::uint32_t>(dut_.size());
        for (const Mio& m : value.mios()) {
          emit_int_leaf("<item><x>", m.x, "</x>");
          emit_int_leaf("<y>", m.y, "</y>");
          emit_double_leaf("<v>", m.value, "</v></item>");
        }
        if (segment_worthy(value.mios().size())) {
          dut_.add_mio_segment(first, value.mios().data(),
                               value.mios().size());
        }
        buf_.append(close_tag);
        break;
      }
      case ValueKind::kStruct: {
        open_tag(name, "");
        for (const Value::Member& m : value.members()) {
          emit_value(m.name, m.value);
        }
        buf_.append(close_tag);
        break;
      }
    }
  }

  void open_array_tag(std::string_view name, std::string_view element_type,
                      std::size_t n) {
    buf_.append("<");
    buf_.append(name);
    buf_.append(" xsi:type=\"SOAP-ENC:Array\" SOAP-ENC:arrayType=\"");
    buf_.append(element_type);
    buf_.append("[");
    char digits[20];
    const int len = textconv::write_u64(digits, n);
    buf_.append(digits, static_cast<std::size_t>(len));
    buf_.append("]\">");
  }

  MessageTemplate& tmpl_;
  buffer::ChunkedBuffer& buf_;
  DutTable& dut_;
};

}  // namespace

std::unique_ptr<MessageTemplate> build_template(const RpcCall& call,
                                                const TemplateConfig& config) {
  auto tmpl = std::make_unique<MessageTemplate>(config);
  Builder(*tmpl).build(call);
  return tmpl;
}

void rebuild_template(MessageTemplate& tmpl, const RpcCall& call) {
  tmpl.buffer().clear();
  tmpl.dut().clear();
  Builder(tmpl).build(call);
}

}  // namespace bsoap::core
