#include "core/parsed_replica.hpp"

namespace bsoap::core {

ParsedReplica::Lease ParsedReplica::make_lease(
    std::shared_ptr<ParsedReplica> self, std::unique_lock<std::mutex> lock,
    bool contended, ServeReport* report) {
  Lease lease;
  if (contended) {
    // Another worker still holds a lease on this replica: clone the call
    // under the lock and release it so the two handlers run concurrently.
    lease.owned_ = std::make_unique<soap::RpcCall>(self->deser_.call());
    lock.unlock();
    if (report != nullptr) report->cloned = true;
  } else {
    lease.shared_ = &self->deser_.call();
    lease.keepalive_ = std::move(self);
    lease.lock_ = std::move(lock);
  }
  return lease;
}

Result<ParsedReplica::Lease> ParsedReplica::serve_full(
    std::shared_ptr<ParsedReplica> self, std::string_view body,
    std::uint32_t epoch, ServeReport* report) {
  ParsedReplica& p = *self;
  std::unique_lock<std::mutex> lock(p.mu_, std::try_to_lock);
  const bool contended = !lock.owns_lock();
  if (contended) lock.lock();
  const Status st = p.deser_.prime(body);
  if (!st.ok()) {
    p.epoch_valid_ = false;
    return st.error();
  }
  p.epoch_ = epoch;
  p.epoch_valid_ = true;
  if (report != nullptr) {
    report->path = DiffDeserializer::ApplyPath::kFullParse;
    report->leaves_reparsed = 0;
    report->demoted = false;
  }
  return make_lease(std::move(self), std::move(lock), contended, report);
}

Result<ParsedReplica::Lease> ParsedReplica::serve_patch(
    std::shared_ptr<ParsedReplica> self, std::string_view body,
    std::uint32_t epoch, std::span<const diffwire::PatchRun> runs,
    ServeReport* report) {
  ParsedReplica& p = *self;
  std::unique_lock<std::mutex> lock(p.mu_, std::try_to_lock);
  const bool contended = !lock.owns_lock();
  if (contended) lock.lock();

  DiffDeserializer::ApplyReport applied;
  if (!p.epoch_valid_ || p.epoch_ + 1 != epoch) {
    // The parse state lags the replica (attach raced a re-pin, or a prior
    // serve failed): resynchronize with a full parse. Not a demotion — the
    // cache never covered this epoch chain.
    const Status st = p.deser_.prime(body);
    if (!st.ok()) {
      p.epoch_valid_ = false;
      return st.error();
    }
    applied.path = DiffDeserializer::ApplyPath::kFullParse;
  } else {
    p.run_scratch_.clear();
    p.run_scratch_.reserve(runs.size());
    for (const diffwire::PatchRun& run : runs) {
      p.run_scratch_.push_back(
          DiffDeserializer::DirtyRun{run.offset, run.length});
    }
    Result<DiffDeserializer::ApplyReport> r =
        p.deser_.apply_runs(body, p.run_scratch_);
    if (!r.ok()) {
      p.epoch_valid_ = false;
      return r.error();
    }
    applied = r.value();
  }
  p.epoch_ = epoch;
  p.epoch_valid_ = true;
  if (report != nullptr) {
    report->path = applied.path;
    report->leaves_reparsed = applied.leaves_reparsed;
    report->demoted = applied.demoted;
  }
  return make_lease(std::move(self), std::move(lock), contended, report);
}

DiffDeserializer::Stats ParsedReplica::take_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  return deser_.take_stats();
}

}  // namespace bsoap::core
