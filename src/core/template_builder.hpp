// First-time serialization: builds a MessageTemplate from an RpcCall.
//
// Produces the same SOAP 1.1 markup as soap::write_rpc_envelope, but writes
// into the template's chunked store, records a DUT entry per data item, and
// applies the stuffing policy (allocating each field its policy width and
// padding the unused part with whitespace). With StuffingPolicy::kExact the
// output bytes are identical to the conventional serializer's — a property
// the test suite checks.
#pragma once

#include <memory>

#include "core/message_template.hpp"
#include "soap/value.hpp"

namespace bsoap::core {

/// Serializes `call` from scratch into a fresh template. This is the paper's
/// "First-Time Send" path: full serialization plus the negligible cost of
/// recording DUT entries.
std::unique_ptr<MessageTemplate> build_template(const soap::RpcCall& call,
                                                const TemplateConfig& config);

/// Re-serializes `call` into an existing template in place (clears it
/// first). Used when a structural mismatch forces a rebuild but the chunk
/// storage should be recycled.
void rebuild_template(MessageTemplate& tmpl, const soap::RpcCall& call);

}  // namespace bsoap::core
