// Pipelined chunk overlaying (companion paper [3]: "Optimizing Performance
// of Web Services with Chunk-Overlaying and Pipelined-Send").
//
// Plain overlaying alternates serialize-window / send-window. The pipelined
// variant double-buffers: a background sender thread pushes window k onto
// the socket while the caller serializes window k+1 into the other buffer,
// overlapping conversion cost with wire time.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "core/overlay_window.hpp"
#include "net/transport.hpp"
#include "soap/value.hpp"

namespace bsoap::core {

struct PipelinedOverlayConfig {
  std::size_t chunk_bytes = 32 * 1024;
  std::string endpoint_path = "/";
};

class PipelinedOverlaySender {
 public:
  /// The transport must outlive the sender.
  PipelinedOverlaySender(net::Transport& transport,
                         PipelinedOverlayConfig config);
  ~PipelinedOverlaySender();

  Result<std::size_t> send_double_array(const std::string& method,
                                        const std::string& service_namespace,
                                        const std::string& param,
                                        std::span<const double> values);

  Result<std::size_t> send_mio_array(const std::string& method,
                                     const std::string& service_namespace,
                                     const std::string& param,
                                     std::span<const soap::Mio> values);

 private:
  struct SendTask {
    std::string owned;     ///< non-empty: payload owned by the task
    const char* data = nullptr;  ///< otherwise: borrowed window bytes
    std::size_t len = 0;
    int window = -1;       ///< which double-buffer slot to release, -1 = none
    bool raw = false;      ///< send without HTTP chunk framing (the head)
    bool last_chunk = false;  ///< append the chunked-body terminator
  };

  /// Queues one HTTP chunk for the sender thread.
  void enqueue(SendTask task);
  /// Blocks until window slot `w` has been sent and may be refilled.
  void wait_window_free(int w);
  /// Blocks until the queue fully drains; returns the first send error.
  Status drain();

  void sender_loop();

  template <typename T, typename FillFn>
  Result<std::size_t> send_array(const std::string& method,
                                 const std::string& service_namespace,
                                 const std::string& param,
                                 std::string_view element_type,
                                 std::span<const T> values,
                                 OverlayWindow* windows, FillFn fill);

  net::Transport& transport_;
  PipelinedOverlayConfig config_;

  OverlayWindow double_windows_[2];
  OverlayWindow mio_windows_[2];

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<SendTask> queue_;
  bool window_busy_[2] = {false, false};
  bool sending_ = false;
  bool stop_ = false;
  Error first_error_;
  std::thread sender_thread_;
};

}  // namespace bsoap::core
