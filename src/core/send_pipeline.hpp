// The staged send path every sender shares.
//
// The paper's cost model (Section 2) is that a SOAP send is dominated by
// serialize → frame → write; differential serialization (Section 3) attacks
// the first stage by reusing a saved template. SendPipeline makes those
// stages explicit so the whole system has exactly one send path:
//
//   1. resolve — find the saved template for the call's structure signature
//                in the TemplateStore (Section 3's per-call-type templates);
//   2. update  — serialize: build the template on a first-time send, rewrite
//                changed fields on a match (by comparison in transparent
//                mode, by dirty bits in tracked mode — Sections 3.1/3.2);
//   3. frame   — construct the HTTP head and wrap the template's chunks via
//                an http::Framer (Content-Length or chunked, Section 2's
//                transport framing);
//   4. write   — one scatter-gather write to the destination Transport (the
//                paper's "Send Time" endpoint: the final send() return).
//
// BsoapClient::send_call, BoundMessage::send and MultiEndpointClient all
// sit on this pipeline. A SendObserver sees each stage's wall time and byte
// count, so benchmarks and tracing attach without touching the hot path;
// with no observer installed the stages are not timed at all.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "compress/deflate.hpp"
#include "core/diff_serializer.hpp"
#include "core/template_builder.hpp"
#include "core/template_store.hpp"
#include "diffwire/negotiator.hpp"
#include "http/content_coding.hpp"
#include "http/framer.hpp"
#include "net/transport.hpp"
#include "soap/value.hpp"

namespace bsoap::core {

/// The four stages of one send, in pipeline order.
enum class SendStage { kResolve = 0, kUpdate = 1, kFrame = 2, kWrite = 3 };
inline constexpr std::size_t kSendStageCount = 4;

const char* send_stage_name(SendStage stage) noexcept;

/// How a retrying sender repaired template state after a failed attempt
/// (kNone on the common untroubled send).
enum class Recovery {
  kNone,        ///< no attempt failed, or the failure touched no state
  kRolledBack,  ///< the update journal restored the template exactly;
                ///< changed fields were dirty again for the retry
  kInvalidated, ///< the template was dropped/rebuilt (first-time or
                ///< structural update); the retry was a clean first-time send
};

const char* recovery_name(Recovery recovery) noexcept;

/// What a send did — which of the paper's four cases applied and how much
/// work the differential path performed.
struct SendReport {
  MatchKind match = MatchKind::kFirstTime;
  UpdateResult update;
  /// HTTP body payload bytes actually sent: the serialized envelope on a
  /// full send, the patch frame on a diff-wire patch send.
  std::size_t envelope_bytes = 0;
  /// Actual on-wire bytes: HTTP head + framing + the payload above. A patch
  /// send reports the patch frame's wire cost, not the logical envelope.
  std::size_t wire_bytes = 0;
  /// Size of the serialized envelope the receiver observes — identical for
  /// full and patch sends, so benches can report logical vs wire bytes.
  std::size_t body_bytes_logical = 0;
  /// Diff-wire: this send crossed the wire as a patch frame (replay = a
  /// content match's header-only frame carrying zero runs).
  bool patch_send = false;
  bool patch_replay = false;
  std::uint32_t patch_runs = 0;  ///< dirty runs the patch frame carried
  /// Send attempts a retrying sender made (1 = first try succeeded; always
  /// 1 when sent through a bare SendPipeline).
  std::uint32_t attempts = 1;
  /// Worst recovery applied across failed attempts of this send.
  Recovery recovery = Recovery::kNone;
  /// Content coding the payload actually went out under. kIdentity covers
  /// the per-message fallback: a body whose compressed form was not smaller
  /// ships raw even when a coding was configured.
  http::ContentCoding coding = http::ContentCoding::kIdentity;
  /// Raw payload bytes minus coded payload bytes (0 on identity sends).
  std::size_t coding_bytes_saved = 0;
  /// CPU spent compressing this send's payload (includes attempts that
  /// fell back to identity — the cost was paid either way).
  std::int64_t coding_ns = 0;
};

/// Hook through the pipeline stages. Observers must not throw; they run on
/// the send path of whichever thread is sending.
class SendObserver {
 public:
  virtual ~SendObserver() = default;

  /// One call per completed stage: wall time and the bytes the stage
  /// handled (resolve: 0; update: bytes rewritten or serialized; frame and
  /// write: total wire bytes).
  virtual void on_stage(SendStage stage, std::int64_t elapsed_ns,
                        std::size_t bytes) = 0;

  /// Called once after the write stage with the final report.
  virtual void on_send(const SendReport& report) { (void)report; }
};

/// SendObserver accumulating per-stage totals (tests, benchmarks).
class StageTimings final : public SendObserver {
 public:
  struct Totals {
    std::int64_t ns = 0;
    std::uint64_t bytes = 0;
    std::uint64_t count = 0;
  };

  void on_stage(SendStage stage, std::int64_t elapsed_ns,
                std::size_t bytes) override {
    Totals& t = totals_[static_cast<std::size_t>(stage)];
    t.ns += elapsed_ns;
    t.bytes += bytes;
    t.count += 1;
  }

  /// Update-stage substage breakdown: the bulk fast path reports how much of
  /// the stage went to locating dirty runs vs rewriting them.
  struct UpdateBreakdown {
    std::int64_t scan_ns = 0;
    std::int64_t rewrite_ns = 0;
    std::uint64_t bulk_runs = 0;
    std::uint64_t bulk_leaves = 0;
  };

  void on_send(const SendReport& report) override {
    sends_ += 1;
    last_ = report;
    update_breakdown_.scan_ns += report.update.scan_ns;
    update_breakdown_.rewrite_ns += report.update.rewrite_ns;
    update_breakdown_.bulk_runs += report.update.bulk_runs;
    update_breakdown_.bulk_leaves += report.update.bulk_leaves;
  }

  const Totals& totals(SendStage stage) const {
    return totals_[static_cast<std::size_t>(stage)];
  }
  std::uint64_t sends() const { return sends_; }
  const SendReport& last_report() const { return last_; }
  const UpdateBreakdown& update_breakdown() const { return update_breakdown_; }

  void reset() {
    totals_ = {};
    sends_ = 0;
    last_ = SendReport{};
    update_breakdown_ = UpdateBreakdown{};
  }

 private:
  std::array<Totals, kSendStageCount> totals_{};
  std::uint64_t sends_ = 0;
  SendReport last_;
  UpdateBreakdown update_breakdown_{};
};

/// Where one send goes: a connected transport plus the HTTP request target.
/// The referents must outlive the call.
struct SendDestination {
  net::Transport* transport = nullptr;
  std::string_view path = "/";
  /// Appended to the HTTP head verbatim (after the standard headers, before
  /// framing). The server runtime rides diff-wire acks on its responses
  /// through this. Null = none.
  const std::vector<http::Header>* extra_headers = nullptr;
  /// Per-send coding override (kIdentity = use Options::coding). The server
  /// runtime sets this from the request's Accept-Encoding so each response
  /// is coded per what its client advertised.
  http::ContentCoding coding = http::ContentCoding::kIdentity;
};

class SendPipeline {
 public:
  struct Options {
    TemplateConfig tmpl;
    /// false = the paper's "bSOAP Full Serialization": the template
    /// machinery runs but every send re-serializes from scratch.
    bool differential = true;
    /// Saved templates retained across call structures (LRU).
    std::size_t max_templates = 8;
    /// Byte budget across all saved templates (0 = unlimited). A server
    /// keeping response templates for many RPC shapes bounds memory by
    /// bytes, not count; least recently used templates are evicted first.
    std::size_t max_template_bytes = 0;
    /// How template chunks are delimited on the wire (Content-Length or
    /// HTTP/1.1 chunked transfer encoding).
    http::Framing framing = http::Framing::kContentLength;
    /// Content coding for payloads (kIdentity = none). kGzip/kDeflate
    /// compress every full body; kDeflatePreset additionally presets the
    /// DEFLATE window from the diff-wire pin generation's bytes, so patch
    /// frames and structural-fallback re-offers shrink against what the
    /// receiver already holds (requires a diff-wire session; without one it
    /// degrades to identity). Every coded send falls back to identity when
    /// compression does not shrink the payload.
    http::ContentCoding coding = http::ContentCoding::kIdentity;
    /// Payloads smaller than this skip compression outright — the coding
    /// header plus stream overhead dominates tiny bodies.
    std::size_t coding_min_bytes = 256;
  };

  explicit SendPipeline(Options options);

  /// Transparent send: resolve from the store, update by comparing leaves
  /// against the template's shadow copies, frame, write.
  Result<SendReport> send(const soap::RpcCall& call,
                          const SendDestination& dest);

  /// Response-side differential serialization (the paper's Section 6 future
  /// work, realized by the server runtime): identical resolve/update stages,
  /// but the frame stage builds an HTTP 200 response head instead of a POST
  /// request. `call` is the response envelope (method "...Response" with a
  /// <return> param); dest.path is ignored.
  Result<SendReport> send_response(const soap::RpcCall& call,
                                   const SendDestination& dest);

  /// Tracked send (BoundMessage): the caller owns the template; the update
  /// stage rewrites exactly the DUT's dirty entries (a clean DUT resends the
  /// stored bytes — the paper's content match).
  Result<SendReport> send_tracked(MessageTemplate& tmpl,
                                  const soap::RpcCall& call,
                                  const SendDestination& dest);

  /// Installs (or clears, with nullptr) the per-stage observer.
  void set_observer(SendObserver* observer) { observer_ = observer; }

  /// Overrides the framing strategy; nullptr restores the one selected by
  /// Options::framing.
  void set_framer(const http::Framer* framer) { framer_override_ = framer; }
  const http::Framer& framer() const {
    return framer_override_ != nullptr ? *framer_override_
                                       : http::framer_for(options_.framing);
  }

  /// Installs (or clears, with nullptr) the diff-wire negotiation session.
  /// While set, request-kind sends participate in the diff-wire protocol:
  /// full sends carry the pinning offer headers, and a send whose update
  /// stayed non-structural against a pinned template goes out as a binary
  /// patch frame (dirty runs only) instead of the full envelope. The
  /// session must outlive the sends it covers.
  void set_diffwire(diffwire::ClientSession* session) { diffwire_ = session; }

  /// Installs (or clears, with nullptr) the recovery journal a retrying
  /// sender provides. While installed, the update stage records pre-rewrite
  /// state through it so a failed send can be undone by
  /// recover_failed_send(). The journal must outlive the sends it covers.
  void set_journal(UpdateJournal* journal) { journal_ = journal; }

  /// Repairs template state after send/send_response/send_tracked returned
  /// an error with a journal installed. Returns what was done:
  ///   kNone       — the failure touched no template state (nothing sent
  ///                 differentially, or a full-serialization send);
  ///   kRolledBack — the journal restored the template exactly; every field
  ///                 the failed update rewrote is dirty again;
  ///   kInvalidated — the stored template was erased (first-time send whose
  ///                 bytes the peer may not have seen, or a structural
  ///                 update that cannot be unwound); the next send of this
  ///                 call structure is a clean first-time send. For tracked
  ///                 sends the caller owns the template and must rebuild it
  ///                 (see ResilientSender).
  Recovery recover_failed_send();

  TemplateStore& store() { return store_; }
  const Options& options() const { return options_; }

  /// Redirects template resolution to an external source — the server
  /// runtime points every worker's pipeline at one process-wide
  /// SharedTemplateCache, so workers reuse each other's response templates.
  /// nullptr restores the pipeline-private store (the default). Must not be
  /// called while a send is in flight or awaiting recover_failed_send().
  void set_template_source(TemplateStoreLike* source) {
    template_source_ = source;
  }

 private:
  /// Which HTTP head the frame stage constructs.
  enum class HeadKind { kRequest, kResponse };

  /// Stages 1 and 2: resolves the call's template (store lookup or
  /// first-time build / full-serialization rebuild) and rewrites changed
  /// fields; fills the report's match classification. `clock` is the
  /// caller's stage clock so lap attribution stays with the send.
  template <typename Clock>
  MessageTemplate* resolve_and_update(const soap::RpcCall& call,
                                      SendReport* report, Clock& clock);

  /// Stages 3 and 4: frames `tmpl`'s chunks behind the configured framer and
  /// writes them to `dest`; fills the report's byte counts.
  Status frame_and_write(MessageTemplate& tmpl, const std::string& method,
                         const SendDestination& dest, HeadKind head_kind,
                         SendReport* report);

  /// What the current/last send would need for recovery.
  enum class RecoveryContext {
    kNone,       ///< no stateful update happened (or no journal installed)
    kDiff,       ///< differential update against a stored template (journal armed)
    kFirstTime,  ///< freshly built template inserted into the store
    kTracked,    ///< differential update against a caller-owned template
  };

  TemplateStoreLike& template_source() {
    return template_source_ != nullptr ? *template_source_ : store_;
  }

  /// Gathers the patch frame for a diff-wire patch send (dirty runs from
  /// the armed journal, or a header-only replay frame) into body_slices_,
  /// returning the frame's total byte count. With `slice_body` set, only
  /// the patch header and run headers are materialized (in patch_buf_);
  /// each run's bytes are referenced as sub-slices of the template buffer
  /// — zero copies, sound because the write completes while the template
  /// lease is held. Otherwise the whole frame is flattened into patch_buf_
  /// (the chunked framer wraps each body slice as one HTTP chunk, so slice
  /// emission would change its wire bytes).
  std::size_t build_patch_frame(MessageTemplate& tmpl, std::uint64_t wire_id,
                                std::uint32_t epoch, SendReport* report,
                                bool slice_body);

  /// Compresses `raw` into coded_buf_ under `coding` (kDeflatePreset runs
  /// the reusable DeflateStream preset with `dict`). Returns true when the
  /// coded bytes should replace the raw payload — false when the payload is
  /// under coding_min_bytes or compression did not shrink it (per-message
  /// identity fallback). Fills the report's coding fields either way.
  bool encode_payload(http::ContentCoding coding, std::string_view raw,
                      std::string_view dict, SendReport* report);

  Options options_;
  TemplateStore store_;
  TemplateStoreLike* template_source_ = nullptr;
  SendObserver* observer_ = nullptr;
  const http::Framer* framer_override_ = nullptr;
  UpdateJournal* journal_ = nullptr;
  diffwire::ClientSession* diffwire_ = nullptr;
  RecoveryContext recovery_ctx_ = RecoveryContext::kNone;
  MessageTemplate* recovery_tmpl_ = nullptr;
  /// The checkout covering the current differential send. Held across the
  /// write so a failed attempt can be recovered (rollback returns the
  /// replica, structural failure invalidates it); released when the send
  /// completes. Declared after store_: leases must die before their source.
  TemplateLease lease_;
  /// Recycled template for non-differential (full-serialization) mode.
  std::unique_ptr<MessageTemplate> full_mode_scratch_;
  // Per-send scratch, reused so steady-state sends allocate nothing:
  std::vector<net::ConstSlice> body_slices_;
  std::vector<net::ConstSlice> wire_slices_;
  std::vector<std::string> frame_scratch_;
  std::string head_text_;
  // Diff-wire patch scratch:
  struct PatchRunScratch {
    std::uint32_t offset = 0;  ///< absolute offset into the logical body
    std::uint32_t length = 0;
    buffer::BufPos pos;        ///< where the run's bytes start in the buffer
  };
  std::string patch_buf_;
  // Wire-compression scratch (reused like the buffers above):
  compress::DeflateStream deflate_stream_;
  std::string flat_buf_;   ///< body flattened for compression / dict capture
  std::string coded_buf_;  ///< compressed payload when coding applies
  std::vector<std::uint32_t> touched_scratch_;
  std::vector<PatchRunScratch> patch_runs_;
  std::vector<std::size_t> chunk_offsets_;
  std::vector<std::size_t> patch_hdr_ends_;  ///< run-header ends in patch_buf_
};

}  // namespace bsoap::core
