#include "core/shared_template_cache.hpp"

#include <algorithm>

namespace bsoap::core {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

SharedTemplateCache::SharedTemplateCache()
    : SharedTemplateCache(Options{}) {}

SharedTemplateCache::SharedTemplateCache(Options options)
    : options_(options) {
  BSOAP_ASSERT(options_.max_replicas >= 1);
  const std::size_t count = round_up_pow2(std::max<std::size_t>(1, options_.shards));
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_mask_ = count - 1;
}

TemplateLease SharedTemplateCache::checkout(std::uint64_t signature) {
  Shard& shard = shard_for(signature);
  std::unique_lock<std::mutex> lock(shard.mu);
  const auto it = shard.groups.find(signature);
  if (it == shard.groups.end() || it->second.replicas() == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return TemplateLease{};
  }
  Group& group = it->second;
  if (group.free.empty()) {
    // Every replica is out with another worker, and a leased replica may be
    // mid-update — there is nothing stable to clone. The caller serializes
    // from scratch; its publish becomes a new replica (bounded below), so a
    // signature pays this at most max_replicas times, not once per worker.
    contended_.fetch_add(1, std::memory_order_relaxed);
    return TemplateLease{};
  }

  const std::list<FreeEntry>::iterator entry = group.free.back();
  group.free.pop_back();
  std::unique_ptr<MessageTemplate> owned = std::move(entry->tmpl);
  const std::size_t checkout_bytes = entry->bytes;
  shard.lru.erase(entry);
  ++group.leased;
  shard.leased_bytes += checkout_bytes;

  std::size_t cloned_bytes = 0;
  if (group.free.empty() && group.leased >= 2 &&
      group.replicas() < options_.max_replicas) {
    // Clone-on-contention: we just took the last stable replica while
    // another worker holds one, so the next concurrent checkout would miss.
    // The replica in hand is exclusively ours and quiescent — clone it (a
    // few memcpys) and leave the clone resident.
    std::unique_ptr<MessageTemplate> clone = owned->clone();
    cloned_bytes = clone->buffer().total_size();
    shard.lru.push_front(
        FreeEntry{signature, cloned_bytes, std::move(clone)});
    group.free.push_back(shard.lru.begin());
    bytes_.fetch_add(cloned_bytes, std::memory_order_relaxed);
    clones_.fetch_add(1, std::memory_order_relaxed);
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  lock.unlock();

  if (cloned_bytes > 0 && options_.max_bytes != 0 &&
      bytes_.load(std::memory_order_relaxed) > options_.max_bytes) {
    enforce_budget(static_cast<std::size_t>(
        (signature * 0x9E3779B97F4A7C15ull >> 32) & shard_mask_));
  }
  MessageTemplate* view = owned.get();
  return make_lease(this, view, std::move(owned), signature, checkout_bytes);
}

TemplateLease SharedTemplateCache::publish(
    std::unique_ptr<MessageTemplate> tmpl) {
  const std::uint64_t signature = tmpl->signature;
  const std::size_t size = tmpl->buffer().total_size();
  Shard& shard = shard_for(signature);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    Group& group = shard.groups[signature];
    // Admit unconditionally — the in-flight send needs it; the replica
    // bound is applied when the lease returns (surplus replicas retire).
    ++group.leased;
    shard.leased_bytes += size;
  }
  bytes_.fetch_add(size, std::memory_order_relaxed);
  inserts_.fetch_add(1, std::memory_order_relaxed);
  if (options_.max_bytes != 0 &&
      bytes_.load(std::memory_order_relaxed) > options_.max_bytes) {
    enforce_budget(static_cast<std::size_t>(
        (signature * 0x9E3779B97F4A7C15ull >> 32) & shard_mask_));
  }
  MessageTemplate* view = tmpl.get();
  return make_lease(this, view, std::move(tmpl), signature, size);
}

void SharedTemplateCache::finish(std::uint64_t signature,
                                 std::unique_ptr<MessageTemplate> owned,
                                 MessageTemplate* view,
                                 std::size_t checkout_bytes, bool invalidate) {
  BSOAP_ASSERT(owned != nullptr && owned.get() == view);
  Shard& shard = shard_for(signature);
  bool over_budget = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.groups.find(signature);
    BSOAP_ASSERT(it != shard.groups.end() && it->second.leased > 0);
    Group& group = it->second;
    --group.leased;
    shard.leased_bytes -= checkout_bytes;

    if (invalidate) {
      // The failed send left this replica's state unknowable; drop exactly
      // it. Sibling replicas are independent serializations and survive.
      bytes_.fetch_sub(checkout_bytes, std::memory_order_relaxed);
      invalidations_.fetch_add(1, std::memory_order_relaxed);
      owned.reset();
    } else {
      const std::size_t size = owned->buffer().total_size();
      // O(1) accounting: fold in whatever the update stage grew (or a
      // rollback shrank) while the replica was out.
      if (size >= checkout_bytes) {
        bytes_.fetch_add(size - checkout_bytes, std::memory_order_relaxed);
      } else {
        bytes_.fetch_sub(checkout_bytes - size, std::memory_order_relaxed);
      }
      if (group.replicas() + 1 > options_.max_replicas) {
        bytes_.fetch_sub(size, std::memory_order_relaxed);
        retired_.fetch_add(1, std::memory_order_relaxed);
        owned.reset();
      } else {
        shard.lru.push_front(FreeEntry{signature, size, std::move(owned)});
        group.free.push_back(shard.lru.begin());
      }
    }
    if (group.replicas() == 0) shard.groups.erase(it);
    over_budget = options_.max_bytes != 0 &&
                  bytes_.load(std::memory_order_relaxed) > options_.max_bytes;
  }
  if (over_budget) {
    enforce_budget(static_cast<std::size_t>(
        (signature * 0x9E3779B97F4A7C15ull >> 32) & shard_mask_));
  }
}

void SharedTemplateCache::enforce_budget(std::size_t start) {
  if (options_.max_bytes == 0) return;
  bool evicted_any = true;
  while (evicted_any &&
         bytes_.load(std::memory_order_relaxed) > options_.max_bytes) {
    evicted_any = false;
    for (std::size_t i = 0; i <= shard_mask_; ++i) {
      Shard& shard = *shards_[(start + i) & shard_mask_];
      std::lock_guard<std::mutex> lock(shard.mu);
      while (bytes_.load(std::memory_order_relaxed) > options_.max_bytes &&
             !shard.lru.empty()) {
        const auto victim = std::prev(shard.lru.end());
        const auto git = shard.groups.find(victim->signature);
        BSOAP_ASSERT(git != shard.groups.end());
        Group& group = git->second;
        group.free.erase(
            std::find(group.free.begin(), group.free.end(), victim));
        bytes_.fetch_sub(victim->bytes, std::memory_order_relaxed);
        evictions_.fetch_add(1, std::memory_order_relaxed);
        shard.lru.erase(victim);
        if (group.replicas() == 0) shard.groups.erase(git);
        evicted_any = true;
      }
      if (bytes_.load(std::memory_order_relaxed) <= options_.max_bytes) return;
    }
  }
  if (bytes_.load(std::memory_order_relaxed) > options_.max_bytes) {
    // Everything evictable is gone; the remainder is leased (pinned).
    pins_.fetch_add(1, std::memory_order_relaxed);
  }
}

SharedTemplateCache::Stats SharedTemplateCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.contended = contended_.load(std::memory_order_relaxed);
  s.clones = clones_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.retired = retired_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.pins = pins_.load(std::memory_order_relaxed);
  s.bytes_retained = bytes_.load(std::memory_order_relaxed);
  return s;
}

std::size_t SharedTemplateCache::debug_walk_free_bytes() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const FreeEntry& e : shard->lru) {
      total += e.tmpl->buffer().total_size();
    }
    total += shard->leased_bytes;
  }
  return total;
}

std::size_t SharedTemplateCache::replica_count(std::uint64_t signature) const {
  const Shard& shard = shard_for(signature);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.groups.find(signature);
  return it == shard.groups.end() ? 0 : it->second.replicas();
}

}  // namespace bsoap::core
