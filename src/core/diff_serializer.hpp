// Differential update of a saved message template (paper Section 3).
//
// Given a template built from an earlier send and a new outgoing call with
// the same structure, rewrite only the fields whose values changed and
// report which of the paper's four matching cases applied:
//
//   Message Content Match     — nothing changed; resend stored bytes as-is.
//   Perfect Structural Match  — values changed but every new serialization
//                               fit its field; message size unchanged.
//   Partial Structural Match  — some field outgrew its width and the message
//                               had to be expanded (steal/shift/split).
//   First-Time Send           — no usable template existed (reported by the
//                               client, not by update_template).
#pragma once

#include "core/message_template.hpp"
#include "soap/value.hpp"

namespace bsoap::core {

enum class MatchKind {
  kFirstTime,
  kContentMatch,
  kPerfectStructural,
  kPartialStructural,
};

const char* match_kind_name(MatchKind kind) noexcept;

struct UpdateResult {
  MatchKind match = MatchKind::kContentMatch;
  std::uint64_t values_rewritten = 0;
  std::uint64_t tag_shifts = 0;
  std::uint64_t expansions = 0;
  std::uint64_t steals = 0;

  // Bulk fast-path telemetry (all zero when the per-leaf path ran). The
  // rewrite counters above are mode-independent: the bulk path produces the
  // same values_rewritten/tag_shifts/expansions/steals as per-leaf would.
  std::uint64_t bulk_leaves = 0;  ///< leaves scanned through array segments
  std::uint64_t bulk_runs = 0;    ///< dirty runs the segment scan yielded
  std::int64_t scan_ns = 0;       ///< time locating dirty runs (zero on the
                                  ///< fused serial dirty path, which has no
                                  ///< separate scan pass)
  std::int64_t rewrite_ns = 0;    ///< time rewriting them (thread-summed when
                                  ///< a segment updated in parallel; the whole
                                  ///< fused pass in serial dirty mode)
};

/// Rewrites changed fields by comparing each leaf of `call` against the
/// template's shadow copies (bitwise for doubles, so NaNs and -0.0 behave).
/// Precondition: call.structure_signature() == tmpl.signature.
UpdateResult update_template(MessageTemplate& tmpl, const soap::RpcCall& call);

/// Rewrites exactly the entries whose dirty bits are set, taking values from
/// `call` (the paper's get/set accessor path: no comparisons at send time).
/// Clears the dirty bits it serviced.
UpdateResult update_dirty_fields(MessageTemplate& tmpl,
                                 const soap::RpcCall& call);

}  // namespace bsoap::core
