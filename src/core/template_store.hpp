// Saved-template store and the checkout seam senders resolve templates
// through.
//
// The paper keeps one saved template per remote service per call type;
// Section 6 (future work) suggests storing several. TemplateStore
// generalizes both: templates are keyed by structure signature with an LRU
// bound on the total number retained (capacity 1 reproduces the paper's
// behaviour) and an optional byte budget on the serialized bytes retained —
// a long-running server keeping response templates for many RPC shapes
// bounds its memory rather than its template count.
//
// TemplateStoreLike is the seam above it: SendPipeline checks templates out
// through leases rather than raw find/insert, so the same resolve stage can
// run against a pipeline-private TemplateStore (the default, no locking) or
// a process-wide SharedTemplateCache shared by server workers (see
// core/shared_template_cache.hpp). A lease is the exclusive right to mutate
// one template replica for the duration of one send; returning it reports
// the size delta the update produced, which is what keeps byte accounting
// O(1) instead of a per-eviction walk.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "core/message_template.hpp"

namespace bsoap::core {

class TemplateStoreLike;

/// Exclusive checkout of one template replica from a TemplateStoreLike.
/// Move-only RAII: destruction (or release()) returns the replica to its
/// source, which re-admits it — applying the size delta the send's update
/// stage produced — or retires it. invalidate() drops the replica instead:
/// send recovery uses it when a failed send left the template's agreement
/// with the peer unknowable (first-time bytes the peer may not have seen,
/// or a structural update the journal cannot unwind).
class TemplateLease {
 public:
  TemplateLease() = default;
  TemplateLease(TemplateLease&& rhs) noexcept { move_from(rhs); }
  TemplateLease& operator=(TemplateLease&& rhs) noexcept {
    if (this != &rhs) {
      release();
      move_from(rhs);
    }
    return *this;
  }
  ~TemplateLease() { release(); }

  MessageTemplate* get() const { return view_; }
  MessageTemplate* operator->() const { return view_; }
  explicit operator bool() const { return view_ != nullptr; }
  std::uint64_t signature() const { return signature_; }

  /// Returns the replica to the source (no-op when empty).
  void release();
  /// Drops the replica: it never returns to the source, and the source
  /// forgets it (the next checkout of this signature misses).
  void invalidate();

 private:
  friend class TemplateStoreLike;

  void move_from(TemplateLease& rhs) {
    source_ = rhs.source_;
    view_ = rhs.view_;
    owned_ = std::move(rhs.owned_);
    signature_ = rhs.signature_;
    checkout_bytes_ = rhs.checkout_bytes_;
    rhs.source_ = nullptr;
    rhs.view_ = nullptr;
  }

  TemplateStoreLike* source_ = nullptr;
  MessageTemplate* view_ = nullptr;
  /// Set when ownership travels with the lease (SharedTemplateCache hands
  /// the replica out of the cache entirely); null when the source keeps
  /// ownership and the lease only views (TemplateStore).
  std::unique_ptr<MessageTemplate> owned_;
  std::uint64_t signature_ = 0;
  std::size_t checkout_bytes_ = 0;
};

/// The seam SendPipeline resolves templates through: checkout an existing
/// template for a signature, or publish a freshly built one. Implemented by
/// the pipeline-private TemplateStore and by the cross-worker
/// SharedTemplateCache.
class TemplateStoreLike {
 public:
  virtual ~TemplateStoreLike() = default;

  /// Checks out the template for `signature`; an empty lease means the
  /// caller must serialize first-time and publish the result.
  virtual TemplateLease checkout(std::uint64_t signature) = 0;

  /// Admits a freshly built template (keyed by its signature). The returned
  /// lease views it, so the first-time send and any later recovery go
  /// through the same handle as a checkout hit.
  virtual TemplateLease publish(std::unique_ptr<MessageTemplate> tmpl) = 0;

 protected:
  friend class TemplateLease;

  /// Called exactly once per non-empty lease, from release
  /// (invalidate=false) or invalidate (true). `owned` carries the replica
  /// back when ownership traveled with the lease; null for view-only
  /// leases. `checkout_bytes` is the replica's serialized size at checkout,
  /// so the source can apply the update's growth delta in O(1).
  virtual void finish(std::uint64_t signature,
                      std::unique_ptr<MessageTemplate> owned,
                      MessageTemplate* view, std::size_t checkout_bytes,
                      bool invalidate) = 0;

  static TemplateLease make_lease(TemplateStoreLike* source,
                                  MessageTemplate* view,
                                  std::unique_ptr<MessageTemplate> owned,
                                  std::uint64_t signature,
                                  std::size_t checkout_bytes) {
    TemplateLease lease;
    lease.source_ = source;
    lease.view_ = view;
    lease.owned_ = std::move(owned);
    lease.signature_ = signature;
    lease.checkout_bytes_ = checkout_bytes;
    return lease;
  }
};

inline void TemplateLease::release() {
  if (source_ == nullptr) {
    view_ = nullptr;
    owned_.reset();
    return;
  }
  TemplateStoreLike* source = source_;
  source_ = nullptr;
  MessageTemplate* view = view_;
  view_ = nullptr;
  source->finish(signature_, std::move(owned_), view, checkout_bytes_,
                 /*invalidate=*/false);
}

inline void TemplateLease::invalidate() {
  if (source_ == nullptr) {
    view_ = nullptr;
    owned_.reset();
    return;
  }
  TemplateStoreLike* source = source_;
  source_ = nullptr;
  MessageTemplate* view = view_;
  view_ = nullptr;
  source->finish(signature_, std::move(owned_), view, checkout_bytes_,
                 /*invalidate=*/true);
}

class TemplateStore final : public TemplateStoreLike {
 public:
  /// `max_bytes` == 0 means no byte budget (count-only LRU).
  explicit TemplateStore(std::size_t capacity = 8, std::size_t max_bytes = 0)
      : capacity_(capacity), max_bytes_(max_bytes) {
    BSOAP_ASSERT(capacity_ >= 1);
  }

  /// Returns the template for `signature` (refreshing its LRU position), or
  /// nullptr if none is stored.
  MessageTemplate* find(std::uint64_t signature) {
    const auto it = index_.find(signature);
    if (it == index_.end()) return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    return it->second->get();
  }

  /// Stores a template (keyed by its signature), evicting least recently
  /// used ones while over the count or byte budget. Returns the stored
  /// pointer (always valid: the newest template is never evicted).
  MessageTemplate* insert(std::unique_ptr<MessageTemplate> tmpl) {
    const std::uint64_t signature = tmpl->signature;
    const std::size_t incoming = tmpl->buffer().total_size();
    if (MessageTemplate* existing = find(signature)) {
      bytes_ -= existing->buffer().total_size();
      bytes_ += incoming;
      *lru_.begin() = std::move(tmpl);
      return lru_.begin()->get();
    }
    lru_.push_front(std::move(tmpl));
    index_[signature] = lru_.begin();
    bytes_ += incoming;
    while (lru_.size() > capacity_) {
      evict_back();
      ++evictions_;
    }
    enforce_byte_budget();
    return lru_.begin()->get();
  }

  /// Serialized bytes retained across all stored templates. O(1): a cached
  /// total maintained by insert/erase/eviction plus the growth deltas the
  /// send path reports through note_growth (templates grow in place on
  /// partial structural matches). Debug builds cross-check against a walk.
  std::size_t bytes_retained() const {
#ifdef BSOAP_DEBUG_INVARIANTS
    BSOAP_ASSERT(bytes_ == walked_bytes_retained());
#endif
    return bytes_;
  }

  /// Applies the size delta of an in-place update to a stored template.
  /// The lease return path reports this automatically; code that mutates a
  /// stored template behind the store's back must report it too, or the
  /// debug cross-check trips.
  void note_growth(std::ptrdiff_t delta) {
    bytes_ = static_cast<std::size_t>(static_cast<std::ptrdiff_t>(bytes_) +
                                      delta);
  }

  /// Evicts least recently used templates while over the byte budget. The
  /// most recent template always survives (it is the one in use), so a
  /// single oversized template can exceed the budget. Call after updates
  /// that may have grown a template.
  void enforce_byte_budget() {
    if (max_bytes_ == 0) return;
    while (lru_.size() > 1 && bytes_retained() > max_bytes_) {
      evict_back();
      ++byte_evictions_;
    }
  }

  /// Drops the template for `signature`, if stored. Returns true if one was
  /// removed. Used by recovery when a failed send left a template whose
  /// agreement with the peer's view is unknowable (forces a first-time send).
  bool erase(std::uint64_t signature) {
    const auto it = index_.find(signature);
    if (it == index_.end()) return false;
    remove(it->second);
    ++invalidations_;
    return true;
  }

  std::size_t size() const { return lru_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::size_t max_bytes() const { return max_bytes_; }
  /// Retunes the byte budget (0 disables). Takes effect at the next
  /// enforcement pass; it does not evict by itself.
  void set_max_bytes(std::size_t max_bytes) { max_bytes_ = max_bytes; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t byte_evictions() const { return byte_evictions_; }
  std::uint64_t invalidations() const { return invalidations_; }

  /// Drops every stored template through the same removal path evictions
  /// use, so the byte accounting and index stay consistent (eviction and
  /// invalidation tallies are history, not contents — they survive).
  void clear() {
    while (!lru_.empty()) remove(std::prev(lru_.end()));
  }

  // --- TemplateStoreLike ---------------------------------------------------
  // The pipeline-private backend: leases are views (ownership stays in the
  // LRU), checkout is find, and the return path folds the update's growth
  // delta into the cached byte total then enforces the budget.

  TemplateLease checkout(std::uint64_t signature) override {
    MessageTemplate* tmpl = find(signature);
    if (tmpl == nullptr) return TemplateLease{};
    return make_lease(this, tmpl, nullptr, signature,
                      tmpl->buffer().total_size());
  }

  TemplateLease publish(std::unique_ptr<MessageTemplate> tmpl) override {
    const std::uint64_t signature = tmpl->signature;
    MessageTemplate* stored = insert(std::move(tmpl));
    return make_lease(this, stored, nullptr, signature,
                      stored->buffer().total_size());
  }

 protected:
  void finish(std::uint64_t signature, std::unique_ptr<MessageTemplate> owned,
              MessageTemplate* view, std::size_t checkout_bytes,
              bool invalidate) override {
    BSOAP_ASSERT(owned == nullptr);
    if (invalidate) {
      erase(signature);
      return;
    }
    note_growth(static_cast<std::ptrdiff_t>(view->buffer().total_size()) -
                static_cast<std::ptrdiff_t>(checkout_bytes));
    enforce_byte_budget();
  }

 private:
  using LruIter = std::list<std::unique_ptr<MessageTemplate>>::iterator;

  /// The one removal path: keeps index and cached byte total consistent.
  void remove(LruIter it) {
    bytes_ -= (*it)->buffer().total_size();
    index_.erase((*it)->signature);
    lru_.erase(it);
  }

  void evict_back() { remove(std::prev(lru_.end())); }

#ifdef BSOAP_DEBUG_INVARIANTS
  /// The pre-cache O(n) walk, kept as the oracle for the cached total.
  std::size_t walked_bytes_retained() const {
    std::size_t total = 0;
    for (const auto& t : lru_) total += t->buffer().total_size();
    return total;
  }
#endif

  std::size_t capacity_;
  std::size_t max_bytes_;
  std::size_t bytes_ = 0;
  std::list<std::unique_ptr<MessageTemplate>> lru_;
  std::unordered_map<std::uint64_t, LruIter> index_;
  std::uint64_t evictions_ = 0;
  std::uint64_t byte_evictions_ = 0;
  std::uint64_t invalidations_ = 0;
};

}  // namespace bsoap::core
