// Saved-template store.
//
// The paper keeps one saved template per remote service per call type;
// Section 6 (future work) suggests storing several. This store generalizes
// both: templates are keyed by structure signature with an LRU bound on the
// total number retained (capacity 1 reproduces the paper's behaviour).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "core/message_template.hpp"

namespace bsoap::core {

class TemplateStore {
 public:
  explicit TemplateStore(std::size_t capacity = 8) : capacity_(capacity) {
    BSOAP_ASSERT(capacity_ >= 1);
  }

  /// Returns the template for `signature` (refreshing its LRU position), or
  /// nullptr if none is stored.
  MessageTemplate* find(std::uint64_t signature) {
    const auto it = index_.find(signature);
    if (it == index_.end()) return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    return it->second->get();
  }

  /// Stores a template (keyed by its signature), evicting the least
  /// recently used one if over capacity. Returns the stored pointer.
  MessageTemplate* insert(std::unique_ptr<MessageTemplate> tmpl) {
    const std::uint64_t signature = tmpl->signature;
    if (MessageTemplate* existing = find(signature)) {
      *lru_.begin() = std::move(tmpl);
      (void)existing;
      return lru_.begin()->get();
    }
    lru_.push_front(std::move(tmpl));
    index_[signature] = lru_.begin();
    while (lru_.size() > capacity_) {
      index_.erase(lru_.back()->signature);
      lru_.pop_back();
      ++evictions_;
    }
    return lru_.begin()->get();
  }

  std::size_t size() const { return lru_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t evictions() const { return evictions_; }

  void clear() {
    lru_.clear();
    index_.clear();
  }

 private:
  std::size_t capacity_;
  std::list<std::unique_ptr<MessageTemplate>> lru_;
  std::unordered_map<std::uint64_t,
                     std::list<std::unique_ptr<MessageTemplate>>::iterator>
      index_;
  std::uint64_t evictions_ = 0;
};

}  // namespace bsoap::core
