// Saved-template store.
//
// The paper keeps one saved template per remote service per call type;
// Section 6 (future work) suggests storing several. This store generalizes
// both: templates are keyed by structure signature with an LRU bound on the
// total number retained (capacity 1 reproduces the paper's behaviour) and an
// optional byte budget on the serialized bytes retained — a long-running
// server keeping response templates for many RPC shapes bounds its memory
// rather than its template count.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "core/message_template.hpp"

namespace bsoap::core {

class TemplateStore {
 public:
  /// `max_bytes` == 0 means no byte budget (count-only LRU).
  explicit TemplateStore(std::size_t capacity = 8, std::size_t max_bytes = 0)
      : capacity_(capacity), max_bytes_(max_bytes) {
    BSOAP_ASSERT(capacity_ >= 1);
  }

  /// Returns the template for `signature` (refreshing its LRU position), or
  /// nullptr if none is stored.
  MessageTemplate* find(std::uint64_t signature) {
    const auto it = index_.find(signature);
    if (it == index_.end()) return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    return it->second->get();
  }

  /// Stores a template (keyed by its signature), evicting least recently
  /// used ones while over the count or byte budget. Returns the stored
  /// pointer (always valid: the newest template is never evicted).
  MessageTemplate* insert(std::unique_ptr<MessageTemplate> tmpl) {
    const std::uint64_t signature = tmpl->signature;
    if (MessageTemplate* existing = find(signature)) {
      *lru_.begin() = std::move(tmpl);
      (void)existing;
      return lru_.begin()->get();
    }
    lru_.push_front(std::move(tmpl));
    index_[signature] = lru_.begin();
    while (lru_.size() > capacity_) {
      evict_back();
      ++evictions_;
    }
    enforce_byte_budget();
    return lru_.begin()->get();
  }

  /// Serialized bytes retained across all stored templates. Walks the list;
  /// templates grow in place on partial structural matches, so the total
  /// cannot be cached at insert time.
  std::size_t bytes_retained() const {
    std::size_t total = 0;
    for (const auto& t : lru_) total += t->buffer().total_size();
    return total;
  }

  /// Evicts least recently used templates while over the byte budget. The
  /// most recent template always survives (it is the one in use), so a
  /// single oversized template can exceed the budget. Call after updates
  /// that may have grown a template.
  void enforce_byte_budget() {
    if (max_bytes_ == 0) return;
    while (lru_.size() > 1 && bytes_retained() > max_bytes_) {
      evict_back();
      ++byte_evictions_;
    }
  }

  /// Drops the template for `signature`, if stored. Returns true if one was
  /// removed. Used by recovery when a failed send left a template whose
  /// agreement with the peer's view is unknowable (forces a first-time send).
  bool erase(std::uint64_t signature) {
    const auto it = index_.find(signature);
    if (it == index_.end()) return false;
    lru_.erase(it->second);
    index_.erase(it);
    ++invalidations_;
    return true;
  }

  std::size_t size() const { return lru_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::size_t max_bytes() const { return max_bytes_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t byte_evictions() const { return byte_evictions_; }
  std::uint64_t invalidations() const { return invalidations_; }

  void clear() {
    lru_.clear();
    index_.clear();
  }

 private:
  void evict_back() {
    index_.erase(lru_.back()->signature);
    lru_.pop_back();
  }

  std::size_t capacity_;
  std::size_t max_bytes_;
  std::list<std::unique_ptr<MessageTemplate>> lru_;
  std::unordered_map<std::uint64_t,
                     std::list<std::unique_ptr<MessageTemplate>>::iterator>
      index_;
  std::uint64_t evictions_ = 0;
  std::uint64_t byte_evictions_ = 0;
  std::uint64_t invalidations_ = 0;
};

}  // namespace bsoap::core
