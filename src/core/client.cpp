#include "core/client.hpp"

#include "core/template_builder.hpp"
#include "diffwire/wire_format.hpp"
#include "http/connection.hpp"
#include "soap/envelope_reader.hpp"
#include "soap/soap_server.hpp"

namespace bsoap::core {

namespace {

SendPipeline::Options pipeline_options(const BsoapClientConfig& config) {
  return SendPipeline::Options{config.tmpl,
                               config.differential,
                               config.max_templates,
                               config.max_template_bytes,
                               config.effective_framing(),
                               config.coding,
                               config.coding_min_bytes};
}

}  // namespace

BsoapClient::BsoapClient(net::Dialer dial, BsoapClientConfig config)
    : config_(std::move(config)),
      pipeline_(pipeline_options(config_)),
      pool_(net::ConnectionPool::Options{config_.max_idle_connections,
                                         std::move(dial)}),
      sender_(pipeline_, pool_, config_.retry, config_.endpoint_path) {
  if (config_.diffwire) {
    diffwire_ = std::make_unique<diffwire::ClientSession>();
    pipeline_.set_diffwire(diffwire_.get());
  }
}

BsoapClient::BsoapClient(net::Transport& transport, BsoapClientConfig config)
    : config_(std::move(config)),
      pipeline_(pipeline_options(config_)),
      pool_(net::ConnectionPool::Options{/*max_idle=*/1, /*dial=*/nullptr}),
      sender_(pipeline_, pool_, config_.retry, config_.endpoint_path) {
  pool_.add(std::make_unique<net::BorrowedTransport>(transport));
  if (config_.diffwire) {
    diffwire_ = std::make_unique<diffwire::ClientSession>();
    pipeline_.set_diffwire(diffwire_.get());
  }
}

Result<SendReport> BsoapClient::send_call(const soap::RpcCall& call) {
  Result<resilience::SendOutcome> outcome = sender_.send(call);
  if (!outcome.ok()) return outcome.error();
  outcome.value().lease.checkin();
  return outcome.value().report;
}

Result<soap::Value> BsoapClient::invoke(const soap::RpcCall& call) {
  for (int attempt = 0;; ++attempt) {
    Result<resilience::SendOutcome> outcome = sender_.send(call);
    if (!outcome.ok()) return outcome.error();
    net::ConnectionPool::Lease& lease = outcome.value().lease;
    // Read the response off the connection the send succeeded on. A failed
    // read leaves the stream mid-response, so the lease is discarded (the
    // Lease destructor's default) rather than checked back in.
    http::HttpConnection connection(lease.transport());
    Result<http::HttpResponse> response = connection.read_response();
    if (!response.ok()) return response.error();
    lease.checkin();
    http::HttpResponse& resp = response.value();
    if (diffwire_ != nullptr) {
      const http::Header* diff = resp.find(diffwire::kDiffHeader);
      const http::Header* id_header = resp.find(diffwire::kTemplateHeader);
      std::uint64_t id = 0;
      const bool has_id = id_header != nullptr &&
                          diffwire::parse_template_id(id_header->value, &id);
      if (diff != nullptr && has_id) {
        if (diff->value == diffwire::kNackValue) {
          // The server cannot apply against its replica (evicted, epoch
          // gap, checksum). Unpin and resend the same call in full — the
          // retry re-offers, so the replica chain restarts cleanly. A
          // second nack means the server rejects even full sends: give up.
          diffwire_->note_nack(id);
          if (attempt == 0) continue;
          return Error{ErrorCode::kProtocolError,
                       "diff-wire nack after full-send fallback"};
        }
        if (diff->value == diffwire::kAckValue) {
          diffwire_->note_ack(id);
          // Preset-coding ack: subsequent sends under this pin may go out
          // compressed against the pin generation's dictionary.
          const http::Header* coding_ack = resp.find(diffwire::kCodingHeader);
          if (coding_ack != nullptr &&
              coding_ack->value == diffwire::kCodingPresetValue) {
            diffwire_->note_coding_ack(id);
          }
        }
      }
    }
    if (resp.status != 200) {
      return Error{ErrorCode::kProtocolError,
                   "HTTP status " + std::to_string(resp.status)};
    }
    Result<soap::RpcCall> envelope = soap::read_rpc_envelope(resp.body);
    if (!envelope.ok()) return envelope.error();
    return soap::extract_rpc_result(envelope.value(), call.method);
  }
}

std::unique_ptr<BoundMessage> BsoapClient::bind(soap::RpcCall call) {
  return std::unique_ptr<BoundMessage>(
      new BoundMessage(*this, std::move(call)));
}

BoundMessage::BoundMessage(BsoapClient& client, soap::RpcCall call)
    : client_(client), call_(std::move(call)) {
  tmpl_ = build_template(call_, client_.config().tmpl);
  leaf_base_.reserve(call_.params.size() + 1);
  std::size_t base = 0;
  for (const soap::Param& p : call_.params) {
    leaf_base_.push_back(base);
    base += p.value.leaf_count();
  }
  leaf_base_.push_back(base);
  BSOAP_ASSERT(base == tmpl_->dut().size());
}

void BoundMessage::set_double(std::size_t param, double v) {
  soap::Value& value = param_value(param);
  BSOAP_ASSERT(value.kind() == soap::ValueKind::kDouble);
  value = soap::Value::from_double(v);
  tmpl_->dut().mark_dirty(leaf_base_[param]);
}

void BoundMessage::set_int(std::size_t param, std::int32_t v) {
  soap::Value& value = param_value(param);
  BSOAP_ASSERT(value.kind() == soap::ValueKind::kInt32);
  value = soap::Value::from_int(v);
  tmpl_->dut().mark_dirty(leaf_base_[param]);
}

void BoundMessage::set_string(std::size_t param, std::string v) {
  soap::Value& value = param_value(param);
  BSOAP_ASSERT(value.kind() == soap::ValueKind::kString);
  value = soap::Value::from_string(std::move(v));
  tmpl_->dut().mark_dirty(leaf_base_[param]);
}

void BoundMessage::set_double_element(std::size_t param, std::size_t index,
                                      double v) {
  soap::Value& value = param_value(param);
  value.doubles()[index] = v;
  tmpl_->dut().mark_dirty(leaf_base_[param] + index);
}

void BoundMessage::set_int_element(std::size_t param, std::size_t index,
                                   std::int32_t v) {
  soap::Value& value = param_value(param);
  value.ints()[index] = v;
  tmpl_->dut().mark_dirty(leaf_base_[param] + index);
}

void BoundMessage::set_mio_element(std::size_t param, std::size_t index,
                                   const soap::Mio& v) {
  soap::Value& value = param_value(param);
  value.mios()[index] = v;
  const std::size_t base = leaf_base_[param] + index * 3;
  tmpl_->dut().mark_dirty(base);
  tmpl_->dut().mark_dirty(base + 1);
  tmpl_->dut().mark_dirty(base + 2);
}

void BoundMessage::set_mio_field_value(std::size_t param, std::size_t index,
                                       double v) {
  soap::Value& value = param_value(param);
  value.mios()[index].value = v;
  tmpl_->dut().mark_dirty(leaf_base_[param] + index * 3 + 2);
}

double BoundMessage::get_double_element(std::size_t param,
                                        std::size_t index) const {
  const soap::Value& value = call_.params[param].value;
  return value.doubles()[index];
}

Result<SendReport> BoundMessage::send() {
  Result<resilience::SendOutcome> outcome =
      client_.sender_.send_tracked(*tmpl_, call_);
  if (!outcome.ok()) return outcome.error();
  outcome.value().lease.checkin();
  return outcome.value().report;
}

}  // namespace bsoap::core
