#include "core/client.hpp"

#include "core/template_builder.hpp"
#include "soap/envelope_reader.hpp"
#include "soap/soap_server.hpp"

namespace bsoap::core {

BsoapClient::BsoapClient(net::Transport& transport, BsoapClientConfig config)
    : transport_(transport),
      connection_(transport),
      config_(std::move(config)),
      store_(config_.max_templates) {}

Result<std::size_t> BsoapClient::send_template(MessageTemplate& tmpl,
                                               const std::string& method) {
  http::HttpRequest head;
  head.method = "POST";
  head.target = config_.endpoint_path;
  head.version = config_.http_chunked ? "HTTP/1.1" : "HTTP/1.1";
  head.headers.push_back(http::Header{"Host", "localhost"});
  head.headers.push_back(
      http::Header{"Content-Type", "text/xml; charset=utf-8"});
  head.headers.push_back(http::Header{"SOAPAction", "\"" + method + "\""});

  const auto buffer_slices = tmpl.buffer().slices();
  std::vector<net::ConstSlice> body;
  body.reserve(buffer_slices.size());
  for (const auto& s : buffer_slices) {
    body.push_back(net::ConstSlice{s.data, s.len});
  }
  BSOAP_RETURN_IF_ERROR(
      connection_.send_request(std::move(head), body, config_.http_chunked));
  return tmpl.buffer().total_size();
}

Result<SendReport> BsoapClient::send_call(const soap::RpcCall& call) {
  SendReport report;

  if (!config_.differential) {
    // "bSOAP Full Serialization": serialize from scratch each send, reusing
    // the template object so chunk allocations stay warm (like gSOAP's
    // reusable send buffer).
    if (full_mode_scratch_ == nullptr) {
      full_mode_scratch_ = build_template(call, config_.tmpl);
    } else {
      rebuild_template(*full_mode_scratch_, call);
    }
    report.match = MatchKind::kFirstTime;
    Result<std::size_t> sent = send_template(*full_mode_scratch_, call.method);
    if (!sent.ok()) return sent.error();
    report.envelope_bytes = sent.value();
    report.wire_bytes = sent.value();
    return report;
  }

  const std::uint64_t signature = call.structure_signature();
  MessageTemplate* tmpl = store_.find(signature);
  if (tmpl == nullptr) {
    tmpl = store_.insert(build_template(call, config_.tmpl));
    report.match = MatchKind::kFirstTime;
  } else {
    report.update = update_template(*tmpl, call);
    report.match = report.update.match;
  }

  Result<std::size_t> sent = send_template(*tmpl, call.method);
  if (!sent.ok()) return sent.error();
  report.envelope_bytes = sent.value();
  report.wire_bytes = sent.value();
  return report;
}

Result<soap::Value> BsoapClient::invoke(const soap::RpcCall& call) {
  Result<SendReport> report = send_call(call);
  if (!report.ok()) return report.error();
  Result<http::HttpResponse> response = connection_.read_response();
  if (!response.ok()) return response.error();
  if (response.value().status != 200) {
    return Error{ErrorCode::kProtocolError,
                 "HTTP status " + std::to_string(response.value().status)};
  }
  Result<soap::RpcCall> envelope =
      soap::read_rpc_envelope(response.value().body);
  if (!envelope.ok()) return envelope.error();
  return soap::extract_rpc_result(envelope.value(), call.method);
}

std::unique_ptr<BoundMessage> BsoapClient::bind(soap::RpcCall call) {
  return std::unique_ptr<BoundMessage>(
      new BoundMessage(*this, std::move(call)));
}

BoundMessage::BoundMessage(BsoapClient& client, soap::RpcCall call)
    : client_(client), call_(std::move(call)) {
  tmpl_ = build_template(call_, client_.config().tmpl);
  leaf_base_.reserve(call_.params.size() + 1);
  std::size_t base = 0;
  for (const soap::Param& p : call_.params) {
    leaf_base_.push_back(base);
    base += p.value.leaf_count();
  }
  leaf_base_.push_back(base);
  BSOAP_ASSERT(base == tmpl_->dut().size());
}

void BoundMessage::set_double(std::size_t param, double v) {
  soap::Value& value = param_value(param);
  BSOAP_ASSERT(value.kind() == soap::ValueKind::kDouble);
  value = soap::Value::from_double(v);
  tmpl_->dut().mark_dirty(leaf_base_[param]);
}

void BoundMessage::set_int(std::size_t param, std::int32_t v) {
  soap::Value& value = param_value(param);
  BSOAP_ASSERT(value.kind() == soap::ValueKind::kInt32);
  value = soap::Value::from_int(v);
  tmpl_->dut().mark_dirty(leaf_base_[param]);
}

void BoundMessage::set_string(std::size_t param, std::string v) {
  soap::Value& value = param_value(param);
  BSOAP_ASSERT(value.kind() == soap::ValueKind::kString);
  value = soap::Value::from_string(std::move(v));
  tmpl_->dut().mark_dirty(leaf_base_[param]);
}

void BoundMessage::set_double_element(std::size_t param, std::size_t index,
                                      double v) {
  soap::Value& value = param_value(param);
  value.doubles()[index] = v;
  tmpl_->dut().mark_dirty(leaf_base_[param] + index);
}

void BoundMessage::set_int_element(std::size_t param, std::size_t index,
                                   std::int32_t v) {
  soap::Value& value = param_value(param);
  value.ints()[index] = v;
  tmpl_->dut().mark_dirty(leaf_base_[param] + index);
}

void BoundMessage::set_mio_element(std::size_t param, std::size_t index,
                                   const soap::Mio& v) {
  soap::Value& value = param_value(param);
  value.mios()[index] = v;
  const std::size_t base = leaf_base_[param] + index * 3;
  tmpl_->dut().mark_dirty(base);
  tmpl_->dut().mark_dirty(base + 1);
  tmpl_->dut().mark_dirty(base + 2);
}

void BoundMessage::set_mio_field_value(std::size_t param, std::size_t index,
                                       double v) {
  soap::Value& value = param_value(param);
  value.mios()[index].value = v;
  tmpl_->dut().mark_dirty(leaf_base_[param] + index * 3 + 2);
}

double BoundMessage::get_double_element(std::size_t param,
                                        std::size_t index) const {
  const soap::Value& value = call_.params[param].value;
  return value.doubles()[index];
}

Result<SendReport> BoundMessage::send() {
  SendReport report;
  if (!tmpl_->dut().any_dirty()) {
    // Paper Section 3.1: "If none of the dirty bits are set, the message
    // has not changed and can be resent as is."
    report.match = MatchKind::kContentMatch;
  } else {
    report.update = update_dirty_fields(*tmpl_, call_);
    report.match = report.update.match;
  }
  Result<std::size_t> sent = client_.send_template(*tmpl_, call_.method);
  if (!sent.ok()) return sent.error();
  report.envelope_bytes = sent.value();
  report.wire_bytes = sent.value();
  return report;
}

}  // namespace bsoap::core
