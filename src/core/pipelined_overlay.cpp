#include "core/pipelined_overlay.hpp"

#include <cstdio>

#include "core/envelope_fragments.hpp"

namespace bsoap::core {

PipelinedOverlaySender::PipelinedOverlaySender(net::Transport& transport,
                                               PipelinedOverlayConfig config)
    : transport_(transport), config_(std::move(config)) {
  sender_thread_ = std::thread([this] { sender_loop(); });
}

PipelinedOverlaySender::~PipelinedOverlaySender() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (sender_thread_.joinable()) sender_thread_.join();
}

void PipelinedOverlaySender::enqueue(SendTask task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (task.window >= 0) window_busy_[task.window] = true;
    queue_.push_back(std::move(task));
  }
  cv_.notify_all();
}

void PipelinedOverlaySender::wait_window_free(int w) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !window_busy_[w] || stop_; });
}

Status PipelinedOverlaySender::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    return (queue_.empty() && !sending_) || stop_;
  });
  if (!first_error_.ok()) {
    Error err = first_error_;
    first_error_ = Error{};
    return err;
  }
  return Status{};
}

void PipelinedOverlaySender::sender_loop() {
  for (;;) {
    SendTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.erase(queue_.begin());
      sending_ = true;
    }

    Status status;
    {
      const char* data = task.owned.empty() ? task.data : task.owned.data();
      const std::size_t len =
          task.owned.empty() ? task.len : task.owned.size();
      bool skip = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        skip = !first_error_.ok();  // fast-fail after the first error
      }
      if (!skip) {
        if (task.raw) {
          status = transport_.send(data, len);
        } else {
          // Chunked framing: size line + payload + CRLF (+ terminator).
          char size_line[20];
          const int header_len =
              std::snprintf(size_line, sizeof(size_line), "%zx\r\n", len);
          std::vector<net::ConstSlice> wire;
          wire.push_back(net::ConstSlice{size_line,
                                         static_cast<std::size_t>(header_len)});
          wire.push_back(net::ConstSlice{data, len});
          wire.push_back(net::ConstSlice{"\r\n", 2});
          if (task.last_chunk) {
            wire.push_back(net::ConstSlice{"0\r\n\r\n", 5});
          }
          status = transport_.send_slices(wire);
        }
      }
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!status.ok() && first_error_.ok()) first_error_ = status.error();
      if (task.window >= 0) window_busy_[task.window] = false;
      sending_ = false;
    }
    cv_.notify_all();
  }
}

template <typename T, typename FillFn>
Result<std::size_t> PipelinedOverlaySender::send_array(
    const std::string& method, const std::string& service_namespace,
    const std::string& param, std::string_view element_type,
    std::span<const T> values, OverlayWindow* windows, FillFn fill) {
  const std::size_t total = values.size();
  const std::size_t envelope_bytes_base =
      windows[0].item_stride * total;

  SendTask head;
  head.owned = array_request_head(method, config_.endpoint_path);
  head.raw = true;
  const std::size_t head_len = head.owned.size();
  (void)head_len;
  enqueue(std::move(head));

  SendTask prologue;
  prologue.owned = array_envelope_prologue(method, service_namespace, param,
                                           element_type, total);
  const std::size_t prologue_len = prologue.owned.size();
  enqueue(std::move(prologue));

  // Double-buffered overlay: fill one window while the other is on the wire.
  int slot = 0;
  std::size_t sent = 0;
  while (sent < total) {
    wait_window_free(slot);
    OverlayWindow& window = windows[slot];
    const std::size_t batch = std::min(window.items, total - sent);
    for (std::size_t i = 0; i < batch; ++i) fill(window, i, sent + i);
    SendTask task;
    task.data = window.buffer.data();
    task.len = batch * window.item_stride;
    task.window = slot;
    enqueue(std::move(task));
    slot = 1 - slot;
    sent += batch;
  }

  SendTask epilogue;
  epilogue.owned = array_envelope_epilogue(method, param);
  epilogue.last_chunk = true;
  const std::size_t epilogue_len = epilogue.owned.size();
  enqueue(std::move(epilogue));

  BSOAP_RETURN_IF_ERROR(drain());
  return prologue_len + envelope_bytes_base + epilogue_len;
}

Result<std::size_t> PipelinedOverlaySender::send_double_array(
    const std::string& method, const std::string& service_namespace,
    const std::string& param, std::span<const double> values) {
  if (!double_windows_[0].ready()) {
    double_windows_[0] = make_double_window(config_.chunk_bytes);
    double_windows_[1] = make_double_window(config_.chunk_bytes);
  }
  return send_array<double>(
      method, service_namespace, param, "xsd:double", values, double_windows_,
      [&values](OverlayWindow& window, std::size_t local,
                std::size_t global_idx) {
        window.fill_double_item(local, values[global_idx]);
      });
}

Result<std::size_t> PipelinedOverlaySender::send_mio_array(
    const std::string& method, const std::string& service_namespace,
    const std::string& param, std::span<const soap::Mio> values) {
  if (!mio_windows_[0].ready()) {
    mio_windows_[0] = make_mio_window(config_.chunk_bytes);
    mio_windows_[1] = make_mio_window(config_.chunk_bytes);
  }
  return send_array<soap::Mio>(
      method, service_namespace, param, "ns1:MIO", values, mio_windows_,
      [&values](OverlayWindow& window, std::size_t local,
                std::size_t global_idx) {
        window.fill_mio_item(local, values[global_idx]);
      });
}

}  // namespace bsoap::core
