// Differential-deserialization options for the SOAP server (Section 6).
//
// Wires core::DiffDeserializer into the server runtime: each connection
// gets its own deserializer whose cache persists across the connection's
// requests, and the shared collector aggregates hit statistics. The factory
// plugs into either soap::SoapServerOptions::make_parser or
// server::ServerRuntimeOptions::make_parser (same EnvelopeParser seam).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "core/diff_deserializer.hpp"
#include "soap/soap_server.hpp"

namespace bsoap::core {

/// Thread-safe aggregate of per-connection DiffDeserializer stats.
class DiffDeserCollector {
 public:
  void record(const DiffDeserializer::Stats& stats) {
    full_parses_.fetch_add(stats.full_parses, std::memory_order_relaxed);
    content_hits_.fetch_add(stats.content_hits, std::memory_order_relaxed);
    fast_parses_.fetch_add(stats.fast_parses, std::memory_order_relaxed);
    demotions_.fetch_add(stats.demotions, std::memory_order_relaxed);
  }

  std::uint64_t full_parses() const { return full_parses_.load(); }
  std::uint64_t content_hits() const { return content_hits_.load(); }
  std::uint64_t fast_parses() const { return fast_parses_.load(); }
  std::uint64_t demotions() const { return demotions_.load(); }

 private:
  std::atomic<std::uint64_t> full_parses_{0};
  std::atomic<std::uint64_t> content_hits_{0};
  std::atomic<std::uint64_t> fast_parses_{0};
  std::atomic<std::uint64_t> demotions_{0};
};

/// Per-connection parser factory that parses request envelopes
/// differentially. The collector (optional) receives each connection's
/// statistics incrementally. Assign the result to a server options struct's
/// make_parser field.
inline std::function<soap::EnvelopeParser()> make_diff_parser_factory(
    std::shared_ptr<DiffDeserCollector> collector = nullptr) {
  return [collector]() -> soap::EnvelopeParser {
    auto deser = std::make_shared<DiffDeserializer>();
    return [deser, collector](
               std::string_view body) -> Result<const soap::RpcCall*> {
      Result<const soap::RpcCall*> call = deser->parse(body);
      if (collector != nullptr) {
        // take_stats drains the per-connection counters, so each request's
        // delta is recorded exactly once — no snapshot subtraction, no
        // double-counting when several aggregators observe one connection.
        collector->record(deser->take_stats());
      }
      return call;
    };
  };
}

/// Server options that parse request envelopes differentially.
inline soap::SoapServerOptions make_diff_deserializing_options(
    std::shared_ptr<DiffDeserCollector> collector = nullptr) {
  soap::SoapServerOptions options;
  options.make_parser = make_diff_parser_factory(std::move(collector));
  return options;
}

}  // namespace bsoap::core
