// Differential-deserialization options for the SOAP server (Section 6).
//
// Wires core::DiffDeserializer into the server runtime: each connection
// gets its own deserializer whose cache persists across the connection's
// requests, and the shared collector aggregates hit statistics. The factory
// plugs into either soap::SoapServerOptions::make_parser or
// server::ServerRuntimeOptions::make_parser (same EnvelopeParser seam).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "core/diff_deserializer.hpp"
#include "soap/soap_server.hpp"

namespace bsoap::core {

/// Thread-safe aggregate of per-connection DiffDeserializer stats.
class DiffDeserCollector {
 public:
  void record(const DiffDeserializer::Stats& stats) {
    full_parses_.fetch_add(stats.full_parses, std::memory_order_relaxed);
    content_hits_.fetch_add(stats.content_hits, std::memory_order_relaxed);
    fast_parses_.fetch_add(stats.fast_parses, std::memory_order_relaxed);
  }

  std::uint64_t full_parses() const { return full_parses_.load(); }
  std::uint64_t content_hits() const { return content_hits_.load(); }
  std::uint64_t fast_parses() const { return fast_parses_.load(); }

 private:
  std::atomic<std::uint64_t> full_parses_{0};
  std::atomic<std::uint64_t> content_hits_{0};
  std::atomic<std::uint64_t> fast_parses_{0};
};

/// Per-connection parser factory that parses request envelopes
/// differentially. The collector (optional) receives each connection's
/// statistics incrementally. Assign the result to a server options struct's
/// make_parser field.
inline std::function<soap::EnvelopeParser()> make_diff_parser_factory(
    std::shared_ptr<DiffDeserCollector> collector = nullptr) {
  return [collector]() -> soap::EnvelopeParser {
    auto deser = std::make_shared<DiffDeserializer>();
    auto last_reported = std::make_shared<DiffDeserializer::Stats>();
    return [deser, collector, last_reported](
               std::string_view body) -> Result<const soap::RpcCall*> {
      Result<const soap::RpcCall*> call = deser->parse(body);
      if (collector != nullptr) {
        // Report the delta since the previous request.
        const DiffDeserializer::Stats& now = deser->stats();
        DiffDeserializer::Stats delta;
        delta.full_parses = now.full_parses - last_reported->full_parses;
        delta.content_hits = now.content_hits - last_reported->content_hits;
        delta.fast_parses = now.fast_parses - last_reported->fast_parses;
        *last_reported = now;
        collector->record(delta);
      }
      return call;
    };
  };
}

/// Server options that parse request envelopes differentially.
inline soap::SoapServerOptions make_diff_deserializing_options(
    std::shared_ptr<DiffDeserCollector> collector = nullptr) {
  soap::SoapServerOptions options;
  options.make_parser = make_diff_parser_factory(std::move(collector));
  return options;
}

}  // namespace bsoap::core
