#include "core/dut_table.hpp"

#include <algorithm>
#include <cstring>

#include "textconv/widths.hpp"

namespace bsoap::core {

const LeafTypeInfo& leaf_type_info(LeafType type) noexcept {
  static const LeafTypeInfo kInt32Info{
      LeafType::kInt32, textconv::kMaxInt32Chars, "xsd:int"};
  static const LeafTypeInfo kInt64Info{
      LeafType::kInt64, textconv::kMaxInt64Chars, "xsd:long"};
  static const LeafTypeInfo kDoubleInfo{
      LeafType::kDouble, textconv::kMaxDoubleChars, "xsd:double"};
  static const LeafTypeInfo kBoolInfo{LeafType::kBool, 5, "xsd:boolean"};
  static const LeafTypeInfo kStringInfo{LeafType::kString, 0, "xsd:string"};
  switch (type) {
    case LeafType::kInt32: return kInt32Info;
    case LeafType::kInt64: return kInt64Info;
    case LeafType::kDouble: return kDoubleInfo;
    case LeafType::kBool: return kBoolInfo;
    case LeafType::kString: return kStringInfo;
  }
  return kStringInfo;
}

void DutTable::clear_dirty_range(std::size_t begin, std::size_t end) {
  if (begin >= end) return;
  std::size_t cleared = 0;
  std::size_t i = begin;
  while (i < end) {
    std::uint64_t& word = dirty_words_[i >> 6];
    const std::size_t bit = i & 63;
    const std::size_t span = std::min<std::size_t>(64 - bit, end - i);
    // Mask covering bits [bit, bit+span) of this word.
    std::uint64_t mask = ~std::uint64_t{0} << bit;
    if (span < 64) mask &= ~std::uint64_t{0} >> (64 - bit - span);
    cleared += static_cast<std::size_t>(std::popcount(word & mask));
    word &= ~mask;
    i += span;
  }
  BSOAP_ASSERT(cleared <= dirty_count_);
  dirty_count_ -= cleared;
}

void DutTable::clear_dirty_runs(
    std::span<const std::pair<std::uint32_t, std::uint32_t>> runs) {
  std::size_t cleared = 0;
  for (const auto& [begin, end] : runs) {
    std::size_t i = begin;
    while (i < end) {
      std::uint64_t& word = dirty_words_[i >> 6];
      const std::size_t bit = i & 63;
      const std::size_t span = std::min<std::size_t>(64 - bit, end - i);
      std::uint64_t mask = ~std::uint64_t{0} << bit;
      if (span < 64) mask &= ~std::uint64_t{0} >> (64 - bit - span);
      cleared += static_cast<std::size_t>(std::popcount(word & mask));
      word &= ~mask;
      i += span;
    }
  }
  BSOAP_ASSERT(cleared <= dirty_count_);
  dirty_count_ -= cleared;
}

std::uint32_t DutTable::add_double_segment(std::uint32_t first_leaf,
                                           const double* v, std::size_t n) {
  ArraySegment seg;
  seg.kind = ArraySegment::Kind::kDouble;
  seg.first_leaf = first_leaf;
  seg.elem_count = static_cast<std::uint32_t>(n);
  seg.plane_offset = static_cast<std::uint32_t>(double_plane_.size());
  double_plane_.insert(double_plane_.end(), v, v + n);
  segments_.push_back(seg);
  return static_cast<std::uint32_t>(segments_.size() - 1);
}

std::uint32_t DutTable::add_int_segment(std::uint32_t first_leaf,
                                        const std::int32_t* v, std::size_t n) {
  ArraySegment seg;
  seg.kind = ArraySegment::Kind::kInt32;
  seg.first_leaf = first_leaf;
  seg.elem_count = static_cast<std::uint32_t>(n);
  seg.plane_offset = static_cast<std::uint32_t>(int_plane_.size());
  int_plane_.insert(int_plane_.end(), v, v + n);
  segments_.push_back(seg);
  return static_cast<std::uint32_t>(segments_.size() - 1);
}

std::uint32_t DutTable::add_mio_segment(std::uint32_t first_leaf,
                                        const soap::Mio* v, std::size_t n) {
  ArraySegment seg;
  seg.kind = ArraySegment::Kind::kMio;
  seg.first_leaf = first_leaf;
  seg.elem_count = static_cast<std::uint32_t>(n);
  seg.plane_offset = static_cast<std::uint32_t>(mio_plane_.size());
  mio_plane_.insert(mio_plane_.end(), v, v + n);
  segments_.push_back(seg);
  return static_cast<std::uint32_t>(segments_.size() - 1);
}

std::size_t DutTable::first_entry_at_or_after(buffer::BufPos pos) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), pos,
      [](const DutEntry& e, buffer::BufPos p) { return e.pos < p; });
  return static_cast<std::size_t>(it - entries_.begin());
}

void DutTable::apply_shift(std::uint32_t chunk, std::uint32_t from_offset,
                           std::uint32_t delta) {
  for (std::size_t i =
           first_entry_at_or_after(buffer::BufPos{chunk, from_offset});
       i < entries_.size() && entries_[i].pos.chunk == chunk; ++i) {
    entries_[i].pos.offset += delta;
  }
}

void DutTable::apply_split(std::uint32_t chunk, std::uint32_t split_offset) {
  for (std::size_t i =
           first_entry_at_or_after(buffer::BufPos{chunk, split_offset});
       i < entries_.size(); ++i) {
    DutEntry& e = entries_[i];
    if (e.pos.chunk == chunk) {
      e.pos.chunk = chunk + 1;
      e.pos.offset -= split_offset;
    } else {
      e.pos.chunk += 1;
    }
  }
}

bool DutTable::check_invariants() const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const DutEntry& e = entries_[i];
    if (e.type == nullptr) return false;
    if (e.field_width < e.serialized_len) return false;
    if (i > 0 && !(entries_[i - 1].pos < e.pos)) return false;
    if (e.type->type == LeafType::kString) {
      if (e.shadow_string == DutEntry::kNoString ||
          e.shadow_string >= shadow_strings_.size()) {
        return false;
      }
    }
  }
  for (const ArraySegment& seg : segments_) {
    if (seg.first_leaf + seg.leaf_count() > entries_.size()) return false;
  }
#ifdef BSOAP_DEBUG_INVARIANTS
  // O(n) recount of the bitmask against the cached counter — debug-assert
  // builds only, so release hot paths never pay it.
  std::size_t dirty = 0;
  for (std::size_t w = 0; w < dirty_words_.size(); ++w) {
    dirty += static_cast<std::size_t>(std::popcount(dirty_words_[w]));
  }
  if (dirty != dirty_count_) return false;
#endif
  return true;
}

}  // namespace bsoap::core
