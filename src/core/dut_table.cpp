#include "core/dut_table.hpp"

#include <algorithm>

#include "textconv/widths.hpp"

namespace bsoap::core {

const LeafTypeInfo& leaf_type_info(LeafType type) noexcept {
  static const LeafTypeInfo kInt32Info{
      LeafType::kInt32, textconv::kMaxInt32Chars, "xsd:int"};
  static const LeafTypeInfo kInt64Info{
      LeafType::kInt64, textconv::kMaxInt64Chars, "xsd:long"};
  static const LeafTypeInfo kDoubleInfo{
      LeafType::kDouble, textconv::kMaxDoubleChars, "xsd:double"};
  static const LeafTypeInfo kBoolInfo{LeafType::kBool, 5, "xsd:boolean"};
  static const LeafTypeInfo kStringInfo{LeafType::kString, 0, "xsd:string"};
  switch (type) {
    case LeafType::kInt32: return kInt32Info;
    case LeafType::kInt64: return kInt64Info;
    case LeafType::kDouble: return kDoubleInfo;
    case LeafType::kBool: return kBoolInfo;
    case LeafType::kString: return kStringInfo;
  }
  return kStringInfo;
}

std::size_t DutTable::first_entry_at_or_after(buffer::BufPos pos) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), pos,
      [](const DutEntry& e, buffer::BufPos p) { return e.pos < p; });
  return static_cast<std::size_t>(it - entries_.begin());
}

void DutTable::apply_shift(std::uint32_t chunk, std::uint32_t from_offset,
                           std::uint32_t delta) {
  for (std::size_t i =
           first_entry_at_or_after(buffer::BufPos{chunk, from_offset});
       i < entries_.size() && entries_[i].pos.chunk == chunk; ++i) {
    entries_[i].pos.offset += delta;
  }
}

void DutTable::apply_split(std::uint32_t chunk, std::uint32_t split_offset) {
  for (std::size_t i =
           first_entry_at_or_after(buffer::BufPos{chunk, split_offset});
       i < entries_.size(); ++i) {
    DutEntry& e = entries_[i];
    if (e.pos.chunk == chunk) {
      e.pos.chunk = chunk + 1;
      e.pos.offset -= split_offset;
    } else {
      e.pos.chunk += 1;
    }
  }
}

bool DutTable::check_invariants() const {
  std::size_t dirty = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const DutEntry& e = entries_[i];
    if (e.type == nullptr) return false;
    if (e.field_width < e.serialized_len) return false;
    if (e.dirty) ++dirty;
    if (i > 0 && !(entries_[i - 1].pos < e.pos)) return false;
    if (e.type->type == LeafType::kString) {
      if (e.shadow_string == DutEntry::kNoString ||
          e.shadow_string >= shadow_strings_.size()) {
        return false;
      }
    }
  }
  return dirty == dirty_count_;
}

}  // namespace bsoap::core
