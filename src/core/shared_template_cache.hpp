// Process-wide template cache shared by server workers (checkout leases).
//
// PR 2 gave every server worker a private TemplateStore, so template memory
// scales as workers × RPC shapes and each worker pays its own first-time
// serialization for shapes its neighbours already serialized. This cache is
// the middleware-level result cache of arXiv:0911.0488 applied to saved
// templates: one resident set of serialized messages per structure
// signature, shared by every worker, reused as the delta base for the next
// response of that shape (the patch-reuse argument of arXiv:2507.23499).
//
// Concurrency model — checkout leases over replicas:
//
//   * The signature space is sharded over N lock-striped shards (signature
//     hash → shard); a checkout takes exactly one shard mutex.
//   * checkout() hands the replica out of the cache entirely (ownership
//     travels with the move-only TemplateLease), so the holder mutates it
//     with no lock held — the hot update/frame/write path is as lock-free
//     as the per-worker design.
//   * A signature may hold several replicas (bounded per signature). If
//     every replica is leased, checkout misses ("contended") and the caller
//     serializes from scratch; its publish becomes a new replica. To keep
//     that rare, handing out the *last* free replica while another worker
//     holds one provisions a clone first (MessageTemplate::clone — a few
//     memcpys, far cheaper than re-serializing) — clone-on-contention.
//   * Returning a surplus replica (over the bound, e.g. after a contended
//     burst) retires it instead of re-admitting it.
//
// Eviction is a global byte budget with O(1) accounting: an atomic running
// total updated by publish/return deltas/retire/evict, never a walk. Each
// shard keeps an LRU of its *free* replicas; leased replicas are not in any
// eviction structure, so they are pinned by construction — a budget pass
// that sweeps every shard and still cannot get under budget records a pin
// event and gives up until the next return.
//
// Recovery (PR 4 journal) composes: rollback restores the leased replica
// and the lease returns it; a structural failure invalidates the lease, so
// exactly the poisoned replica is dropped while sibling replicas — which
// are independent, internally consistent serializations — survive.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/template_store.hpp"

namespace bsoap::core {

class SharedTemplateCache final : public TemplateStoreLike {
 public:
  struct Options {
    /// Lock stripes; rounded up to a power of two.
    std::size_t shards = 8;
    /// Replicas retained per signature. 2 absorbs pairwise contention; size
    /// toward the expected number of workers concurrently serving one shape.
    std::size_t max_replicas = 3;
    /// Global byte budget across every shard's free and leased replicas
    /// (0 = unlimited).
    std::size_t max_bytes = 0;
  };

  /// Counter snapshot (fields are individually exact, the snapshot as a
  /// whole is unfenced — same contract as ServerStats).
  struct Stats {
    std::uint64_t hits = 0;           ///< checkout found a free replica
    std::uint64_t misses = 0;         ///< no replica existed for the signature
    std::uint64_t contended = 0;      ///< replicas existed but all were leased
    std::uint64_t clones = 0;         ///< replicas provisioned by clone
    std::uint64_t inserts = 0;        ///< replicas admitted via publish
    std::uint64_t retired = 0;        ///< surplus replicas dropped on return
    std::uint64_t evictions = 0;      ///< byte-budget evictions
    std::uint64_t invalidations = 0;  ///< leases dropped by send recovery
    std::uint64_t pins = 0;           ///< budget passes blocked by leased replicas
    std::size_t bytes_retained = 0;   ///< free + leased replica bytes
  };

  SharedTemplateCache();  ///< default Options
  explicit SharedTemplateCache(Options options);

  SharedTemplateCache(const SharedTemplateCache&) = delete;
  SharedTemplateCache& operator=(const SharedTemplateCache&) = delete;

  TemplateLease checkout(std::uint64_t signature) override;
  TemplateLease publish(std::unique_ptr<MessageTemplate> tmpl) override;

  Stats stats() const;
  std::size_t bytes_retained() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  const Options& options() const { return options_; }

  /// Test hooks. Both take every shard lock; call only quiescent or from
  /// tests — a walk is exactly what the running accounting avoids.
  std::size_t debug_walk_free_bytes() const;
  std::size_t replica_count(std::uint64_t signature) const;

 protected:
  void finish(std::uint64_t signature, std::unique_ptr<MessageTemplate> owned,
              MessageTemplate* view, std::size_t checkout_bytes,
              bool invalidate) override;

 private:
  /// A free (unleased) replica, resident in its shard's LRU list.
  struct FreeEntry {
    std::uint64_t signature = 0;
    std::size_t bytes = 0;  ///< size when admitted — the accounting unit
    std::unique_ptr<MessageTemplate> tmpl;
  };

  struct Group {
    /// Iterators into the shard LRU, most recently returned last.
    std::vector<std::list<FreeEntry>::iterator> free;
    std::uint32_t leased = 0;
    std::size_t replicas() const { return free.size() + leased; }
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<FreeEntry> lru;  ///< front = most recently returned
    std::unordered_map<std::uint64_t, Group> groups;
    /// Leased bytes resident in this shard's groups (at checkout size), so
    /// debug walks can reconcile without touching leased templates.
    std::size_t leased_bytes = 0;
  };

  Shard& shard_for(std::uint64_t signature) const {
    // The structure signature is already a hash; fold the high bits in so
    // shard selection is not at the mercy of its low-bit quality.
    const std::uint64_t mixed = signature * 0x9E3779B97F4A7C15ull;
    return *shards_[(mixed >> 32) & shard_mask_];
  }

  /// Evicts free replicas (LRU within each shard, shards swept round-robin
  /// from `start`) until under the byte budget or nothing evictable
  /// remains. Called unlocked; takes one shard lock at a time.
  void enforce_budget(std::size_t start);

  Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t shard_mask_ = 0;

  std::atomic<std::size_t> bytes_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> contended_{0};
  std::atomic<std::uint64_t> clones_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> retired_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> invalidations_{0};
  std::atomic<std::uint64_t> pins_{0};
};

}  // namespace bsoap::core
