// Leaf iteration over an RpcCall in document order.
//
// The DUT table has one entry per leaf in exactly this order (arrays
// contribute one entry per element, MIOs three), so walking a new call with
// the same structure visits entry i at step i. Templated on the visitor so
// the per-element dispatch inlines in the hot array loops.
#pragma once

#include "soap/value.hpp"

namespace bsoap::core {

/// Visitor concept:
///   void on_int(std::int32_t);
///   void on_int64(std::int64_t);
///   void on_double(double);
///   void on_bool(bool);
///   void on_string(const std::string&);
template <typename Visitor>
void for_each_leaf(const soap::Value& value, Visitor& visitor) {
  using soap::ValueKind;
  switch (value.kind()) {
    case ValueKind::kInt32:
      visitor.on_int(value.as_int());
      break;
    case ValueKind::kInt64:
      visitor.on_int64(value.as_int64());
      break;
    case ValueKind::kDouble:
      visitor.on_double(value.as_double());
      break;
    case ValueKind::kBool:
      visitor.on_bool(value.as_bool());
      break;
    case ValueKind::kString:
      visitor.on_string(value.as_string());
      break;
    case ValueKind::kDoubleArray:
      for (const double v : value.doubles()) visitor.on_double(v);
      break;
    case ValueKind::kIntArray:
      for (const std::int32_t v : value.ints()) visitor.on_int(v);
      break;
    case ValueKind::kMioArray:
      for (const soap::Mio& m : value.mios()) {
        visitor.on_int(m.x);
        visitor.on_int(m.y);
        visitor.on_double(m.value);
      }
      break;
    case ValueKind::kStruct:
      for (const soap::Value::Member& m : value.members()) {
        for_each_leaf(m.value, visitor);
      }
      break;
  }
}

template <typename Visitor>
void for_each_leaf(const soap::RpcCall& call, Visitor& visitor) {
  for (const soap::Param& p : call.params) {
    for_each_leaf(p.value, visitor);
  }
}

/// Bulk-aware walk: homogeneous arrays are offered whole to the visitor
/// before per-leaf dispatch. The visitor additionally implements
///   bool on_double_array(std::span<const double>);
///   bool on_int_array(std::span<const std::int32_t>);
///   bool on_mio_array(std::span<const soap::Mio>);
/// returning true when it consumed the array in bulk (and advanced its own
/// leaf index), false to fall back to the per-leaf calls.
template <typename Visitor>
void for_each_leaf_bulk(const soap::Value& value, Visitor& visitor) {
  using soap::ValueKind;
  switch (value.kind()) {
    case ValueKind::kDoubleArray:
      if (!visitor.on_double_array(value.double_span())) {
        for (const double v : value.doubles()) visitor.on_double(v);
      }
      break;
    case ValueKind::kIntArray:
      if (!visitor.on_int_array(value.int_span())) {
        for (const std::int32_t v : value.ints()) visitor.on_int(v);
      }
      break;
    case ValueKind::kMioArray:
      if (!visitor.on_mio_array(value.mio_span())) {
        for (const soap::Mio& m : value.mios()) {
          visitor.on_int(m.x);
          visitor.on_int(m.y);
          visitor.on_double(m.value);
        }
      }
      break;
    case ValueKind::kStruct:
      for (const soap::Value::Member& m : value.members()) {
        for_each_leaf_bulk(m.value, visitor);
      }
      break;
    default:
      for_each_leaf(value, visitor);
      break;
  }
}

template <typename Visitor>
void for_each_leaf_bulk(const soap::RpcCall& call, Visitor& visitor) {
  for (const soap::Param& p : call.params) {
    for_each_leaf_bulk(p.value, visitor);
  }
}

}  // namespace bsoap::core
