// Leaf iteration over an RpcCall in document order.
//
// The DUT table has one entry per leaf in exactly this order (arrays
// contribute one entry per element, MIOs three), so walking a new call with
// the same structure visits entry i at step i. Templated on the visitor so
// the per-element dispatch inlines in the hot array loops.
#pragma once

#include "soap/value.hpp"

namespace bsoap::core {

/// Visitor concept:
///   void on_int(std::int32_t);
///   void on_int64(std::int64_t);
///   void on_double(double);
///   void on_bool(bool);
///   void on_string(const std::string&);
template <typename Visitor>
void for_each_leaf(const soap::Value& value, Visitor& visitor) {
  using soap::ValueKind;
  switch (value.kind()) {
    case ValueKind::kInt32:
      visitor.on_int(value.as_int());
      break;
    case ValueKind::kInt64:
      visitor.on_int64(value.as_int64());
      break;
    case ValueKind::kDouble:
      visitor.on_double(value.as_double());
      break;
    case ValueKind::kBool:
      visitor.on_bool(value.as_bool());
      break;
    case ValueKind::kString:
      visitor.on_string(value.as_string());
      break;
    case ValueKind::kDoubleArray:
      for (const double v : value.doubles()) visitor.on_double(v);
      break;
    case ValueKind::kIntArray:
      for (const std::int32_t v : value.ints()) visitor.on_int(v);
      break;
    case ValueKind::kMioArray:
      for (const soap::Mio& m : value.mios()) {
        visitor.on_int(m.x);
        visitor.on_int(m.y);
        visitor.on_double(m.value);
      }
      break;
    case ValueKind::kStruct:
      for (const soap::Value::Member& m : value.members()) {
        for_each_leaf(m.value, visitor);
      }
      break;
  }
}

template <typename Visitor>
void for_each_leaf(const soap::RpcCall& call, Visitor& visitor) {
  for (const soap::Param& p : call.params) {
    for_each_leaf(p.value, visitor);
  }
}

}  // namespace bsoap::core
