// Differential DEserialization — the paper's Section 6 (future work),
// implemented here as an extension.
//
// A server receiving a stream of similar messages can cache the parse of the
// previous message: if a new document differs from the cached one only
// inside value regions (and each region's length is unchanged, so the
// surrounding "skeleton" bytes line up), the server re-parses just the
// changed lexicals instead of the whole envelope. An identical document is a
// content hit and costs one memcmp.
//
// The fast path degrades gracefully: any skeleton mismatch, length change or
// unsupported shape falls back to a full parse (and re-primes the cache).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "soap/value.hpp"

namespace bsoap::core {

class DiffDeserializer {
 public:
  struct Stats {
    std::uint64_t full_parses = 0;
    std::uint64_t content_hits = 0;   ///< document identical to cached
    std::uint64_t fast_parses = 0;    ///< skeleton matched, regions re-parsed
    std::uint64_t regions_reparsed = 0;
  };

  /// Parses `document`, reusing the cached parse when possible. The returned
  /// pointer stays valid until the next parse() call.
  Result<const soap::RpcCall*> parse(std::string_view document);

  const Stats& stats() const { return stats_; }

  /// Forgets the cached message.
  void reset();

 private:
  /// Typed mutable locator of one leaf inside cached_call_.
  struct LeafSlot {
    enum class Kind : std::uint8_t { kInt32, kInt64, kDouble, kBool, kString };
    Kind kind;
    void* target;  ///< pointer into cached_call_ (stable storage)
  };

  struct LeafRegion {
    std::size_t begin;
    std::size_t end;
  };

  Status full_parse(std::string_view document);
  bool skeleton_matches(std::string_view document) const;
  Status reparse_changed_regions(std::string_view document);
  void collect_slots();

  std::string cached_doc_;
  soap::RpcCall cached_call_;
  std::vector<LeafRegion> regions_;
  std::vector<LeafSlot> slots_;
  bool cache_valid_ = false;
  bool fast_path_usable_ = false;
  Stats stats_;
};

}  // namespace bsoap::core
