// Differential DEserialization — the paper's Section 6 (future work),
// implemented here as an extension.
//
// A server receiving a stream of similar messages can cache the parse of the
// previous message: if a new document differs from the cached one only
// inside value regions (and each region's length is unchanged, so the
// surrounding "skeleton" bytes line up), the server re-parses just the
// changed lexicals instead of the whole envelope. An identical document is a
// content hit and costs one memcmp.
//
// Two entry points share the cache:
//
//   parse(document)      — trusts nothing: memcmp for a content hit, then a
//                          full skeleton scan before the region fast path.
//   apply_runs(doc, runs) — trusts the caller that every byte outside `runs`
//                          equals the cached document (the diff-wire patch
//                          checksum proves exactly this), so the fast path
//                          touches only the dirty bytes: intersect the runs
//                          with the leaf-region map, re-parse touched leaves
//                          in place, and never walk the full message.
//
// Both paths degrade gracefully: any skeleton mismatch, length change,
// structural byte inside a run, or unsupported shape demotes to a full parse
// (which re-primes the cache and rebuilds the region map).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "soap/value.hpp"

namespace bsoap::core {

class DiffDeserializer {
 public:
  struct Stats {
    std::uint64_t full_parses = 0;
    std::uint64_t content_hits = 0;   ///< document identical to cached
    std::uint64_t fast_parses = 0;    ///< skeleton matched, regions re-parsed
    std::uint64_t regions_reparsed = 0;
    std::uint64_t demotions = 0;  ///< cached parse present but unusable
  };

  /// One leaf's byte span in the cached document (text content of a
  /// childless element, absolute body offsets, [begin, end)). Regions are
  /// sorted by begin and stay valid across apply_runs() epochs because
  /// patches never change the body length.
  struct LeafRegion {
    std::size_t begin;
    std::size_t end;
  };

  /// One contiguous dirty byte span of a patched document.
  struct DirtyRun {
    std::size_t offset;
    std::size_t length;
  };

  /// How apply_runs() satisfied a request.
  enum class ApplyPath : std::uint8_t {
    kContentHit,  ///< no dirty bytes: cached call returned untouched
    kFastParse,   ///< only touched leaves re-parsed
    kFullParse,   ///< whole envelope parsed (first sight or demotion)
  };

  struct ApplyReport {
    ApplyPath path = ApplyPath::kFullParse;
    std::size_t leaves_reparsed = 0;
    bool demoted = false;  ///< a usable cache had to be thrown away
  };

  /// Parses `document`, reusing the cached parse when possible. The returned
  /// pointer stays valid until the next parse()/prime()/apply_runs() call.
  Result<const soap::RpcCall*> parse(std::string_view document);

  /// Unconditional full parse that (re)primes the cache. Equivalent to the
  /// slow path of parse() without the content-hit/skeleton probes.
  Status prime(std::string_view document);

  /// Updates the cached parse for `document`, which must equal the cached
  /// document outside `runs` (byte-verified upstream — the diff-wire patch
  /// checksum covers the whole reconstructed body). Only run bytes are
  /// examined: runs fully inside leaf regions re-parse just those leaves;
  /// structural bytes covered by a run must be byte-identical (patch runs
  /// legitimately span the close tag after a widened value) or the request
  /// demotes to a full parse. Empty `runs` is a content hit.
  Result<ApplyReport> apply_runs(std::string_view document,
                                 std::span<const DirtyRun> runs);

  /// The cached call; valid only when primed().
  const soap::RpcCall& call() const { return cached_call_; }
  bool primed() const { return cache_valid_; }
  bool fast_path_usable() const { return fast_path_usable_; }

  /// Leaf-region map of the cached document (absolute offsets, sorted).
  std::span<const LeafRegion> regions() const { return regions_; }

  const Stats& stats() const { return stats_; }

  /// Drains the counters: returns the totals accumulated since the last
  /// take and zeroes them, so periodic aggregation never double-counts.
  Stats take_stats() {
    Stats out = stats_;
    stats_ = Stats{};
    return out;
  }

  /// Forgets the cached message.
  void reset();

 private:
  /// Typed mutable locator of one leaf inside cached_call_.
  struct LeafSlot {
    enum class Kind : std::uint8_t { kInt32, kInt64, kDouble, kBool, kString };
    Kind kind;
    void* target;  ///< pointer into cached_call_ (stable storage)
  };

  Status full_parse(std::string_view document);
  Result<ApplyReport> demote(std::string_view document);
  bool skeleton_matches(std::string_view document) const;
  Status reparse_changed_regions(std::string_view document);
  Status reparse_slot(std::size_t index, std::string_view fresh);
  void collect_slots();

  std::string cached_doc_;
  soap::RpcCall cached_call_;
  std::vector<LeafRegion> regions_;
  std::vector<LeafSlot> slots_;
  std::vector<std::size_t> touched_;  ///< apply_runs scratch (region indices)
  bool cache_valid_ = false;
  bool fast_path_usable_ = false;
  Stats stats_;
};

}  // namespace bsoap::core
