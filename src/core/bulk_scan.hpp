// Dirty-run scanning primitives for the bulk array update path.
//
// Both update modes reduce "which leaves changed?" to runs over dense
// memory instead of per-leaf predicates:
//
//   * compare mode scans a new value array against the DUT's SoA shadow
//     plane with block-wide memcmp (the compiler lowers the fixed-size
//     compares to word/SIMD loads), skipping clean regions at memory
//     bandwidth and yielding maximal runs of bitwise-differing elements;
//   * dirty-bit mode scans the DUT's dirty bitmask 64 leaves per word,
//     yielding maximal runs of set bits.
//
// Runs are element/leaf index ranges — they stay valid across template
// expansion, which renumbers positions but never leaf indices.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>

namespace bsoap::core::bulk {

/// Calls fn(begin, end) for each maximal run of elements where next and
/// shadow differ bitwise, in index order. T must be trivially copyable with
/// no padding bytes (double, int32_t, Mio — asserted at the call sites).
template <typename T, typename Fn>
void for_each_differing_run(const T* next, const T* shadow, std::size_t n,
                            Fn&& fn) {
  // Clean-region skip granularity: big enough that memcmp runs word-wide,
  // small enough that a lone dirty element costs one block rescan.
  constexpr std::size_t kBlock = (sizeof(T) >= 512) ? 1 : 512 / sizeof(T);
  std::size_t i = 0;
  while (i < n) {
    while (i + kBlock <= n &&
           std::memcmp(next + i, shadow + i, kBlock * sizeof(T)) == 0) {
      i += kBlock;
    }
    while (i < n && std::memcmp(next + i, shadow + i, sizeof(T)) == 0) ++i;
    if (i >= n) return;
    const std::size_t begin = i;
    while (i < n && std::memcmp(next + i, shadow + i, sizeof(T)) != 0) ++i;
    fn(begin, i);
  }
}

/// Calls fn(begin, end) for each maximal run of set bits in `words`
/// restricted to bit indices [begin_bit, end_bit), in index order. Runs
/// crossing word boundaries are reported once.
template <typename Fn>
void for_each_set_run(const std::uint64_t* words, std::size_t begin_bit,
                      std::size_t end_bit, Fn&& fn) {
  constexpr std::size_t kNone = ~std::size_t{0};
  std::size_t run_begin = kNone;
  std::size_t i = begin_bit;
  while (i < end_bit) {
    const std::size_t bit = i & 63;
    const std::size_t avail =
        std::min<std::size_t>(64 - bit, end_bit - i);
    // View the word from bit i: looking for the next set (outside a run)
    // or clear (inside a run) bit.
    std::uint64_t w = words[i >> 6] >> bit;
    if (run_begin == kNone) {
      if (w == 0) {
        i += avail;
        continue;
      }
      const std::size_t z = static_cast<std::size_t>(std::countr_zero(w));
      if (z >= avail) {
        i += avail;
        continue;
      }
      i += z;
      run_begin = i;
    } else {
      const std::uint64_t inv = ~w;
      if (inv == 0) {
        i += avail;
        continue;
      }
      const std::size_t z = static_cast<std::size_t>(std::countr_zero(inv));
      if (z >= avail) {
        i += avail;
        continue;
      }
      i += z;
      fn(run_begin, i);
      run_begin = kNone;
    }
  }
  if (run_begin != kNone) fn(run_begin, end_bit);
}

}  // namespace bsoap::core::bulk
