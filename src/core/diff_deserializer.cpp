#include "core/diff_deserializer.hpp"

#include <algorithm>
#include <cstring>

#include "soap/envelope_reader.hpp"
#include "textconv/parse.hpp"
#include "xml/escape.hpp"
#include "xml/pull_parser.hpp"

namespace bsoap::core {
namespace {

bool is_ws(char c) { return c == ' ' || c == '\t' || c == '\r' || c == '\n'; }

std::string_view trim(std::string_view s) {
  while (!s.empty() && is_ws(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_ws(s.back())) s.remove_suffix(1);
  return s;
}

}  // namespace

void DiffDeserializer::reset() {
  cache_valid_ = false;
  fast_path_usable_ = false;
  cached_doc_.clear();
  regions_.clear();
  slots_.clear();
}

Result<const soap::RpcCall*> DiffDeserializer::parse(
    std::string_view document) {
  if (cache_valid_ && document == cached_doc_) {
    ++stats_.content_hits;
    return &cached_call_;
  }
  if (cache_valid_ && fast_path_usable_ &&
      document.size() == cached_doc_.size() && skeleton_matches(document)) {
    const Status st = reparse_changed_regions(document);
    if (st.ok()) {
      ++stats_.fast_parses;
      cached_doc_.assign(document);
      return &cached_call_;
    }
    // A region failed to re-parse (should not happen for well-formed input);
    // fall through to the full parse.
  }
  BSOAP_RETURN_IF_ERROR(full_parse(document));
  return &cached_call_;
}

Status DiffDeserializer::prime(std::string_view document) {
  return full_parse(document);
}

Result<DiffDeserializer::ApplyReport> DiffDeserializer::demote(
    std::string_view document) {
  ++stats_.demotions;
  BSOAP_RETURN_IF_ERROR(full_parse(document));
  ApplyReport report;
  report.path = ApplyPath::kFullParse;
  report.demoted = true;
  return report;
}

Result<DiffDeserializer::ApplyReport> DiffDeserializer::apply_runs(
    std::string_view document, std::span<const DirtyRun> runs) {
  if (!cache_valid_) {
    BSOAP_RETURN_IF_ERROR(full_parse(document));
    return ApplyReport{ApplyPath::kFullParse, 0, false};
  }
  if (document.size() != cached_doc_.size() || !fast_path_usable_) {
    return demote(document);
  }
  if (runs.empty()) {
    ++stats_.content_hits;
    return ApplyReport{ApplyPath::kContentHit, 0, false};
  }

  // Intersect each run with the leaf-region map. Bytes of a run that fall
  // outside every region are structural: a patch may cover them (runs span
  // the close tag after a widened value) but must not change them.
  touched_.clear();
  for (const DirtyRun& run : runs) {
    if (run.length == 0) continue;
    if (run.offset > document.size() ||
        run.length > document.size() - run.offset) {
      return demote(document);
    }
    std::size_t cursor = run.offset;
    const std::size_t run_end = run.offset + run.length;
    while (cursor < run_end) {
      // First region whose end lies past the cursor.
      const auto it = std::upper_bound(
          regions_.begin(), regions_.end(), cursor,
          [](std::size_t pos, const LeafRegion& r) { return pos < r.end; });
      const std::size_t next_begin =
          it == regions_.end() ? document.size() : it->begin;
      if (cursor < next_begin) {
        const std::size_t seg_end = std::min(run_end, next_begin);
        if (std::memcmp(document.data() + cursor, cached_doc_.data() + cursor,
                        seg_end - cursor) != 0) {
          return demote(document);  // a structural byte changed
        }
        cursor = seg_end;
        continue;
      }
      touched_.push_back(static_cast<std::size_t>(it - regions_.begin()));
      cursor = std::min(run_end, it->end);
    }
  }
  std::sort(touched_.begin(), touched_.end());
  touched_.erase(std::unique(touched_.begin(), touched_.end()),
                 touched_.end());

  for (const DirtyRun& run : runs) {
    if (run.length == 0) continue;
    std::memcpy(cached_doc_.data() + run.offset, document.data() + run.offset,
                run.length);
  }
  for (const std::size_t index : touched_) {
    const LeafRegion& r = regions_[index];
    const std::string_view fresh =
        std::string_view(cached_doc_).substr(r.begin, r.end - r.begin);
    const Status st = reparse_slot(index, fresh);
    if (!st.ok()) return demote(document);
  }
  ++stats_.fast_parses;
  stats_.regions_reparsed += touched_.size();
  return ApplyReport{ApplyPath::kFastParse, touched_.size(), false};
}

bool DiffDeserializer::skeleton_matches(std::string_view document) const {
  // Compare every byte outside the value regions.
  std::size_t cursor = 0;
  for (const LeafRegion& r : regions_) {
    if (std::memcmp(document.data() + cursor, cached_doc_.data() + cursor,
                    r.begin - cursor) != 0) {
      return false;
    }
    cursor = r.end;
  }
  return std::memcmp(document.data() + cursor, cached_doc_.data() + cursor,
                     document.size() - cursor) == 0;
}

Status DiffDeserializer::reparse_changed_regions(std::string_view document) {
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    const LeafRegion& r = regions_[i];
    const std::string_view fresh = document.substr(r.begin, r.end - r.begin);
    const std::string_view old =
        std::string_view(cached_doc_).substr(r.begin, r.end - r.begin);
    if (fresh == old) continue;
    ++stats_.regions_reparsed;
    BSOAP_RETURN_IF_ERROR(reparse_slot(i, fresh));
  }
  return Status{};
}

Status DiffDeserializer::reparse_slot(std::size_t index,
                                      std::string_view fresh) {
  const LeafSlot& slot = slots_[index];
  const std::string_view lexical = trim(fresh);
  switch (slot.kind) {
    case LeafSlot::Kind::kInt32: {
      Result<std::int32_t> v = textconv::parse_i32(lexical);
      if (!v.ok()) return v.error();
      *static_cast<std::int32_t*>(slot.target) = v.value();
      break;
    }
    case LeafSlot::Kind::kInt64: {
      Result<std::int64_t> v = textconv::parse_i64(lexical);
      if (!v.ok()) return v.error();
      *static_cast<std::int64_t*>(slot.target) = v.value();
      break;
    }
    case LeafSlot::Kind::kDouble: {
      Result<double> v = textconv::parse_double(lexical);
      if (!v.ok()) return v.error();
      *static_cast<double*>(slot.target) = v.value();
      break;
    }
    case LeafSlot::Kind::kBool: {
      if (lexical == "true" || lexical == "1") {
        *static_cast<bool*>(slot.target) = true;
      } else if (lexical == "false" || lexical == "0") {
        *static_cast<bool*>(slot.target) = false;
      } else {
        return Error{ErrorCode::kParseError, "bad boolean region"};
      }
      break;
    }
    case LeafSlot::Kind::kString: {
      std::string decoded;
      if (!xml::unescape(fresh, &decoded)) {
        return Error{ErrorCode::kParseError, "bad string region"};
      }
      *static_cast<std::string*>(slot.target) = std::move(decoded);
      break;
    }
  }
  return Status{};
}

namespace {

/// Collects mutable leaf pointers of a Value in document order.
struct SlotCollector {
  template <typename PushFn>
  static void collect(soap::Value& value, const PushFn& push) {
    using soap::ValueKind;
    switch (value.kind()) {
      case ValueKind::kDoubleArray:
        for (double& d : value.doubles()) push(&d, 'd');
        break;
      case ValueKind::kIntArray:
        for (std::int32_t& i : value.ints()) push(&i, 'i');
        break;
      case ValueKind::kMioArray:
        for (soap::Mio& m : value.mios()) {
          push(&m.x, 'i');
          push(&m.y, 'i');
          push(&m.value, 'd');
        }
        break;
      case ValueKind::kStruct:
        for (soap::Value::Member& m : value.members()) collect(m.value, push);
        break;
      default:
        // Scalars: Value keeps its payload private; scalar leaves disable
        // the fast path (push with null target handles this).
        push(nullptr, 's');
        break;
    }
  }
};

}  // namespace

void DiffDeserializer::collect_slots() {
  slots_.clear();
  bool all_supported = true;
  const auto push = [&](void* target, char kind) {
    if (target == nullptr) {
      all_supported = false;
      return;
    }
    LeafSlot slot;
    slot.kind = kind == 'd' ? LeafSlot::Kind::kDouble : LeafSlot::Kind::kInt32;
    slot.target = target;
    slots_.push_back(slot);
  };
  for (soap::Param& p : cached_call_.params) {
    SlotCollector::collect(p.value, push);
  }
  if (!all_supported || slots_.size() != regions_.size()) {
    fast_path_usable_ = false;
  }
}

Status DiffDeserializer::full_parse(std::string_view document) {
  ++stats_.full_parses;
  Result<soap::RpcCall> call = soap::read_rpc_envelope(document);
  if (!call.ok()) {
    // The cache may already be torn (apply_runs copies run bytes before
    // re-parsing leaves); never serve it after a failed re-prime.
    cache_valid_ = false;
    fast_path_usable_ = false;
    return call.error();
  }
  cached_call_ = std::move(call.value());
  cached_doc_.assign(document);
  cache_valid_ = true;
  fast_path_usable_ = true;

  // Record the byte regions of scalar-content text: a text event whose
  // element has no element children is a candidate leaf region.
  regions_.clear();
  xml::XmlPullParser parser(cached_doc_);
  struct Frame {
    bool has_children = false;
    std::size_t text_begin = 0;
    std::size_t text_end = 0;
    int text_events = 0;
  };
  std::vector<Frame> stack;
  for (;;) {
    Result<xml::XmlEvent> event = parser.next();
    if (!event.ok()) return event.error();
    if (event.value() == xml::XmlEvent::kEof) break;
    switch (event.value()) {
      case xml::XmlEvent::kStartElement:
        if (!stack.empty()) stack.back().has_children = true;
        stack.push_back(Frame{});
        break;
      case xml::XmlEvent::kText:
        if (!stack.empty()) {
          Frame& f = stack.back();
          f.text_begin = parser.event_begin();
          f.text_end = parser.event_end();
          ++f.text_events;
        }
        break;
      case xml::XmlEvent::kEndElement: {
        const Frame f = stack.back();
        stack.pop_back();
        if (!f.has_children && f.text_events == 1) {
          regions_.push_back(LeafRegion{f.text_begin, f.text_end});
        } else if (!f.has_children && f.text_events > 1) {
          fast_path_usable_ = false;  // split text (CDATA/entity mix)
        } else if (!f.has_children && f.text_events == 0 &&
                   stack.size() > 2) {
          // Empty leaf (e.g. empty string): region bookkeeping would
          // misalign with the leaf walk, so disable the fast path.
          fast_path_usable_ = false;
        }
        break;
      }
      default:
        break;
    }
  }

  collect_slots();
  return Status{};
}

}  // namespace bsoap::core
