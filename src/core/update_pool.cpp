#include "core/update_pool.hpp"

#include <algorithm>

namespace bsoap::core {
namespace {

std::size_t pool_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t total = std::max(1u, std::min(hw, 4u));
  return total - 1;  // the calling thread is the remaining worker
}

}  // namespace

UpdatePool& UpdatePool::instance() {
  static UpdatePool pool;
  return pool;
}

UpdatePool::UpdatePool() {
  const std::size_t n = pool_thread_count();
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

UpdatePool::~UpdatePool() {
  {
    std::lock_guard<std::mutex> lock(m_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void UpdatePool::drain(const std::function<void(std::size_t)>& fn) {
  for (;;) {
    std::size_t part;
    {
      std::lock_guard<std::mutex> lock(m_);
      if (next_part_ >= parts_) return;
      part = next_part_++;
    }
    fn(part);
  }
}

void UpdatePool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(m_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      // A worker can wake after the caller already drained and retired the
      // job; there is nothing to bind to then.
      if (fn_ == nullptr) continue;
      fn = fn_;
      ++busy_;
    }
    drain(*fn);
    {
      std::lock_guard<std::mutex> lock(m_);
      if (--busy_ == 0) done_cv_.notify_all();
    }
  }
}

void UpdatePool::run(std::size_t parts,
                     const std::function<void(std::size_t)>& fn) {
  if (parts == 0) return;
  if (threads_.empty() || parts == 1) {
    for (std::size_t p = 0; p < parts; ++p) fn(p);
    return;
  }
  std::lock_guard<std::mutex> job(job_mutex_);
  {
    std::lock_guard<std::mutex> lock(m_);
    fn_ = &fn;
    parts_ = parts;
    next_part_ = 0;
    ++generation_;
  }
  start_cv_.notify_all();
  drain(fn);
  {
    std::unique_lock<std::mutex> lock(m_);
    done_cv_.wait(lock, [&] { return busy_ == 0 && next_part_ >= parts_; });
    fn_ = nullptr;
    parts_ = 0;
  }
}

}  // namespace bsoap::core
