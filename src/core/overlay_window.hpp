// Stuffed fixed-width window layouts shared by the overlay senders.
//
// A window is a flat byte buffer holding N serialized array items whose
// fields are stuffed to their type maxima: tags are written once when the
// window is built and never move; rewriting an item touches only its value
// bytes, closing tags and padding.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "soap/value.hpp"
#include "textconv/dtoa.hpp"
#include "textconv/itoa.hpp"
#include "textconv/widths.hpp"

namespace bsoap::core {

/// One rewritable field inside an item: value area + closing tag.
struct FieldSlot {
  std::size_t offset;   ///< value start, relative to the item start
  std::uint32_t width;  ///< fixed field width
  std::string close_tag;
};

struct OverlayWindow {
  std::string buffer;            ///< window bytes (tags persist)
  std::size_t item_stride = 0;   ///< bytes per item
  std::size_t items = 0;         ///< items per window
  std::vector<FieldSlot> slots;  ///< field slots of one item

  bool ready() const { return items > 0; }

  /// Rewrites one field: value text + shifted closing tag + padding.
  void write_field(std::size_t item, std::size_t slot_index, const char* text,
                   std::uint32_t len) {
    const FieldSlot& slot = slots[slot_index];
    char* base = buffer.data() + item * item_stride + slot.offset;
    BSOAP_ASSERT(len <= slot.width);
    std::memcpy(base, text, len);
    std::memcpy(base + len, slot.close_tag.data(), slot.close_tag.size());
    std::memset(base + len + slot.close_tag.size(), ' ', slot.width - len);
  }

  void fill_double_item(std::size_t item, double value) {
    char text[textconv::kMaxDoubleChars];
    const int len = textconv::write_double(text, value);
    write_field(item, 0, text, static_cast<std::uint32_t>(len));
  }

  void fill_mio_item(std::size_t item, const soap::Mio& mio) {
    char text[textconv::kMaxDoubleChars];
    int len = textconv::write_i32(text, mio.x);
    write_field(item, 0, text, static_cast<std::uint32_t>(len));
    len = textconv::write_i32(text, mio.y);
    write_field(item, 1, text, static_cast<std::uint32_t>(len));
    len = textconv::write_double(text, mio.value);
    write_field(item, 2, text, static_cast<std::uint32_t>(len));
  }
};

/// Bytes per stuffed double item: "<item>" + 24 + "</item>".
inline std::size_t double_item_stride() {
  return 6 + textconv::kMaxDoubleChars + 7;
}

/// Bytes per stuffed MIO item.
inline std::size_t mio_item_stride() {
  return 9 + textconv::kMaxInt32Chars + 4 + 3 + textconv::kMaxInt32Chars + 4 +
         3 + textconv::kMaxDoubleChars + 4 + 7;
}

/// Builds a window of stuffed <item> double slots.
inline OverlayWindow make_double_window(std::size_t chunk_bytes) {
  OverlayWindow window;
  window.item_stride = double_item_stride();
  window.items = std::max<std::size_t>(1, chunk_bytes / window.item_stride);
  window.slots = {FieldSlot{6, textconv::kMaxDoubleChars, "</item>"}};
  window.buffer.resize(window.items * window.item_stride);
  for (std::size_t i = 0; i < window.items; ++i) {
    char* base = window.buffer.data() + i * window.item_stride;
    std::memcpy(base, "<item>", 6);
    std::memset(base + 6, ' ', window.item_stride - 6);
    window.write_field(i, 0, "0", 1);
  }
  return window;
}

/// Builds a window of stuffed <item><x/><y/><v/> MIO slots.
inline OverlayWindow make_mio_window(std::size_t chunk_bytes) {
  OverlayWindow window;
  const std::uint32_t iw = textconv::kMaxInt32Chars;
  const std::uint32_t dw = textconv::kMaxDoubleChars;
  window.item_stride = mio_item_stride();
  window.items = std::max<std::size_t>(1, chunk_bytes / window.item_stride);
  window.slots = {
      FieldSlot{9, iw, "</x>"},
      FieldSlot{9 + iw + 4 + 3, iw, "</y>"},
      FieldSlot{9 + iw + 4 + 3 + iw + 4 + 3, dw, "</v></item>"},
  };
  window.buffer.resize(window.items * window.item_stride);
  for (std::size_t i = 0; i < window.items; ++i) {
    char* base = window.buffer.data() + i * window.item_stride;
    std::memcpy(base, "<item><x>", 9);
    std::memset(base + 9, ' ', iw + 4);
    std::memcpy(base + 9 + iw + 4, "<y>", 3);
    std::memset(base + 9 + iw + 4 + 3, ' ', iw + 4);
    std::memcpy(base + 9 + iw + 4 + 3 + iw + 4, "<v>", 3);
    std::memset(base + 9 + iw + 4 + 3 + iw + 4 + 3, ' ', dw + 4 + 7);
    window.write_field(i, 0, "0", 1);
    window.write_field(i, 1, "0", 1);
    window.write_field(i, 2, "0", 1);
  }
  return window;
}

}  // namespace bsoap::core
