// bSOAP client stub: the user-facing API of differential serialization.
//
// Two usage styles:
//
//  1. Transparent (`send_call`) — pass a plain RpcCall every time; the stub
//     finds the saved template for the call's structure and rewrites only
//     the fields whose values differ from the previous send (detected by
//     comparing against the DUT shadow copies).
//
//  2. Tracked (`bind` + BoundMessage setters) — the paper's envisioned
//     "get/set methods whose implementation will update the DUT table
//     transparently": setters mark dirty bits, send() rewrites exactly the
//     dirty fields with no comparisons, and an unchanged message short-
//     circuits to a resend of the stored bytes.
//
// Connections and resilience: a client constructed with a net::Dialer owns
// a keep-alive ConnectionPool and retries failed sends per its RetryPolicy,
// repairing template state between attempts (rollback or invalidation — see
// resilience/resilient_sender.hpp for the state machine). The legacy
// single-transport constructor still works: the pool is fixed to that one
// transport and sends never retry. Every surface — send_call, invoke,
// BoundMessage::send — runs through the same internal SendOutcome path.
//
// Retryable errors (default policy): kIoError, kClosed, kTimeout,
// kUnavailable. A send that exhausts its retry budget fails with
// kRetryExhausted, carrying the last underlying error in its message.
#pragma once

#include <memory>
#include <string>

#include "common/error.hpp"
#include "core/diff_serializer.hpp"
#include "core/send_pipeline.hpp"
#include "core/template_store.hpp"
#include "net/connection_pool.hpp"
#include "net/transport.hpp"
#include "resilience/resilient_sender.hpp"
#include "soap/value.hpp"

namespace bsoap::core {

/// Client configuration. An aggregate with named fluent setters — build it
/// as BsoapClientConfig{}.with_max_templates(8).with_framing(
/// http::Framing::kChunked) rather than by positional initialization, which
/// silently misassigns when fields are added or reordered.
struct BsoapClientConfig {
  TemplateConfig tmpl;
  /// false = "bSOAP Full Serialization" from the paper's figures: the
  /// template machinery runs, but every send re-serializes from scratch.
  bool differential = true;
  /// Saved templates retained across call structures (LRU; the paper keeps
  /// one per call type, Section 6 proposes several).
  std::size_t max_templates = 8;
  /// Byte budget across saved templates (0 = unlimited); least recently
  /// used templates are evicted first once exceeded.
  std::size_t max_template_bytes = 0;
  /// DEPRECATED — use `framing`. Kept one release as a source-compatible
  /// shim; true forces Framing::kChunked regardless of `framing`.
  bool http_chunked = false;
  std::string endpoint_path = "/";
  /// Wire framing of the request body (Content-Length or HTTP/1.1 chunked).
  http::Framing framing = http::Framing::kContentLength;
  /// Retry/backoff for pooled (dialer-constructed) clients. Ignored by the
  /// legacy single-transport constructor, which never retries.
  resilience::RetryPolicy retry;
  /// Idle keep-alive connections the pool retains.
  std::size_t max_idle_connections = 4;
  /// Negotiate the diff-wire patch protocol: full sends offer the call's
  /// template for pinning, and once the server acks, non-structural updates
  /// cross the wire as binary patch frames (dirty runs only). Acks and
  /// nacks ride on responses, so only invoke() completes the negotiation;
  /// send_call never reads responses and keeps sending full bodies.
  bool diffwire = false;
  /// Content coding for request payloads. kGzip/kDeflate compress every
  /// full body; kDeflatePreset — the second differential layer — presets
  /// the DEFLATE window from the diff-wire pin generation, so patch frames
  /// and full re-offers shrink against bytes the server already holds
  /// (requires diffwire and invoke(), which reads the server's coding ack;
  /// without them it degrades to identity). Any coded send falls back to
  /// identity per message when compression does not shrink the payload.
  http::ContentCoding coding = http::ContentCoding::kIdentity;
  /// Request payloads smaller than this are never compressed.
  std::size_t coding_min_bytes = 256;

  /// The framing in effect after the deprecated http_chunked shim.
  http::Framing effective_framing() const {
    return http_chunked ? http::Framing::kChunked : framing;
  }

  // --- named fluent setters ---
  BsoapClientConfig& with_template_config(TemplateConfig t) {
    tmpl = std::move(t);
    return *this;
  }
  BsoapClientConfig& with_differential(bool on) {
    differential = on;
    return *this;
  }
  BsoapClientConfig& with_max_templates(std::size_t n) {
    max_templates = n;
    return *this;
  }
  BsoapClientConfig& with_max_template_bytes(std::size_t n) {
    max_template_bytes = n;
    return *this;
  }
  BsoapClientConfig& with_framing(http::Framing f) {
    framing = f;
    return *this;
  }
  BsoapClientConfig& with_endpoint_path(std::string p) {
    endpoint_path = std::move(p);
    return *this;
  }
  BsoapClientConfig& with_retry(resilience::RetryPolicy p) {
    retry = std::move(p);
    return *this;
  }
  BsoapClientConfig& with_max_idle_connections(std::size_t n) {
    max_idle_connections = n;
    return *this;
  }
  BsoapClientConfig& with_diffwire(bool on) {
    diffwire = on;
    return *this;
  }
  BsoapClientConfig& with_compression(http::ContentCoding c,
                                      std::size_t min_body_bytes = 256) {
    coding = c;
    coding_min_bytes = min_body_bytes;
    return *this;
  }
};

class BoundMessage;

class BsoapClient {
 public:
  /// Pooled client: connections are dialed on demand, kept alive in a
  /// bounded idle pool, reconnected when the peer closes, and failed sends
  /// retry per config.retry with template-state recovery.
  BsoapClient(net::Dialer dial, BsoapClientConfig config);

  /// Legacy single-connection client: the transport must outlive the
  /// client. The pool is fixed to this one transport and sends never retry
  /// (a retry over a stream holding partial bytes would interleave them).
  explicit BsoapClient(net::Transport& transport, BsoapClientConfig config);
  explicit BsoapClient(net::Transport& transport)
      : BsoapClient(transport, BsoapClientConfig{}) {}

  /// Sends `call`, reusing a saved template when one matches. Does not read
  /// a response (the paper's Send Time protocol). The report carries how
  /// many attempts were made and what recovery, if any, was applied.
  Result<SendReport> send_call(const soap::RpcCall& call);

  /// Full RPC: send (with retry), then read and decode the response from
  /// the same pooled connection the send succeeded on. The response read
  /// itself is not retried — the request may have been acted on.
  Result<soap::Value> invoke(const soap::RpcCall& call);

  /// Creates a tracked message bound to this client. The template is built
  /// (first-time send happens on the first send()).
  std::unique_ptr<BoundMessage> bind(soap::RpcCall call);

  const BsoapClientConfig& config() const { return config_; }
  TemplateStore& store() { return pipeline_.store(); }

  /// The staged send path this client sends through. Exposed so callers can
  /// attach a SendObserver or override the framing strategy.
  SendPipeline& pipeline() { return pipeline_; }

  /// This client's connection pool (reconnect/reuse counters for tests and
  /// benchmarks).
  net::ConnectionPool& pool() { return pool_; }

  /// Diff-wire negotiation counters, or nullptr when config.diffwire is off.
  const diffwire::ClientDiffStats* diffwire_stats() const {
    return diffwire_ != nullptr ? &diffwire_->stats() : nullptr;
  }

 private:
  friend class BoundMessage;

  BsoapClientConfig config_;
  SendPipeline pipeline_;
  net::ConnectionPool pool_;
  resilience::ResilientSender sender_;
  /// Per-client diff-wire session (templates this client believes the
  /// server has pinned). Owns a unique wire-ID token so two clients sending
  /// the same call shape pin distinct replicas.
  std::unique_ptr<diffwire::ClientSession> diffwire_;
};

/// A message with explicit update tracking. Mutations go through setters
/// that update the in-memory value and set the matching DUT dirty bit.
class BoundMessage {
 public:
  const soap::RpcCall& call() const { return call_; }
  MessageTemplate& tmpl() { return *tmpl_; }

  /// Leaf index of the first leaf of parameter `param` (document order).
  std::size_t param_leaf_base(std::size_t param) const {
    return leaf_base_[param];
  }

  // --- scalar parameters -------------------------------------------------
  void set_double(std::size_t param, double v);
  void set_int(std::size_t param, std::int32_t v);
  void set_string(std::size_t param, std::string v);

  // --- array parameters --------------------------------------------------
  void set_double_element(std::size_t param, std::size_t index, double v);
  void set_int_element(std::size_t param, std::size_t index, std::int32_t v);
  void set_mio_element(std::size_t param, std::size_t index,
                       const soap::Mio& v);
  /// Updates only the field value (the double) of an MIO element.
  void set_mio_field_value(std::size_t param, std::size_t index, double v);

  double get_double_element(std::size_t param, std::size_t index) const;

  /// Marks an arbitrary leaf dirty (escape hatch for struct members).
  void mark_leaf_dirty(std::size_t leaf_index) {
    tmpl_->dut().mark_dirty(leaf_index);
  }

  std::size_t dirty_count() const { return tmpl_->dut().dirty_count(); }

  /// Sends the message: a clean DUT resends the stored bytes (content
  /// match); otherwise only dirty fields are rewritten first. Retries per
  /// the client's policy; if recovery had to invalidate the template it is
  /// rebuilt in place and the send reports kFirstTime.
  Result<SendReport> send();

 private:
  friend class BsoapClient;
  BoundMessage(BsoapClient& client, soap::RpcCall call);

  soap::Value& param_value(std::size_t param) {
    BSOAP_ASSERT(param < call_.params.size());
    return call_.params[param].value;
  }

  BsoapClient& client_;
  soap::RpcCall call_;
  std::unique_ptr<MessageTemplate> tmpl_;
  std::vector<std::size_t> leaf_base_;
};

}  // namespace bsoap::core
