// bSOAP client stub: the user-facing API of differential serialization.
//
// Two usage styles:
//
//  1. Transparent (`send_call`) — pass a plain RpcCall every time; the stub
//     finds the saved template for the call's structure and rewrites only
//     the fields whose values differ from the previous send (detected by
//     comparing against the DUT shadow copies).
//
//  2. Tracked (`bind` + BoundMessage setters) — the paper's envisioned
//     "get/set methods whose implementation will update the DUT table
//     transparently": setters mark dirty bits, send() rewrites exactly the
//     dirty fields with no comparisons, and an unchanged message short-
//     circuits to a resend of the stored bytes.
#pragma once

#include <memory>
#include <string>

#include "common/error.hpp"
#include "core/diff_serializer.hpp"
#include "core/send_pipeline.hpp"
#include "core/template_store.hpp"
#include "http/connection.hpp"
#include "net/transport.hpp"
#include "soap/value.hpp"

namespace bsoap::core {

struct BsoapClientConfig {
  TemplateConfig tmpl;
  /// false = "bSOAP Full Serialization" from the paper's figures: the
  /// template machinery runs, but every send re-serializes from scratch.
  bool differential = true;
  /// Saved templates retained across call structures (LRU; the paper keeps
  /// one per call type, Section 6 proposes several).
  std::size_t max_templates = 8;
  /// Byte budget across saved templates (0 = unlimited); least recently
  /// used templates are evicted first once exceeded.
  std::size_t max_template_bytes = 0;
  /// Stream the template's chunks as HTTP/1.1 chunked transfer encoding
  /// instead of Content-Length framing.
  bool http_chunked = false;
  std::string endpoint_path = "/";
};

class BoundMessage;

class BsoapClient {
 public:
  /// The transport must outlive the client.
  explicit BsoapClient(net::Transport& transport, BsoapClientConfig config);
  explicit BsoapClient(net::Transport& transport)
      : BsoapClient(transport, BsoapClientConfig{}) {}

  /// Sends `call`, reusing a saved template when one matches. Does not read
  /// a response (the paper's Send Time protocol).
  Result<SendReport> send_call(const soap::RpcCall& call);

  /// Full RPC: send_call, then read and decode the response envelope.
  Result<soap::Value> invoke(const soap::RpcCall& call);

  /// Creates a tracked message bound to this client. The template is built
  /// (first-time send happens on the first send()).
  std::unique_ptr<BoundMessage> bind(soap::RpcCall call);

  const BsoapClientConfig& config() const { return config_; }
  TemplateStore& store() { return pipeline_.store(); }

  /// The staged send path this client sends through. Exposed so callers can
  /// attach a SendObserver or override the framing strategy.
  SendPipeline& pipeline() { return pipeline_; }

 private:
  friend class BoundMessage;

  /// Where this client's sends go.
  SendDestination destination() {
    return SendDestination{&transport_, config_.endpoint_path};
  }

  net::Transport& transport_;
  http::HttpConnection connection_;
  BsoapClientConfig config_;
  SendPipeline pipeline_;
};

/// A message with explicit update tracking. Mutations go through setters
/// that update the in-memory value and set the matching DUT dirty bit.
class BoundMessage {
 public:
  const soap::RpcCall& call() const { return call_; }
  MessageTemplate& tmpl() { return *tmpl_; }

  /// Leaf index of the first leaf of parameter `param` (document order).
  std::size_t param_leaf_base(std::size_t param) const {
    return leaf_base_[param];
  }

  // --- scalar parameters -------------------------------------------------
  void set_double(std::size_t param, double v);
  void set_int(std::size_t param, std::int32_t v);
  void set_string(std::size_t param, std::string v);

  // --- array parameters --------------------------------------------------
  void set_double_element(std::size_t param, std::size_t index, double v);
  void set_int_element(std::size_t param, std::size_t index, std::int32_t v);
  void set_mio_element(std::size_t param, std::size_t index,
                       const soap::Mio& v);
  /// Updates only the field value (the double) of an MIO element.
  void set_mio_field_value(std::size_t param, std::size_t index, double v);

  double get_double_element(std::size_t param, std::size_t index) const;

  /// Marks an arbitrary leaf dirty (escape hatch for struct members).
  void mark_leaf_dirty(std::size_t leaf_index) {
    tmpl_->dut().mark_dirty(leaf_index);
  }

  std::size_t dirty_count() const { return tmpl_->dut().dirty_count(); }

  /// Sends the message: a clean DUT resends the stored bytes (content
  /// match); otherwise only dirty fields are rewritten first.
  Result<SendReport> send();

 private:
  friend class BsoapClient;
  BoundMessage(BsoapClient& client, soap::RpcCall call);

  soap::Value& param_value(std::size_t param) {
    BSOAP_ASSERT(param < call_.params.size());
    return call_.params[param].value;
  }

  BsoapClient& client_;
  soap::RpcCall call_;
  std::unique_ptr<MessageTemplate> tmpl_;
  std::vector<std::size_t> leaf_base_;
};

}  // namespace bsoap::core
