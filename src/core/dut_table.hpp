// Data Update Tracking (DUT) table — paper Section 3.1.
//
// Each saved message template owns a DUT table with one entry per data item
// in the message. An entry holds exactly the fields the paper lists:
//   * a pointer to type information, including the maximum serialized size,
//   * a dirty bit (changed since last written into the serialized message),
//   * the item's current location in the serialized message,
//   * its serialized length (characters used by the most recent value), and
//   * its field width (characters currently allocated; >= serialized length).
//
// Locations are (chunk, offset) pairs instead of raw pointers so that a
// shift renumbers offsets within one chunk and a chunk split renumbers chunk
// indices — no pointer rewriting over the whole table.
//
// Entries additionally carry a shadow copy of the last serialized value,
// which lets the stub detect changes by comparison when the application does
// not use the explicit set-API (the paper's envisioned get/set accessors).
//
// Two structures sit beside the entry array for the bulk array fast path:
//
//   * Dirty bits live in a dense word bitmask, not in the entries: marking
//     touches one cache line per 64 leaves, and the dirty-field update scans
//     whole words instead of striding through ~48-byte entries.
//   * Homogeneous array parameters are described by ArraySegment records
//     with struct-of-arrays shadow planes (contiguous double[]/int32[]/Mio[]
//     copies of the last serialized values), so comparison-based dirty
//     detection over an array is a memcmp-wide scan of new[] vs shadow[]
//     instead of a per-leaf union compare. The per-entry shadow union is
//     kept in sync so either update mode can follow the other.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "buffer/chunked_buffer.hpp"
#include "common/error.hpp"
#include "soap/value.hpp"

namespace bsoap::core {

enum class LeafType : std::uint8_t {
  kInt32,
  kInt64,
  kDouble,
  kBool,
  kString,
};

/// Static per-type information (the paper's "pointer to a data structure
/// that contains information about the data item's type").
struct LeafTypeInfo {
  LeafType type;
  /// Maximum characters any serialized value of this type can occupy;
  /// 0 = unbounded (strings cannot be stuffed — paper footnote 2).
  std::uint16_t max_chars;
  std::string_view xsd_name;
};

const LeafTypeInfo& leaf_type_info(LeafType type) noexcept;

struct DutEntry {
  const LeafTypeInfo* type = nullptr;
  buffer::BufPos pos;                 ///< first byte of the serialized value
  std::uint32_t serialized_len = 0;   ///< chars of the current value
  std::uint32_t field_width = 0;      ///< chars allocated (>= serialized_len)
  std::uint32_t close_tag_len = 0;    ///< bytes of the closing tag after the value

  /// Shadow copy of the last serialized value (for comparison-based dirty
  /// detection). Strings live in DutTable::shadow_strings_.
  union Shadow {
    std::int64_t i;
    double d;
  } shadow{0};
  std::uint32_t shadow_string = kNoString;

  static constexpr std::uint32_t kNoString = 0xffffffffu;

  /// Whitespace currently padding this field (after the closing tag).
  std::uint32_t padding() const { return field_width - serialized_len; }
};

/// A homogeneous run of DUT entries produced by one array parameter. The
/// segment's shadow values live contiguously in the matching SoA plane,
/// `elem_count` elements starting at `plane_offset`.
struct ArraySegment {
  enum class Kind : std::uint8_t { kDouble, kInt32, kMio };

  Kind kind = Kind::kDouble;
  std::uint32_t first_leaf = 0;   ///< DUT index of the segment's first entry
  std::uint32_t elem_count = 0;   ///< array elements (an MIO is 3 leaves)
  std::uint32_t plane_offset = 0; ///< element offset into the kind's plane

  // Cached width minima over the segment's entries (int-typed and
  // double-typed leaves separately), used to prove a parallel update cannot
  // expand. Valid while width_epoch matches the template's steal counter +1;
  // widths only shrink when a steal takes a donor's padding.
  mutable std::uint32_t min_int_width = 0;
  mutable std::uint32_t min_double_width = 0;
  mutable std::uint64_t width_epoch = 0;  ///< 0 = never computed

  std::uint32_t leaves_per_elem() const {
    return kind == Kind::kMio ? 3u : 1u;
  }
  std::uint32_t leaf_count() const { return elem_count * leaves_per_elem(); }
};

class DutTable {
 public:
  void reserve(std::size_t n) {
    entries_.reserve(n);
    dirty_words_.reserve((n + 63) / 64);
  }

  std::uint32_t add_entry(const DutEntry& entry) {
    entries_.push_back(entry);
    if (entries_.size() > dirty_words_.size() * 64) dirty_words_.push_back(0);
    return static_cast<std::uint32_t>(entries_.size() - 1);
  }

  std::uint32_t add_string_shadow(std::string value) {
    shadow_strings_.push_back(std::move(value));
    return static_cast<std::uint32_t>(shadow_strings_.size() - 1);
  }

  std::size_t size() const { return entries_.size(); }
  DutEntry& operator[](std::size_t i) { return entries_[i]; }
  const DutEntry& operator[](std::size_t i) const { return entries_[i]; }

  std::string& shadow_string(std::uint32_t index) {
    return shadow_strings_[index];
  }

  // --- dirty bits (dense word bitmask) ------------------------------------

  /// Dirty-bit bookkeeping. "If none of the dirty bits are set, the message
  /// has not changed and can be resent as is."
  bool is_dirty(std::size_t i) const {
    return (dirty_words_[i >> 6] >> (i & 63)) & 1u;
  }
  void mark_dirty(std::size_t i) {
    std::uint64_t& word = dirty_words_[i >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    if ((word & bit) == 0) {
      word |= bit;
      ++dirty_count_;
    }
  }
  void clear_dirty(std::size_t i) {
    std::uint64_t& word = dirty_words_[i >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    if ((word & bit) != 0) {
      word &= ~bit;
      --dirty_count_;
    }
  }
  bool any_dirty() const { return dirty_count_ > 0; }
  std::size_t dirty_count() const { return dirty_count_; }

  /// The raw bitmask for word-wide scanning; bit i of word w is leaf
  /// w*64 + i. Bits at or beyond size() are always zero.
  const std::uint64_t* dirty_words() const { return dirty_words_.data(); }
  std::size_t dirty_word_count() const { return dirty_words_.size(); }

  /// Clears every dirty bit in [begin, end), adjusting the count by the
  /// popcount actually cleared (bulk path: one pass after a segment update
  /// instead of a clear_dirty per leaf).
  void clear_dirty_range(std::size_t begin, std::size_t end);

  /// Clears exactly the bits covered by `runs` ([first, second) leaf
  /// ranges). O(dirty words), not O(segment words): the scan that produced
  /// the runs already proved every other word in the segment is clean.
  void clear_dirty_runs(
      std::span<const std::pair<std::uint32_t, std::uint32_t>> runs);

  /// Clears `bits` of dirty word `w`; every bit passed must currently be
  /// set (the fused serial scan passes the masked word it just drained).
  void clear_dirty_word(std::size_t w, std::uint64_t bits) {
    BSOAP_ASSERT((dirty_words_[w] & bits) == bits);
    dirty_words_[w] &= ~bits;
    dirty_count_ -= static_cast<std::size_t>(std::popcount(bits));
  }

  /// Appends (word index, word) for every nonzero mask word — the update
  /// journal's dirty snapshot, taken before a differential update.
  void snapshot_dirty_words(
      std::vector<std::pair<std::uint32_t, std::uint64_t>>& out) const {
    for (std::size_t w = 0; w < dirty_words_.size(); ++w) {
      if (dirty_words_[w] != 0) {
        out.emplace_back(static_cast<std::uint32_t>(w), dirty_words_[w]);
      }
    }
  }

  /// Restores the mask from a snapshot taken before an update. Sound only
  /// while no bit has been set since the snapshot (updates only clear
  /// bits), so every word absent from the snapshot is still zero.
  void restore_dirty_words(
      std::span<const std::pair<std::uint32_t, std::uint64_t>> words,
      std::size_t count) {
    for (const auto& [w, bits] : words) dirty_words_[w] = bits;
    dirty_count_ = count;
  }

  // --- array segments + SoA shadow planes ---------------------------------

  std::uint32_t add_double_segment(std::uint32_t first_leaf, const double* v,
                                   std::size_t n);
  std::uint32_t add_int_segment(std::uint32_t first_leaf,
                                const std::int32_t* v, std::size_t n);
  std::uint32_t add_mio_segment(std::uint32_t first_leaf, const soap::Mio* v,
                                std::size_t n);

  const std::vector<ArraySegment>& segments() const { return segments_; }

  double* double_plane(const ArraySegment& seg) {
    return double_plane_.data() + seg.plane_offset;
  }
  std::int32_t* int_plane(const ArraySegment& seg) {
    return int_plane_.data() + seg.plane_offset;
  }
  soap::Mio* mio_plane(const ArraySegment& seg) {
    return mio_plane_.data() + seg.plane_offset;
  }

  /// Renumbers after an in-chunk shift: entries in `chunk` whose offset is
  /// >= from_offset move right by `delta` bytes. Entries are in document
  /// order, so the affected ones form a contiguous suffix range.
  void apply_shift(std::uint32_t chunk, std::uint32_t from_offset,
                   std::uint32_t delta);

  /// Renumbers after ChunkedBuffer::expand_at reported a split of `chunk` at
  /// `split_offset`: entries at >= split_offset move to chunk+1 rebased to
  /// offset - split_offset; entries in later chunks get chunk index +1.
  void apply_split(std::uint32_t chunk, std::uint32_t split_offset);

  /// Index of the first entry at or after the given position (document
  /// order). Returns size() if none.
  std::size_t first_entry_at_or_after(buffer::BufPos pos) const;

  /// Verifies document-ordering and width invariants (tests). The O(n)
  /// dirty recount runs in debug-assert builds only.
  bool check_invariants() const;

  /// Removes all entries, shadow strings, segments and planes (template
  /// rebuild).
  void clear() {
    entries_.clear();
    shadow_strings_.clear();
    dirty_words_.clear();
    segments_.clear();
    double_plane_.clear();
    int_plane_.clear();
    mio_plane_.clear();
    dirty_count_ = 0;
  }

 private:
  std::vector<DutEntry> entries_;
  std::vector<std::string> shadow_strings_;
  std::vector<std::uint64_t> dirty_words_;
  std::size_t dirty_count_ = 0;

  std::vector<ArraySegment> segments_;
  std::vector<double> double_plane_;
  std::vector<std::int32_t> int_plane_;
  std::vector<soap::Mio> mio_plane_;
};

}  // namespace bsoap::core
