// Data Update Tracking (DUT) table — paper Section 3.1.
//
// Each saved message template owns a DUT table with one entry per data item
// in the message. An entry holds exactly the fields the paper lists:
//   * a pointer to type information, including the maximum serialized size,
//   * a dirty bit (changed since last written into the serialized message),
//   * the item's current location in the serialized message,
//   * its serialized length (characters used by the most recent value), and
//   * its field width (characters currently allocated; >= serialized length).
//
// Locations are (chunk, offset) pairs instead of raw pointers so that a
// shift renumbers offsets within one chunk and a chunk split renumbers chunk
// indices — no pointer rewriting over the whole table.
//
// Entries additionally carry a shadow copy of the last serialized value,
// which lets the stub detect changes by comparison when the application does
// not use the explicit set-API (the paper's envisioned get/set accessors).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "buffer/chunked_buffer.hpp"
#include "common/error.hpp"

namespace bsoap::core {

enum class LeafType : std::uint8_t {
  kInt32,
  kInt64,
  kDouble,
  kBool,
  kString,
};

/// Static per-type information (the paper's "pointer to a data structure
/// that contains information about the data item's type").
struct LeafTypeInfo {
  LeafType type;
  /// Maximum characters any serialized value of this type can occupy;
  /// 0 = unbounded (strings cannot be stuffed — paper footnote 2).
  std::uint16_t max_chars;
  std::string_view xsd_name;
};

const LeafTypeInfo& leaf_type_info(LeafType type) noexcept;

struct DutEntry {
  const LeafTypeInfo* type = nullptr;
  bool dirty = false;
  buffer::BufPos pos;                 ///< first byte of the serialized value
  std::uint32_t serialized_len = 0;   ///< chars of the current value
  std::uint32_t field_width = 0;      ///< chars allocated (>= serialized_len)
  std::uint32_t close_tag_len = 0;    ///< bytes of the closing tag after the value

  /// Shadow copy of the last serialized value (for comparison-based dirty
  /// detection). Strings live in DutTable::shadow_strings_.
  union Shadow {
    std::int64_t i;
    double d;
  } shadow{0};
  std::uint32_t shadow_string = kNoString;

  static constexpr std::uint32_t kNoString = 0xffffffffu;

  /// Whitespace currently padding this field (after the closing tag).
  std::uint32_t padding() const { return field_width - serialized_len; }
};

class DutTable {
 public:
  void reserve(std::size_t n) { entries_.reserve(n); }

  std::uint32_t add_entry(DutEntry entry) {
    entries_.push_back(entry);
    if (entry.dirty) ++dirty_count_;
    return static_cast<std::uint32_t>(entries_.size() - 1);
  }

  std::uint32_t add_string_shadow(std::string value) {
    shadow_strings_.push_back(std::move(value));
    return static_cast<std::uint32_t>(shadow_strings_.size() - 1);
  }

  std::size_t size() const { return entries_.size(); }
  DutEntry& operator[](std::size_t i) { return entries_[i]; }
  const DutEntry& operator[](std::size_t i) const { return entries_[i]; }

  std::string& shadow_string(std::uint32_t index) {
    return shadow_strings_[index];
  }

  /// Dirty-bit bookkeeping. "If none of the dirty bits are set, the message
  /// has not changed and can be resent as is."
  void mark_dirty(std::size_t i) {
    if (!entries_[i].dirty) {
      entries_[i].dirty = true;
      ++dirty_count_;
    }
  }
  void clear_dirty(std::size_t i) {
    if (entries_[i].dirty) {
      entries_[i].dirty = false;
      --dirty_count_;
    }
  }
  bool any_dirty() const { return dirty_count_ > 0; }
  std::size_t dirty_count() const { return dirty_count_; }

  /// Renumbers after an in-chunk shift: entries in `chunk` whose offset is
  /// >= from_offset move right by `delta` bytes. Entries are in document
  /// order, so the affected ones form a contiguous suffix range.
  void apply_shift(std::uint32_t chunk, std::uint32_t from_offset,
                   std::uint32_t delta);

  /// Renumbers after ChunkedBuffer::expand_at reported a split of `chunk` at
  /// `split_offset`: entries at >= split_offset move to chunk+1 rebased to
  /// offset - split_offset; entries in later chunks get chunk index +1.
  void apply_split(std::uint32_t chunk, std::uint32_t split_offset);

  /// Index of the first entry at or after the given position (document
  /// order). Returns size() if none.
  std::size_t first_entry_at_or_after(buffer::BufPos pos) const;

  /// Verifies document-ordering and width invariants (tests).
  bool check_invariants() const;

  /// Removes all entries and shadow strings (template rebuild).
  void clear() {
    entries_.clear();
    shadow_strings_.clear();
    dirty_count_ = 0;
  }

 private:
  std::vector<DutEntry> entries_;
  std::vector<std::string> shadow_strings_;
  std::size_t dirty_count_ = 0;
};

}  // namespace bsoap::core
