#include "core/message_template.hpp"

#include <algorithm>
#include <cstring>

#include "textconv/dtoa.hpp"
#include "textconv/itoa.hpp"
#include "textconv/swar.hpp"

namespace bsoap::core {
namespace {

constexpr std::uint32_t kMaxCloseTag = 32;

/// Restores one SoA plane slot from a rolled-back entry's shadow union (the
/// per-entry shadows and the planes are kept in sync by every update path,
/// so the restored union is the plane's pre-update value).
void restore_plane_slot(DutTable& dut, std::size_t idx, const DutEntry& e) {
  const std::vector<ArraySegment>& segs = dut.segments();
  const auto it = std::upper_bound(
      segs.begin(), segs.end(), idx,
      [](std::size_t i, const ArraySegment& s) { return i < s.first_leaf; });
  if (it == segs.begin()) return;
  const ArraySegment& seg = *std::prev(it);
  const std::size_t off = idx - seg.first_leaf;
  if (off >= seg.leaf_count()) return;
  switch (seg.kind) {
    case ArraySegment::Kind::kDouble:
      dut.double_plane(seg)[off] = e.shadow.d;
      break;
    case ArraySegment::Kind::kInt32:
      dut.int_plane(seg)[off] = static_cast<std::int32_t>(e.shadow.i);
      break;
    case ArraySegment::Kind::kMio: {
      soap::Mio& m = dut.mio_plane(seg)[off / 3];
      switch (off % 3) {
        case 0: m.x = static_cast<std::int32_t>(e.shadow.i); break;
        case 1: m.y = static_cast<std::int32_t>(e.shadow.i); break;
        default: m.value = e.shadow.d; break;
      }
      break;
    }
  }
}

}  // namespace

void UpdateJournal::begin(MessageTemplate& tmpl) {
  records_.clear();
  bytes_.clear();
  strings_.clear();
  dirty_words_.clear();
  structural_ = false;
  armed_ = true;
  tmpl.dut().snapshot_dirty_words(dirty_words_);
  dirty_count_ = tmpl.dut().dirty_count();
  stats_ = tmpl.stats();
  tmpl.journal_ = this;
}

void UpdateJournal::commit(MessageTemplate& tmpl) {
  BSOAP_ASSERT(tmpl.journal_ == this);
  tmpl.journal_ = nullptr;
  armed_ = false;
  records_.clear();
  bytes_.clear();
  strings_.clear();
  dirty_words_.clear();
}

void UpdateJournal::record_field(MessageTemplate& tmpl, std::size_t idx) {
  const DutEntry& e = tmpl.dut()[idx];
  FieldRecord rec;
  rec.idx = static_cast<std::uint32_t>(idx);
  rec.entry = e;
  rec.byte_off = static_cast<std::uint32_t>(bytes_.size());
  rec.byte_len = e.field_width + e.close_tag_len;
  bytes_.resize(bytes_.size() + rec.byte_len);
  tmpl.buffer().read_at(e.pos, bytes_.data() + rec.byte_off, rec.byte_len);
  if (e.shadow_string != DutEntry::kNoString) {
    rec.shadow_string = static_cast<std::uint32_t>(strings_.size());
    strings_.push_back(tmpl.dut().shadow_string(e.shadow_string));
  }
  records_.push_back(rec);
}

bool UpdateJournal::rollback(MessageTemplate& tmpl) {
  BSOAP_ASSERT(tmpl.journal_ == this);
  tmpl.journal_ = nullptr;
  armed_ = false;
  if (structural_) return false;
  DutTable& dut = tmpl.dut();
  // Reverse order: a leaf recorded twice (RunWriter fallback re-entering
  // rewrite_value) has its earliest record — the true pre-update state —
  // restored last.
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    const FieldRecord& rec = *it;
    DutEntry& e = dut[rec.idx];
    e = rec.entry;
    tmpl.buffer().write_at(e.pos, bytes_.data() + rec.byte_off, rec.byte_len);
    if (rec.shadow_string != DutEntry::kNoString) {
      dut.shadow_string(e.shadow_string) = strings_[rec.shadow_string];
    }
    restore_plane_slot(dut, rec.idx, e);
  }
  dut.restore_dirty_words(dirty_words_, dirty_count_);
  tmpl.stats() = stats_;
  records_.clear();
  bytes_.clear();
  strings_.clear();
  dirty_words_.clear();
  return true;
}

void MessageTemplate::rewrite_value(std::size_t idx, const char* text,
                                    std::uint32_t len) {
  DutEntry& entry = dut_[idx];
  if (journal_ != nullptr) journal_->record_field(*this, idx);
  ++stats_.value_rewrites;

  if (len == entry.serialized_len) {
    // Same serialized size: overwrite the value bytes only; tag and padding
    // are already in place.
    buffer_.write_at(entry.pos, text, len);
    stats_.bytes_rewritten += len;
    return;
  }

  if (len > entry.field_width) {
    // The value no longer fits: widen the field, by stealing a neighbour's
    // padding when allowed, else by shifting the chunk tail. Either way,
    // bytes outside the recorded field regions move — past the point of
    // exact rollback.
    if (journal_ != nullptr) journal_->mark_structural();
    ++stats_.expansions;
    std::uint32_t new_width = len;
    if (config_.stuffing.stuff_on_expand && entry.type->max_chars > 0) {
      new_width = std::max<std::uint32_t>(len, entry.type->max_chars);
    }
    if (!(config_.enable_stealing && try_steal(idx, new_width))) {
      expand_by_shifting(idx, new_width);
    }
  }

  // Write value, closing tag (shifted to sit right after the value), and
  // whitespace padding up to the field width.
  DutEntry& e = dut_[idx];  // re-read: expansion may have renumbered
  char tag[kMaxCloseTag];
  BSOAP_ASSERT(e.close_tag_len <= kMaxCloseTag);
  buffer_.read_at(buffer::BufPos{e.pos.chunk, e.pos.offset + e.serialized_len},
                  tag, e.close_tag_len);
  char* base = buffer_.at(e.pos);
  std::memcpy(base, text, len);
  std::memcpy(base + len, tag, e.close_tag_len);
  std::memset(base + len + e.close_tag_len, ' ', e.field_width - len);
  ++stats_.tag_shifts;
  stats_.bytes_rewritten += e.field_width + e.close_tag_len;
  e.serialized_len = len;
}

bool MessageTemplate::try_steal(std::size_t idx, std::uint32_t new_width) {
  DutEntry& entry = dut_[idx];
  const std::uint32_t delta = new_width - entry.field_width;
  const std::uint32_t chunk = entry.pos.chunk;

  for (std::size_t j = idx + 1;
       j < dut_.size() && j <= idx + config_.steal_scan_limit; ++j) {
    DutEntry& donor = dut_[j];
    if (donor.pos.chunk != chunk) return false;  // stealing stays in-chunk
    if (donor.padding() < delta) continue;

    // Move everything between the end of our region and the end of the
    // donor's value+tag right by delta; the donor's padding absorbs it.
    const std::uint32_t move_begin =
        entry.pos.offset + entry.field_width + entry.close_tag_len;
    const std::uint32_t move_end =
        donor.pos.offset + donor.serialized_len + donor.close_tag_len;
    char* base = buffer_.at(buffer::BufPos{chunk, 0});
    std::memmove(base + move_begin + delta, base + move_begin,
                 move_end - move_begin);
    for (std::size_t k = idx + 1; k <= j; ++k) {
      dut_[k].pos.offset += delta;
    }
    donor.field_width -= delta;
    entry.field_width = new_width;
    ++stats_.steals;
    return true;
  }
  return false;
}

void MessageTemplate::expand_by_shifting(std::size_t idx,
                                         std::uint32_t new_width) {
  DutEntry& entry = dut_[idx];
  const std::uint32_t old_region = entry.field_width + entry.close_tag_len;
  const std::uint32_t new_region = new_width + entry.close_tag_len;
  const std::uint32_t chunk = entry.pos.chunk;
  const std::uint32_t region_end = entry.pos.offset + old_region;

  // The closing tag (inside the region) survives expand_at in place; the
  // caller rewrites value+tag+padding afterwards via rewrite_value.
  const buffer::ExpandResult result =
      buffer_.expand_at(entry.pos, old_region, new_region);
  const std::uint32_t delta = new_region - old_region;
  switch (result.outcome) {
    case buffer::ExpandOutcome::kSlack:
      ++stats_.chunk_shifts;
      dut_.apply_shift(chunk, region_end, delta);
      break;
    case buffer::ExpandOutcome::kRealloc:
      ++stats_.chunk_reallocs;
      dut_.apply_shift(chunk, region_end, delta);
      break;
    case buffer::ExpandOutcome::kSplit:
      ++stats_.chunk_splits;
      dut_.apply_split(chunk, static_cast<std::uint32_t>(result.split_offset));
      break;
  }
  dut_[idx].field_width = new_width;
}

void MessageTemplate::RunWriter::rewrite(std::size_t idx, const char* text,
                                         std::uint32_t len) {
  DutEntry& e = tmpl_.dut()[idx];
  if (len > e.field_width) {
    // Expansion: the full steal/shift/split machinery, which may renumber
    // positions, realloc a chunk, or split chunks — drop the cached base.
    // Parallel callers prove fit up front, so this only runs with the
    // template's own stats block (single-threaded).
    BSOAP_ASSERT(&stats_ == &tmpl_.stats());
    tmpl_.rewrite_value(idx, text, len);
    chunk_ = kNoChunk;
    return;
  }
  if (UpdateJournal* journal = tmpl_.journal()) {
    journal->record_field(tmpl_, idx);
  }
  if (e.pos.chunk != chunk_) {
    chunk_ = e.pos.chunk;
    base_ = tmpl_.buffer().at(buffer::BufPos{chunk_, 0});
  }
  char* p = base_ + e.pos.offset;
  ++stats_.value_rewrites;
  if (len == e.serialized_len) {
    std::memcpy(p, text, len);
    stats_.bytes_rewritten += len;
    return;
  }
  char tag[kMaxCloseTag];
  BSOAP_ASSERT(e.close_tag_len <= kMaxCloseTag);
  std::memcpy(tag, p + e.serialized_len, e.close_tag_len);
  std::memcpy(p, text, len);
  std::memcpy(p + len, tag, e.close_tag_len);
  std::memset(p + len + e.close_tag_len, ' ', e.field_width - len);
  ++stats_.tag_shifts;
  stats_.bytes_rewritten += e.field_width + e.close_tag_len;
  e.serialized_len = len;
}

void MessageTemplate::RunWriter::rewrite_padded(std::size_t idx,
                                                const char* text,
                                                std::uint32_t len) {
  DutEntry& e = tmpl_.dut()[idx];
  if (len > e.field_width) {
    BSOAP_ASSERT(&stats_ == &tmpl_.stats());
    tmpl_.rewrite_value(idx, text, len);
    chunk_ = kNoChunk;
    return;
  }
  if (UpdateJournal* journal = tmpl_.journal()) {
    journal->record_field(tmpl_, idx);
  }
  if (e.pos.chunk != chunk_) {
    chunk_ = e.pos.chunk;
    base_ = tmpl_.buffer().at(buffer::BufPos{chunk_, 0});
  }
  char* p = base_ + e.pos.offset;
  ++stats_.value_rewrites;
  if (len == e.serialized_len) {
    textconv::swar::copy_digits(p, text, len);
    stats_.bytes_rewritten += len;
    return;
  }
  // Tag shift, all wide exact stores. The tag save reads from the buffer
  // (whose readable extent past the region is not guaranteed), so it stays
  // a bounded memcpy; the local is padded so the store side can go wide.
  char tag[kMaxCloseTag + 8];
  BSOAP_ASSERT(e.close_tag_len <= kMaxCloseTag);
  std::memcpy(tag, p + e.serialized_len, e.close_tag_len);
  textconv::swar::copy_digits(p, text, len);
  textconv::swar::copy_digits(p + len, tag, e.close_tag_len);
  textconv::swar::fill_spaces(p + len + e.close_tag_len, e.field_width - len);
  ++stats_.tag_shifts;
  stats_.bytes_rewritten += e.field_width + e.close_tag_len;
  e.serialized_len = len;
}

template <typename Convert>
void MessageTemplate::RunWriter::rewrite_convert(std::size_t idx,
                                                 std::uint32_t max_chars,
                                                 Convert conv) {
  DutEntry& e = tmpl_.dut()[idx];
  if (e.field_width >= max_chars) [[likely]] {
    // Type-max stuffed field: every value fits, so the converter's exact
    // wide stores land straight in the buffer region — no scratch copy.
    // The closing tag is captured first because a longer value overwrites
    // its leading bytes.
    if (UpdateJournal* journal = tmpl_.journal()) {
      journal->record_field(tmpl_, idx);
    }
    if (e.pos.chunk != chunk_) {
      chunk_ = e.pos.chunk;
      base_ = tmpl_.buffer().at(buffer::BufPos{chunk_, 0});
    }
    char* p = base_ + e.pos.offset;
    ++stats_.value_rewrites;
    char tag[kMaxCloseTag + 8];
    BSOAP_ASSERT(e.close_tag_len <= kMaxCloseTag);
    std::memcpy(tag, p + e.serialized_len, e.close_tag_len);
    const std::uint32_t len = conv(p);
    if (len == e.serialized_len) {
      stats_.bytes_rewritten += len;
      return;
    }
    textconv::swar::copy_digits(p + len, tag, e.close_tag_len);
    textconv::swar::fill_spaces(p + len + e.close_tag_len,
                                e.field_width - len);
    ++stats_.tag_shifts;
    stats_.bytes_rewritten += e.field_width + e.close_tag_len;
    e.serialized_len = len;
    return;
  }
  // Padded so rewrite_padded's wide copy may read (never write) a full
  // word from any offset below the produced length.
  char text[textconv::kMaxDoubleChars + 8];
  const std::uint32_t len = conv(text);
  rewrite_padded(idx, text, len);
}

void MessageTemplate::RunWriter::rewrite_double(std::size_t idx, double v) {
  if (textconv::textconv_vectorized()) {
    rewrite_convert(idx, textconv::kMaxDoubleChars, [v](char* out) {
      return static_cast<std::uint32_t>(textconv::write_double(out, v));
    });
    return;
  }
  char text[textconv::kMaxDoubleChars];
  const int len = textconv::write_double(text, v);
  rewrite(idx, text, static_cast<std::uint32_t>(len));
}

void MessageTemplate::RunWriter::rewrite_i32(std::size_t idx, std::int32_t v) {
  if (textconv::textconv_vectorized()) {
    rewrite_convert(idx, textconv::kMaxInt32Chars, [v](char* out) {
      return static_cast<std::uint32_t>(textconv::write_i32(out, v));
    });
    return;
  }
  char text[textconv::kMaxInt32Chars];
  const int len = textconv::write_i32(text, v);
  rewrite(idx, text, static_cast<std::uint32_t>(len));
}

std::unique_ptr<MessageTemplate> MessageTemplate::clone() const {
  BSOAP_ASSERT(journal_ == nullptr);
  auto copy = std::make_unique<MessageTemplate>(config_);
  copy->buffer_ = buffer_.clone();
  copy->dut_ = dut_;
  copy->stats_ = stats_;
  copy->signature = signature;
  return copy;
}

bool MessageTemplate::check_invariants() const {
  if (!buffer_.check_invariants()) return false;
  if (!dut_.check_invariants()) return false;
  for (std::size_t i = 0; i < dut_.size(); ++i) {
    const DutEntry& e = dut_[i];
    if (e.pos.chunk >= buffer_.chunk_count()) return false;
    const std::string_view chunk = buffer_.chunk_view(e.pos.chunk);
    const std::size_t region_end =
        static_cast<std::size_t>(e.pos.offset) + e.field_width + e.close_tag_len;
    if (region_end > chunk.size()) return false;
    // Padding bytes must be whitespace.
    for (std::size_t p = e.pos.offset + e.serialized_len + e.close_tag_len;
         p < region_end; ++p) {
      if (chunk[p] != ' ') return false;
    }
    // The closing tag must start with '<'.
    if (e.close_tag_len > 0 &&
        chunk[e.pos.offset + e.serialized_len] != '<') {
      return false;
    }
  }
  return true;
}

}  // namespace bsoap::core
