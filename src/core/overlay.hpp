// Chunk overlaying (paper Section 3.3, evaluated in Figure 12).
//
// Differential serialization normally stores the whole serialized message —
// expensive for huge arrays. Chunk overlaying keeps only ONE chunk-sized
// window in memory: the window is serialized with stuffed (fixed-width)
// fields, sent as an HTTP/1.1 chunk, then the *same* memory is overlaid with
// the next portion of the array. Because every field has a fixed width, the
// XML tags written into the window the first time never move and need not be
// rewritten — only the values are, which is why overlay performance tracks
// the "100% value re-serialization" line of the structural-match experiment.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/overlay_window.hpp"
#include "http/connection.hpp"
#include "net/transport.hpp"
#include "soap/value.hpp"

namespace bsoap::core {

struct OverlayConfig {
  /// Window buffer size; the paper uses 32 KiB chunks.
  std::size_t chunk_bytes = 32 * 1024;
  std::string endpoint_path = "/";
};

class OverlaySender {
 public:
  /// The transport must outlive the sender.
  OverlaySender(net::Transport& transport, OverlayConfig config)
      : transport_(transport),
        connection_(transport),
        config_(std::move(config)) {}

  /// Sends `method(param = values)` streaming from one overlaid window.
  /// Returns envelope bytes sent. The window buffer (including its tags) is
  /// reused across calls with the same element type.
  Result<std::size_t> send_double_array(const std::string& method,
                                        const std::string& service_namespace,
                                        const std::string& param,
                                        std::span<const double> values);

  Result<std::size_t> send_mio_array(const std::string& method,
                                     const std::string& service_namespace,
                                     const std::string& param,
                                     std::span<const soap::Mio> values);

  /// Array elements that fit one window for each element type.
  std::size_t doubles_per_window() const {
    return std::max<std::size_t>(1, config_.chunk_bytes / double_item_stride());
  }
  std::size_t mios_per_window() const {
    return std::max<std::size_t>(1, config_.chunk_bytes / mio_item_stride());
  }

 private:
  /// Writes one item into the window; `local` is the item's index within
  /// the window, `global` its index in the full array.
  using ItemFiller = std::function<void(std::size_t global, std::size_t local)>;

  /// Streams `total_items` items: HTTP chunked prologue + repeatedly overlay
  /// the window and send it + epilogue.
  Result<std::size_t> send_streamed(const std::string& method,
                                    const std::string& service_namespace,
                                    const std::string& param,
                                    std::string_view element_type,
                                    std::size_t total_items,
                                    OverlayWindow& window,
                                    const ItemFiller& fill_item);

  net::Transport& transport_;
  http::HttpConnection connection_;
  OverlayConfig config_;
  OverlayWindow double_window_;
  OverlayWindow mio_window_;
};

}  // namespace bsoap::core
