#include "core/overlay.hpp"

#include <cstring>

#include "core/envelope_fragments.hpp"
#include "http/chunked_coding.hpp"

namespace bsoap::core {

Result<std::size_t> OverlaySender::send_streamed(
    const std::string& method, const std::string& service_namespace,
    const std::string& param, std::string_view element_type,
    std::size_t total_items, OverlayWindow& window,
    const ItemFiller& fill_item) {
  const std::string prologue = array_envelope_prologue(
      method, service_namespace, param, element_type, total_items);
  const std::string epilogue = array_envelope_epilogue(method, param);
  const std::size_t envelope_bytes =
      prologue.size() + epilogue.size() + total_items * window.item_stride;

  // HTTP head: chunked transfer, since the total is streamed window by
  // window (HTTP/1.1 chunking is what makes overlaying transport-feasible).
  const std::string head_text =
      array_request_head(method, config_.endpoint_path);

  std::vector<std::string> scratch;
  {
    const net::ConstSlice first[] = {
        net::ConstSlice{head_text.data(), head_text.size()}};
    BSOAP_RETURN_IF_ERROR(transport_.send_slices(first));
  }
  {
    const net::ConstSlice body[] = {
        net::ConstSlice{prologue.data(), prologue.size()}};
    std::vector<net::ConstSlice> wire = http::encode_chunked(body, &scratch);
    wire.pop_back();  // keep the stream open
    BSOAP_RETURN_IF_ERROR(transport_.send_slices(wire));
  }

  // Overlay loop: fill the window with the next portion, send it, repeat.
  std::size_t sent_items = 0;
  while (sent_items < total_items) {
    const std::size_t batch = std::min(window.items, total_items - sent_items);
    for (std::size_t i = 0; i < batch; ++i) {
      fill_item(sent_items + i, i);
    }
    const net::ConstSlice body[] = {
        net::ConstSlice{window.buffer.data(), batch * window.item_stride}};
    scratch.clear();
    std::vector<net::ConstSlice> wire = http::encode_chunked(body, &scratch);
    wire.pop_back();
    BSOAP_RETURN_IF_ERROR(transport_.send_slices(wire));
    sent_items += batch;
  }

  {
    const net::ConstSlice body[] = {
        net::ConstSlice{epilogue.data(), epilogue.size()}};
    scratch.clear();
    // Final chunk plus the chunked-body terminator.
    std::vector<net::ConstSlice> wire = http::encode_chunked(body, &scratch);
    BSOAP_RETURN_IF_ERROR(transport_.send_slices(wire));
  }
  return envelope_bytes;
}

Result<std::size_t> OverlaySender::send_double_array(
    const std::string& method, const std::string& service_namespace,
    const std::string& param, std::span<const double> values) {
  if (!double_window_.ready()) {
    double_window_ = make_double_window(config_.chunk_bytes);
  }
  auto fill = [&](std::size_t global, std::size_t local) {
    double_window_.fill_double_item(local, values[global]);
  };
  return send_streamed(method, service_namespace, param, "xsd:double",
                       values.size(), double_window_, fill);
}

Result<std::size_t> OverlaySender::send_mio_array(
    const std::string& method, const std::string& service_namespace,
    const std::string& param, std::span<const soap::Mio> values) {
  if (!mio_window_.ready()) {
    mio_window_ = make_mio_window(config_.chunk_bytes);
  }
  auto fill = [&](std::size_t global, std::size_t local) {
    mio_window_.fill_mio_item(local, values[global]);
  };
  return send_streamed(method, service_namespace, param, "ns1:MIO",
                       values.size(), mio_window_, fill);
}

}  // namespace bsoap::core
