// The server's cached parse of a diff-wire replica body.
//
// A ParsedReplica hangs off a pinned replica as its ReplicaAttachment and
// fuses the diff-wire state machine with DiffDeserializer: the offer's full
// body is parsed once, and every subsequent patch re-parses only the leaves
// its dirty runs touch (header-only replays return the cached call with
// zero parse work). The patch checksum has already proven that bytes
// outside the runs equal the pinned body, so the fast path never scans the
// skeleton.
//
// Concurrency — clone-or-lock. Requests for one replica normally arrive
// serialized (the epoch chain NACKs concurrent patches at the store), but
// distinct connections sharing a wire ID can race a serve against a lease
// still held across a handler. One mutex guards the deserializer:
//
//   uncontended  try_lock succeeds; the parse state is updated and the
//                Lease keeps the lock across the handler, serving the
//                cached RpcCall zero-copy.
//   contended    block until the holder's lease drops (bounded by its
//                handler + response write), update the parse state, clone
//                the cached call into the Lease, and release the lock
//                before the handler runs.
//
// Either way the handler sees an immutable call and TSan sees every access
// ordered by the mutex. The Lease also holds a shared_ptr to the
// ParsedReplica so an eviction or re-pin mid-request cannot destroy state
// a handler is reading.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "core/diff_deserializer.hpp"
#include "diffwire/replica_store.hpp"
#include "diffwire/wire_format.hpp"
#include "soap/value.hpp"

namespace bsoap::core {

class ParsedReplica final : public diffwire::ReplicaAttachment {
 public:
  /// How a serve satisfied the request, for server stats aggregation.
  struct ServeReport {
    DiffDeserializer::ApplyPath path = DiffDeserializer::ApplyPath::kFullParse;
    std::size_t leaves_reparsed = 0;
    bool demoted = false;  ///< a usable cached parse had to be rebuilt
    bool cloned = false;   ///< lock was contended; served from a clone
  };

  /// Read access to the served call for the duration of one request.
  /// Holds either the replica mutex (uncontended path — the call points
  /// into the shared deserializer) or an owned clone. Keep it alive until
  /// the response is written; it is movable but not copyable.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&&) = default;
    Lease& operator=(Lease&&) = default;

    const soap::RpcCall& call() const {
      return owned_ != nullptr ? *owned_ : *shared_;
    }
    bool valid() const { return owned_ != nullptr || shared_ != nullptr; }

   private:
    friend class ParsedReplica;
    // Order matters: lock_ must release before keepalive_ can destroy the
    // replica that owns the mutex.
    std::shared_ptr<ParsedReplica> keepalive_;
    std::unique_lock<std::mutex> lock_;
    const soap::RpcCall* shared_ = nullptr;
    std::unique_ptr<soap::RpcCall> owned_;
  };

  /// Serves a request whose full body is in hand (offer pin, or a patch
  /// that found no usable attachment): full parse, re-priming the cache.
  /// `epoch` is the replica's epoch after this request (0 for an offer).
  static Result<Lease> serve_full(std::shared_ptr<ParsedReplica> self,
                                  std::string_view body, std::uint32_t epoch,
                                  ServeReport* report);

  /// Serves a patch request: `body` is the reconstructed replica at
  /// `epoch`, `runs` its dirty byte spans (empty for a replay). When the
  /// cached parse is exactly one epoch behind, only touched leaves are
  /// re-parsed; otherwise (attach raced a re-pin, a prior serve failed, a
  /// run hit structural bytes, ...) the request demotes to a full parse.
  static Result<Lease> serve_patch(std::shared_ptr<ParsedReplica> self,
                                   std::string_view body, std::uint32_t epoch,
                                   std::span<const diffwire::PatchRun> runs,
                                   ServeReport* report);

  /// Drains the wrapped deserializer's counters (per-replica scoping).
  DiffDeserializer::Stats take_stats();

 private:
  static Lease make_lease(std::shared_ptr<ParsedReplica> self,
                          std::unique_lock<std::mutex> lock, bool contended,
                          ServeReport* report);

  std::mutex mu_;
  DiffDeserializer deser_;
  std::vector<DiffDeserializer::DirtyRun> run_scratch_;  // guarded by mu_
  std::uint32_t epoch_ = 0;
  bool epoch_valid_ = false;  ///< epoch_ matches the parse state
};

}  // namespace bsoap::core
