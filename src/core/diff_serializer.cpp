#include "core/diff_serializer.hpp"

#include <bit>
#include <cstring>

#include "core/leaf_walk.hpp"
#include "textconv/dtoa.hpp"
#include "textconv/itoa.hpp"
#include "xml/escape.hpp"

namespace bsoap::core {
namespace {

/// Shared field-rewrite plumbing for both visitors.
struct RewriteContext {
  explicit RewriteContext(MessageTemplate& t) : tmpl(t) {}

  MessageTemplate& tmpl;
  std::size_t idx = 0;
  char scratch[textconv::kMaxDoubleChars] = {};
  std::string string_scratch;

  void rewrite_int(std::int32_t v) {
    const int len = textconv::write_i32(scratch, v);
    tmpl.rewrite_value(idx, scratch, static_cast<std::uint32_t>(len));
  }
  void rewrite_int64(std::int64_t v) {
    const int len = textconv::write_i64(scratch, v);
    tmpl.rewrite_value(idx, scratch, static_cast<std::uint32_t>(len));
  }
  void rewrite_double(double v) {
    const int len = textconv::write_double(scratch, v);
    tmpl.rewrite_value(idx, scratch, static_cast<std::uint32_t>(len));
  }
  void rewrite_bool(bool v) {
    const std::string_view text = v ? "true" : "false";
    tmpl.rewrite_value(idx, text.data(),
                       static_cast<std::uint32_t>(text.size()));
  }
  void rewrite_string(const std::string& v) {
    string_scratch.clear();
    xml::escape_append(string_scratch, v);
    tmpl.rewrite_value(idx, string_scratch.data(),
                       static_cast<std::uint32_t>(string_scratch.size()));
  }
};

/// Compare-against-shadow visitor: rewrites on change, refreshes the shadow.
struct CompareVisitor : RewriteContext {
  explicit CompareVisitor(MessageTemplate& t) : RewriteContext(t) {}

  void on_int(std::int32_t v) {
    DutEntry& e = tmpl.dut()[idx];
    if (e.shadow.i != v) {
      rewrite_int(v);
      e.shadow.i = v;
    }
    ++idx;
  }
  void on_int64(std::int64_t v) {
    DutEntry& e = tmpl.dut()[idx];
    if (e.shadow.i != v) {
      rewrite_int64(v);
      e.shadow.i = v;
    }
    ++idx;
  }
  void on_double(double v) {
    DutEntry& e = tmpl.dut()[idx];
    // Bitwise comparison: distinguishes -0.0 from 0.0 and handles NaN.
    if (std::bit_cast<std::uint64_t>(e.shadow.d) !=
        std::bit_cast<std::uint64_t>(v)) {
      rewrite_double(v);
      e.shadow.d = v;
    }
    ++idx;
  }
  void on_bool(bool v) {
    DutEntry& e = tmpl.dut()[idx];
    if ((e.shadow.i != 0) != v) {
      rewrite_bool(v);
      e.shadow.i = v ? 1 : 0;
    }
    ++idx;
  }
  void on_string(const std::string& v) {
    DutEntry& e = tmpl.dut()[idx];
    if (tmpl.dut().shadow_string(e.shadow_string) != v) {
      rewrite_string(v);
      tmpl.dut().shadow_string(e.shadow_string) = v;
    }
    ++idx;
  }
};

/// Dirty-bit visitor: rewrites entries whose bit is set, no comparisons.
struct DirtyVisitor : RewriteContext {
  explicit DirtyVisitor(MessageTemplate& t) : RewriteContext(t) {}

  bool take_dirty() {
    if (!tmpl.dut()[idx].dirty) return false;
    tmpl.dut().clear_dirty(idx);
    return true;
  }

  void on_int(std::int32_t v) {
    if (take_dirty()) {
      rewrite_int(v);
      tmpl.dut()[idx].shadow.i = v;
    }
    ++idx;
  }
  void on_int64(std::int64_t v) {
    if (take_dirty()) {
      rewrite_int64(v);
      tmpl.dut()[idx].shadow.i = v;
    }
    ++idx;
  }
  void on_double(double v) {
    if (take_dirty()) {
      rewrite_double(v);
      tmpl.dut()[idx].shadow.d = v;
    }
    ++idx;
  }
  void on_bool(bool v) {
    if (take_dirty()) {
      rewrite_bool(v);
      tmpl.dut()[idx].shadow.i = v ? 1 : 0;
    }
    ++idx;
  }
  void on_string(const std::string& v) {
    if (take_dirty()) {
      rewrite_string(v);
      tmpl.dut().shadow_string(tmpl.dut()[idx].shadow_string) = v;
    }
    ++idx;
  }
};

UpdateResult finish(MessageTemplate& tmpl, const TemplateStats& before) {
  const TemplateStats& after = tmpl.stats();
  UpdateResult result;
  result.values_rewritten = after.value_rewrites - before.value_rewrites;
  result.tag_shifts = after.tag_shifts - before.tag_shifts;
  result.expansions = after.expansions - before.expansions;
  result.steals = after.steals - before.steals;
  if (result.values_rewritten == 0) {
    result.match = MatchKind::kContentMatch;
  } else if (result.expansions == 0) {
    result.match = MatchKind::kPerfectStructural;
  } else {
    result.match = MatchKind::kPartialStructural;
  }
  return result;
}

}  // namespace

const char* match_kind_name(MatchKind kind) noexcept {
  switch (kind) {
    case MatchKind::kFirstTime: return "first-time send";
    case MatchKind::kContentMatch: return "message content match";
    case MatchKind::kPerfectStructural: return "perfect structural match";
    case MatchKind::kPartialStructural: return "partial structural match";
  }
  return "unknown";
}

UpdateResult update_template(MessageTemplate& tmpl, const soap::RpcCall& call) {
  BSOAP_ASSERT(tmpl.signature == call.structure_signature());
  const TemplateStats before = tmpl.stats();
  CompareVisitor visitor(tmpl);
  for_each_leaf(call, visitor);
  BSOAP_ASSERT(visitor.idx == tmpl.dut().size());
  return finish(tmpl, before);
}

UpdateResult update_dirty_fields(MessageTemplate& tmpl,
                                 const soap::RpcCall& call) {
  BSOAP_ASSERT(tmpl.signature == call.structure_signature());
  const TemplateStats before = tmpl.stats();
  DirtyVisitor visitor(tmpl);
  for_each_leaf(call, visitor);
  BSOAP_ASSERT(visitor.idx == tmpl.dut().size());
  return finish(tmpl, before);
}

}  // namespace bsoap::core
