#include "core/diff_serializer.hpp"

#include <bit>
#include <chrono>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

#include "core/bulk_scan.hpp"
#include "core/leaf_walk.hpp"
#include "core/update_pool.hpp"
#include "textconv/dtoa.hpp"
#include "textconv/itoa.hpp"
#include "textconv/widths.hpp"
#include "xml/escape.hpp"

namespace bsoap::core {
namespace {

using Clock = std::chrono::steady_clock;

std::int64_t ns_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
}

/// Element/leaf index range [first, second).
using RunRange = std::pair<std::uint32_t, std::uint32_t>;

struct BulkTelemetry {
  std::uint64_t leaves = 0;
  std::uint64_t runs = 0;
  std::int64_t scan_ns = 0;
  std::int64_t rewrite_ns = 0;

  void add(const BulkTelemetry& rhs) {
    leaves += rhs.leaves;
    runs += rhs.runs;
    scan_ns += rhs.scan_ns;
    rewrite_ns += rhs.rewrite_ns;
  }
};

// The Mio plane is scanned with memcmp; padding bytes would make bitwise
// element comparison unsound.
static_assert(sizeof(soap::Mio) == 2 * sizeof(std::int32_t) + sizeof(double),
              "Mio must have no padding for plane memcmp scanning");

/// True when no value of the segment's element type(s) can outgrow its
/// field — the precondition for updating the segment off the main thread
/// (expansion renumbers positions and may realloc/split chunks).
///
/// The cached width minima go stale only when a steal shrinks a donor field
/// (expansions only ever widen), so the cache is keyed on the steal counter.
bool guaranteed_fit(const MessageTemplate& tmpl, const ArraySegment& seg) {
  const std::uint64_t epoch = tmpl.stats().steals + 1;
  if (seg.width_epoch != epoch) {
    std::uint32_t min_int = 0xffffffffu;
    std::uint32_t min_double = 0xffffffffu;
    const DutTable& dut = tmpl.dut();
    const std::size_t end = seg.first_leaf + seg.leaf_count();
    for (std::size_t i = seg.first_leaf; i < end; ++i) {
      const DutEntry& e = dut[i];
      if (e.type->type == LeafType::kDouble) {
        min_double = std::min(min_double, e.field_width);
      } else {
        min_int = std::min(min_int, e.field_width);
      }
    }
    seg.min_int_width = min_int;
    seg.min_double_width = min_double;
    seg.width_epoch = epoch;
  }
  if (seg.kind != ArraySegment::Kind::kDouble &&
      seg.min_int_width < static_cast<std::uint32_t>(textconv::kMaxInt32Chars)) {
    return false;
  }
  if (seg.kind != ArraySegment::Kind::kInt32 &&
      seg.min_double_width <
          static_cast<std::uint32_t>(textconv::kMaxDoubleChars)) {
    return false;
  }
  return true;
}

/// Splits the segment's element range at backing-chunk transitions (leaf
/// chunks are nondecreasing in document order, so each transition is found
/// by binary search) and groups the chunk-aligned intervals into at most
/// `max_parts` ranges of roughly equal element count. Returns an empty or
/// single-part vector when the segment occupies one chunk.
std::vector<RunRange> partition_segment(const MessageTemplate& tmpl,
                                        const ArraySegment& seg,
                                        std::size_t max_parts) {
  const DutTable& dut = tmpl.dut();
  const std::uint32_t stride = seg.leaves_per_elem();
  const auto chunk_of = [&](std::uint32_t e) {
    return dut[seg.first_leaf + e * stride].pos.chunk;
  };
  std::vector<std::uint32_t> bounds{0};
  std::uint32_t e = 0;
  while (e < seg.elem_count) {
    const std::uint32_t c = chunk_of(e);
    std::uint32_t lo = e + 1;
    std::uint32_t hi = seg.elem_count;
    while (lo < hi) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      if (chunk_of(mid) > c) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    if (lo < seg.elem_count) bounds.push_back(lo);
    e = lo;
  }
  bounds.push_back(seg.elem_count);

  std::vector<RunRange> parts;
  if (bounds.size() <= 2 || max_parts <= 1) return parts;
  const std::uint32_t target = static_cast<std::uint32_t>(
      (seg.elem_count + max_parts - 1) / max_parts);
  std::uint32_t begin = 0;
  for (std::size_t b = 1; b + 1 < bounds.size(); ++b) {
    if (bounds[b] - begin >= target) {
      parts.emplace_back(begin, bounds[b]);
      begin = bounds[b];
    }
  }
  parts.emplace_back(begin, seg.elem_count);
  return parts;
}

// --- per-part segment updaters ---------------------------------------------
//
// Each updates the element subrange [eb, ee) of one segment: scan for dirty
// runs, rewrite them through the RunWriter cursor, and refresh both the SoA
// plane and the per-entry shadow union so either update mode can follow the
// other. Counters land in whatever stats block the RunWriter carries.

void compare_double_part(MessageTemplate& tmpl, const ArraySegment& seg,
                         const double* next, std::uint32_t eb, std::uint32_t ee,
                         MessageTemplate::RunWriter& w,
                         std::vector<RunRange>& runs, BulkTelemetry& tm) {
  DutTable& dut = tmpl.dut();
  double* shadow = dut.double_plane(seg);
  const auto t0 = Clock::now();
  runs.clear();
  bulk::for_each_differing_run(
      next + eb, shadow + eb, ee - eb, [&](std::size_t b, std::size_t e) {
        runs.emplace_back(eb + static_cast<std::uint32_t>(b),
                          eb + static_cast<std::uint32_t>(e));
      });
  const auto t1 = Clock::now();
  for (const RunRange& r : runs) {
    for (std::uint32_t k = r.first; k < r.second; ++k) {
      w.rewrite_double(seg.first_leaf + k, next[k]);
      dut[seg.first_leaf + k].shadow.d = next[k];
    }
    std::memcpy(shadow + r.first, next + r.first,
                (r.second - r.first) * sizeof(double));
  }
  tm.leaves += ee - eb;
  tm.runs += runs.size();
  tm.scan_ns += ns_between(t0, t1);
  tm.rewrite_ns += ns_between(t1, Clock::now());
}

void compare_int_part(MessageTemplate& tmpl, const ArraySegment& seg,
                      const std::int32_t* next, std::uint32_t eb,
                      std::uint32_t ee, MessageTemplate::RunWriter& w,
                      std::vector<RunRange>& runs, BulkTelemetry& tm) {
  DutTable& dut = tmpl.dut();
  std::int32_t* shadow = dut.int_plane(seg);
  const auto t0 = Clock::now();
  runs.clear();
  bulk::for_each_differing_run(
      next + eb, shadow + eb, ee - eb, [&](std::size_t b, std::size_t e) {
        runs.emplace_back(eb + static_cast<std::uint32_t>(b),
                          eb + static_cast<std::uint32_t>(e));
      });
  const auto t1 = Clock::now();
  for (const RunRange& r : runs) {
    for (std::uint32_t k = r.first; k < r.second; ++k) {
      w.rewrite_i32(seg.first_leaf + k, next[k]);
      dut[seg.first_leaf + k].shadow.i = next[k];
    }
    std::memcpy(shadow + r.first, next + r.first,
                (r.second - r.first) * sizeof(std::int32_t));
  }
  tm.leaves += ee - eb;
  tm.runs += runs.size();
  tm.scan_ns += ns_between(t0, t1);
  tm.rewrite_ns += ns_between(t1, Clock::now());
}

void compare_mio_part(MessageTemplate& tmpl, const ArraySegment& seg,
                      const soap::Mio* next, std::uint32_t eb, std::uint32_t ee,
                      MessageTemplate::RunWriter& w,
                      std::vector<RunRange>& runs, BulkTelemetry& tm) {
  DutTable& dut = tmpl.dut();
  soap::Mio* shadow = dut.mio_plane(seg);
  const auto t0 = Clock::now();
  runs.clear();
  bulk::for_each_differing_run(
      next + eb, shadow + eb, ee - eb, [&](std::size_t b, std::size_t e) {
        runs.emplace_back(eb + static_cast<std::uint32_t>(b),
                          eb + static_cast<std::uint32_t>(e));
      });
  const auto t1 = Clock::now();
  for (const RunRange& r : runs) {
    for (std::uint32_t k = r.first; k < r.second; ++k) {
      // Per-field compare within the dirty element, matching what the
      // per-leaf visitor rewrites (and its counters).
      const soap::Mio& nv = next[k];
      soap::Mio& sv = shadow[k];
      const std::uint32_t leaf = seg.first_leaf + 3 * k;
      if (nv.x != sv.x) {
        w.rewrite_i32(leaf, nv.x);
        dut[leaf].shadow.i = nv.x;
      }
      if (nv.y != sv.y) {
        w.rewrite_i32(leaf + 1, nv.y);
        dut[leaf + 1].shadow.i = nv.y;
      }
      if (std::bit_cast<std::uint64_t>(nv.value) !=
          std::bit_cast<std::uint64_t>(sv.value)) {
        w.rewrite_double(leaf + 2, nv.value);
        dut[leaf + 2].shadow.d = nv.value;
      }
      sv = nv;
    }
  }
  tm.leaves += static_cast<std::uint64_t>(ee - eb) * 3;
  tm.runs += runs.size();
  tm.scan_ns += ns_between(t0, t1);
  tm.rewrite_ns += ns_between(t1, Clock::now());
}

void dirty_double_part(MessageTemplate& tmpl, const ArraySegment& seg,
                       const double* next, std::uint32_t eb, std::uint32_t ee,
                       MessageTemplate::RunWriter& w,
                       std::vector<RunRange>& runs, BulkTelemetry& tm) {
  DutTable& dut = tmpl.dut();
  double* shadow = dut.double_plane(seg);
  const auto t0 = Clock::now();
  runs.clear();
  runs.reserve(dut.dirty_count());
  bulk::for_each_set_run(dut.dirty_words(), seg.first_leaf + eb,
                         seg.first_leaf + ee,
                         [&](std::size_t b, std::size_t e) {
                           runs.emplace_back(static_cast<std::uint32_t>(b),
                                             static_cast<std::uint32_t>(e));
                         });
  const auto t1 = Clock::now();
  for (const RunRange& r : runs) {
    for (std::uint32_t i = r.first; i < r.second; ++i) {
      const std::uint32_t k = i - seg.first_leaf;
      w.rewrite_double(i, next[k]);
      dut[i].shadow.d = next[k];
      shadow[k] = next[k];
    }
  }
  tm.leaves += ee - eb;
  tm.runs += runs.size();
  tm.scan_ns += ns_between(t0, t1);
  tm.rewrite_ns += ns_between(t1, Clock::now());
}

void dirty_int_part(MessageTemplate& tmpl, const ArraySegment& seg,
                    const std::int32_t* next, std::uint32_t eb,
                    std::uint32_t ee, MessageTemplate::RunWriter& w,
                    std::vector<RunRange>& runs, BulkTelemetry& tm) {
  DutTable& dut = tmpl.dut();
  std::int32_t* shadow = dut.int_plane(seg);
  const auto t0 = Clock::now();
  runs.clear();
  runs.reserve(dut.dirty_count());
  bulk::for_each_set_run(dut.dirty_words(), seg.first_leaf + eb,
                         seg.first_leaf + ee,
                         [&](std::size_t b, std::size_t e) {
                           runs.emplace_back(static_cast<std::uint32_t>(b),
                                             static_cast<std::uint32_t>(e));
                         });
  const auto t1 = Clock::now();
  for (const RunRange& r : runs) {
    for (std::uint32_t i = r.first; i < r.second; ++i) {
      const std::uint32_t k = i - seg.first_leaf;
      w.rewrite_i32(i, next[k]);
      dut[i].shadow.i = next[k];
      shadow[k] = next[k];
    }
  }
  tm.leaves += ee - eb;
  tm.runs += runs.size();
  tm.scan_ns += ns_between(t0, t1);
  tm.rewrite_ns += ns_between(t1, Clock::now());
}

void dirty_mio_part(MessageTemplate& tmpl, const ArraySegment& seg,
                    const soap::Mio* next, std::uint32_t eb, std::uint32_t ee,
                    MessageTemplate::RunWriter& w, std::vector<RunRange>& runs,
                    BulkTelemetry& tm) {
  DutTable& dut = tmpl.dut();
  soap::Mio* shadow = dut.mio_plane(seg);
  const auto t0 = Clock::now();
  runs.clear();
  runs.reserve(dut.dirty_count());
  bulk::for_each_set_run(dut.dirty_words(), seg.first_leaf + 3 * eb,
                         seg.first_leaf + 3 * ee,
                         [&](std::size_t b, std::size_t e) {
                           runs.emplace_back(static_cast<std::uint32_t>(b),
                                             static_cast<std::uint32_t>(e));
                         });
  const auto t1 = Clock::now();
  for (const RunRange& r : runs) {
    for (std::uint32_t i = r.first; i < r.second; ++i) {
      const std::uint32_t off = i - seg.first_leaf;
      const std::uint32_t k = off / 3;
      switch (off % 3) {
        case 0:
          w.rewrite_i32(i, next[k].x);
          dut[i].shadow.i = next[k].x;
          shadow[k].x = next[k].x;
          break;
        case 1:
          w.rewrite_i32(i, next[k].y);
          dut[i].shadow.i = next[k].y;
          shadow[k].y = next[k].y;
          break;
        default:
          w.rewrite_double(i, next[k].value);
          dut[i].shadow.d = next[k].value;
          shadow[k].value = next[k].value;
          break;
      }
    }
  }
  tm.leaves += static_cast<std::uint64_t>(ee - eb) * 3;
  tm.runs += runs.size();
  tm.scan_ns += ns_between(t0, t1);
  tm.rewrite_ns += ns_between(t1, Clock::now());
}

/// Runs `part(eb, ee, writer, runs, telemetry)` chunk-partitioned on the
/// shared pool when the segment is large, multi-chunk, and provably
/// expansion-free (worker writes then touch disjoint chunks and disjoint DUT
/// entries; counters accumulate in worker-local stats merged after the
/// join). Returns false without calling `part` when the segment is not
/// eligible; `merged_runs` then holds every part's dirty runs for the
/// caller's serial bit clear.
template <typename PartFn>
bool parallel_segment(MessageTemplate& tmpl, const ArraySegment& seg,
                      std::vector<RunRange>& merged_runs, BulkTelemetry& tm,
                      PartFn&& part) {
  const BulkUpdateConfig& cfg = tmpl.config().bulk;
  // An armed recovery journal records fields single-threaded; the serial
  // paths run instead while one is attached.
  if (!cfg.parallel || tmpl.journal() != nullptr ||
      seg.leaf_count() < cfg.parallel_min_leaves ||
      !guaranteed_fit(tmpl, seg)) {
    return false;
  }
  UpdatePool& pool = UpdatePool::instance();
  const std::vector<RunRange> parts =
      partition_segment(tmpl, seg, pool.concurrency());
  if (parts.size() <= 1) return false;
  std::vector<TemplateStats> part_stats(parts.size());
  std::vector<BulkTelemetry> part_tm(parts.size());
  std::vector<std::vector<RunRange>> part_runs(parts.size());
  pool.run(parts.size(), [&](std::size_t p) {
    MessageTemplate::RunWriter w(tmpl, part_stats[p]);
    part(parts[p].first, parts[p].second, w, part_runs[p], part_tm[p]);
  });
  merged_runs.clear();
  for (std::size_t p = 0; p < parts.size(); ++p) {
    tmpl.stats().add(part_stats[p]);
    tm.add(part_tm[p]);
    merged_runs.insert(merged_runs.end(), part_runs[p].begin(),
                       part_runs[p].end());
  }
  return true;
}

/// Serial fallback used by the compare visitor: one part covering the whole
/// segment, counters straight into the template's stats block.
template <typename PartFn>
void update_segment(MessageTemplate& tmpl, const ArraySegment& seg,
                    std::vector<RunRange>& serial_runs, BulkTelemetry& tm,
                    PartFn&& part) {
  if (parallel_segment(tmpl, seg, serial_runs, tm, part)) return;
  MessageTemplate::RunWriter w(tmpl, tmpl.stats());
  part(0, seg.elem_count, w, serial_runs, tm);
}

/// Serial dirty-mode fast path: a single pass over the mask words of
/// [begin, end) that rewrites each set leaf and clears the word it just
/// drained. The two-pass run collection exists only for the parallel path
/// (workers must not write shared mask words); serially, fusing the passes
/// skips the run vector and the separate clear entirely. The telemetry run
/// count falls out of a bit trick: a run starts at every set bit whose
/// predecessor — including the previous word's top bit — is clear.
template <typename RewriteLeaf>
void fused_dirty_scan(DutTable& dut, std::size_t begin, std::size_t end,
                      BulkTelemetry& tm, RewriteLeaf&& rewrite_leaf) {
  if (begin >= end) return;
  const std::uint64_t* words = dut.dirty_words();
  const std::size_t wb = begin >> 6;
  const std::size_t we = (end + 63) >> 6;
  std::uint64_t prev_top = 0;
  for (std::size_t w = wb; w < we; ++w) {
    std::uint64_t bits = words[w];
    if (w == wb && (begin & 63) != 0) {
      bits &= ~std::uint64_t{0} << (begin & 63);
    }
    if (w == we - 1 && (end & 63) != 0) {
      bits &= ~std::uint64_t{0} >> (64 - (end & 63));
    }
    if (bits == 0) {
      prev_top = 0;
      continue;
    }
    tm.runs += static_cast<std::uint64_t>(
        std::popcount(bits & ~((bits << 1) | prev_top)));
    prev_top = bits >> 63;
    for (std::uint64_t rem = bits; rem != 0; rem &= rem - 1) {
      rewrite_leaf((w << 6) + static_cast<std::size_t>(std::countr_zero(rem)));
    }
    dut.clear_dirty_word(w, bits);
  }
}

// Fused serial dirty updaters, one per segment kind. The whole pass is
// charged to rewrite_ns (there is no separate scan to time).

void dirty_double_serial(MessageTemplate& tmpl, const ArraySegment& seg,
                         const double* next, BulkTelemetry& tm) {
  DutTable& dut = tmpl.dut();
  double* shadow = dut.double_plane(seg);
  MessageTemplate::RunWriter w(tmpl, tmpl.stats());
  const auto t0 = Clock::now();
  fused_dirty_scan(
      dut, seg.first_leaf, seg.first_leaf + seg.leaf_count(), tm,
      [&](std::size_t i) {
        const std::size_t k = i - seg.first_leaf;
        w.rewrite_double(i, next[k]);
        dut[i].shadow.d = next[k];
        shadow[k] = next[k];
      });
  tm.leaves += seg.leaf_count();
  tm.rewrite_ns += ns_between(t0, Clock::now());
}

void dirty_int_serial(MessageTemplate& tmpl, const ArraySegment& seg,
                      const std::int32_t* next, BulkTelemetry& tm) {
  DutTable& dut = tmpl.dut();
  std::int32_t* shadow = dut.int_plane(seg);
  MessageTemplate::RunWriter w(tmpl, tmpl.stats());
  const auto t0 = Clock::now();
  fused_dirty_scan(
      dut, seg.first_leaf, seg.first_leaf + seg.leaf_count(), tm,
      [&](std::size_t i) {
        const std::size_t k = i - seg.first_leaf;
        w.rewrite_i32(i, next[k]);
        dut[i].shadow.i = next[k];
        shadow[k] = next[k];
      });
  tm.leaves += seg.leaf_count();
  tm.rewrite_ns += ns_between(t0, Clock::now());
}

void dirty_mio_serial(MessageTemplate& tmpl, const ArraySegment& seg,
                      const soap::Mio* next, BulkTelemetry& tm) {
  DutTable& dut = tmpl.dut();
  soap::Mio* shadow = dut.mio_plane(seg);
  MessageTemplate::RunWriter w(tmpl, tmpl.stats());
  const auto t0 = Clock::now();
  fused_dirty_scan(
      dut, seg.first_leaf, seg.first_leaf + seg.leaf_count(), tm,
      [&](std::size_t i) {
        const std::size_t off = i - seg.first_leaf;
        const std::size_t k = off / 3;
        switch (off % 3) {
          case 0:
            w.rewrite_i32(i, next[k].x);
            dut[i].shadow.i = next[k].x;
            shadow[k].x = next[k].x;
            break;
          case 1:
            w.rewrite_i32(i, next[k].y);
            dut[i].shadow.i = next[k].y;
            shadow[k].y = next[k].y;
            break;
          default:
            w.rewrite_double(i, next[k].value);
            dut[i].shadow.d = next[k].value;
            shadow[k].value = next[k].value;
            break;
        }
      });
  tm.leaves += seg.leaf_count();
  tm.rewrite_ns += ns_between(t0, Clock::now());
}

/// Shared field-rewrite plumbing for both visitors.
struct RewriteContext {
  explicit RewriteContext(MessageTemplate& t) : tmpl(t) {}

  MessageTemplate& tmpl;
  std::size_t idx = 0;
  char scratch[textconv::kMaxDoubleChars] = {};
  std::string string_scratch;

  // Bulk path state: segments were recorded in document order, so a cursor
  // suffices to pair each array parameter with its descriptor.
  std::size_t seg_cursor = 0;
  std::vector<RunRange> runs_scratch;
  BulkTelemetry bulk;

  /// The segment for the array parameter starting at the current leaf, or
  /// nullptr when none was recorded (small array, bulk disabled).
  const ArraySegment* match_segment(ArraySegment::Kind kind, std::size_t n) {
    const std::vector<ArraySegment>& segs = tmpl.dut().segments();
    if (seg_cursor >= segs.size()) return nullptr;
    const ArraySegment& seg = segs[seg_cursor];
    if (seg.first_leaf != idx || seg.kind != kind || seg.elem_count != n) {
      return nullptr;
    }
    ++seg_cursor;
    return &seg;
  }

  void rewrite_int(std::int32_t v) {
    const int len = textconv::write_i32(scratch, v);
    tmpl.rewrite_value(idx, scratch, static_cast<std::uint32_t>(len));
  }
  void rewrite_int64(std::int64_t v) {
    const int len = textconv::write_i64(scratch, v);
    tmpl.rewrite_value(idx, scratch, static_cast<std::uint32_t>(len));
  }
  void rewrite_double(double v) {
    const int len = textconv::write_double(scratch, v);
    tmpl.rewrite_value(idx, scratch, static_cast<std::uint32_t>(len));
  }
  void rewrite_bool(bool v) {
    const std::string_view text = v ? "true" : "false";
    tmpl.rewrite_value(idx, text.data(),
                       static_cast<std::uint32_t>(text.size()));
  }
  void rewrite_string(const std::string& v) {
    string_scratch.clear();
    xml::escape_append(string_scratch, v);
    tmpl.rewrite_value(idx, string_scratch.data(),
                       static_cast<std::uint32_t>(string_scratch.size()));
  }
};

/// Compare-against-shadow visitor: rewrites on change, refreshes the shadow.
struct CompareVisitor : RewriteContext {
  explicit CompareVisitor(MessageTemplate& t) : RewriteContext(t) {}

  void on_int(std::int32_t v) {
    DutEntry& e = tmpl.dut()[idx];
    if (e.shadow.i != v) {
      rewrite_int(v);
      e.shadow.i = v;
    }
    ++idx;
  }
  void on_int64(std::int64_t v) {
    DutEntry& e = tmpl.dut()[idx];
    if (e.shadow.i != v) {
      rewrite_int64(v);
      e.shadow.i = v;
    }
    ++idx;
  }
  void on_double(double v) {
    DutEntry& e = tmpl.dut()[idx];
    // Bitwise comparison: distinguishes -0.0 from 0.0 and handles NaN.
    if (std::bit_cast<std::uint64_t>(e.shadow.d) !=
        std::bit_cast<std::uint64_t>(v)) {
      rewrite_double(v);
      e.shadow.d = v;
    }
    ++idx;
  }
  void on_bool(bool v) {
    DutEntry& e = tmpl.dut()[idx];
    if ((e.shadow.i != 0) != v) {
      rewrite_bool(v);
      e.shadow.i = v ? 1 : 0;
    }
    ++idx;
  }
  void on_string(const std::string& v) {
    DutEntry& e = tmpl.dut()[idx];
    if (tmpl.dut().shadow_string(e.shadow_string) != v) {
      rewrite_string(v);
      tmpl.dut().shadow_string(e.shadow_string) = v;
    }
    ++idx;
  }

  bool on_double_array(std::span<const double> v) {
    const ArraySegment* seg =
        match_segment(ArraySegment::Kind::kDouble, v.size());
    if (seg == nullptr) return false;
    update_segment(tmpl, *seg, runs_scratch, bulk,
                   [&](std::uint32_t eb, std::uint32_t ee,
                       MessageTemplate::RunWriter& w,
                       std::vector<RunRange>& runs, BulkTelemetry& tm) {
                     compare_double_part(tmpl, *seg, v.data(), eb, ee, w, runs,
                                         tm);
                   });
    idx += seg->leaf_count();
    return true;
  }
  bool on_int_array(std::span<const std::int32_t> v) {
    const ArraySegment* seg =
        match_segment(ArraySegment::Kind::kInt32, v.size());
    if (seg == nullptr) return false;
    update_segment(tmpl, *seg, runs_scratch, bulk,
                   [&](std::uint32_t eb, std::uint32_t ee,
                       MessageTemplate::RunWriter& w,
                       std::vector<RunRange>& runs, BulkTelemetry& tm) {
                     compare_int_part(tmpl, *seg, v.data(), eb, ee, w, runs,
                                      tm);
                   });
    idx += seg->leaf_count();
    return true;
  }
  bool on_mio_array(std::span<const soap::Mio> v) {
    const ArraySegment* seg = match_segment(ArraySegment::Kind::kMio, v.size());
    if (seg == nullptr) return false;
    update_segment(tmpl, *seg, runs_scratch, bulk,
                   [&](std::uint32_t eb, std::uint32_t ee,
                       MessageTemplate::RunWriter& w,
                       std::vector<RunRange>& runs, BulkTelemetry& tm) {
                     compare_mio_part(tmpl, *seg, v.data(), eb, ee, w, runs,
                                      tm);
                   });
    idx += seg->leaf_count();
    return true;
  }
};

/// Dirty-bit visitor: rewrites entries whose bit is set, no comparisons.
struct DirtyVisitor : RewriteContext {
  explicit DirtyVisitor(MessageTemplate& t) : RewriteContext(t) {}

  bool take_dirty() {
    if (!tmpl.dut().is_dirty(idx)) return false;
    tmpl.dut().clear_dirty(idx);
    return true;
  }

  void on_int(std::int32_t v) {
    if (take_dirty()) {
      rewrite_int(v);
      tmpl.dut()[idx].shadow.i = v;
    }
    ++idx;
  }
  void on_int64(std::int64_t v) {
    if (take_dirty()) {
      rewrite_int64(v);
      tmpl.dut()[idx].shadow.i = v;
    }
    ++idx;
  }
  void on_double(double v) {
    if (take_dirty()) {
      rewrite_double(v);
      tmpl.dut()[idx].shadow.d = v;
    }
    ++idx;
  }
  void on_bool(bool v) {
    if (take_dirty()) {
      rewrite_bool(v);
      tmpl.dut()[idx].shadow.i = v ? 1 : 0;
    }
    ++idx;
  }
  void on_string(const std::string& v) {
    if (take_dirty()) {
      rewrite_string(v);
      tmpl.dut().shadow_string(tmpl.dut()[idx].shadow_string) = v;
    }
    ++idx;
  }

  /// Dirty bits are only read during the parallel segment update; the clear
  /// runs afterwards on this thread over the merged per-part runs, so it is
  /// O(dirty words), not a pass over the segment. The serial fallback fuses
  /// rewriting and clearing into one pass over the mask instead.
  void finish_parallel_segment() { tmpl.dut().clear_dirty_runs(runs_scratch); }

  bool on_double_array(std::span<const double> v) {
    const ArraySegment* seg =
        match_segment(ArraySegment::Kind::kDouble, v.size());
    if (seg == nullptr) return false;
    if (parallel_segment(tmpl, *seg, runs_scratch, bulk,
                         [&](std::uint32_t eb, std::uint32_t ee,
                             MessageTemplate::RunWriter& w,
                             std::vector<RunRange>& runs, BulkTelemetry& tm) {
                           dirty_double_part(tmpl, *seg, v.data(), eb, ee, w,
                                             runs, tm);
                         })) {
      finish_parallel_segment();
    } else {
      dirty_double_serial(tmpl, *seg, v.data(), bulk);
    }
    idx += seg->leaf_count();
    return true;
  }
  bool on_int_array(std::span<const std::int32_t> v) {
    const ArraySegment* seg =
        match_segment(ArraySegment::Kind::kInt32, v.size());
    if (seg == nullptr) return false;
    if (parallel_segment(tmpl, *seg, runs_scratch, bulk,
                         [&](std::uint32_t eb, std::uint32_t ee,
                             MessageTemplate::RunWriter& w,
                             std::vector<RunRange>& runs, BulkTelemetry& tm) {
                           dirty_int_part(tmpl, *seg, v.data(), eb, ee, w, runs,
                                          tm);
                         })) {
      finish_parallel_segment();
    } else {
      dirty_int_serial(tmpl, *seg, v.data(), bulk);
    }
    idx += seg->leaf_count();
    return true;
  }
  bool on_mio_array(std::span<const soap::Mio> v) {
    const ArraySegment* seg = match_segment(ArraySegment::Kind::kMio, v.size());
    if (seg == nullptr) return false;
    if (parallel_segment(tmpl, *seg, runs_scratch, bulk,
                         [&](std::uint32_t eb, std::uint32_t ee,
                             MessageTemplate::RunWriter& w,
                             std::vector<RunRange>& runs, BulkTelemetry& tm) {
                           dirty_mio_part(tmpl, *seg, v.data(), eb, ee, w, runs,
                                          tm);
                         })) {
      finish_parallel_segment();
    } else {
      dirty_mio_serial(tmpl, *seg, v.data(), bulk);
    }
    idx += seg->leaf_count();
    return true;
  }
};

UpdateResult finish(MessageTemplate& tmpl, const TemplateStats& before,
                    const BulkTelemetry& bulk) {
  const TemplateStats& after = tmpl.stats();
  UpdateResult result;
  result.values_rewritten = after.value_rewrites - before.value_rewrites;
  result.tag_shifts = after.tag_shifts - before.tag_shifts;
  result.expansions = after.expansions - before.expansions;
  result.steals = after.steals - before.steals;
  result.bulk_leaves = bulk.leaves;
  result.bulk_runs = bulk.runs;
  result.scan_ns = bulk.scan_ns;
  result.rewrite_ns = bulk.rewrite_ns;
  if (result.values_rewritten == 0) {
    result.match = MatchKind::kContentMatch;
  } else if (result.expansions == 0) {
    result.match = MatchKind::kPerfectStructural;
  } else {
    result.match = MatchKind::kPartialStructural;
  }
  return result;
}

bool use_bulk_walk(const MessageTemplate& tmpl) {
  return tmpl.config().bulk.enable && !tmpl.dut().segments().empty();
}

}  // namespace

const char* match_kind_name(MatchKind kind) noexcept {
  switch (kind) {
    case MatchKind::kFirstTime: return "first-time send";
    case MatchKind::kContentMatch: return "message content match";
    case MatchKind::kPerfectStructural: return "perfect structural match";
    case MatchKind::kPartialStructural: return "partial structural match";
  }
  return "unknown";
}

UpdateResult update_template(MessageTemplate& tmpl, const soap::RpcCall& call) {
  BSOAP_ASSERT(tmpl.signature == call.structure_signature());
  const TemplateStats before = tmpl.stats();
  CompareVisitor visitor(tmpl);
  if (use_bulk_walk(tmpl)) {
    for_each_leaf_bulk(call, visitor);
  } else {
    for_each_leaf(call, visitor);
  }
  BSOAP_ASSERT(visitor.idx == tmpl.dut().size());
  return finish(tmpl, before, visitor.bulk);
}

UpdateResult update_dirty_fields(MessageTemplate& tmpl,
                                 const soap::RpcCall& call) {
  BSOAP_ASSERT(tmpl.signature == call.structure_signature());
  const TemplateStats before = tmpl.stats();
  DirtyVisitor visitor(tmpl);
  if (use_bulk_walk(tmpl)) {
    for_each_leaf_bulk(call, visitor);
  } else {
    for_each_leaf(call, visitor);
  }
  BSOAP_ASSERT(visitor.idx == tmpl.dut().size());
  return finish(tmpl, before, visitor.bulk);
}

}  // namespace bsoap::core
