// Template sharing across endpoints (paper Section 6, future work).
//
// "For applications that send the same (or similar) data to different remote
// services, we plan to investigate the extent to which it would be
// beneficial for them to share message chunks across templates. This would
// allow serialization cost to be amortized across multiple sends to
// different Web Services."
//
// A MultiEndpointClient owns one shared TemplateStore and any number of
// transports: updating a template for endpoint A and then sending the same
// call to endpoint B reuses the already-serialized bytes (a content match on
// B even though B never saw the message before). Only the HTTP head — which
// is per-endpoint anyway — is rebuilt.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/diff_serializer.hpp"
#include "core/send_pipeline.hpp"
#include "core/template_store.hpp"
#include "net/transport.hpp"
#include "soap/value.hpp"

namespace bsoap::core {

class MultiEndpointClient {
 public:
  struct Config {
    TemplateConfig tmpl;
    std::size_t max_templates = 8;
  };

  explicit MultiEndpointClient(Config config)
      : config_(std::move(config)),
        pipeline_(SendPipeline::Options{config_.tmpl, /*differential=*/true,
                                        config_.max_templates,
                                        /*max_template_bytes=*/0,
                                        http::Framing::kContentLength}) {}
  MultiEndpointClient() : MultiEndpointClient(Config{}) {}

  /// Registers an endpoint; returns its index. The transport must outlive
  /// the client.
  std::size_t add_endpoint(net::Transport& transport,
                           std::string path = "/") {
    endpoints_.push_back(Endpoint{&transport, std::move(path)});
    return endpoints_.size() - 1;
  }

  std::size_t endpoint_count() const { return endpoints_.size(); }

  /// Sends `call` to one endpoint, reusing the SHARED template: the first
  /// send to any endpoint serializes; subsequent sends of the same content
  /// to any other endpoint are content matches.
  Result<SendReport> send_to(std::size_t endpoint, const soap::RpcCall& call) {
    BSOAP_ASSERT(endpoint < endpoints_.size());
    return pipeline_.send(call,
                          SendDestination{endpoints_[endpoint].transport,
                                          endpoints_[endpoint].path});
  }

  /// Broadcasts `call` to every endpoint: one serialization/update, N sends.
  Result<std::vector<SendReport>> broadcast(const soap::RpcCall& call) {
    std::vector<SendReport> reports;
    reports.reserve(endpoints_.size());
    for (std::size_t i = 0; i < endpoints_.size(); ++i) {
      Result<SendReport> report = send_to(i, call);
      if (!report.ok()) return report.error();
      reports.push_back(report.value());
    }
    return reports;
  }

  TemplateStore& store() { return pipeline_.store(); }

  /// The shared send path (one pipeline, one template store, N endpoints).
  SendPipeline& pipeline() { return pipeline_; }

 private:
  struct Endpoint {
    net::Transport* transport;
    std::string path;
  };

  Config config_;
  SendPipeline pipeline_;
  std::vector<Endpoint> endpoints_;
};

}  // namespace bsoap::core
