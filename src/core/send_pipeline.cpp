#include "core/send_pipeline.hpp"

#include <algorithm>

#include "common/timing.hpp"
#include "diffwire/wire_format.hpp"

namespace bsoap::core {
namespace {

/// DEFLATE window size: the dictionary a preset re-offer compresses against
/// (and the tail of the body recorded for the next generation).
constexpr std::size_t kDictTailBytes = 32 * 1024;

std::string_view dict_tail(std::string_view body) {
  if (body.size() <= kDictTailBytes) return body;
  return body.substr(body.size() - kDictTailBytes);
}

/// Times the stages only when an observer is installed: the unobserved hot
/// path pays no clock reads beyond one at construction.
class StageClock {
 public:
  explicit StageClock(SendObserver* observer) : observer_(observer) {}

  void lap(SendStage stage, std::size_t bytes) {
    if (observer_ == nullptr) return;
    observer_->on_stage(stage, watch_.elapsed_ns(), bytes);
    watch_.reset();
  }

 private:
  SendObserver* observer_;
  StopWatch watch_;
};

}  // namespace

const char* recovery_name(Recovery recovery) noexcept {
  switch (recovery) {
    case Recovery::kNone:
      return "none";
    case Recovery::kRolledBack:
      return "rolled-back";
    case Recovery::kInvalidated:
      return "invalidated";
  }
  return "?";
}

const char* send_stage_name(SendStage stage) noexcept {
  switch (stage) {
    case SendStage::kResolve:
      return "resolve";
    case SendStage::kUpdate:
      return "update";
    case SendStage::kFrame:
      return "frame";
    case SendStage::kWrite:
      return "write";
  }
  return "?";
}

SendPipeline::SendPipeline(Options options)
    : options_(std::move(options)),
      store_(options_.max_templates, options_.max_template_bytes) {}

template <typename Clock>
MessageTemplate* SendPipeline::resolve_and_update(const soap::RpcCall& call,
                                                  SendReport* report,
                                                  Clock& clock) {
  SendReport& r = *report;
  MessageTemplate* tmpl = nullptr;
  recovery_ctx_ = RecoveryContext::kNone;
  recovery_tmpl_ = nullptr;

  if (!options_.differential) {
    // Full-serialization mode reuses one scratch template so chunk
    // allocations stay warm (like gSOAP's reusable send buffer); resolution
    // never consults the store.
    clock.lap(SendStage::kResolve, 0);
    if (full_mode_scratch_ == nullptr) {
      full_mode_scratch_ = build_template(call, options_.tmpl);
    } else {
      rebuild_template(*full_mode_scratch_, call);
    }
    tmpl = full_mode_scratch_.get();
    r.match = MatchKind::kFirstTime;
    clock.lap(SendStage::kUpdate, tmpl->buffer().total_size());
  } else {
    const std::uint64_t signature = call.structure_signature();
    lease_ = template_source().checkout(signature);
    clock.lap(SendStage::kResolve, 0);
    if (!lease_) {
      lease_ = template_source().publish(build_template(call, options_.tmpl));
      tmpl = lease_.get();
      if (journal_ != nullptr) {
        // The fresh template enters the source as if the send completed; a
        // failed write must invalidate the lease (the peer's view is
        // unknowable).
        recovery_ctx_ = RecoveryContext::kFirstTime;
      }
      r.match = MatchKind::kFirstTime;
      clock.lap(SendStage::kUpdate, tmpl->buffer().total_size());
    } else {
      tmpl = lease_.get();
      if (journal_ != nullptr) {
        journal_->begin(*tmpl);
        recovery_ctx_ = RecoveryContext::kDiff;
        recovery_tmpl_ = tmpl;
      }
      const std::uint64_t before = tmpl->stats().bytes_rewritten;
      r.update = update_template(*tmpl, call);
      r.match = r.update.match;
      clock.lap(SendStage::kUpdate,
                static_cast<std::size_t>(tmpl->stats().bytes_rewritten - before));
    }
  }
  return tmpl;
}

Result<SendReport> SendPipeline::send(const soap::RpcCall& call,
                                      const SendDestination& dest) {
  SendReport report;
  StageClock clock(observer_);
  MessageTemplate* tmpl = resolve_and_update(call, &report, clock);
  const Status written =
      frame_and_write(*tmpl, call.method, dest, HeadKind::kRequest, &report);
  if (!written.ok()) {
    // With a journal armed the lease stays out until recover_failed_send()
    // decides rollback-and-return vs invalidate; without one, return the
    // replica now (a retrying sender without a journal gets no guarantees).
    if (recovery_ctx_ == RecoveryContext::kNone) lease_.release();
    return written.error();
  }
  if (journal_ != nullptr && journal_->armed()) journal_->commit(*tmpl);
  recovery_ctx_ = RecoveryContext::kNone;
  // Returning the lease folds the update's growth delta into the source's
  // byte accounting and enforces its budget after the bytes are on the wire
  // (a partial structural match may have grown the template past it).
  lease_.release();
  if (observer_ != nullptr) observer_->on_send(report);
  return report;
}

Result<SendReport> SendPipeline::send_response(const soap::RpcCall& call,
                                               const SendDestination& dest) {
  SendReport report;
  StageClock clock(observer_);
  MessageTemplate* tmpl = resolve_and_update(call, &report, clock);
  const Status written =
      frame_and_write(*tmpl, call.method, dest, HeadKind::kResponse, &report);
  if (!written.ok()) {
    if (recovery_ctx_ == RecoveryContext::kNone) lease_.release();
    return written.error();
  }
  if (journal_ != nullptr && journal_->armed()) journal_->commit(*tmpl);
  recovery_ctx_ = RecoveryContext::kNone;
  lease_.release();
  if (observer_ != nullptr) observer_->on_send(report);
  return report;
}

Result<SendReport> SendPipeline::send_tracked(MessageTemplate& tmpl,
                                              const soap::RpcCall& call,
                                              const SendDestination& dest) {
  SendReport report;
  StageClock clock(observer_);
  // The template is bound to the message: resolution is a no-op.
  clock.lap(SendStage::kResolve, 0);
  recovery_ctx_ = RecoveryContext::kNone;
  recovery_tmpl_ = nullptr;

  if (!tmpl.dut().any_dirty()) {
    // Paper Section 3.1: "If none of the dirty bits are set, the message
    // has not changed and can be resent as is."
    report.match = MatchKind::kContentMatch;
    clock.lap(SendStage::kUpdate, 0);
  } else {
    if (journal_ != nullptr) {
      journal_->begin(tmpl);
      recovery_ctx_ = RecoveryContext::kTracked;
      recovery_tmpl_ = &tmpl;
    }
    const std::uint64_t before = tmpl.stats().bytes_rewritten;
    report.update = update_dirty_fields(tmpl, call);
    report.match = report.update.match;
    clock.lap(SendStage::kUpdate,
              static_cast<std::size_t>(tmpl.stats().bytes_rewritten - before));
  }

  BSOAP_RETURN_IF_ERROR(
      frame_and_write(tmpl, call.method, dest, HeadKind::kRequest, &report));
  if (journal_ != nullptr && journal_->armed()) journal_->commit(tmpl);
  recovery_ctx_ = RecoveryContext::kNone;
  if (observer_ != nullptr) observer_->on_send(report);
  return report;
}

Recovery SendPipeline::recover_failed_send() {
  const RecoveryContext ctx = recovery_ctx_;
  MessageTemplate* tmpl = recovery_tmpl_;
  recovery_ctx_ = RecoveryContext::kNone;
  recovery_tmpl_ = nullptr;
  switch (ctx) {
    case RecoveryContext::kNone:
      return Recovery::kNone;
    case RecoveryContext::kFirstTime:
      // The freshly built replica's bytes may never have reached the peer.
      lease_.invalidate();
      return Recovery::kInvalidated;
    case RecoveryContext::kDiff: {
      BSOAP_ASSERT(journal_ != nullptr && journal_->armed());
      const bool untouched = journal_->empty();
      if (journal_->rollback(*tmpl)) {
        // Restored exactly: the replica is safe to return to the source.
        lease_.release();
        return untouched ? Recovery::kNone : Recovery::kRolledBack;
      }
      lease_.invalidate();
      return Recovery::kInvalidated;
    }
    case RecoveryContext::kTracked: {
      BSOAP_ASSERT(journal_ != nullptr && journal_->armed());
      const bool untouched = journal_->empty();
      if (journal_->rollback(*tmpl)) {
        return untouched ? Recovery::kNone : Recovery::kRolledBack;
      }
      // The caller owns the template; it must rebuild before reuse.
      return Recovery::kInvalidated;
    }
  }
  return Recovery::kNone;
}

std::size_t SendPipeline::build_patch_frame(MessageTemplate& tmpl,
                                            std::uint64_t wire_id,
                                            std::uint32_t epoch,
                                            SendReport* report,
                                            bool slice_body) {
  const buffer::ChunkedBuffer& buf = tmpl.buffer();

  patch_runs_.clear();
  if (report->match != MatchKind::kContentMatch) {
    // A BufPos is chunk-relative; absolute body offsets need the chunks'
    // base offsets. Prefix-sum every chunk (append_slices skips empty ones,
    // so slice order cannot be reused here).
    chunk_offsets_.clear();
    chunk_offsets_.reserve(buf.chunk_count());
    std::size_t running = 0;
    for (std::size_t i = 0; i < buf.chunk_count(); ++i) {
      chunk_offsets_.push_back(running);
      running += buf.chunk_view(i).size();
    }

    // The journal records every touched field in rewrite order, possibly
    // with repeats; ascending DUT index is document order, which is
    // ascending body offset — exactly what run merging wants.
    journal_->touched_fields(touched_scratch_);
    std::sort(touched_scratch_.begin(), touched_scratch_.end());
    touched_scratch_.erase(
        std::unique(touched_scratch_.begin(), touched_scratch_.end()),
        touched_scratch_.end());

    for (const std::uint32_t idx : touched_scratch_) {
      const DutEntry& e = tmpl.dut()[idx];
      const std::uint32_t abs = static_cast<std::uint32_t>(
          chunk_offsets_[e.pos.chunk] + e.pos.offset);
      const std::uint32_t len = e.field_width + e.close_tag_len;
      if (!patch_runs_.empty() &&
          patch_runs_.back().offset + patch_runs_.back().length == abs) {
        // Adjacent fields coalesce; read_at crosses chunk boundaries, so a
        // merged run only needs the first field's position.
        patch_runs_.back().length += len;
      } else {
        patch_runs_.push_back(PatchRunScratch{abs, len, e.pos});
      }
    }
  }

  std::uint64_t checksum = diffwire::kFnvOffset;
  for (std::size_t i = 0; i < buf.chunk_count(); ++i) {
    checksum = diffwire::fnv1a(buf.chunk_view(i), checksum);
  }

  diffwire::PatchHeader header;
  header.flags = patch_runs_.empty() ? diffwire::kFlagReplay : std::uint8_t{0};
  header.template_id = wire_id;
  header.epoch = epoch;
  header.run_count = static_cast<std::uint32_t>(patch_runs_.size());
  header.body_len = static_cast<std::uint32_t>(buf.total_size());
  header.checksum = checksum;

  patch_buf_.clear();
  diffwire::append_patch_header(patch_buf_, header);
  body_slices_.clear();
  std::size_t total = 0;
  if (!slice_body) {
    for (const PatchRunScratch& r : patch_runs_) {
      diffwire::append_run_header(patch_buf_, r.offset, r.length);
      const std::size_t at = patch_buf_.size();
      patch_buf_.resize(at + r.length);
      buf.read_at(r.pos, patch_buf_.data() + at, r.length);
    }
    total = patch_buf_.size();
    body_slices_.push_back(
        net::ConstSlice{patch_buf_.data(), patch_buf_.size()});
  } else {
    // Pass 1: every run header into patch_buf_ first — taking slices while
    // still appending would dangle them on a reallocation.
    patch_hdr_ends_.clear();
    patch_hdr_ends_.reserve(patch_runs_.size());
    for (const PatchRunScratch& r : patch_runs_) {
      diffwire::append_run_header(patch_buf_, r.offset, r.length);
      patch_hdr_ends_.push_back(patch_buf_.size());
    }
    total = patch_buf_.size();
    // Pass 2: interleave patch_buf_ segments with the runs' bytes read in
    // place from the template buffer, splitting at chunk boundaries. The
    // first segment carries the patch header along with run 0's header.
    std::size_t prev = 0;
    for (std::size_t i = 0; i < patch_runs_.size(); ++i) {
      const PatchRunScratch& r = patch_runs_[i];
      body_slices_.push_back(net::ConstSlice{patch_buf_.data() + prev,
                                             patch_hdr_ends_[i] - prev});
      prev = patch_hdr_ends_[i];
      std::size_t chunk = r.pos.chunk;
      std::size_t off = r.pos.offset;
      std::size_t n = r.length;
      total += n;
      while (n > 0) {
        const std::string_view view = buf.chunk_view(chunk);
        const std::size_t take = std::min<std::size_t>(n, view.size() - off);
        if (take > 0) {
          body_slices_.push_back(net::ConstSlice{view.data() + off, take});
        }
        n -= take;
        ++chunk;
        off = 0;
      }
    }
    if (patch_runs_.empty()) {  // replay frame: header only
      body_slices_.push_back(
          net::ConstSlice{patch_buf_.data(), patch_buf_.size()});
    }
  }

  report->patch_send = true;
  report->patch_replay = patch_runs_.empty();
  report->patch_runs = header.run_count;
  return total;
}

bool SendPipeline::encode_payload(http::ContentCoding coding,
                                  std::string_view raw, std::string_view dict,
                                  SendReport* report) {
  if (raw.size() < options_.coding_min_bytes) return false;
  StopWatch watch;
  if (coding == http::ContentCoding::kDeflatePreset) {
    deflate_stream_.preset(dict);
    coded_buf_ = compress::zlib_compress(deflate_stream_, raw);
  } else {
    coded_buf_ = http::coding_for(coding).encode(raw);
  }
  report->coding_ns += watch.elapsed_ns();
  if (coded_buf_.size() >= raw.size()) return false;  // identity fallback
  report->coding = coding;
  report->coding_bytes_saved += raw.size() - coded_buf_.size();
  return true;
}

Status SendPipeline::frame_and_write(MessageTemplate& tmpl,
                                     const std::string& method,
                                     const SendDestination& dest,
                                     HeadKind head_kind, SendReport* report) {
  BSOAP_ASSERT(dest.transport != nullptr);
  StageClock clock(observer_);

  const std::size_t envelope_bytes = tmpl.buffer().total_size();
  report->body_bytes_logical = envelope_bytes;

  const http::Framer& framing = framer();

  // Diff-wire: decide patch vs full+offer. A patch is sound only when the
  // receiver's pinned replica still matches byte positions — a content match
  // always, a perfect structural match only when the armed journal proves
  // the update moved nothing (the journal's records are then exactly the
  // dirty runs). Everything else falls back to a full send that re-offers.
  std::uint64_t wire_id = 0;
  bool offer = false;
  if (diffwire_ != nullptr && head_kind == HeadKind::kRequest) {
    wire_id = diffwire_->wire_id(tmpl.signature);
    std::uint32_t epoch = 0;
    const bool patch_safe =
        report->match == MatchKind::kContentMatch ||
        (report->match == MatchKind::kPerfectStructural &&
         journal_ != nullptr && journal_->armed() && !journal_->structural());
    if (patch_safe && diffwire_->should_patch(wire_id, &epoch)) {
      // With preset coding acked, the frame is flattened (no zero-copy
      // slices) so it can run through the compressor against the pin
      // generation's dictionary.
      const bool preset_ready =
          options_.coding == http::ContentCoding::kDeflatePreset &&
          diffwire_->coding_ready(wire_id);
      const bool slice_body =
          !preset_ready && &framing == &http::content_length_framer();
      const std::size_t patch_bytes =
          build_patch_frame(tmpl, wire_id, epoch, report, slice_body);
      bool coded = false;
      if (preset_ready) {
        coded = encode_payload(http::ContentCoding::kDeflatePreset, patch_buf_,
                               diffwire_->dictionary(wire_id), report);
        if (coded) {
          body_slices_.clear();
          body_slices_.push_back(
              net::ConstSlice{coded_buf_.data(), coded_buf_.size()});
        }
      }
      const std::size_t payload_bytes = coded ? coded_buf_.size() : patch_bytes;

      http::HttpRequest head;
      head.method = "POST";
      head.target = std::string(dest.path);
      head.headers.push_back(http::Header{"Host", "localhost"});
      head.headers.push_back(
          http::Header{"Content-Type", diffwire::kPatchContentType});
      head.headers.push_back(http::Header{"SOAPAction", "\"" + method + "\""});
      head.headers.push_back(
          http::Header{diffwire::kDiffHeader, diffwire::kPatchValue});
      if (options_.coding != http::ContentCoding::kIdentity) {
        head.headers.push_back(
            http::Header{"Accept-Encoding", "deflate, gzip"});
      }
      if (coded) {
        // A coded body's template ID is unreadable before decoding, so it
        // rides the header; the server decodes against that pin's dictionary.
        head.headers.push_back(http::Header{
            "Content-Encoding", http::coding_name(report->coding)});
        head.headers.push_back(http::Header{
            diffwire::kTemplateHeader, diffwire::format_template_id(wire_id)});
      }
      if (dest.extra_headers != nullptr) {
        for (const http::Header& h : *dest.extra_headers) {
          head.headers.push_back(h);
        }
      }
      framing.add_headers(head.headers, payload_bytes);
      head_text_ = http::serialize_request_head(head);

      // body_slices_ was filled by build_patch_frame; the run bytes may be
      // referenced in place from the template buffer, which stays valid
      // (and unmutated — the lease is still out) across this write.
      wire_slices_.clear();
      wire_slices_.push_back(
          net::ConstSlice{head_text_.data(), head_text_.size()});
      framing.frame_body(body_slices_, &wire_slices_, &frame_scratch_);

      std::size_t wire_bytes = 0;
      for (const net::ConstSlice& s : wire_slices_) wire_bytes += s.len;
      clock.lap(SendStage::kFrame, wire_bytes);

      BSOAP_RETURN_IF_ERROR(dest.transport->send_slices(wire_slices_));
      clock.lap(SendStage::kWrite, wire_bytes);

      // The frame left the socket: advance the epoch optimistically. If the
      // server never applies it, the resulting epoch gap NACKs the next
      // patch and the sender falls back to a full send.
      diffwire_->note_patch_sent(wire_id, envelope_bytes, payload_bytes,
                                 report->patch_replay);
      report->envelope_bytes = payload_bytes;
      report->wire_bytes = wire_bytes;
      return Status{};
    }
    offer = true;
  }

  body_slices_.clear();
  tmpl.buffer().append_slices(body_slices_);

  // Wire compression. dest.coding (the server's per-request Accept-Encoding
  // pick) overrides the configured coding; preset coding only applies to
  // diff-wire offers (it needs a pinned generation on both sides) and
  // otherwise degrades to identity. A preset offer flattens the body even
  // before the coding is acked — the flat bytes seed the next generation's
  // dictionary either way.
  http::ContentCoding coding = dest.coding != http::ContentCoding::kIdentity
                                   ? dest.coding
                                   : options_.coding;
  const bool preset_offer =
      offer && options_.coding == http::ContentCoding::kDeflatePreset;
  if (coding == http::ContentCoding::kDeflatePreset && !preset_offer) {
    coding = http::ContentCoding::kIdentity;
  }
  bool coded = false;
  if (coding != http::ContentCoding::kIdentity || preset_offer) {
    const buffer::ChunkedBuffer& buf = tmpl.buffer();
    flat_buf_.clear();
    for (std::size_t i = 0; i < buf.chunk_count(); ++i) {
      flat_buf_.append(buf.chunk_view(i));
    }
    if (preset_offer) {
      if (diffwire_->coding_ready(wire_id)) {
        coded = encode_payload(http::ContentCoding::kDeflatePreset, flat_buf_,
                               diffwire_->dictionary(wire_id), report);
      }
    } else {
      coded = encode_payload(coding, flat_buf_, {}, report);
    }
    if (coded) {
      body_slices_.clear();
      body_slices_.push_back(
          net::ConstSlice{coded_buf_.data(), coded_buf_.size()});
    }
  }
  const std::size_t payload_bytes = coded ? coded_buf_.size() : envelope_bytes;

  if (head_kind == HeadKind::kRequest) {
    http::HttpRequest head;
    head.method = "POST";
    head.target = std::string(dest.path);
    head.headers.push_back(http::Header{"Host", "localhost"});
    head.headers.push_back(
        http::Header{"Content-Type", "text/xml; charset=utf-8"});
    head.headers.push_back(http::Header{"SOAPAction", "\"" + method + "\""});
    if (options_.coding != http::ContentCoding::kIdentity) {
      // A coding-configured client also accepts coded responses.
      head.headers.push_back(
          http::Header{"Accept-Encoding", "deflate, gzip"});
    }
    if (offer) {
      head.headers.push_back(
          http::Header{diffwire::kDiffHeader, diffwire::kOfferValue});
      head.headers.push_back(http::Header{
          diffwire::kTemplateHeader, diffwire::format_template_id(wire_id)});
      if (preset_offer) {
        // Ask the server to ack preset coding for this pin.
        head.headers.push_back(http::Header{diffwire::kCodingHeader,
                                            diffwire::kCodingPresetValue});
      }
    }
    if (coded) {
      head.headers.push_back(http::Header{
          "Content-Encoding", http::coding_name(report->coding)});
    }
    if (dest.extra_headers != nullptr) {
      for (const http::Header& h : *dest.extra_headers) {
        head.headers.push_back(h);
      }
    }
    framing.add_headers(head.headers, payload_bytes);
    head_text_ = http::serialize_request_head(head);
  } else {
    http::HttpResponse head;
    head.headers.push_back(
        http::Header{"Content-Type", "text/xml; charset=utf-8"});
    if (coded) {
      head.headers.push_back(http::Header{
          "Content-Encoding", http::coding_name(report->coding)});
    }
    if (dest.extra_headers != nullptr) {
      for (const http::Header& h : *dest.extra_headers) {
        head.headers.push_back(h);
      }
    }
    framing.add_headers(head.headers, payload_bytes);
    head_text_ = http::serialize_response_head(head);
  }
  wire_slices_.clear();
  wire_slices_.push_back(
      net::ConstSlice{head_text_.data(), head_text_.size()});
  framing.frame_body(body_slices_, &wire_slices_, &frame_scratch_);

  std::size_t wire_bytes = 0;
  for (const net::ConstSlice& s : wire_slices_) wire_bytes += s.len;
  clock.lap(SendStage::kFrame, wire_bytes);

  BSOAP_RETURN_IF_ERROR(dest.transport->send_slices(wire_slices_));
  clock.lap(SendStage::kWrite, wire_bytes);

  if (offer) {
    diffwire_->note_offer_sent(wire_id);
    if (preset_offer) {
      // This offer's body is the pin generation the server just (re)pinned:
      // its tail is the dictionary both sides preset until the next offer.
      diffwire_->set_dictionary(wire_id, dict_tail(flat_buf_));
    }
  }
  report->envelope_bytes = payload_bytes;
  report->wire_bytes = wire_bytes;
  return Status{};
}

}  // namespace bsoap::core
