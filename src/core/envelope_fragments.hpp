// Shared envelope prologue/epilogue fragments for the streaming senders.
#pragma once

#include <string>
#include <string_view>

#include "http/framer.hpp"
#include "http/http_message.hpp"
#include "soap/constants.hpp"

namespace bsoap::core {

/// Envelope head through the open tag of a single array parameter.
inline std::string array_envelope_prologue(const std::string& method,
                                           const std::string& service_namespace,
                                           const std::string& param,
                                           std::string_view element_type,
                                           std::size_t count) {
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
  out += "<SOAP-ENV:Envelope xmlns:SOAP-ENV=\"";
  out += soap::kSoapEnvelopeNs;
  out += "\" xmlns:SOAP-ENC=\"";
  out += soap::kSoapEncodingNs;
  out += "\" xmlns:xsi=\"";
  out += soap::kXsiNs;
  out += "\" xmlns:xsd=\"";
  out += soap::kXsdNs;
  out += "\" SOAP-ENV:encodingStyle=\"";
  out += soap::kSoapEncodingNs;
  out += "\"><SOAP-ENV:Body><ns1:";
  out += method;
  out += " xmlns:ns1=\"";
  out += service_namespace;
  out += "\"><";
  out += param;
  out += " xsi:type=\"SOAP-ENC:Array\" SOAP-ENC:arrayType=\"";
  out += element_type;
  out += "[";
  out += std::to_string(count);
  out += "]\">";
  return out;
}

inline std::string array_envelope_epilogue(const std::string& method,
                                           const std::string& param) {
  std::string out = "</";
  out += param;
  out += "></ns1:";
  out += method;
  out += "></SOAP-ENV:Body></SOAP-ENV:Envelope>";
  return out;
}

/// POST head with chunked transfer encoding for a streamed array send.
inline std::string array_request_head(const std::string& method,
                                      const std::string& path) {
  http::HttpRequest head;
  head.target = path;
  head.headers.push_back(http::Header{"Host", "localhost"});
  head.headers.push_back(
      http::Header{"Content-Type", "text/xml; charset=utf-8"});
  head.headers.push_back(http::Header{"SOAPAction", "\"" + method + "\""});
  // The body is streamed window by window, so its size is unknown here.
  http::chunked_framer().add_headers(head.headers, 0);
  return http::serialize_request_head(head);
}

}  // namespace bsoap::core
