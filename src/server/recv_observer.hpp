// Receive-side stage instrumentation, the mirror of core::SendObserver.
//
// answer_request times its three receive stages only when an observer is
// installed (ServerRuntimeOptions::recv_observer), so the production path
// pays nothing:
//
//   decode      content-coding inflate of a coded request body
//   patch_apply patch frame decode + ReplicaStore::apply (reconstruction)
//   parse       producing the handler-visible RpcCall — full parse, region
//               fast parse, or the memory read of a content hit
//
// Observers run on whichever worker thread served the request and must not
// throw; RecvStageTimings is the atomic accumulator benches and tests use.
#pragma once

#include <atomic>
#include <cstdint>

namespace bsoap::server {

enum class RecvStage : std::uint8_t { kDecode, kPatchApply, kParse };
inline constexpr std::size_t kRecvStageCount = 3;

class RecvObserver {
 public:
  virtual ~RecvObserver() = default;

  /// One call per completed stage: wall time and the bytes the stage
  /// handled (decode: inflated size; patch_apply: reconstructed body size;
  /// parse: body size).
  virtual void on_stage(RecvStage stage, std::int64_t elapsed_ns,
                        std::size_t bytes) = 0;
};

/// RecvObserver accumulating per-stage totals across worker threads
/// (tests, benchmarks). Relaxed atomics: totals are read after the load
/// completes or as approximate live gauges.
class RecvStageTimings final : public RecvObserver {
 public:
  struct Totals {
    std::int64_t ns = 0;
    std::uint64_t bytes = 0;
    std::uint64_t count = 0;
  };
  struct Snapshot {
    Totals decode;
    Totals patch_apply;
    Totals parse;
  };

  void on_stage(RecvStage stage, std::int64_t elapsed_ns,
                std::size_t bytes) override {
    Slot& s = slots_[static_cast<std::size_t>(stage)];
    s.ns.fetch_add(elapsed_ns, std::memory_order_relaxed);
    s.bytes.fetch_add(bytes, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
  }

  Snapshot snapshot() const {
    Snapshot out;
    out.decode = load(RecvStage::kDecode);
    out.patch_apply = load(RecvStage::kPatchApply);
    out.parse = load(RecvStage::kParse);
    return out;
  }

  void reset() {
    for (Slot& s : slots_) {
      s.ns.store(0, std::memory_order_relaxed);
      s.bytes.store(0, std::memory_order_relaxed);
      s.count.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct Slot {
    std::atomic<std::int64_t> ns{0};
    std::atomic<std::uint64_t> bytes{0};
    std::atomic<std::uint64_t> count{0};
  };

  Totals load(RecvStage stage) const {
    const Slot& s = slots_[static_cast<std::size_t>(stage)];
    Totals t;
    t.ns = s.ns.load(std::memory_order_relaxed);
    t.bytes = s.bytes.load(std::memory_order_relaxed);
    t.count = s.count.load(std::memory_order_relaxed);
    return t;
  }

  Slot slots_[kRecvStageCount];
};

}  // namespace bsoap::server
