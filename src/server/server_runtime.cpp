#include "server/server_runtime.hpp"

#include <algorithm>
#include <chrono>
#include <optional>

#include "core/parsed_replica.hpp"
#include "diffwire/wire_format.hpp"
#include "http/connection.hpp"
#include "net/tcp.hpp"
#include "server/fault_render.hpp"
#include "server/paced_transport.hpp"
#include "soap/envelope_reader.hpp"

namespace bsoap::server {

namespace {

/// The default per-connection parser: a full envelope parse into storage
/// that stays valid until the next request on the connection.
soap::EnvelopeParser make_full_parser() {
  return [storage = std::make_shared<soap::RpcCall>()](
             std::string_view body) -> Result<const soap::RpcCall*> {
    Result<soap::RpcCall> parsed = soap::read_rpc_envelope(body);
    if (!parsed.ok()) return parsed.error();
    *storage = std::move(parsed.value());
    return storage.get();
  };
}

bool coding_enabled(const std::vector<http::ContentCoding>& codings,
                    http::ContentCoding coding) {
  return std::find(codings.begin(), codings.end(), coding) != codings.end();
}

/// Picks the response coding from the request's Accept-Encoding ∩ the
/// server's enabled codings; deflate wins over gzip (smaller framing, same
/// compressor). Unknown tokens and q-values are ignored — absent or
/// unusable offers mean identity, never an error.
http::ContentCoding negotiate_response_coding(
    const http::HttpRequest& request,
    const std::vector<http::ContentCoding>& codings) {
  const http::Header* accept = request.find("Accept-Encoding");
  if (accept == nullptr) return http::ContentCoding::kIdentity;
  bool wants_gzip = false;
  bool wants_deflate = false;
  std::string_view rest = accept->value;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view token = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    // Strip any ";q=..." parameter; a q=0 refusal is rare enough that
    // treating it as an offer only costs a per-message fallback check.
    const std::size_t semi = token.find(';');
    if (semi != std::string_view::npos) token = token.substr(0, semi);
    http::ContentCoding coding;
    if (!http::parse_coding(token, &coding)) continue;
    wants_gzip |= coding == http::ContentCoding::kGzip;
    wants_deflate |= coding == http::ContentCoding::kDeflate;
  }
  if (wants_deflate && coding_enabled(codings, http::ContentCoding::kDeflate)) {
    return http::ContentCoding::kDeflate;
  }
  if (wants_gzip && coding_enabled(codings, http::ContentCoding::kGzip)) {
    return http::ContentCoding::kGzip;
  }
  return http::ContentCoding::kIdentity;
}

}  // namespace

Result<std::unique_ptr<ServerRuntime>> ServerRuntime::start(
    soap::RpcHandler handler, ServerRuntimeOptions options) {
  BSOAP_ASSERT(options.workers >= 1);
  Result<net::TcpListener> listener = net::TcpListener::bind();
  if (!listener.ok()) return listener.error();

  auto server = std::unique_ptr<ServerRuntime>(new ServerRuntime());
  server->handler_ = std::move(handler);
  server->options_ = std::move(options);
  server->port_ = listener.value().port();
  const bool reactor_mode = server->options_.io_model == IoModel::kReactor;
  if (reactor_mode) {
    server->dispatch_ =
        std::make_unique<DispatchQueue>(server->options_.accept_backlog);
  } else {
    server->queue_ =
        std::make_unique<AcceptQueue>(server->options_.accept_backlog);
  }

  core::SendPipeline::Options pipeline_options;
  pipeline_options.tmpl = server->options_.response_tmpl;
  pipeline_options.differential = server->options_.diff_responses;
  pipeline_options.max_templates = server->options_.response_templates;
  pipeline_options.max_template_bytes =
      server->options_.response_template_bytes;
  if (server->options_.shared_cache && server->options_.diff_responses) {
    core::SharedTemplateCache::Options cache_options;
    cache_options.shards = server->options_.shared_cache_shards;
    cache_options.max_replicas =
        server->options_.shared_cache_replicas != 0
            ? server->options_.shared_cache_replicas
            : std::max<std::size_t>(2, server->options_.workers / 2);
    cache_options.max_bytes = server->options_.shared_cache_bytes;
    server->shared_cache_ =
        std::make_unique<core::SharedTemplateCache>(cache_options);
  }
  if (server->options_.diffwire) {
    diffwire::ReplicaStore::Options replica_options;
    replica_options.max_replicas = server->options_.diffwire_replicas;
    replica_options.max_bytes = server->options_.diffwire_replica_bytes;
    replica_options.retain_dictionaries = coding_enabled(
        server->options_.codings, http::ContentCoding::kDeflatePreset);
    server->replicas_ =
        std::make_unique<diffwire::ReplicaStore>(replica_options);
  }
  for (std::size_t i = 0; i < server->options_.workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->pipeline = std::make_unique<core::SendPipeline>(pipeline_options);
    if (server->shared_cache_ != nullptr) {
      worker->pipeline->set_template_source(server->shared_cache_.get());
    }
    server->workers_.push_back(std::move(worker));
  }
  if (reactor_mode) {
    Reactor::Options reactor_options;
    reactor_options.max_connections = server->options_.max_connections;
    reactor_options.timeouts.idle = server->options_.idle_timeout;
    reactor_options.timeouts.read = server->options_.read_timeout;
    reactor_options.timeouts.slice = server->options_.poll_slice;
    reactor_options.make_parser = server->options_.make_parser
                                      ? server->options_.make_parser
                                      : make_full_parser;
    reactor_options.max_inflate_bytes = server->options_.max_inflate_bytes;
    reactor_options.overload_response = render_overload_response();
    Result<std::unique_ptr<Reactor>> reactor =
        Reactor::start(std::move(listener.value()), std::move(reactor_options),
                       server->dispatch_.get(), &server->stats_);
    if (!reactor.ok()) {
      server->dispatch_->close();
      return reactor.error();
    }
    server->reactor_ = std::move(reactor.value());
    for (auto& worker : server->workers_) {
      worker->thread = std::thread([srv = server.get(), w = worker.get()] {
        srv->reactor_worker_loop(*w);
      });
    }
    return server;
  }
  for (auto& worker : server->workers_) {
    worker->thread = std::thread(
        [srv = server.get(), w = worker.get()] { srv->worker_loop(*w); });
  }
  server->accept_thread_ = std::thread(
      [srv = server.get(), l = std::make_shared<net::TcpListener>(std::move(
                               listener.value()))] { srv->accept_loop(*l); });
  return server;
}

ServerRuntime::~ServerRuntime() { stop(); }

void ServerRuntime::accept_loop(net::TcpListener& listener) {
  for (;;) {
    Result<std::unique_ptr<net::Transport>> conn = listener.accept();
    if (!conn.ok() || stopping_.load(std::memory_order_acquire)) return;

    if (stats_.active.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      stats_.rejected.fetch_add(1, std::memory_order_relaxed);
      reject_with_503(std::move(conn.value()));
      continue;
    }
    // Count the connection as active before the handoff so the admission
    // check above never undercounts; roll back if the queue was full.
    stats_.active.fetch_add(1, std::memory_order_relaxed);
    std::unique_ptr<net::Transport> back =
        queue_->try_push(std::move(conn.value()));
    if (back != nullptr) {
      stats_.active.fetch_sub(1, std::memory_order_relaxed);
      stats_.rejected.fetch_add(1, std::memory_order_relaxed);
      reject_with_503(std::move(back));
      continue;
    }
    stats_.accepted.fetch_add(1, std::memory_order_relaxed);
  }
}

void ServerRuntime::worker_loop(Worker& worker) {
  for (;;) {
    std::unique_ptr<net::Transport> transport = queue_->pop();
    if (transport == nullptr) return;  // queue closed: drain complete
    serve_connection(worker, std::move(transport));
  }
}

void ServerRuntime::reactor_worker_loop(Worker& worker) {
  for (;;) {
    std::optional<DispatchJob> job = dispatch_->pop();
    if (!job.has_value()) return;  // queue closed and drained
    // Serialize through the identical pipeline the blocking path uses,
    // writing directly while the connection is parked in Dispatched — the
    // reactor holds no epoll interest on it, so this thread has the socket
    // to itself. The pipeline's write stage gathers the response slices
    // (head + template chunks) into writev calls with no flatten; only an
    // EAGAIN remainder is copied and rides the completion back for
    // EPOLLOUT-driven drain. A false return means the response could not
    // be fully produced; whatever prefix reached the socket matches what
    // the blocking path would have written, so the engines' wire behavior
    // stays aligned.
    DirectSliceTransport direct(*job->transport);
    const bool keep =
        answer_request(worker, job->request, *job->parser, direct);
    Completion completion;
    completion.conn_id = job->conn_id;
    completion.keep_alive = keep;
    if (direct.write_error()) {
      completion.write_error = true;
    } else if (direct.copied_bytes() > 0) {
      stats_.partial_writes.fetch_add(1, std::memory_order_relaxed);
      stats_.write_copied_bytes.fetch_add(direct.copied_bytes(),
                                          std::memory_order_relaxed);
      completion.bytes = direct.take_tail();
    }
    reactor_->complete(std::move(completion));
  }
}

void ServerRuntime::serve_connection(
    Worker& worker, std::unique_ptr<net::Transport> raw_transport) {
  PacedTransport::Timeouts timeouts;
  timeouts.idle = options_.idle_timeout;
  timeouts.read = options_.read_timeout;
  timeouts.slice = options_.poll_slice;
  PacedTransport transport(std::move(raw_transport), timeouts, &draining_,
                           &stats_.partial_writes);
  http::HttpConnection conn(transport);
  conn.set_max_inflate_bytes(options_.max_inflate_bytes);

  soap::EnvelopeParser parser =
      options_.make_parser ? options_.make_parser() : make_full_parser();

  for (;;) {
    transport.begin_idle();
    Result<http::HttpRequest> request = conn.read_request();
    if (!request.ok()) {
      const ErrorCode code = request.error().code;
      if (code == ErrorCode::kTimeout) {
        if (transport.timed_out_idle()) {
          stats_.idle_closed.fetch_add(1, std::memory_order_relaxed);
        } else {
          stats_.read_timeouts.fetch_add(1, std::memory_order_relaxed);
        }
      } else if (code != ErrorCode::kClosed) {
        // Unparseable HTTP head or framing: the stream is out of sync, so
        // answer 400 (or 413 when the decompression bound tripped) with a
        // fault envelope and close.
        stats_.bad_requests.fetch_add(1, std::memory_order_relaxed);
        (void)transport.send(render_parse_failure_response(request.error()));
      }
      break;  // kClosed: keep-alive ended cleanly
    }

    if (!answer_request(worker, request.value(), parser, transport)) {
      break;  // the write failed: the connection is dead
    }
    if (draining_.load(std::memory_order_acquire)) break;
  }
  stats_.active.fetch_sub(1, std::memory_order_relaxed);
}

bool ServerRuntime::answer_request(Worker& worker,
                                   const http::HttpRequest& request,
                                   soap::EnvelopeParser& parser,
                                   net::Transport& transport) {
  std::string_view body = request.body;
  std::string reconstructed;  // patch sends: the replayed envelope
  std::string preset_decoded;  // preset-coded sends: the inflated body
  // Diff-wire: reconstruct patch frames against the pinned replica, and pin
  // (or re-pin) full bodies the client offers. The ack rides back on this
  // request's response via extra_headers.
  std::vector<http::Header> diff_headers;
  const std::vector<http::Header>* extra_headers = nullptr;
  // Differential deserialization: the decoded patch frame and the replica's
  // attachment observed under apply()'s lock, carried to the parse stage.
  std::optional<diffwire::PatchFrame> patch;
  diffwire::ReplicaStore::ApplyInfo apply_info;
  bool offered = false;
  std::uint64_t offer_id = 0;
  std::uint64_t offer_generation = 0;
  // Receive-side stage timing, paid only when an observer is installed.
  RecvObserver* const obs = options_.recv_observer;
  using Clock = std::chrono::steady_clock;
  const auto elapsed_ns = [](Clock::time_point begin) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                begin)
        .count();
  };
  if (replicas_ != nullptr) {
    // Second differential layer: a preset-coded body (full re-offer or
    // patch frame) decodes against the pinned generation's dictionary
    // before any of the logic below sees it. Anything undecodable — no
    // template header, coding disabled, replica evicted, dictionary drift,
    // bound exceeded — NACKs, which makes the client fall back to an
    // identity full send and re-pin.
    if (const http::Header* encoding = request.find("Content-Encoding");
        encoding != nullptr &&
        encoding->value == diffwire::kCodingPresetValue) {
      const http::Header* id_header = request.find(diffwire::kTemplateHeader);
      std::uint64_t id = 0;
      if (!coding_enabled(options_.codings,
                          http::ContentCoding::kDeflatePreset) ||
          id_header == nullptr ||
          !diffwire::parse_template_id(id_header->value, &id)) {
        stats_.patch_nacks.fetch_add(1, std::memory_order_relaxed);
        return transport
            .send(diffwire::render_nack_response(id, "preset coding unusable"))
            .ok();
      }
      const Clock::time_point decode_begin =
          obs != nullptr ? Clock::now() : Clock::time_point{};
      Result<std::string> decoded =
          replicas_->decode_preset(id, body, options_.max_inflate_bytes);
      if (obs != nullptr) {
        obs->on_stage(RecvStage::kDecode, elapsed_ns(decode_begin),
                      decoded.ok() ? decoded.value().size() : 0);
      }
      if (!decoded.ok()) {
        stats_.patch_nacks.fetch_add(1, std::memory_order_relaxed);
        return transport
            .send(diffwire::render_nack_response(id,
                                                 decoded.error().message))
            .ok();
      }
      preset_decoded = std::move(decoded.value());
      body = preset_decoded;
    }
    const http::Header* content_type = request.find("Content-Type");
    if (content_type != nullptr &&
        content_type->value == diffwire::kPatchContentType) {
      const Clock::time_point apply_begin =
          obs != nullptr ? Clock::now() : Clock::time_point{};
      Result<diffwire::PatchFrame> frame = diffwire::decode_patch(body);
      if (!frame.ok()) {
        // Malformed frame. The HTTP framing was intact, so the connection
        // stays usable; the 409 tells the sender to fall back to full.
        stats_.patch_nacks.fetch_add(1, std::memory_order_relaxed);
        return transport
            .send(diffwire::render_nack_response(0, frame.error().message))
            .ok();
      }
      const diffwire::PatchHeader& header = frame.value().header;
      if (header.body_len > options_.max_inflate_bytes) {
        // A patch reconstructs a body of body_len bytes regardless of the
        // frame's own size, so it must honor the same inflation bound
        // coded full bodies do: 413, not a NACK (the frame may be valid —
        // the server just refuses to materialize the result).
        stats_.bad_requests.fetch_add(1, std::memory_order_relaxed);
        return transport
            .send(render_parse_failure_response(
                Error{ErrorCode::kOutOfRange,
                      "patch body_len exceeds max_inflate_bytes"}))
            .ok();
      }
      const Status applied =
          replicas_->apply(frame.value(), &reconstructed, &apply_info);
      if (!applied.ok()) {
        // Unknown template, epoch gap, bad bounds or checksum: the replica
        // (if any) has been dropped; the sender re-offers on its fallback.
        stats_.patch_nacks.fetch_add(1, std::memory_order_relaxed);
        return transport
            .send(diffwire::render_nack_response(header.template_id,
                                                 applied.error().message))
            .ok();
      }
      if (obs != nullptr) {
        obs->on_stage(RecvStage::kPatchApply, elapsed_ns(apply_begin),
                      reconstructed.size());
      }
      stats_.patch_sends.fetch_add(1, std::memory_order_relaxed);
      if (header.replay()) {
        stats_.patch_replays.fetch_add(1, std::memory_order_relaxed);
      }
      if (reconstructed.size() > request.body.size()) {
        // Against the actual wire payload, so a preset-coded frame's
        // compression saving counts too.
        stats_.bytes_saved.fetch_add(
            reconstructed.size() - request.body.size(),
            std::memory_order_relaxed);
      }
      body = reconstructed;
      patch = std::move(frame.value());
    } else {
      const http::Header* diff = request.find(diffwire::kDiffHeader);
      const http::Header* id_header = request.find(diffwire::kTemplateHeader);
      std::uint64_t id = 0;
      if (diff != nullptr && diff->value == diffwire::kOfferValue &&
          id_header != nullptr &&
          diffwire::parse_template_id(id_header->value, &id)) {
        offered = true;
        offer_id = id;
        if (replicas_->pin(id, body, &offer_generation)) {
          // Re-pin of a known template: the client fell back to a full
          // send after a nack or a structural update.
          stats_.fallback_full_sends.fetch_add(1, std::memory_order_relaxed);
        }
        diff_headers.push_back(
            http::Header{diffwire::kDiffHeader, diffwire::kAckValue});
        diff_headers.push_back(http::Header{
            diffwire::kTemplateHeader, diffwire::format_template_id(id)});
        // Ack the preset-coding offer when enabled: subsequent sends under
        // this pin may arrive deflate-preset coded. Re-acked on every
        // re-offer (the client's coding state survives re-pins).
        const http::Header* coding_offer =
            request.find(diffwire::kCodingHeader);
        if (coding_offer != nullptr &&
            coding_offer->value == diffwire::kCodingPresetValue &&
            coding_enabled(options_.codings,
                           http::ContentCoding::kDeflatePreset)) {
          diff_headers.push_back(http::Header{diffwire::kCodingHeader,
                                              diffwire::kCodingPresetValue});
        }
        extra_headers = &diff_headers;
      }
    }
  }

  // Produce the handler's RpcCall. Diff-wire requests go through the
  // replica's cached parse (ParsedReplica) when differential
  // deserialization is on and no custom parser is installed; everything
  // else takes the per-connection parser. The lease must outlive the
  // handler AND the response write — on the uncontended path the call
  // points into the shared deserializer the lease's lock protects.
  const bool fused = replicas_ != nullptr && options_.diff_deserialize &&
                     !options_.make_parser;
  core::ParsedReplica::Lease lease;
  const auto record_deser = [this](
                                const core::ParsedReplica::ServeReport& r) {
    switch (r.path) {
      case core::DiffDeserializer::ApplyPath::kContentHit:
        stats_.deser_content_hits.fetch_add(1, std::memory_order_relaxed);
        break;
      case core::DiffDeserializer::ApplyPath::kFastParse:
        stats_.deser_fast_parses.fetch_add(1, std::memory_order_relaxed);
        stats_.deser_leaves_reparsed.fetch_add(r.leaves_reparsed,
                                               std::memory_order_relaxed);
        break;
      case core::DiffDeserializer::ApplyPath::kFullParse:
        stats_.deser_full_parses.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    if (r.demoted) {
      stats_.deser_demotions.fetch_add(1, std::memory_order_relaxed);
    }
  };
  const Clock::time_point parse_begin =
      obs != nullptr ? Clock::now() : Clock::time_point{};
  Result<const soap::RpcCall*> call =
      [&]() -> Result<const soap::RpcCall*> {
    if (fused && patch.has_value()) {
      core::ParsedReplica::ServeReport report;
      auto parsed =
          std::static_pointer_cast<core::ParsedReplica>(apply_info.attachment);
      const bool fresh = parsed == nullptr;
      if (fresh) parsed = std::make_shared<core::ParsedReplica>();
      Result<core::ParsedReplica::Lease> served =
          fresh ? core::ParsedReplica::serve_full(parsed, body,
                                                  patch->header.epoch, &report)
                : core::ParsedReplica::serve_patch(parsed, body,
                                                   patch->header.epoch,
                                                   patch->runs, &report);
      if (!served.ok()) return served.error();
      if (fresh) {
        // Refused when a re-pin raced the parse: the next patch simply
        // full-parses again. Never a NACK.
        (void)replicas_->attach(patch->header.template_id,
                                apply_info.generation, parsed);
      }
      record_deser(report);
      lease = std::move(served.value());
      return &lease.call();
    }
    if (fused && offered) {
      // The offer's full body serves this request and primes the replica's
      // cached parse for the patches that follow.
      core::ParsedReplica::ServeReport report;
      auto parsed = std::make_shared<core::ParsedReplica>();
      Result<core::ParsedReplica::Lease> served =
          core::ParsedReplica::serve_full(parsed, body, 0, &report);
      if (!served.ok()) return served.error();
      (void)replicas_->attach(offer_id, offer_generation, parsed);
      record_deser(report);
      lease = std::move(served.value());
      return &lease.call();
    }
    return parser(body);
  }();
  if (obs != nullptr) {
    obs->on_stage(RecvStage::kParse, elapsed_ns(parse_begin), body.size());
  }
  if (!call.ok()) {
    // The HTTP framing was intact, so the connection stays usable: answer
    // 400 + fault and keep serving.
    stats_.bad_requests.fetch_add(1, std::memory_order_relaxed);
    stats_.faults.fetch_add(1, std::memory_order_relaxed);
    return send_fault(transport, 400, "Bad Request", "SOAP-ENV:Client",
                      call.error().to_string());
  }

  Result<soap::Value> result = handler_(*call.value());
  if (!result.ok()) {
    stats_.faults.fetch_add(1, std::memory_order_relaxed);
    return send_fault(transport, 500, "Internal Server Error",
                      "SOAP-ENV:Server", result.error().to_string());
  }

  soap::RpcCall response;
  response.method = call.value()->method + "Response";
  response.service_namespace = call.value()->service_namespace;
  response.params.push_back(soap::Param{"return", std::move(result.value())});

  core::SendDestination dest;
  dest.transport = &transport;
  dest.extra_headers = extra_headers;
  dest.coding = negotiate_response_coding(request, options_.codings);
  // Count before the write: once the client has read its response, the
  // request is visible in stats() (tests rely on that ordering).
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  Result<core::SendReport> sent =
      worker.pipeline->send_response(response, dest);
  if (!sent.ok()) {
    stats_.requests.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  stats_.record_response(sent.value().match);
  if (sent.value().coding != http::ContentCoding::kIdentity) {
    stats_.compressed_sends.fetch_add(1, std::memory_order_relaxed);
  }
  if (sent.value().coding_bytes_saved > 0) {
    stats_.coding_bytes_saved.fetch_add(sent.value().coding_bytes_saved,
                                        std::memory_order_relaxed);
  }
  if (sent.value().coding_ns > 0) {
    stats_.coding_cpu_ns.fetch_add(
        static_cast<std::uint64_t>(sent.value().coding_ns),
        std::memory_order_relaxed);
  }
  if (shared_cache_ == nullptr) {
    const core::TemplateStore& store = worker.pipeline->store();
    worker.template_bytes.store(store.bytes_retained(),
                                std::memory_order_relaxed);
    worker.template_evictions.store(
        store.evictions() + store.byte_evictions(), std::memory_order_relaxed);
  }
  // Shared-cache gauges are read straight off the cache in stats().
  return true;
}

bool ServerRuntime::send_fault(net::Transport& transport, int status,
                               const char* reason, const char* fault_code,
                               const std::string& detail) {
  // Rendered through the same helper the reactor queues on its write drain,
  // so a fault is byte-identical whichever engine answered.
  return transport
      .send(render_fault_response(status, reason, fault_code, detail))
      .ok();
}

void ServerRuntime::reject_with_503(
    std::unique_ptr<net::Transport> transport) {
  (void)transport->send(render_overload_response());
  transport->shutdown_send();
}

ServerStats ServerRuntime::stats() const {
  ServerStats s = stats_.snapshot();
  if (reactor_ != nullptr) {
    s.queue_depth = dispatch_->depth();
    s.queue_high_water = dispatch_->high_water();
    s.completion_queue_depth_hw = reactor_->completion_queue_high_water();
    const Reactor::StateGauges g = reactor_->state_gauges();
    s.conns_idle = g.idle;
    s.conns_reading = g.reading;
    s.conns_dispatched = g.dispatched;
    s.conns_writing = g.writing;
  } else {
    s.queue_depth = queue_->depth();
    s.queue_high_water = queue_->high_water();
  }
  if (replicas_ != nullptr) {
    const diffwire::ReplicaStore::Stats r = replicas_->stats();
    s.diff_pinned_replicas = r.pinned_replicas;
    s.diff_pinned_bytes = r.pinned_bytes;
  }
  if (shared_cache_ != nullptr) {
    const core::SharedTemplateCache::Stats c = shared_cache_->stats();
    s.response_template_bytes = c.bytes_retained;
    s.response_template_evictions = c.evictions;
    s.cache_hits = c.hits;
    s.cache_misses = c.misses;
    s.cache_contended = c.contended;
    s.cache_clones = c.clones;
    s.cache_retired = c.retired;
    s.cache_invalidations = c.invalidations;
    s.cache_pins = c.pins;
  } else {
    for (const auto& worker : workers_) {
      s.response_template_bytes +=
          worker->template_bytes.load(std::memory_order_relaxed);
      s.response_template_evictions +=
          worker->template_evictions.load(std::memory_order_relaxed);
    }
  }
  return s;
}

void ServerRuntime::stop() {
  if (stopping_.exchange(true)) return;
  draining_.store(true, std::memory_order_release);
  if (reactor_ != nullptr) {
    // Order matters: the reactor exits only once every connection is gone,
    // and dispatched connections wait for worker completions — so workers
    // must keep running until the reactor has finished. Then closing the
    // dispatch queue (already empty) releases the workers.
    reactor_->begin_drain();
    reactor_->join();
    dispatch_->close();
    for (auto& worker : workers_) {
      if (worker->thread.joinable()) worker->thread.join();
    }
    return;
  }
  // Wake the blocking accept(); the loop observes stopping_ and exits.
  (void)net::tcp_connect(port_);
  if (accept_thread_.joinable()) accept_thread_.join();
  // Close the queue: workers finish the connection they are on (answering
  // any request already being processed) and exit; connections still
  // queued never started a request, so a 503 is honest.
  for (std::unique_ptr<net::Transport>& transport : queue_->close()) {
    stats_.drained.fetch_add(1, std::memory_order_relaxed);
    stats_.active.fetch_sub(1, std::memory_order_relaxed);
    reject_with_503(std::move(transport));
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

}  // namespace bsoap::server
