#include "server/server_runtime.hpp"

#include <algorithm>

#include "http/connection.hpp"
#include "net/tcp.hpp"
#include "server/paced_transport.hpp"
#include "soap/envelope_reader.hpp"

namespace bsoap::server {

namespace {

/// The default per-connection parser: a full envelope parse into storage
/// that stays valid until the next request on the connection.
soap::EnvelopeParser make_full_parser() {
  return [storage = std::make_shared<soap::RpcCall>()](
             std::string_view body) -> Result<const soap::RpcCall*> {
    Result<soap::RpcCall> parsed = soap::read_rpc_envelope(body);
    if (!parsed.ok()) return parsed.error();
    *storage = std::move(parsed.value());
    return storage.get();
  };
}

}  // namespace

Result<std::unique_ptr<ServerRuntime>> ServerRuntime::start(
    soap::RpcHandler handler, ServerRuntimeOptions options) {
  BSOAP_ASSERT(options.workers >= 1);
  Result<net::TcpListener> listener = net::TcpListener::bind();
  if (!listener.ok()) return listener.error();

  auto server = std::unique_ptr<ServerRuntime>(new ServerRuntime());
  server->handler_ = std::move(handler);
  server->options_ = std::move(options);
  server->port_ = listener.value().port();
  server->queue_ =
      std::make_unique<AcceptQueue>(server->options_.accept_backlog);

  core::SendPipeline::Options pipeline_options;
  pipeline_options.tmpl = server->options_.response_tmpl;
  pipeline_options.differential = server->options_.diff_responses;
  pipeline_options.max_templates = server->options_.response_templates;
  pipeline_options.max_template_bytes =
      server->options_.response_template_bytes;
  if (server->options_.shared_cache && server->options_.diff_responses) {
    core::SharedTemplateCache::Options cache_options;
    cache_options.shards = server->options_.shared_cache_shards;
    cache_options.max_replicas =
        server->options_.shared_cache_replicas != 0
            ? server->options_.shared_cache_replicas
            : std::max<std::size_t>(2, server->options_.workers / 2);
    cache_options.max_bytes = server->options_.shared_cache_bytes;
    server->shared_cache_ =
        std::make_unique<core::SharedTemplateCache>(cache_options);
  }
  for (std::size_t i = 0; i < server->options_.workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->pipeline = std::make_unique<core::SendPipeline>(pipeline_options);
    if (server->shared_cache_ != nullptr) {
      worker->pipeline->set_template_source(server->shared_cache_.get());
    }
    server->workers_.push_back(std::move(worker));
  }
  for (auto& worker : server->workers_) {
    worker->thread = std::thread(
        [srv = server.get(), w = worker.get()] { srv->worker_loop(*w); });
  }
  server->accept_thread_ = std::thread(
      [srv = server.get(), l = std::make_shared<net::TcpListener>(std::move(
                               listener.value()))] { srv->accept_loop(*l); });
  return server;
}

ServerRuntime::~ServerRuntime() { stop(); }

void ServerRuntime::accept_loop(net::TcpListener& listener) {
  for (;;) {
    Result<std::unique_ptr<net::Transport>> conn = listener.accept();
    if (!conn.ok() || stopping_.load(std::memory_order_acquire)) return;

    if (stats_.active.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      stats_.rejected.fetch_add(1, std::memory_order_relaxed);
      reject_with_503(std::move(conn.value()));
      continue;
    }
    // Count the connection as active before the handoff so the admission
    // check above never undercounts; roll back if the queue was full.
    stats_.active.fetch_add(1, std::memory_order_relaxed);
    std::unique_ptr<net::Transport> back =
        queue_->try_push(std::move(conn.value()));
    if (back != nullptr) {
      stats_.active.fetch_sub(1, std::memory_order_relaxed);
      stats_.rejected.fetch_add(1, std::memory_order_relaxed);
      reject_with_503(std::move(back));
      continue;
    }
    stats_.accepted.fetch_add(1, std::memory_order_relaxed);
  }
}

void ServerRuntime::worker_loop(Worker& worker) {
  for (;;) {
    std::unique_ptr<net::Transport> transport = queue_->pop();
    if (transport == nullptr) return;  // queue closed: drain complete
    serve_connection(worker, std::move(transport));
  }
}

void ServerRuntime::serve_connection(
    Worker& worker, std::unique_ptr<net::Transport> raw_transport) {
  PacedTransport::Timeouts timeouts;
  timeouts.idle = options_.idle_timeout;
  timeouts.read = options_.read_timeout;
  timeouts.slice = options_.poll_slice;
  PacedTransport transport(std::move(raw_transport), timeouts, &draining_);
  http::HttpConnection conn(transport);

  soap::EnvelopeParser parser =
      options_.make_parser ? options_.make_parser() : make_full_parser();

  for (;;) {
    transport.begin_idle();
    Result<http::HttpRequest> request = conn.read_request();
    if (!request.ok()) {
      const ErrorCode code = request.error().code;
      if (code == ErrorCode::kTimeout) {
        if (transport.timed_out_idle()) {
          stats_.idle_closed.fetch_add(1, std::memory_order_relaxed);
        } else {
          stats_.read_timeouts.fetch_add(1, std::memory_order_relaxed);
        }
      } else if (code != ErrorCode::kClosed) {
        // Unparseable HTTP head or framing: the stream is out of sync, so
        // answer 400 with a fault envelope and close.
        stats_.bad_requests.fetch_add(1, std::memory_order_relaxed);
        send_fault(transport, 400, "Bad Request", "SOAP-ENV:Client",
                   request.error().to_string());
      }
      break;  // kClosed: keep-alive ended cleanly
    }

    Result<const soap::RpcCall*> call = parser(request.value().body);
    if (!call.ok()) {
      // The HTTP framing was intact, so the connection stays usable: answer
      // 400 + fault and keep serving.
      stats_.bad_requests.fetch_add(1, std::memory_order_relaxed);
      stats_.faults.fetch_add(1, std::memory_order_relaxed);
      if (!send_fault(transport, 400, "Bad Request", "SOAP-ENV:Client",
                      call.error().to_string())) {
        break;
      }
      if (draining_.load(std::memory_order_acquire)) break;
      continue;
    }

    Result<soap::Value> result = handler_(*call.value());
    if (!result.ok()) {
      stats_.faults.fetch_add(1, std::memory_order_relaxed);
      if (!send_fault(transport, 500, "Internal Server Error",
                      "SOAP-ENV:Server", result.error().to_string())) {
        break;
      }
    } else {
      soap::RpcCall response;
      response.method = call.value()->method + "Response";
      response.service_namespace = call.value()->service_namespace;
      response.params.push_back(
          soap::Param{"return", std::move(result.value())});

      core::SendDestination dest;
      dest.transport = &transport;
      // Count before the write: once the client has read its response, the
      // request is visible in stats() (tests rely on that ordering).
      stats_.requests.fetch_add(1, std::memory_order_relaxed);
      Result<core::SendReport> sent =
          worker.pipeline->send_response(response, dest);
      if (!sent.ok()) {
        stats_.requests.fetch_sub(1, std::memory_order_relaxed);
        break;
      }
      stats_.record_response(sent.value().match);
      if (shared_cache_ == nullptr) {
        const core::TemplateStore& store = worker.pipeline->store();
        worker.template_bytes.store(store.bytes_retained(),
                                    std::memory_order_relaxed);
        worker.template_evictions.store(
            store.evictions() + store.byte_evictions(),
            std::memory_order_relaxed);
      }
      // Shared-cache gauges are read straight off the cache in stats().
    }
    if (draining_.load(std::memory_order_acquire)) break;
  }
  stats_.active.fetch_sub(1, std::memory_order_relaxed);
}

bool ServerRuntime::send_fault(net::Transport& transport, int status,
                               const char* reason, const char* fault_code,
                               const std::string& detail) {
  http::HttpResponse head;
  head.status = status;
  head.reason = reason;
  head.headers.push_back(
      http::Header{"Content-Type", "text/xml; charset=utf-8"});
  http::HttpConnection conn(transport);
  return conn.send_response(std::move(head),
                            soap::serialize_rpc_fault(fault_code, detail))
      .ok();
}

void ServerRuntime::reject_with_503(
    std::unique_ptr<net::Transport> transport) {
  http::HttpResponse head;
  head.status = 503;
  head.reason = "Service Unavailable";
  head.headers.push_back(
      http::Header{"Content-Type", "text/xml; charset=utf-8"});
  head.headers.push_back(http::Header{"Connection", "close"});
  head.headers.push_back(http::Header{"Retry-After", "1"});
  http::HttpConnection conn(*transport);
  (void)conn.send_response(
      std::move(head),
      soap::serialize_rpc_fault("SOAP-ENV:Server", "server overloaded"));
  transport->shutdown_send();
}

ServerStats ServerRuntime::stats() const {
  ServerStats s = stats_.snapshot();
  s.queue_depth = queue_->depth();
  s.queue_high_water = queue_->high_water();
  if (shared_cache_ != nullptr) {
    const core::SharedTemplateCache::Stats c = shared_cache_->stats();
    s.response_template_bytes = c.bytes_retained;
    s.response_template_evictions = c.evictions;
    s.cache_hits = c.hits;
    s.cache_misses = c.misses;
    s.cache_contended = c.contended;
    s.cache_clones = c.clones;
    s.cache_retired = c.retired;
    s.cache_invalidations = c.invalidations;
    s.cache_pins = c.pins;
  } else {
    for (const auto& worker : workers_) {
      s.response_template_bytes +=
          worker->template_bytes.load(std::memory_order_relaxed);
      s.response_template_evictions +=
          worker->template_evictions.load(std::memory_order_relaxed);
    }
  }
  return s;
}

void ServerRuntime::stop() {
  if (stopping_.exchange(true)) return;
  draining_.store(true, std::memory_order_release);
  // Wake the blocking accept(); the loop observes stopping_ and exits.
  (void)net::tcp_connect(port_);
  if (accept_thread_.joinable()) accept_thread_.join();
  // Close the queue: workers finish the connection they are on (answering
  // any request already being processed) and exit; connections still
  // queued never started a request, so a 503 is honest.
  for (std::unique_ptr<net::Transport>& transport : queue_->close()) {
    stats_.drained.fetch_add(1, std::memory_order_relaxed);
    stats_.active.fetch_sub(1, std::memory_order_relaxed);
    reject_with_503(std::move(transport));
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

}  // namespace bsoap::server
