// Production-shaped SOAP server runtime.
//
// Replaces the thread-per-connection test harness with the pool model a
// heavily loaded service needs (the ROADMAP's "millions of users" north
// star, and where related work locates the win — response serialization
// dominates service cost in the measurements of arXiv:0911.0488 and
// arXiv:1903.07001):
//
//   accept thread ──► bounded AcceptQueue ──► N worker threads
//        │503 when full / over max_connections       │
//        ▼                                           ▼
//   overload is an HTTP answer,        each worker serves one connection
//   not an unbounded thread            at a time (keep-alive loop) through
//                                      a PacedTransport (idle/read
//                                      deadlines, drain wakeup)
//
// Response-side differential serialization: every worker owns a
// core::SendPipeline whose TemplateStore keys response templates by the
// response's structure signature (which covers method + namespace + shape),
// so a repeated RPC's response leaves via the paper's MCM/PSM fast paths —
// the Section 6 future work, applied on the way *out*. ServerStats exposes
// the per-match-kind counts so tests and dashboards can see the hit rate.
//
// Lifecycle: stop() drains gracefully — accepting ends, queued-but-unserved
// connections get 503, idle keep-alive connections end at their next poll
// slice, and every request already being processed is answered before its
// worker exits. No accepted in-flight request is dropped.
//
// Two connection engines sit in front of the same worker pool, selected by
// ServerRuntimeOptions::io_model:
//
//   kBlocking — the pool model above: a worker owns one connection at a
//     time and blocks in paced reads between its requests.
//   kReactor  — an epoll loop (server/reactor.hpp) owns every connection;
//     workers only ever see complete requests (via a bounded DispatchQueue)
//     and serialize responses into a capture buffer the loop drains by
//     readiness. Idle keep-alive connections cost a registered fd instead
//     of a blocked worker, so thousands of them no longer starve the pool.
//
// Both engines share the request parser, the deadline policy, the fault
// rendering, and this class's per-request core (answer_request), so a given
// request sequence produces byte-identical responses on either.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/send_pipeline.hpp"
#include "core/shared_template_cache.hpp"
#include "diffwire/replica_store.hpp"
#include "http/content_coding.hpp"
#include "server/accept_queue.hpp"
#include "server/reactor.hpp"
#include "server/recv_observer.hpp"
#include "server/server_stats.hpp"
#include "soap/soap_server.hpp"

namespace bsoap::net {
class TcpListener;
}  // namespace bsoap::net

namespace bsoap::server {

/// Which connection engine fronts the worker pool.
enum class IoModel {
  kBlocking,  ///< thread-per-served-connection, paced blocking reads
  kReactor,   ///< epoll readiness loop, workers see only complete requests
};

struct ServerRuntimeOptions {
  /// Fixed worker pool size: at most this many connections are served
  /// concurrently.
  std::size_t workers = 4;
  /// Connections waiting for a worker beyond that; the next one is answered
  /// 503.
  std::size_t accept_backlog = 64;
  /// Cap on open connections (queued + serving); admission beyond it is 503.
  std::size_t max_connections = 128;

  /// Connection engine. kReactor multiplexes every connection onto one
  /// epoll loop; mostly-idle keep-alive fleets scale with fds, not worker
  /// threads. Request/response bytes are identical either way.
  IoModel io_model = IoModel::kBlocking;

  std::chrono::milliseconds idle_timeout{30000};  ///< between requests
  std::chrono::milliseconds read_timeout{10000};  ///< whole-request arrival
  std::chrono::milliseconds poll_slice{20};       ///< drain/deadline latency

  /// Serialize responses differentially through each worker's saved
  /// templates; false re-serializes every response from scratch (the
  /// baseline the throughput bench compares against).
  bool diff_responses = true;
  core::TemplateConfig response_tmpl;
  std::size_t response_templates = 16;       ///< per-worker LRU capacity
  std::size_t response_template_bytes = 0;   ///< per-worker byte budget (0 = off)

  /// One process-wide SharedTemplateCache instead of per-worker stores:
  /// template memory scales with distinct RPC shapes, not workers × shapes,
  /// and a shape any worker has served is warm for all of them. Workers
  /// check templates out under a per-signature replica bound
  /// (clone-on-contention keeps concurrent same-shape sends off the
  /// first-time path). False (the default) keeps the per-worker stores.
  bool shared_cache = false;
  std::size_t shared_cache_shards = 8;
  /// Replica bound per signature; 0 = auto (max(2, workers/2)).
  std::size_t shared_cache_replicas = 0;
  /// Global byte budget across the whole cache (0 = unlimited). Replaces
  /// response_template_bytes, which is per worker.
  std::size_t shared_cache_bytes = 0;

  /// Accept the diff-wire patch protocol: pin request bodies clients offer
  /// (X-BSoap-Diff: v1), apply patch frames onto the pinned replicas, and
  /// NACK (HTTP 409) anything unusable so the client falls back to full
  /// sends. Non-negotiating clients are unaffected either way.
  bool diffwire = true;
  std::size_t diffwire_replicas = 64;      ///< pinned bodies retained (LRU)
  std::size_t diffwire_replica_bytes = 0;  ///< byte budget (0 = unlimited)

  /// Differential deserialization: each pinned replica carries a cached
  /// parse (core::ParsedReplica), so a patch send re-parses only the
  /// leaves its dirty runs touch and a header-only replay serves the
  /// handler with zero parse work. Requires diffwire; ignored when
  /// make_parser installs a custom parser. Non-diff-wire requests always
  /// take the ordinary full parse.
  bool diff_deserialize = true;

  /// Optional receive-side stage observer (decode / patch-apply / parse),
  /// the mirror of core::SendObserver. Null (default) skips all timing.
  /// Must outlive the runtime; called from worker threads.
  RecvObserver* recv_observer = nullptr;

  /// Content codings the server participates in. Responses are coded per
  /// the request's Accept-Encoding (deflate preferred over gzip when both
  /// are offered and enabled); kDeflatePreset additionally acks client
  /// preset-coding offers and decodes preset-coded request bodies against
  /// the pinned replica's dictionary (requires diffwire). Clients that
  /// negotiate nothing are unaffected, so all three default on.
  std::vector<http::ContentCoding> codings{http::ContentCoding::kGzip,
                                           http::ContentCoding::kDeflate,
                                           http::ContentCoding::kDeflatePreset};
  /// Decompression-bomb bound: the most a compressed request body (gzip,
  /// deflate or deflate-preset) may inflate to. An oversized body is
  /// answered 413 Payload Too Large with a Client fault.
  std::size_t max_inflate_bytes = 1u << 30;

  /// Creates one request-envelope parser per connection; null uses the full
  /// parser (see core::make_diff_deserializing_options for the differential
  /// one).
  std::function<soap::EnvelopeParser()> make_parser;

  ServerRuntimeOptions() {
    // Responses repeat with value changes; stuffed numeric fields keep those
    // rewrites in place (perfect structural matches instead of shifts).
    response_tmpl.stuffing.mode = core::StuffingPolicy::Mode::kTypeMax;
    response_tmpl.stuffing.stuff_on_expand = true;
  }
};

class ServerRuntime {
 public:
  /// Binds an ephemeral loopback port, starts the accept thread and the
  /// worker pool.
  static Result<std::unique_ptr<ServerRuntime>> start(
      soap::RpcHandler handler, ServerRuntimeOptions options = {});

  ~ServerRuntime();

  std::uint16_t port() const { return port_; }

  ServerStats stats() const;

  /// The diff-wire replica store, or nullptr when options.diffwire is off.
  /// Exposed so tests can invalidate replicas to force NACK fallbacks.
  diffwire::ReplicaStore* replicas() { return replicas_.get(); }

  /// Graceful drain: stops accepting, answers queued connections 503,
  /// finishes every in-flight request, joins all threads. Idempotent.
  void stop();

 private:
  /// One worker's private serving state: the response pipeline (templates
  /// are per-worker so the hot path takes no lock) plus a gauge the stats
  /// thread may read while the worker serves.
  struct Worker {
    std::unique_ptr<core::SendPipeline> pipeline;
    std::thread thread;
    std::atomic<std::uint64_t> template_bytes{0};
    std::atomic<std::uint64_t> template_evictions{0};
  };

  ServerRuntime() = default;

  void accept_loop(net::TcpListener& listener);
  void worker_loop(Worker& worker);
  void reactor_worker_loop(Worker& worker);
  void serve_connection(Worker& worker,
                        std::unique_ptr<net::Transport> transport);
  /// The per-request core both engines share: SOAP parse (400 + fault on
  /// failure), handler dispatch (500 + fault on failure), differential
  /// response serialization, stats. Writes into `transport` — the live
  /// socket on the blocking path, a DirectSliceTransport over the parked
  /// socket on the reactor path — so the bytes are identical by
  /// construction. Returns false when the write failed and the connection
  /// must close.
  bool answer_request(Worker& worker, const http::HttpRequest& request,
                      soap::EnvelopeParser& parser, net::Transport& transport);
  /// Serializes a SOAP fault and sends it with the given HTTP status.
  /// Returns false if the write failed (connection is dead).
  bool send_fault(net::Transport& transport, int status, const char* reason,
                  const char* fault_code, const std::string& detail);
  void reject_with_503(std::unique_ptr<net::Transport> transport);

  soap::RpcHandler handler_;
  ServerRuntimeOptions options_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::unique_ptr<AcceptQueue> queue_;    ///< kBlocking engine
  std::unique_ptr<DispatchQueue> dispatch_;  ///< kReactor engine
  std::unique_ptr<Reactor> reactor_;         ///< kReactor engine
  StatsCollector stats_;
  /// Present only in shared_cache mode. Declared before workers_: the
  /// worker pipelines point at it, so it must outlive them.
  std::unique_ptr<core::SharedTemplateCache> shared_cache_;
  /// Diff-wire pinned request bodies (options.diffwire). Thread-safe;
  /// shared by every worker. Declared before workers_ so it outlives them.
  std::unique_ptr<diffwire::ReplicaStore> replicas_;
  std::thread accept_thread_;
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace bsoap::server
