// soap::SoapHttpServer, implemented as a facade over server::ServerRuntime.
//
// The original SoapHttpServer spawned one unbounded thread per connection
// and only reaped them at stop(); the runtime replaces that with the fixed
// worker pool, so the facade is just option translation plus counter
// mapping. It lives in bsoap_server (not bsoap_soap) because the runtime
// sits above bsoap_core in the layering.
#include "server/server_runtime.hpp"
#include "soap/soap_server.hpp"

namespace bsoap::soap {

Result<std::unique_ptr<SoapHttpServer>> SoapHttpServer::start(
    RpcHandler handler) {
  return start(std::move(handler), SoapServerOptions{});
}

Result<std::unique_ptr<SoapHttpServer>> SoapHttpServer::start(
    RpcHandler handler, SoapServerOptions options) {
  server::ServerRuntimeOptions runtime_options;
  runtime_options.make_parser = std::move(options.make_parser);
  Result<std::unique_ptr<server::ServerRuntime>> runtime =
      server::ServerRuntime::start(std::move(handler),
                                   std::move(runtime_options));
  if (!runtime.ok()) return runtime.error();
  auto server = std::unique_ptr<SoapHttpServer>(new SoapHttpServer());
  server->runtime_ = std::move(runtime.value());
  return server;
}

SoapHttpServer::~SoapHttpServer() { stop(); }

std::uint16_t SoapHttpServer::port() const { return runtime_->port(); }

std::uint64_t SoapHttpServer::requests_served() const {
  return runtime_->stats().requests;
}

std::uint64_t SoapHttpServer::faults_returned() const {
  return runtime_->stats().faults;
}

void SoapHttpServer::stop() { runtime_->stop(); }

}  // namespace bsoap::soap
