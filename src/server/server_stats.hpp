// Runtime observability: a consistent-enough snapshot of what the server
// runtime is doing, cheap enough to sample from a monitoring thread while
// workers are serving.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/diff_serializer.hpp"

namespace bsoap::server {

/// Point-in-time counters. Individual fields are exact (atomic); the
/// snapshot as a whole is not fenced against in-flight requests.
struct ServerStats {
  // Connection lifecycle.
  std::uint64_t accepted = 0;      ///< connections admitted into the queue
  std::uint64_t rejected = 0;      ///< connections answered 503 (overload)
  std::uint64_t active = 0;        ///< currently open (queued + serving)
  std::uint64_t idle_closed = 0;   ///< closed by the idle timeout
  std::uint64_t read_timeouts = 0; ///< closed mid-request by the read timeout
  std::uint64_t drained = 0;       ///< queued connections closed at stop()

  // Accept queue (blocking path) / dispatch queue (reactor path).
  std::uint64_t queue_depth = 0;      ///< connections/requests waiting for a worker
  std::uint64_t queue_high_water = 0; ///< deepest the queue has been

  // Reactor core (io_model = Reactor; all zero on the blocking path).
  std::uint64_t epoll_wakeups = 0;    ///< epoll_wait returns (events or timeout)
  std::uint64_t ready_events = 0;     ///< readiness events delivered
  std::uint64_t partial_reads = 0;    ///< read rounds that left a request incomplete
  std::uint64_t partial_writes = 0;   ///< write rounds that left response bytes queued
  std::uint64_t write_copied_bytes = 0; ///< response bytes copied for EPOLLOUT drain
                                        ///< (EAGAIN tails; 0 = fully zero-copy)
  std::uint64_t completion_queue_depth_hw = 0; ///< deepest the completion queue has been
  // Per-state connection gauges (point-in-time).
  std::uint64_t conns_idle = 0;       ///< keep-alive, between requests
  std::uint64_t conns_reading = 0;    ///< mid-request (head or body)
  std::uint64_t conns_dispatched = 0; ///< request handed to the worker pool
  std::uint64_t conns_writing = 0;    ///< response draining via readiness

  // Requests.
  std::uint64_t requests = 0;     ///< answered with a result envelope
  std::uint64_t faults = 0;       ///< answered with a SOAP fault envelope
  std::uint64_t bad_requests = 0; ///< answered HTTP 400 (unparseable)

  // Response-side differential serialization (per paper match kind).
  std::uint64_t response_first_time = 0;
  std::uint64_t response_content_match = 0;
  std::uint64_t response_perfect_match = 0;
  std::uint64_t response_partial_match = 0;
  std::uint64_t response_template_bytes = 0;     ///< retained across workers
  std::uint64_t response_template_evictions = 0; ///< count + byte evictions

  // Diff-wire patch protocol (request side; all zero with diffwire off or
  // no negotiating clients).
  std::uint64_t patch_sends = 0;     ///< patch frames applied onto a replica
  std::uint64_t patch_replays = 0;   ///< of those, header-only replay frames
  std::uint64_t patch_nacks = 0;     ///< frames answered 409 (replica unusable)
  std::uint64_t fallback_full_sends = 0; ///< full-body re-offers after a pin
  std::uint64_t bytes_saved = 0;     ///< logical body bytes minus patch bytes
  std::uint64_t diff_pinned_replicas = 0; ///< gauge: replicas currently pinned
  std::uint64_t diff_pinned_bytes = 0;    ///< gauge: bytes those replicas hold

  // Differential deserialization (receive side; all zero when
  // diff_deserialize is off, a custom parser is installed, or no client
  // negotiated diff-wire).
  std::uint64_t deser_content_hits = 0;  ///< replays served with zero parsing
  std::uint64_t deser_fast_parses = 0;   ///< only touched leaves re-parsed
  std::uint64_t deser_full_parses = 0;   ///< whole-envelope parses (offers,
                                         ///< resyncs and demotions)
  std::uint64_t deser_leaves_reparsed = 0;
  std::uint64_t deser_demotions = 0;     ///< fast-parse-eligible requests
                                         ///< that fell back to a full parse

  // Wire compression (response content coding; all zero when no client
  // offers Accept-Encoding or every coded attempt fell back to identity).
  std::uint64_t compressed_sends = 0;    ///< responses sent content-coded
  std::uint64_t coding_bytes_saved = 0;  ///< raw minus coded payload bytes
  std::uint64_t coding_cpu_ns = 0;       ///< CPU spent compressing payloads

  // Shared template cache (shared_cache mode; all zero with per-worker
  // stores). See core::SharedTemplateCache::Stats for field meanings.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_contended = 0;
  std::uint64_t cache_clones = 0;
  std::uint64_t cache_retired = 0;
  std::uint64_t cache_invalidations = 0;
  std::uint64_t cache_pins = 0;

  std::uint64_t responses_total() const {
    return response_first_time + response_content_match +
           response_perfect_match + response_partial_match;
  }
  /// Responses that reused a saved template (any non-first-time kind).
  std::uint64_t response_diff_hits() const {
    return response_content_match + response_perfect_match +
           response_partial_match;
  }
};

/// The runtime's shared counter block. All relaxed atomics: counters are
/// monotonic tallies, not synchronization.
class StatsCollector {
 public:
  void record_response(core::MatchKind match) {
    switch (match) {
      case core::MatchKind::kFirstTime:
        response_first_time.fetch_add(1, std::memory_order_relaxed);
        break;
      case core::MatchKind::kContentMatch:
        response_content_match.fetch_add(1, std::memory_order_relaxed);
        break;
      case core::MatchKind::kPerfectStructural:
        response_perfect_match.fetch_add(1, std::memory_order_relaxed);
        break;
      case core::MatchKind::kPartialStructural:
        response_partial_match.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }

  /// Everything except the queue and template gauges, which the runtime
  /// owns (they live with the queue / the worker pipelines).
  ServerStats snapshot() const {
    ServerStats s;
    s.accepted = accepted.load(std::memory_order_relaxed);
    s.rejected = rejected.load(std::memory_order_relaxed);
    s.active = active.load(std::memory_order_relaxed);
    s.idle_closed = idle_closed.load(std::memory_order_relaxed);
    s.read_timeouts = read_timeouts.load(std::memory_order_relaxed);
    s.drained = drained.load(std::memory_order_relaxed);
    s.requests = requests.load(std::memory_order_relaxed);
    s.faults = faults.load(std::memory_order_relaxed);
    s.bad_requests = bad_requests.load(std::memory_order_relaxed);
    s.epoll_wakeups = epoll_wakeups.load(std::memory_order_relaxed);
    s.ready_events = ready_events.load(std::memory_order_relaxed);
    s.partial_reads = partial_reads.load(std::memory_order_relaxed);
    s.partial_writes = partial_writes.load(std::memory_order_relaxed);
    s.write_copied_bytes =
        write_copied_bytes.load(std::memory_order_relaxed);
    s.response_first_time =
        response_first_time.load(std::memory_order_relaxed);
    s.response_content_match =
        response_content_match.load(std::memory_order_relaxed);
    s.response_perfect_match =
        response_perfect_match.load(std::memory_order_relaxed);
    s.response_partial_match =
        response_partial_match.load(std::memory_order_relaxed);
    s.patch_sends = patch_sends.load(std::memory_order_relaxed);
    s.patch_replays = patch_replays.load(std::memory_order_relaxed);
    s.patch_nacks = patch_nacks.load(std::memory_order_relaxed);
    s.fallback_full_sends =
        fallback_full_sends.load(std::memory_order_relaxed);
    s.bytes_saved = bytes_saved.load(std::memory_order_relaxed);
    s.deser_content_hits =
        deser_content_hits.load(std::memory_order_relaxed);
    s.deser_fast_parses = deser_fast_parses.load(std::memory_order_relaxed);
    s.deser_full_parses = deser_full_parses.load(std::memory_order_relaxed);
    s.deser_leaves_reparsed =
        deser_leaves_reparsed.load(std::memory_order_relaxed);
    s.deser_demotions = deser_demotions.load(std::memory_order_relaxed);
    s.compressed_sends = compressed_sends.load(std::memory_order_relaxed);
    s.coding_bytes_saved =
        coding_bytes_saved.load(std::memory_order_relaxed);
    s.coding_cpu_ns = coding_cpu_ns.load(std::memory_order_relaxed);
    return s;
  }

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> active{0};
  std::atomic<std::uint64_t> idle_closed{0};
  std::atomic<std::uint64_t> read_timeouts{0};
  std::atomic<std::uint64_t> drained{0};
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> faults{0};
  std::atomic<std::uint64_t> bad_requests{0};
  std::atomic<std::uint64_t> epoll_wakeups{0};
  std::atomic<std::uint64_t> ready_events{0};
  std::atomic<std::uint64_t> partial_reads{0};
  std::atomic<std::uint64_t> partial_writes{0};
  std::atomic<std::uint64_t> write_copied_bytes{0};
  std::atomic<std::uint64_t> response_first_time{0};
  std::atomic<std::uint64_t> response_content_match{0};
  std::atomic<std::uint64_t> response_perfect_match{0};
  std::atomic<std::uint64_t> response_partial_match{0};
  std::atomic<std::uint64_t> patch_sends{0};
  std::atomic<std::uint64_t> patch_replays{0};
  std::atomic<std::uint64_t> patch_nacks{0};
  std::atomic<std::uint64_t> fallback_full_sends{0};
  std::atomic<std::uint64_t> bytes_saved{0};
  std::atomic<std::uint64_t> deser_content_hits{0};
  std::atomic<std::uint64_t> deser_fast_parses{0};
  std::atomic<std::uint64_t> deser_full_parses{0};
  std::atomic<std::uint64_t> deser_leaves_reparsed{0};
  std::atomic<std::uint64_t> deser_demotions{0};
  std::atomic<std::uint64_t> compressed_sends{0};
  std::atomic<std::uint64_t> coding_bytes_saved{0};
  std::atomic<std::uint64_t> coding_cpu_ns{0};
};

}  // namespace bsoap::server
