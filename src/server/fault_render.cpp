#include "server/fault_render.hpp"

#include "http/connection.hpp"
#include "http/http_message.hpp"
#include "soap/soap_server.hpp"

namespace bsoap::server {

std::string render_fault_response(int status, const char* reason,
                                  const char* fault_code,
                                  const std::string& detail) {
  http::HttpResponse head;
  head.status = status;
  head.reason = reason;
  head.headers.push_back(
      http::Header{"Content-Type", "text/xml; charset=utf-8"});
  const std::string body = soap::serialize_rpc_fault(fault_code, detail);
  http::content_length_framer().add_headers(head.headers, body.size());
  return http::serialize_response_head(head) + body;
}

std::string render_parse_failure_response(const Error& error) {
  if (error.code == ErrorCode::kOutOfRange) {
    return render_fault_response(413, "Payload Too Large", "SOAP-ENV:Client",
                                 error.to_string());
  }
  return render_fault_response(400, "Bad Request", "SOAP-ENV:Client",
                               error.to_string());
}

std::string render_overload_response() {
  http::HttpResponse head;
  head.status = 503;
  head.reason = "Service Unavailable";
  head.headers.push_back(
      http::Header{"Content-Type", "text/xml; charset=utf-8"});
  head.headers.push_back(http::Header{"Connection", "close"});
  head.headers.push_back(http::Header{"Retry-After", "1"});
  const std::string body =
      soap::serialize_rpc_fault("SOAP-ENV:Server", "server overloaded");
  http::content_length_framer().add_headers(head.headers, body.size());
  return http::serialize_response_head(head) + body;
}

}  // namespace bsoap::server
