// Event-driven reactor connection engine: one thread, epoll readiness,
// thousands of mostly-idle keep-alive connections.
//
// The blocking engine pins one worker thread per open connection; the
// reactor inverts that. A single loop owns the listen socket and every
// connection fd, drives each connection through an explicit state machine
//
//   Idle ──first byte──► ReadingHead ──head parsed──► ReadingBody
//     ▲                       │  (RequestParser, resumable at any byte)
//     │                       ▼ request complete
//     │                  Dispatched ──► bounded DispatchQueue ──► workers
//     │                       │             (SOAP parse, handler, response
//     │                       ▼              serialization + direct write)
//     │                   Writing ◄── completion queue + eventfd wakeup
//     └──response drained──┘         (unwritten EAGAIN tail comes back)
//
// and parks idle connections in epoll where they cost one registered fd,
// not one thread. Reads are non-blocking and incremental (a request split
// across any number of packets resumes where it left off); writes drain the
// serialized response via EPOLLOUT readiness instead of blocking sends.
// Idle/read timeouts come from the same ConnDeadline policy the blocking
// path's PacedTransport polls on, enforced here by a DeadlineHeap keyed
// into epoll_wait's timeout.
//
// Workers serialize the response through the identical SendPipeline/
// shared-cache path as the blocking engine, straight onto the parked
// connection's socket through a DirectSliceTransport (exclusive while
// Dispatched — the reactor holds no epoll interest there): the pipeline's
// slice list goes out as one gathered writev with no flatten, keeping the
// loop off the client's latency path; only an EAGAIN tail is copied and
// rides the eventfd-signaled completion queue back for readiness-driven
// drain.
// Overload (admission cap, full dispatch queue) and drain answers reuse
// the blocking path's rendered fault bytes, so every response is
// byte-for-byte identical across engines.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>

#include "http/request_parser.hpp"
#include "net/event_poller.hpp"
#include "net/tcp.hpp"
#include "net/transport.hpp"
#include "server/deadline.hpp"
#include "server/server_stats.hpp"
#include "soap/soap_server.hpp"

namespace bsoap::server {

/// Transport that buffers instead of writing (tests capture wire bytes
/// through it; the reactor workers now write directly via
/// DirectSliceTransport below).
class CaptureTransport final : public net::Transport {
 public:
  using net::Transport::send;
  Status send(const char* data, std::size_t n) override {
    buf_.append(data, n);
    return Status{};
  }
  Status send_slices(std::span<const net::ConstSlice> slices) override {
    for (const net::ConstSlice& s : slices) buf_.append(s.data, s.len);
    return Status{};
  }
  Result<std::size_t> recv(char* /*out*/, std::size_t /*n*/) override {
    return Error{ErrorCode::kUnsupported, "capture transport is write-only"};
  }
  void shutdown_send() override {}

  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Zero-copy worker→socket handoff. Wraps the parked connection's
/// non-blocking socket; the send pipeline's write stage lands here while
/// the worker still holds the template lease, so the response's ConstSlice
/// list — head, template chunks, framing — goes to the socket as one
/// gathered writev with no intermediate flatten. Only what the socket
/// buffer refuses (EAGAIN) is copied: the template mutates after the lease
/// returns, so the unwritten tail must be snapshotted for the reactor's
/// EPOLLOUT drain. `copied_bytes()` counts exactly those bytes — zero on
/// the happy path.
///
/// A socket error fails the send like the blocking path's transport would;
/// later sends on the same (now dead) connection short-circuit.
class DirectSliceTransport final : public net::Transport {
 public:
  using net::Transport::send;
  explicit DirectSliceTransport(net::Transport& inner) : inner_(inner) {}

  Status send(const char* data, std::size_t n) override {
    const net::ConstSlice slice{data, n};
    return send_slices(std::span<const net::ConstSlice>(&slice, 1));
  }
  Status send_slices(std::span<const net::ConstSlice> slices) override {
    if (write_error_) {
      return Error{ErrorCode::kIoError, "connection write already failed"};
    }
    std::size_t skip = 0;
    if (tail_.empty()) {
      Result<net::IoResult> sent = inner_.send_slices_some(slices);
      if (!sent.ok()) {
        write_error_ = true;
        return sent.error();
      }
      if (!sent.value().would_block) return Status{};
      skip = sent.value().n;
    }
    // Socket buffer full: copy the unwritten suffix for readiness-driven
    // drain. Once a tail exists every later byte must queue behind it.
    for (const net::ConstSlice& s : slices) {
      if (skip >= s.len) {
        skip -= s.len;
        continue;
      }
      tail_.append(s.data + skip, s.len - skip);
      skip = 0;
    }
    return Status{};
  }
  Result<std::size_t> recv(char* /*out*/, std::size_t /*n*/) override {
    return Error{ErrorCode::kUnsupported, "direct transport is write-only"};
  }
  void shutdown_send() override {}

  bool write_error() const { return write_error_; }
  std::size_t copied_bytes() const { return tail_.size(); }
  std::string take_tail() { return std::move(tail_); }

 private:
  net::Transport& inner_;
  std::string tail_;
  bool write_error_ = false;
};

/// One fully-received request on its way to the worker pool. The envelope
/// parser and transport are owned by the connection, which the reactor
/// keeps alive while its request is in flight; a connection serves one
/// request at a time and the reactor never touches a Dispatched
/// connection's socket, so worker access to both is exclusive (handed off
/// through the queue mutex, handed back through the completion mutex).
///
/// The transport lets the worker write the serialized response directly
/// while the connection is parked — the common whole-response write then
/// skips a reactor wakeup on the client's latency path, and only an EAGAIN
/// remainder rides the completion back for readiness-driven drain.
struct DispatchJob {
  std::uint64_t conn_id = 0;
  /// The complete parsed request. Workers need the head as well as the
  /// body: the diff-wire content type and negotiation headers decide
  /// whether the body is a SOAP envelope or a patch frame.
  http::HttpRequest request;
  soap::EnvelopeParser* parser = nullptr;
  net::Transport* transport = nullptr;
};

/// A serialized response (or its unwritten tail) on its way back to the
/// reactor.
struct Completion {
  std::uint64_t conn_id = 0;
  std::string bytes;  ///< remainder to drain via EPOLLOUT; empty if written
  bool keep_alive = true;
  bool write_error = false;  ///< the worker's direct write failed: close
};

/// Bounded handoff queue, reactor → workers. The reactor never blocks: a
/// full queue is the overload signal (the connection is answered 503).
/// After close(), poppers drain what remains — a queued job is a fully
/// received request, and graceful drain answers every one of them — then
/// get nullopt.
class DispatchQueue {
 public:
  explicit DispatchQueue(std::size_t capacity) : capacity_(capacity) {}

  /// False when full or closed: the caller answers 503.
  bool try_push(DispatchJob job) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || queue_.size() >= capacity_) return false;
      queue_.push_back(std::move(job));
      if (queue_.size() > high_water_) high_water_ = queue_.size();
    }
    ready_.notify_one();
    return true;
  }

  std::optional<DispatchJob> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;  // closed and drained
    DispatchJob job = std::move(queue_.front());
    queue_.pop_front();
    return job;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }
  std::size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<DispatchJob> queue_;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

class Reactor {
 public:
  struct Options {
    std::size_t max_connections = 128;
    Timeouts timeouts;
    /// Creates one request-envelope parser per connection (never null here;
    /// ServerRuntime substitutes its default full parser).
    std::function<soap::EnvelopeParser()> make_parser;
    /// Decompression-bomb bound for compressed request bodies, plumbed into
    /// every connection's RequestParser; an oversized body answers 413.
    std::size_t max_inflate_bytes = 1u << 30;
    /// Prebuilt overload answer (render_overload_response()), written with
    /// Connection: close to connections the reactor refuses.
    std::string overload_response;
  };

  /// Takes ownership of the bound listener and starts the loop thread.
  /// Counters land in `stats`; ready requests go to `dispatch`.
  static Result<std::unique_ptr<Reactor>> start(net::TcpListener listener,
                                                Options options,
                                                DispatchQueue* dispatch,
                                                StatsCollector* stats);

  ~Reactor();

  /// Worker threads hand serialized responses back here; the eventfd wakes
  /// the loop. Safe from any thread.
  void complete(Completion completion);

  /// Begins graceful drain: accepting stops, idle connections close, every
  /// in-flight request (reading, dispatched, or writing) is finished and
  /// answered, then the loop exits. Safe from any thread; join() after.
  void begin_drain();

  /// Joins the loop thread (returns once drain has emptied the map).
  void join();

  /// Gauges the runtime folds into ServerStats. Safe from any thread.
  std::uint64_t completion_queue_high_water() const;
  struct StateGauges {
    std::uint64_t idle = 0;
    std::uint64_t reading = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t writing = 0;
  };
  StateGauges state_gauges() const;

 private:
  enum class ConnState { kIdle, kReadingHead, kReadingBody, kDispatched, kWriting };

  struct Conn {
    std::uint64_t id = 0;
    std::unique_ptr<net::Transport> transport;
    int fd = -1;
    ConnState state = ConnState::kIdle;
    http::RequestParser parser;
    soap::EnvelopeParser envelope_parser;
    ConnDeadline deadline;
    std::string outbuf;
    std::size_t out_off = 0;
    bool close_after_write = false;
    bool admitted = false;   ///< counted in active / the admission cap
    bool want_write = false; ///< current EPOLLOUT registration

    Conn(const Timeouts& timeouts) : deadline(timeouts) {}
  };

  Reactor(net::TcpListener listener, Options options, DispatchQueue* dispatch,
          StatsCollector* stats, net::EventPoller poller, net::WakeupFd wakeup);

  void loop();
  void do_accept();
  void add_connection(std::unique_ptr<net::Transport> transport,
                      bool admitted);
  void drive_read(Conn& conn);
  void drive_write(Conn& conn);
  void finish_write(Conn& conn);
  void start_write(Conn& conn, std::string bytes, bool keep_alive);
  void dispatch_request(Conn& conn);
  void process_completions();
  void expire_deadlines(std::chrono::steady_clock::time_point now);
  void enter_drain();
  void set_state(Conn& conn, ConnState next);
  void update_interest(Conn& conn, bool read, bool write);
  void close_conn(Conn& conn);
  void arm_deadline(Conn& conn);

  net::TcpListener listener_;
  Options options_;
  DispatchQueue* dispatch_;
  StatsCollector* stats_;
  net::EventPoller poller_;
  net::WakeupFd wakeup_;

  // Loop-thread state.
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  DeadlineHeap deadlines_;
  std::uint64_t next_conn_id_ = 2;  // 0 = listener tag, 1 = wakeup tag
  std::size_t admitted_count_ = 0;
  bool drain_entered_ = false;
  bool listener_open_ = true;

  // Cross-thread state.
  std::atomic<bool> draining_{false};
  mutable std::mutex completions_mu_;
  std::deque<Completion> completions_;
  std::uint64_t completions_high_water_ = 0;
  std::atomic<std::uint64_t> gauge_idle_{0};
  std::atomic<std::uint64_t> gauge_reading_{0};
  std::atomic<std::uint64_t> gauge_dispatched_{0};
  std::atomic<std::uint64_t> gauge_writing_{0};

  std::thread thread_;
};

}  // namespace bsoap::server
