// Single source of truth for the server's connection deadlines.
//
// Both connection engines enforce the same two-phase timeout policy:
//
//   idle phase — between requests; expiry means the keep-alive connection
//                sat unused past `idle` and should be closed.
//   read phase — entered at the first byte of a request; expiry means the
//                client stalled mid-request (slowloris); the whole request
//                must arrive within `read`.
//
// PacedTransport (the blocking path) polls its socket in `slice`-sized
// waits so a blocked read periodically re-checks the deadline and the drain
// flag; the Reactor keys its deadline heap on the same ConnDeadline and
// derives its epoll_wait timeout with the same clamp arithmetic. Keeping
// the phase switch and the wait computation here is what makes the two
// paths time out identically.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

namespace bsoap::server {

/// The server's per-connection timeout policy.
struct Timeouts {
  std::chrono::milliseconds idle{30000};  ///< between requests
  std::chrono::milliseconds read{10000};  ///< whole-request arrival
  std::chrono::milliseconds slice{20};    ///< poll/wakeup granularity
};

/// One connection's current deadline: which phase it is in and when it
/// expires. Values are computed from a caller-supplied `now` so callers
/// that already read the clock (poll loops, heap maintenance) pay for it
/// once.
class ConnDeadline {
 public:
  using Clock = std::chrono::steady_clock;

  explicit ConnDeadline(const Timeouts& timeouts) : timeouts_(timeouts) {
    begin_idle(Clock::now());
  }

  /// Re-arms the idle deadline; call before waiting for the next request.
  void begin_idle(Clock::time_point now) {
    idle_phase_ = true;
    at_ = now + timeouts_.idle;
  }

  /// Switches to the read deadline; call at the first byte of a request.
  void begin_read(Clock::time_point now) {
    idle_phase_ = false;
    at_ = now + timeouts_.read;
  }

  bool idle_phase() const { return idle_phase_; }
  Clock::time_point at() const { return at_; }
  bool expired(Clock::time_point now) const { return now >= at_; }

  /// Milliseconds a blocking wait may sleep before it must re-check state:
  /// one poll slice, shortened so the wait never overshoots the deadline
  /// (the +1 rounds the sub-millisecond remainder up; a wait of at least
  /// 1 ms keeps EINTR-heavy loops from spinning).
  int wait_ms(Clock::time_point now) const {
    return clamp_wait_ms(at_, now, timeouts_.slice);
  }

  static int clamp_wait_ms(Clock::time_point deadline, Clock::time_point now,
                           std::chrono::milliseconds slice) {
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    const auto wait = std::min<std::chrono::milliseconds::rep>(
        slice.count(), remaining.count() + 1);
    return wait > 0 ? static_cast<int>(wait) : 1;
  }

 private:
  Timeouts timeouts_;
  bool idle_phase_ = true;
  Clock::time_point at_;
};

/// Min-heap of (deadline, tag) the reactor keys its epoll_wait timeout on.
/// Entries are lazily deleted: re-arming a tag pushes a new entry and the
/// stale one is skipped at expiry (the caller compares the popped time
/// against the connection's current ConnDeadline::at()). A stale heap top
/// only causes an early wakeup, never a missed deadline.
class DeadlineHeap {
 public:
  using Clock = ConnDeadline::Clock;

  void arm(Clock::time_point at, std::uint64_t tag) { heap_.push({at, tag}); }

  /// Earliest armed entry (possibly stale), or nullopt when empty.
  std::optional<Clock::time_point> next() const {
    if (heap_.empty()) return std::nullopt;
    return heap_.top().at;
  }

  /// Pops every entry due at `now` and calls fn(tag, at). The callback
  /// decides staleness; expired tags whose connection re-armed or closed
  /// are simply ignored there.
  template <typename Fn>
  void expire(Clock::time_point now, Fn&& fn) {
    while (!heap_.empty() && heap_.top().at <= now) {
      const Entry e = heap_.top();
      heap_.pop();
      fn(e.tag, e.at);
    }
  }

  /// epoll_wait timeout in ms until the earliest entry: -1 (block until an
  /// event) when empty, else the same round-up arithmetic as the blocking
  /// path's poll slices so both engines observe deadlines with identical
  /// latency bounds.
  int wait_ms(Clock::time_point now, std::chrono::milliseconds slice) const {
    if (heap_.empty()) return -1;
    return ConnDeadline::clamp_wait_ms(heap_.top().at, now, slice);
  }

  std::size_t size() const { return heap_.size(); }

 private:
  struct Entry {
    Clock::time_point at;
    std::uint64_t tag;
    bool operator>(const Entry& other) const { return at > other.at; }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
};

}  // namespace bsoap::server
