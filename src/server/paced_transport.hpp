// Deadline-enforcing Transport wrapper for server-side reads.
//
// Workers read blocking sockets; an abandoned client would otherwise pin a
// worker forever. PacedTransport polls the socket in short slices so every
// blocked read periodically observes (a) the drain flag — a keep-alive
// connection waiting between requests ends cleanly when the runtime stops —
// and (b) the idle/read deadline pair defined by server::Timeouts (see
// deadline.hpp, which the Reactor's timer heap shares).
//
// Sends pass through untouched. Non-socket transports (native_handle < 0)
// fall back to plain blocking reads.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

#include "net/transport.hpp"
#include "server/deadline.hpp"

namespace bsoap::server {

class PacedTransport final : public net::Transport {
 public:
  using Timeouts = server::Timeouts;

  /// `drain` (optional) is checked during idle waits; when it becomes true
  /// the next idle recv returns 0 (clean end-of-stream).
  PacedTransport(std::unique_ptr<net::Transport> inner, Timeouts timeouts,
                 const std::atomic<bool>* drain)
      : inner_(std::move(inner)), deadline_(timeouts), drain_(drain) {}

  /// Re-arms the idle deadline; call before waiting for the next request.
  void begin_idle() { deadline_.begin_idle(std::chrono::steady_clock::now()); }

  /// True if the transport was in the between-requests wait when the last
  /// timeout fired (distinguishes idle eviction from a stalled request).
  bool timed_out_idle() const { return deadline_.idle_phase(); }

  using net::Transport::send;
  Status send(const char* data, std::size_t n) override {
    return inner_->send(data, n);
  }
  Status send_slices(std::span<const net::ConstSlice> slices) override {
    return inner_->send_slices(slices);
  }
  Result<std::size_t> recv(char* out, std::size_t n) override;
  void shutdown_send() override { inner_->shutdown_send(); }
  void shutdown_both() override { inner_->shutdown_both(); }
  int native_handle() const override { return inner_->native_handle(); }

 private:
  std::unique_ptr<net::Transport> inner_;
  ConnDeadline deadline_;
  const std::atomic<bool>* drain_;
};

}  // namespace bsoap::server
