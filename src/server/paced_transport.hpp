// Deadline-enforcing Transport wrapper for server-side reads.
//
// Workers read blocking sockets; an abandoned client would otherwise pin a
// worker forever. PacedTransport polls the socket in short slices so every
// blocked read periodically observes (a) the drain flag — a keep-alive
// connection waiting between requests ends cleanly when the runtime stops —
// and (b) one of two deadlines:
//
//   idle phase  — between requests. Expiry means the connection is idle
//                 past ServerRuntimeOptions::idle_timeout; the worker
//                 closes it and takes the next connection off the queue.
//   read phase  — entered at the first byte of a request. Expiry means the
//                 client stalled mid-request (slowloris); the whole request
//                 must arrive within read_timeout.
//
// Sends pass through untouched. Non-socket transports (native_handle < 0)
// fall back to plain blocking reads.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

#include "net/transport.hpp"

namespace bsoap::server {

class PacedTransport final : public net::Transport {
 public:
  struct Timeouts {
    std::chrono::milliseconds idle{30000};
    std::chrono::milliseconds read{10000};
    std::chrono::milliseconds slice{20};  ///< poll granularity
  };

  /// `drain` (optional) is checked during idle waits; when it becomes true
  /// the next idle recv returns 0 (clean end-of-stream).
  PacedTransport(std::unique_ptr<net::Transport> inner, Timeouts timeouts,
                 const std::atomic<bool>* drain)
      : inner_(std::move(inner)), timeouts_(timeouts), drain_(drain) {
    begin_idle();
  }

  /// Re-arms the idle deadline; call before waiting for the next request.
  void begin_idle() {
    idle_phase_ = true;
    deadline_ = std::chrono::steady_clock::now() + timeouts_.idle;
  }

  /// True if the transport was in the between-requests wait when the last
  /// timeout fired (distinguishes idle eviction from a stalled request).
  bool timed_out_idle() const { return idle_phase_; }

  using net::Transport::send;
  Status send(const char* data, std::size_t n) override {
    return inner_->send(data, n);
  }
  Status send_slices(std::span<const net::ConstSlice> slices) override {
    return inner_->send_slices(slices);
  }
  Result<std::size_t> recv(char* out, std::size_t n) override;
  void shutdown_send() override { inner_->shutdown_send(); }
  void shutdown_both() override { inner_->shutdown_both(); }
  int native_handle() const override { return inner_->native_handle(); }

 private:
  std::unique_ptr<net::Transport> inner_;
  Timeouts timeouts_;
  const std::atomic<bool>* drain_;
  bool idle_phase_ = true;
  std::chrono::steady_clock::time_point deadline_;
};

}  // namespace bsoap::server
