// Deadline-enforcing Transport wrapper for the blocking engine's sockets.
//
// Workers read blocking sockets; an abandoned client would otherwise pin a
// worker forever. PacedTransport polls the socket in short slices so every
// blocked read periodically observes (a) the drain flag — a keep-alive
// connection waiting between requests ends cleanly when the runtime stops —
// and (b) the idle/read deadline pair defined by server::Timeouts (see
// deadline.hpp, which the Reactor's timer heap shares).
//
// Writes are slice-direct, the blocking-engine counterpart of the reactor's
// DirectSliceTransport: the socket is switched to non-blocking and gathered
// sends loop writev-style kernel calls on the caller's original buffers,
// advancing a private descriptor view (pointer + length per slice — never a
// byte copy, so the write_copied_bytes accounting stays at zero) and pacing
// EAGAIN with POLLOUT waits under the read-timeout budget. A stalled reader
// therefore costs at most `read` before the connection is dropped, where it
// previously blocked the worker indefinitely.
//
// Non-socket transports (native_handle < 0, or no O_NONBLOCK support) fall
// back to plain blocking reads and pass-through sends.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/transport.hpp"
#include "server/deadline.hpp"

namespace bsoap::server {

class PacedTransport final : public net::Transport {
 public:
  using Timeouts = server::Timeouts;

  /// `drain` (optional) is checked during idle waits; when it becomes true
  /// the next idle recv returns 0 (clean end-of-stream). `partial_writes`
  /// (optional) counts gathered sends that needed more than one kernel
  /// round (the blocking twin of the reactor's partial_writes stat).
  PacedTransport(std::unique_ptr<net::Transport> inner, Timeouts timeouts,
                 const std::atomic<bool>* drain,
                 std::atomic<std::uint64_t>* partial_writes = nullptr)
      : inner_(std::move(inner)),
        timeouts_(timeouts),
        deadline_(timeouts),
        drain_(drain),
        partial_writes_(partial_writes) {
    const int fd = inner_->native_handle();
    paced_io_ = fd >= 0 && inner_->set_nonblocking(true).ok();
  }

  /// Re-arms the idle deadline; call before waiting for the next request.
  void begin_idle() { deadline_.begin_idle(std::chrono::steady_clock::now()); }

  /// True if the transport was in the between-requests wait when the last
  /// timeout fired (distinguishes idle eviction from a stalled request).
  bool timed_out_idle() const { return deadline_.idle_phase(); }

  /// True when the socket runs the non-blocking paced path (tests).
  bool paced_io() const { return paced_io_; }

  using net::Transport::send;
  Status send(const char* data, std::size_t n) override;
  Status send_slices(std::span<const net::ConstSlice> slices) override;
  Result<std::size_t> recv(char* out, std::size_t n) override;
  void shutdown_send() override { inner_->shutdown_send(); }
  void shutdown_both() override { inner_->shutdown_both(); }
  int native_handle() const override { return inner_->native_handle(); }

 private:
  std::unique_ptr<net::Transport> inner_;
  Timeouts timeouts_;
  ConnDeadline deadline_;
  const std::atomic<bool>* drain_;
  std::atomic<std::uint64_t>* partial_writes_;
  bool paced_io_ = false;
  /// Gathered-send descriptor view: copies of the caller's (pointer, len)
  /// pairs, advanced across kernel rounds. Never the bytes themselves.
  std::vector<net::ConstSlice> slice_view_;
};

}  // namespace bsoap::server
