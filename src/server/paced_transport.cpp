#include "server/paced_transport.hpp"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace bsoap::server {

Result<std::size_t> PacedTransport::recv(char* out, std::size_t n) {
  const int fd = inner_->native_handle();
  if (fd < 0) return inner_->recv(out, n);  // no pollable handle: plain read

  for (;;) {
    if (idle_phase_ && drain_ != nullptr &&
        drain_->load(std::memory_order_acquire)) {
      return std::size_t{0};  // draining between requests: clean EOF
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline_) {
      return Error{ErrorCode::kTimeout,
                   idle_phase_ ? "idle timeout" : "read timeout"};
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline_ - now);
    const int wait_ms = static_cast<int>(
        std::min<std::chrono::milliseconds::rep>(timeouts_.slice.count(),
                                                 remaining.count() + 1));
    struct pollfd p;
    p.fd = fd;
    p.events = POLLIN;
    p.revents = 0;
    const int r = ::poll(&p, 1, wait_ms > 0 ? wait_ms : 1);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Error{ErrorCode::kIoError,
                   std::string("poll: ") + std::strerror(errno)};
    }
    if (r == 0) continue;  // slice elapsed: re-check drain flag and deadline
    Result<std::size_t> got = inner_->recv(out, n);
    if (got.ok() && got.value() > 0 && idle_phase_) {
      // First byte of a request: switch from idle to read deadline.
      idle_phase_ = false;
      deadline_ = std::chrono::steady_clock::now() + timeouts_.read;
    }
    return got;
  }
}

}  // namespace bsoap::server
