#include "server/paced_transport.hpp"

#include <poll.h>

#include <cerrno>
#include <cstring>

namespace bsoap::server {

Result<std::size_t> PacedTransport::recv(char* out, std::size_t n) {
  const int fd = inner_->native_handle();
  if (fd < 0) return inner_->recv(out, n);  // no pollable handle: plain read

  for (;;) {
    if (deadline_.idle_phase() && drain_ != nullptr &&
        drain_->load(std::memory_order_acquire)) {
      return std::size_t{0};  // draining between requests: clean EOF
    }
    const auto now = std::chrono::steady_clock::now();
    if (deadline_.expired(now)) {
      return Error{ErrorCode::kTimeout,
                   deadline_.idle_phase() ? "idle timeout" : "read timeout"};
    }
    struct pollfd p;
    p.fd = fd;
    p.events = POLLIN;
    p.revents = 0;
    const int r = ::poll(&p, 1, deadline_.wait_ms(now));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Error{ErrorCode::kIoError,
                   std::string("poll: ") + std::strerror(errno)};
    }
    if (r == 0) continue;  // slice elapsed: re-check drain flag and deadline
    Result<std::size_t> got = inner_->recv(out, n);
    if (got.ok() && got.value() > 0 && deadline_.idle_phase()) {
      // First byte of a request: switch from idle to read deadline.
      deadline_.begin_read(std::chrono::steady_clock::now());
    }
    return got;
  }
}

}  // namespace bsoap::server
