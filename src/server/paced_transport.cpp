#include "server/paced_transport.hpp"

#include <poll.h>

#include <cerrno>
#include <cstring>

namespace bsoap::server {

Result<std::size_t> PacedTransport::recv(char* out, std::size_t n) {
  const int fd = inner_->native_handle();
  if (fd < 0) return inner_->recv(out, n);  // no pollable handle: plain read

  for (;;) {
    if (deadline_.idle_phase() && drain_ != nullptr &&
        drain_->load(std::memory_order_acquire)) {
      return std::size_t{0};  // draining between requests: clean EOF
    }
    const auto now = std::chrono::steady_clock::now();
    if (deadline_.expired(now)) {
      return Error{ErrorCode::kTimeout,
                   deadline_.idle_phase() ? "idle timeout" : "read timeout"};
    }
    struct pollfd p;
    p.fd = fd;
    p.events = POLLIN;
    p.revents = 0;
    const int r = ::poll(&p, 1, deadline_.wait_ms(now));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Error{ErrorCode::kIoError,
                   std::string("poll: ") + std::strerror(errno)};
    }
    if (r == 0) continue;  // slice elapsed: re-check drain flag and deadline
    if (paced_io_) {
      Result<net::IoResult> got = inner_->recv_some(out, n);
      if (!got.ok()) return got.error();
      if (got.value().would_block) continue;  // spurious readiness: re-poll
      if (got.value().n > 0 && deadline_.idle_phase()) {
        // First byte of a request: switch from idle to read deadline.
        deadline_.begin_read(std::chrono::steady_clock::now());
      }
      return got.value().n;
    }
    Result<std::size_t> got = inner_->recv(out, n);
    if (got.ok() && got.value() > 0 && deadline_.idle_phase()) {
      deadline_.begin_read(std::chrono::steady_clock::now());
    }
    return got;
  }
}

Status PacedTransport::send(const char* data, std::size_t n) {
  if (!paced_io_) return inner_->send(data, n);
  const net::ConstSlice slice{data, n};
  return send_slices(std::span<const net::ConstSlice>(&slice, 1));
}

Status PacedTransport::send_slices(std::span<const net::ConstSlice> slices) {
  if (!paced_io_) return inner_->send_slices(slices);
  const int fd = inner_->native_handle();

  slice_view_.assign(slices.begin(), slices.end());
  std::size_t index = 0;
  while (index < slice_view_.size() && slice_view_[index].len == 0) ++index;
  if (index == slice_view_.size()) return Status{};

  // The whole response must drain within one read-timeout budget: a client
  // that stops reading releases the worker instead of pinning it.
  ConnDeadline deadline(timeouts_);
  deadline.begin_read(std::chrono::steady_clock::now());
  bool first_round = true;
  for (;;) {
    const std::span<const net::ConstSlice> remaining(
        slice_view_.data() + index, slice_view_.size() - index);
    Result<net::IoResult> wrote = inner_->send_slices_some(remaining);
    if (!wrote.ok()) return wrote.error();
    std::size_t n = wrote.value().n;
    while (index < slice_view_.size() && n >= slice_view_[index].len) {
      n -= slice_view_[index].len;
      ++index;
    }
    if (index == slice_view_.size()) return Status{};
    if (n > 0) {
      slice_view_[index].data += n;
      slice_view_[index].len -= n;
    }
    if (first_round) {
      first_round = false;
      if (partial_writes_ != nullptr) {
        partial_writes_->fetch_add(1, std::memory_order_relaxed);
      }
    }
    // The socket buffer is full: wait for writability under the deadline.
    const auto now = std::chrono::steady_clock::now();
    if (deadline.expired(now)) {
      return Error{ErrorCode::kTimeout, "write timeout"};
    }
    struct pollfd p;
    p.fd = fd;
    p.events = POLLOUT;
    p.revents = 0;
    const int r = ::poll(&p, 1, deadline.wait_ms(now));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Error{ErrorCode::kIoError,
                   std::string("poll: ") + std::strerror(errno)};
    }
    // r == 0: slice elapsed — loop re-checks the deadline and retries.
  }
}

}  // namespace bsoap::server
