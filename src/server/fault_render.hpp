// Renders the server's HTTP fault answers as complete wire bytes.
//
// Both connection engines answer errors through these helpers — the
// blocking path writes the returned string in one send, the reactor queues
// it on the connection's write drain — so a 400/500/503 is byte-for-byte
// identical whichever engine produced it (the reactor equivalence tests
// assert exactly that).
#pragma once

#include <string>

#include "common/error.hpp"

namespace bsoap::server {

/// Head + SOAP fault envelope for `status`, framed with Content-Length,
/// exactly as HttpConnection::send_response would put it on the wire.
std::string render_fault_response(int status, const char* reason,
                                  const char* fault_code,
                                  const std::string& detail);

/// The answer to a request that failed to parse: 413 Payload Too Large when
/// the error is the decompression bound (kOutOfRange — a compressed body
/// inflating past the server's max_inflate_bytes), 400 Bad Request
/// otherwise. Both are Client faults; both engines answer through this so
/// the bytes match.
std::string render_parse_failure_response(const Error& error);

/// The overload answer: 503 with Connection: close and Retry-After, sent to
/// connections the server refuses to serve (admission cap, full queue,
/// drain).
std::string render_overload_response();

}  // namespace bsoap::server
