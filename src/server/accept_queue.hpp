// Bounded handoff queue between the accept thread and the worker pool.
//
// Single producer (the accept thread), many consumers (workers). The
// producer never blocks: a full queue is the overload signal — the caller
// answers 503 instead of queueing, which is what bounds memory and thread
// count under load. Consumers block until a connection or close().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "net/transport.hpp"

namespace bsoap::server {

class AcceptQueue {
 public:
  explicit AcceptQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Enqueues the transport, or hands it back if the queue is full or
  /// closed (returns nullptr on success). Never blocks.
  std::unique_ptr<net::Transport> try_push(
      std::unique_ptr<net::Transport> transport) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || queue_.size() >= capacity_) {
        return transport;  // rejected: caller answers 503 / closes
      }
      queue_.push_back(std::move(transport));
      if (queue_.size() > high_water_) high_water_ = queue_.size();
    }
    ready_.notify_one();
    return nullptr;
  }

  /// Blocks for the next connection. Returns nullptr once close() has been
  /// called — even if items remain, so stop() can drain them itself and no
  /// worker picks up new work during shutdown.
  std::unique_ptr<net::Transport> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (closed_) return nullptr;
    std::unique_ptr<net::Transport> transport = std::move(queue_.front());
    queue_.pop_front();
    return transport;
  }

  /// Closes the queue (poppers wake with nullptr) and returns whatever was
  /// still waiting so the caller can dispose of it.
  std::vector<std::unique_ptr<net::Transport>> close() {
    std::vector<std::unique_ptr<net::Transport>> leftover;
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
      while (!queue_.empty()) {
        leftover.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    ready_.notify_all();
    return leftover;
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }
  std::size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<std::unique_ptr<net::Transport>> queue_;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace bsoap::server
