#include "server/reactor.hpp"

#include <array>
#include <utility>
#include <vector>

#include "server/fault_render.hpp"

namespace bsoap::server {

using Clock = std::chrono::steady_clock;

Result<std::unique_ptr<Reactor>> Reactor::start(net::TcpListener listener,
                                                Options options,
                                                DispatchQueue* dispatch,
                                                StatsCollector* stats) {
  BSOAP_ASSERT(options.make_parser != nullptr);
  BSOAP_RETURN_IF_ERROR(listener.set_nonblocking());
  Result<net::EventPoller> poller = net::EventPoller::create();
  if (!poller.ok()) return poller.error();
  Result<net::WakeupFd> wakeup = net::WakeupFd::create();
  if (!wakeup.ok()) return wakeup.error();

  BSOAP_RETURN_IF_ERROR(poller.value().add(listener.native_handle(),
                                           /*tag=*/0, /*read=*/true,
                                           /*write=*/false));
  BSOAP_RETURN_IF_ERROR(poller.value().add(wakeup.value().fd(), /*tag=*/1,
                                           /*read=*/true, /*write=*/false));

  auto reactor = std::unique_ptr<Reactor>(
      new Reactor(std::move(listener), std::move(options), dispatch, stats,
                  std::move(poller.value()), std::move(wakeup.value())));
  reactor->thread_ = std::thread([r = reactor.get()] { r->loop(); });
  return reactor;
}

Reactor::Reactor(net::TcpListener listener, Options options,
                 DispatchQueue* dispatch, StatsCollector* stats,
                 net::EventPoller poller, net::WakeupFd wakeup)
    : listener_(std::move(listener)),
      options_(std::move(options)),
      dispatch_(dispatch),
      stats_(stats),
      poller_(std::move(poller)),
      wakeup_(std::move(wakeup)) {}

Reactor::~Reactor() {
  begin_drain();
  join();
}

void Reactor::complete(Completion completion) {
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    completions_.push_back(std::move(completion));
    if (completions_.size() > completions_high_water_) {
      completions_high_water_ = completions_.size();
    }
  }
  wakeup_.signal();
}

void Reactor::begin_drain() {
  draining_.store(true, std::memory_order_release);
  wakeup_.signal();
}

void Reactor::join() {
  if (thread_.joinable()) thread_.join();
}

std::uint64_t Reactor::completion_queue_high_water() const {
  std::lock_guard<std::mutex> lock(completions_mu_);
  return completions_high_water_;
}

Reactor::StateGauges Reactor::state_gauges() const {
  StateGauges g;
  g.idle = gauge_idle_.load(std::memory_order_relaxed);
  g.reading = gauge_reading_.load(std::memory_order_relaxed);
  g.dispatched = gauge_dispatched_.load(std::memory_order_relaxed);
  g.writing = gauge_writing_.load(std::memory_order_relaxed);
  return g;
}

void Reactor::loop() {
  std::array<net::EventPoller::Event, 128> events;
  for (;;) {
    if (!drain_entered_ && draining_.load(std::memory_order_acquire)) {
      enter_drain();
    }
    if (drain_entered_ && conns_.empty()) break;

    const auto now = Clock::now();
    expire_deadlines(now);
    if (drain_entered_ && conns_.empty()) break;

    const int timeout_ms =
        deadlines_.wait_ms(Clock::now(), options_.timeouts.slice);
    Result<std::size_t> n = poller_.wait(events, timeout_ms);
    if (!n.ok()) break;  // epoll itself failed; nothing sane to do
    stats_->epoll_wakeups.fetch_add(1, std::memory_order_relaxed);
    stats_->ready_events.fetch_add(n.value(), std::memory_order_relaxed);

    for (std::size_t i = 0; i < n.value(); ++i) {
      const net::EventPoller::Event& ev = events[i];
      if (ev.tag == 0) {
        if (listener_open_) do_accept();
        continue;
      }
      if (ev.tag == 1) {
        wakeup_.drain();
        process_completions();
        continue;
      }
      // Connection event. Re-look up after each drive: either drive may
      // close (and erase) the connection.
      if (ev.writable || ev.hangup) {
        auto it = conns_.find(ev.tag);
        if (it != conns_.end() && it->second->state == ConnState::kWriting) {
          drive_write(*it->second);
        }
      }
      if (ev.readable || ev.hangup) {
        auto it = conns_.find(ev.tag);
        if (it != conns_.end() && (it->second->state == ConnState::kIdle ||
                                   it->second->state == ConnState::kReadingHead ||
                                   it->second->state == ConnState::kReadingBody)) {
          drive_read(*it->second);
        }
      }
    }
  }
}

void Reactor::do_accept() {
  for (;;) {
    Result<std::unique_ptr<net::Transport>> conn = listener_.try_accept();
    if (!conn.ok()) return;  // transient accept failure: retry on readiness
    if (conn.value() == nullptr) return;  // accept backlog drained

    const bool admit = admitted_count_ < options_.max_connections;
    if (!admit) stats_->rejected.fetch_add(1, std::memory_order_relaxed);
    add_connection(std::move(conn.value()), admit);
  }
}

void Reactor::add_connection(std::unique_ptr<net::Transport> transport,
                             bool admitted) {
  if (!transport->set_nonblocking(true).ok()) return;  // drop: cannot serve

  auto conn = std::make_unique<Conn>(options_.timeouts);
  conn->id = next_conn_id_++;
  conn->fd = transport->native_handle();
  conn->transport = std::move(transport);
  conn->admitted = admitted;
  conn->parser.set_max_inflate_bytes(options_.max_inflate_bytes);
  if (admitted) conn->envelope_parser = options_.make_parser();

  Conn& ref = *conn;
  if (!poller_.add(ref.fd, ref.id, /*read=*/true, /*write=*/false).ok()) {
    return;  // conn destroyed: fd closes, client sees RST-ish close
  }
  conns_.emplace(ref.id, std::move(conn));
  gauge_idle_.fetch_add(1, std::memory_order_relaxed);

  if (!admitted) {
    // Refused at the admission cap: answer the same 503 bytes the blocking
    // path sends and close once they drain.
    start_write(ref, options_.overload_response, /*keep_alive=*/false);
    return;
  }
  admitted_count_++;
  stats_->active.fetch_add(1, std::memory_order_relaxed);
  stats_->accepted.fetch_add(1, std::memory_order_relaxed);
  ref.deadline.begin_idle(Clock::now());
  arm_deadline(ref);
  // The client may have sent its first request in the same packet burst as
  // the connect; level-triggered epoll would report it, but reading now
  // saves one loop turn.
  drive_read(ref);
}

void Reactor::drive_read(Conn& conn) {
  char tmp[16 * 1024];
  for (;;) {
    // Pipelined bytes buffered past the previous request parse first.
    Status resumed = conn.parser.resume();
    if (!resumed.ok()) {
      stats_->bad_requests.fetch_add(1, std::memory_order_relaxed);
      start_write(conn, render_parse_failure_response(resumed.error()),
                  /*keep_alive=*/false);
      return;
    }
    if (conn.parser.done()) {
      dispatch_request(conn);
      return;
    }

    Result<net::IoResult> got = conn.transport->recv_some(tmp, sizeof(tmp));
    if (!got.ok()) {
      close_conn(conn);
      return;
    }
    if (got.value().would_block) {
      if (conn.parser.started()) {
        stats_->partial_reads.fetch_add(1, std::memory_order_relaxed);
        set_state(conn, conn.parser.state() == http::RequestParser::State::kBody
                            ? ConnState::kReadingBody
                            : ConnState::kReadingHead);
      } else {
        set_state(conn, ConnState::kIdle);
      }
      return;  // stay registered for EPOLLIN; resume on the next event
    }
    if (got.value().n == 0) {
      // End of stream: same taxonomy as the blocking reader. A half-closed
      // client that stopped mid-head still gets its 400 (it can still read).
      const Error eof = conn.parser.eof_error();
      if (eof.code == ErrorCode::kProtocolError) {
        stats_->bad_requests.fetch_add(1, std::memory_order_relaxed);
        start_write(conn, render_parse_failure_response(eof),
                    /*keep_alive=*/false);
      } else {
        close_conn(conn);  // kClosed: keep-alive (or mid-body) ended cleanly
      }
      return;
    }

    if (conn.deadline.idle_phase()) {
      // First byte of a request: idle deadline becomes the read deadline,
      // exactly as PacedTransport switches phases.
      conn.deadline.begin_read(Clock::now());
      arm_deadline(conn);
    }
    Status fed = conn.parser.feed(tmp, got.value().n);
    if (!fed.ok()) {
      stats_->bad_requests.fetch_add(1, std::memory_order_relaxed);
      start_write(conn, render_parse_failure_response(fed.error()),
                  /*keep_alive=*/false);
      return;
    }
    if (conn.parser.done()) {
      dispatch_request(conn);
      return;
    }
  }
}

void Reactor::dispatch_request(Conn& conn) {
  DispatchJob job;
  job.conn_id = conn.id;
  job.request = conn.parser.take();
  job.parser = &conn.envelope_parser;
  job.transport = conn.transport.get();
  if (!dispatch_->try_push(std::move(job))) {
    // Every worker busy and the queue full: same overload answer the
    // blocking path's accept loop gives when its queue overflows.
    stats_->rejected.fetch_add(1, std::memory_order_relaxed);
    start_write(conn, options_.overload_response, /*keep_alive=*/false);
    return;
  }
  set_state(conn, ConnState::kDispatched);
  update_interest(conn, /*read=*/false, /*write=*/false);
}

void Reactor::process_completions() {
  std::deque<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(completions_);
  }
  for (Completion& c : batch) {
    auto it = conns_.find(c.conn_id);
    if (it == conns_.end()) continue;  // connection closed while dispatched
    if (c.write_error) {
      close_conn(*it->second);
      continue;
    }
    // Usually c.bytes is empty (the worker wrote the whole response
    // directly) and this falls straight through drive_write to
    // finish_write; a non-empty remainder drains via EPOLLOUT.
    start_write(*it->second, std::move(c.bytes), c.keep_alive);
  }
}

void Reactor::start_write(Conn& conn, std::string bytes, bool keep_alive) {
  conn.outbuf = std::move(bytes);
  conn.out_off = 0;
  conn.close_after_write = !keep_alive;
  set_state(conn, ConnState::kWriting);
  drive_write(conn);
}

void Reactor::drive_write(Conn& conn) {
  while (conn.out_off < conn.outbuf.size()) {
    Result<net::IoResult> sent = conn.transport->send_some(
        conn.outbuf.data() + conn.out_off, conn.outbuf.size() - conn.out_off);
    if (!sent.ok()) {
      close_conn(conn);
      return;
    }
    conn.out_off += sent.value().n;
    if (sent.value().would_block) {
      stats_->partial_writes.fetch_add(1, std::memory_order_relaxed);
      update_interest(conn, /*read=*/false, /*write=*/true);
      return;  // resume on EPOLLOUT
    }
  }
  finish_write(conn);
}

void Reactor::finish_write(Conn& conn) {
  conn.outbuf.clear();
  conn.out_off = 0;
  if (conn.close_after_write ||
      draining_.load(std::memory_order_acquire)) {
    // Mirrors the blocking loop's post-answer drain check: the response the
    // client is owed went out; the keep-alive stops here.
    close_conn(conn);
    return;
  }
  set_state(conn, ConnState::kIdle);
  conn.deadline.begin_idle(Clock::now());
  arm_deadline(conn);
  update_interest(conn, /*read=*/true, /*write=*/false);
  // A pipelined next request may be fully buffered already; parse it now
  // rather than waiting for bytes that may never come.
  drive_read(conn);
}

void Reactor::expire_deadlines(Clock::time_point now) {
  deadlines_.expire(now, [&](std::uint64_t tag, Clock::time_point at) {
    auto it = conns_.find(tag);
    if (it == conns_.end()) return;  // closed since arming: stale entry
    Conn& conn = *it->second;
    if (conn.state == ConnState::kDispatched ||
        conn.state == ConnState::kWriting) {
      return;  // no read deadline applies while answering
    }
    if (conn.deadline.at() != at) return;  // re-armed since: stale entry
    if (!conn.deadline.expired(now)) return;
    if (conn.deadline.idle_phase()) {
      stats_->idle_closed.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats_->read_timeouts.fetch_add(1, std::memory_order_relaxed);
    }
    // Timeouts close without an answer, exactly like the blocking path.
    close_conn(conn);
  });
}

void Reactor::enter_drain() {
  drain_entered_ = true;
  if (listener_open_) {
    (void)poller_.remove(listener_.native_handle());
    listener_open_ = false;
  }
  // Idle connections have no request in progress: close them now, the same
  // clean EOF PacedTransport turns its next poll slice into. Connections
  // mid-read, dispatched, or writing finish their request first and close
  // in finish_write.
  std::vector<std::uint64_t> idle;
  for (const auto& [id, conn] : conns_) {
    if (conn->state == ConnState::kIdle) idle.push_back(id);
  }
  for (std::uint64_t id : idle) {
    auto it = conns_.find(id);
    if (it != conns_.end()) close_conn(*it->second);
  }
}

void Reactor::set_state(Conn& conn, ConnState next) {
  if (conn.state == next) return;
  const auto gauge = [this](ConnState s) -> std::atomic<std::uint64_t>* {
    switch (s) {
      case ConnState::kIdle:
        return &gauge_idle_;
      case ConnState::kReadingHead:
      case ConnState::kReadingBody:
        return &gauge_reading_;
      case ConnState::kDispatched:
        return &gauge_dispatched_;
      case ConnState::kWriting:
        return &gauge_writing_;
    }
    return nullptr;
  };
  std::atomic<std::uint64_t>* from = gauge(conn.state);
  std::atomic<std::uint64_t>* to = gauge(next);
  if (from != to) {
    from->fetch_sub(1, std::memory_order_relaxed);
    to->fetch_add(1, std::memory_order_relaxed);
  }
  conn.state = next;
}

void Reactor::update_interest(Conn& conn, bool read, bool write) {
  (void)poller_.modify(conn.fd, conn.id, read, write);
  conn.want_write = write;
}

void Reactor::close_conn(Conn& conn) {
  (void)poller_.remove(conn.fd);
  const auto gauge_of = [this](ConnState s) -> std::atomic<std::uint64_t>& {
    switch (s) {
      case ConnState::kReadingHead:
      case ConnState::kReadingBody:
        return gauge_reading_;
      case ConnState::kDispatched:
        return gauge_dispatched_;
      case ConnState::kWriting:
        return gauge_writing_;
      case ConnState::kIdle:
      default:
        return gauge_idle_;
    }
  };
  gauge_of(conn.state).fetch_sub(1, std::memory_order_relaxed);
  if (conn.admitted) {
    admitted_count_--;
    stats_->active.fetch_sub(1, std::memory_order_relaxed);
  }
  conns_.erase(conn.id);  // destroys conn; the fd closes with the transport
}

void Reactor::arm_deadline(Conn& conn) {
  deadlines_.arm(conn.deadline.at(), conn.id);
}

}  // namespace bsoap::server
