#include "http/chunked_coding.hpp"

namespace bsoap::http {

std::string chunk_size_line(std::size_t n) {
  char buf[20];
  int len = 0;
  if (n == 0) {
    buf[len++] = '0';
  } else {
    char tmp[16];
    int t = 0;
    while (n > 0) {
      const std::size_t digit = n & 0xF;
      tmp[t++] = static_cast<char>(digit < 10 ? '0' + digit : 'a' + digit - 10);
      n >>= 4;
    }
    while (t > 0) buf[len++] = tmp[--t];
  }
  buf[len++] = '\r';
  buf[len++] = '\n';
  return std::string(buf, static_cast<std::size_t>(len));
}

namespace {

Result<std::size_t> parse_hex_size(std::string_view line) {
  // Chunk extensions (";ext=...") are permitted and ignored.
  std::size_t value = 0;
  std::size_t i = 0;
  bool any = false;
  for (; i < line.size(); ++i) {
    const char c = line[i];
    std::size_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<std::size_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<std::size_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') digit = static_cast<std::size_t>(c - 'A' + 10);
    else break;
    if (value > (~std::size_t{0}) >> 4) {
      return Error{ErrorCode::kProtocolError, "chunk size overflow"};
    }
    value = (value << 4) | digit;
    any = true;
  }
  if (!any) {
    return Error{ErrorCode::kProtocolError,
                 "bad chunk size line: " + std::string(line)};
  }
  return value;
}

}  // namespace

std::vector<net::ConstSlice> encode_chunked(
    std::span<const net::ConstSlice> body, std::vector<std::string>* scratch) {
  scratch->clear();
  // The returned slices point into scratch's strings: reserve the final
  // element count up front so push_back never reallocates the vector and
  // invalidates earlier data() pointers.
  scratch->reserve(body.size() + 1);
  std::vector<net::ConstSlice> out;
  out.reserve(body.size() * 3 + 1);
  static constexpr std::string_view kCrlf = "\r\n";
  for (const net::ConstSlice& s : body) {
    if (s.len == 0) continue;
    scratch->push_back(chunk_size_line(s.len));
    out.push_back(net::ConstSlice{scratch->back().data(), scratch->back().size()});
    out.push_back(s);
    out.push_back(net::ConstSlice{kCrlf.data(), kCrlf.size()});
  }
  scratch->push_back("0\r\n\r\n");
  out.push_back(net::ConstSlice{scratch->back().data(), scratch->back().size()});
  return out;
}

Status ChunkedDecoder::feed(std::string_view data, std::string* out,
                            std::size_t* consumed) {
  std::size_t i = 0;
  while (i < data.size() && state_ != State::kDone) {
    switch (state_) {
      case State::kSizeLine: {
        const char c = data[i++];
        if (c == '\n') {
          if (!size_line_.empty() && size_line_.back() == '\r') {
            size_line_.pop_back();
          }
          Result<std::size_t> size = parse_hex_size(size_line_);
          if (!size.ok()) return size.error();
          size_line_.clear();
          if (size.value() == 0) {
            state_ = State::kTrailer;
          } else {
            remaining_ = size.value();
            state_ = State::kData;
          }
        } else {
          if (size_line_.size() > 64) {
            return Error{ErrorCode::kProtocolError, "chunk size line too long"};
          }
          size_line_ += c;
        }
        break;
      }
      case State::kData: {
        const std::size_t take = std::min(remaining_, data.size() - i);
        out->append(data.data() + i, take);
        i += take;
        remaining_ -= take;
        if (remaining_ == 0) state_ = State::kDataCrlf;
        break;
      }
      case State::kDataCrlf: {
        const char c = data[i++];
        if (c == '\n') state_ = State::kSizeLine;
        else if (c != '\r') {
          return Error{ErrorCode::kProtocolError, "missing CRLF after chunk"};
        }
        break;
      }
      case State::kTrailer: {
        // Trailer section: lines until an empty line terminates the body.
        const char c = data[i++];
        if (c == '\n') {
          if (!trailer_line_.empty() && trailer_line_.back() == '\r') {
            trailer_line_.pop_back();
          }
          if (trailer_line_.empty()) {
            state_ = State::kDone;
          }
          trailer_line_.clear();
        } else {
          trailer_line_ += c;
        }
        break;
      }
      case State::kDone:
        break;
    }
  }
  *consumed = i;
  return Status{};
}

}  // namespace bsoap::http
