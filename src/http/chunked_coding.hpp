// HTTP/1.1 chunked transfer encoding (RFC 2616 Section 3.6.1).
//
// Encoding is zero-copy: the body slices are interleaved with small
// framing slices (hex size lines, CRLFs) so the whole message still goes out
// through one writev. Decoding is incremental, suitable for a streaming
// reader.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "net/socket.hpp"

namespace bsoap::http {

/// One chunk-size line of the coding: the hex size followed by CRLF.
std::string chunk_size_line(std::size_t n);

/// Wraps `body` slices in chunked framing. `scratch` owns the framing bytes
/// and must outlive the returned slices. Each body slice becomes one HTTP
/// chunk; the terminating zero chunk is appended.
std::vector<net::ConstSlice> encode_chunked(
    std::span<const net::ConstSlice> body, std::vector<std::string>* scratch);

/// Incremental chunked-body decoder. Feed bytes; it appends decoded payload
/// to `out` and reports when the terminating chunk has been consumed.
class ChunkedDecoder {
 public:
  /// Consumes as much of `data` as possible. On return, *consumed is the
  /// number of bytes eaten (the rest belongs to the next message).
  Status feed(std::string_view data, std::string* out, std::size_t* consumed);

  bool done() const { return state_ == State::kDone; }

 private:
  enum class State { kSizeLine, kData, kDataCrlf, kTrailer, kDone };

  State state_ = State::kSizeLine;
  std::string size_line_;
  std::size_t remaining_ = 0;
  std::string trailer_line_;
};

}  // namespace bsoap::http
