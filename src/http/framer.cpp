#include "http/framer.hpp"

#include "http/chunked_coding.hpp"

namespace bsoap::http {

void ContentLengthFramer::add_headers(std::vector<Header>& headers,
                                      std::size_t body_size) const {
  headers.push_back(Header{"Content-Length", std::to_string(body_size)});
}

void ContentLengthFramer::frame_body(std::span<const net::ConstSlice> body,
                                     std::vector<net::ConstSlice>* wire,
                                     std::vector<std::string>* scratch) const {
  scratch->clear();
  wire->insert(wire->end(), body.begin(), body.end());
}

void ChunkedFramer::add_headers(std::vector<Header>& headers,
                                std::size_t /*body_size*/) const {
  headers.push_back(Header{"Transfer-Encoding", "chunked"});
}

void ChunkedFramer::frame_body(std::span<const net::ConstSlice> body,
                               std::vector<net::ConstSlice>* wire,
                               std::vector<std::string>* scratch) const {
  scratch->clear();
  // The emitted slices point into scratch's strings: reserve the final
  // element count up front so push_back never reallocates the vector and
  // invalidates earlier data() pointers.
  scratch->reserve(body.size() + 1);
  wire->reserve(wire->size() + body.size() * 3 + 1);
  static constexpr std::string_view kCrlf = "\r\n";
  for (const net::ConstSlice& s : body) {
    if (s.len == 0) continue;
    scratch->push_back(chunk_size_line(s.len));
    wire->push_back(
        net::ConstSlice{scratch->back().data(), scratch->back().size()});
    wire->push_back(s);
    wire->push_back(net::ConstSlice{kCrlf.data(), kCrlf.size()});
  }
  scratch->push_back("0\r\n\r\n");
  wire->push_back(
      net::ConstSlice{scratch->back().data(), scratch->back().size()});
}

const Framer& content_length_framer() noexcept {
  static const ContentLengthFramer framer;
  return framer;
}

const Framer& chunked_framer() noexcept {
  static const ChunkedFramer framer;
  return framer;
}

const Framer& framer_for(Framing framing) noexcept {
  return framing == Framing::kChunked ? chunked_framer()
                                      : content_length_framer();
}

const char* framing_name(Framing framing) noexcept {
  return framer_for(framing).name();
}

}  // namespace bsoap::http
