#include "http/content_coding.hpp"

#include "compress/deflate.hpp"

namespace bsoap::http {
namespace {

class IdentityCoder final : public ContentCoder {
 public:
  const char* name() const noexcept override { return "identity"; }
  std::string encode(std::string_view body,
                     std::string_view /*dict*/) const override {
    return std::string(body);
  }
  Result<std::string> decode(std::string_view body, std::size_t max_output,
                             std::string_view /*dict*/) const override {
    if (body.size() > max_output) {
      return Error{ErrorCode::kOutOfRange, "identity: output limit"};
    }
    return std::string(body);
  }
};

class GzipCoder final : public ContentCoder {
 public:
  const char* name() const noexcept override { return "gzip"; }
  std::string encode(std::string_view body,
                     std::string_view /*dict*/) const override {
    return compress::gzip_compress(body);
  }
  Result<std::string> decode(std::string_view body, std::size_t max_output,
                             std::string_view /*dict*/) const override {
    return compress::gzip_decompress(body, max_output);
  }
};

class DeflateCoder final : public ContentCoder {
 public:
  const char* name() const noexcept override { return "deflate"; }
  std::string encode(std::string_view body,
                     std::string_view /*dict*/) const override {
    return compress::zlib_compress(body);
  }
  Result<std::string> decode(std::string_view body, std::size_t max_output,
                             std::string_view /*dict*/) const override {
    return compress::zlib_decompress(body, max_output);
  }
};

class DeflatePresetCoder final : public ContentCoder {
 public:
  const char* name() const noexcept override { return "deflate-preset"; }
  std::string encode(std::string_view body,
                     std::string_view dict) const override {
    return compress::zlib_compress(body, dict);
  }
  Result<std::string> decode(std::string_view body, std::size_t max_output,
                             std::string_view dict) const override {
    return compress::zlib_decompress(body, max_output, dict);
  }
};

char ascii_lower(char c) noexcept {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

bool token_equals(std::string_view token, std::string_view expected) noexcept {
  while (!token.empty() && (token.front() == ' ' || token.front() == '\t')) {
    token.remove_prefix(1);
  }
  while (!token.empty() && (token.back() == ' ' || token.back() == '\t')) {
    token.remove_suffix(1);
  }
  if (token.size() != expected.size()) return false;
  for (std::size_t i = 0; i < token.size(); ++i) {
    if (ascii_lower(token[i]) != expected[i]) return false;
  }
  return true;
}

}  // namespace

const ContentCoder& coding_for(ContentCoding coding) noexcept {
  static const IdentityCoder identity;
  static const GzipCoder gzip;
  static const DeflateCoder deflate;
  static const DeflatePresetCoder preset;
  switch (coding) {
    case ContentCoding::kGzip:
      return gzip;
    case ContentCoding::kDeflate:
      return deflate;
    case ContentCoding::kDeflatePreset:
      return preset;
    case ContentCoding::kIdentity:
      break;
  }
  return identity;
}

const char* coding_name(ContentCoding coding) noexcept {
  return coding_for(coding).name();
}

bool parse_coding(std::string_view token, ContentCoding* out) noexcept {
  for (const ContentCoding coding :
       {ContentCoding::kIdentity, ContentCoding::kGzip, ContentCoding::kDeflate,
        ContentCoding::kDeflatePreset}) {
    if (token_equals(token, coding_name(coding))) {
      *out = coding;
      return true;
    }
  }
  return false;
}

}  // namespace bsoap::http
