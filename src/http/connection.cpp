#include "http/connection.hpp"

#include <vector>

#include "compress/deflate.hpp"
#include "http/chunked_coding.hpp"
#include "textconv/parse.hpp"

namespace bsoap::http {

Status HttpConnection::send_request(HttpRequest head,
                                    std::span<const net::ConstSlice> body,
                                    const Framer& framer) {
  std::size_t body_size = 0;
  for (const net::ConstSlice& s : body) body_size += s.len;

  framer.add_headers(head.headers, body_size);
  const std::string head_text = serialize_request_head(head);
  std::vector<std::string> scratch;
  std::vector<net::ConstSlice> wire;
  wire.push_back(net::ConstSlice{head_text.data(), head_text.size()});
  framer.frame_body(body, &wire, &scratch);
  return transport_.send_slices(wire);
}

Status HttpConnection::send_request(HttpRequest head, std::string_view body,
                                    ContentCoding coding,
                                    std::string_view dict) {
  if (coding == ContentCoding::kIdentity) {
    const net::ConstSlice slices[] = {net::ConstSlice{body.data(), body.size()}};
    return send_request(std::move(head), slices);
  }
  const ContentCoder& coder = coding_for(coding);
  const std::string encoded = coder.encode(body, dict);
  head.headers.push_back(Header{"Content-Encoding", coder.name()});
  const net::ConstSlice slices[] = {
      net::ConstSlice{encoded.data(), encoded.size()}};
  return send_request(std::move(head), slices);
}

Status HttpConnection::send_request_gzip(HttpRequest head,
                                         std::string_view body) {
  return send_request(std::move(head), body, ContentCoding::kGzip);
}

Status HttpConnection::send_response(HttpResponse head, std::string_view body) {
  content_length_framer().add_headers(head.headers, body.size());
  const std::string head_text = serialize_response_head(head);
  const net::ConstSlice slices[] = {
      net::ConstSlice{head_text.data(), head_text.size()},
      net::ConstSlice{body.data(), body.size()},
  };
  return transport_.send_slices(slices);
}

Status HttpConnection::buffer_at_least(std::size_t n) {
  char tmp[16 * 1024];
  while (inbuf_.size() < n) {
    Result<std::size_t> got = transport_.recv(tmp, sizeof(tmp));
    if (!got.ok()) return got.error();
    if (got.value() == 0) {
      return Error{ErrorCode::kClosed, "connection closed mid-message"};
    }
    inbuf_.append(tmp, got.value());
  }
  return Status{};
}

Result<std::string> HttpConnection::read_head() {
  std::size_t search_from = 0;
  for (;;) {
    const std::size_t blank = inbuf_.find("\r\n\r\n", search_from);
    if (blank != std::string::npos) {
      std::string head = inbuf_.substr(0, blank + 4);
      inbuf_.erase(0, blank + 4);
      return head;
    }
    search_from = inbuf_.size() > 3 ? inbuf_.size() - 3 : 0;
    char tmp[16 * 1024];
    Result<std::size_t> got = transport_.recv(tmp, sizeof(tmp));
    if (!got.ok()) return got.error();
    if (got.value() == 0) {
      if (inbuf_.empty()) {
        return Error{ErrorCode::kClosed, "connection closed"};
      }
      return Error{ErrorCode::kProtocolError, "EOF inside message head"};
    }
    inbuf_.append(tmp, got.value());
  }
}

Status HttpConnection::read_body(const std::vector<Header>& headers,
                                 bool is_request, std::string* body) {
  BSOAP_RETURN_IF_ERROR(read_body_raw(headers, is_request, body));
  if (const Header* encoding = find_header(headers, "Content-Encoding")) {
    Result<std::string> inflated{std::string{}};
    if (encoding->value == "gzip") {
      inflated = compress::gzip_decompress(*body, max_inflate_bytes_);
    } else if (encoding->value == "deflate") {
      inflated = compress::zlib_decompress(*body, max_inflate_bytes_);
    } else {
      // Unknown codings (including deflate-preset, which needs a dictionary
      // only the diff-wire layer holds) pass through undecoded.
      return Status{};
    }
    if (!inflated.ok()) return inflated.error();
    *body = std::move(inflated.value());
  }
  return Status{};
}

Status HttpConnection::read_body_raw(const std::vector<Header>& headers,
                                     bool is_request, std::string* body) {
  body->clear();
  if (const Header* te = find_header(headers, "Transfer-Encoding");
      te != nullptr && te->value == "chunked") {
    ChunkedDecoder decoder;
    for (;;) {
      if (inbuf_.empty()) {
        BSOAP_RETURN_IF_ERROR(buffer_at_least(1));
      }
      std::size_t consumed = 0;
      BSOAP_RETURN_IF_ERROR(decoder.feed(inbuf_, body, &consumed));
      inbuf_.erase(0, consumed);
      if (decoder.done()) return Status{};
    }
  }
  if (const Header* cl = find_header(headers, "Content-Length")) {
    Result<std::uint64_t> n = textconv::parse_u64(cl->value);
    if (!n.ok()) {
      return Error{ErrorCode::kProtocolError,
                   "bad Content-Length: " + cl->value};
    }
    BSOAP_RETURN_IF_ERROR(buffer_at_least(static_cast<std::size_t>(n.value())));
    body->assign(inbuf_, 0, static_cast<std::size_t>(n.value()));
    inbuf_.erase(0, static_cast<std::size_t>(n.value()));
    return Status{};
  }
  if (is_request) {
    // A request without framing headers has no body (RFC 2616 4.3).
    return Status{};
  }
  // Response without framing: body extends to end of stream (HTTP/1.0).
  char tmp[16 * 1024];
  for (;;) {
    Result<std::size_t> got = transport_.recv(tmp, sizeof(tmp));
    if (!got.ok()) return got.error();
    if (got.value() == 0) break;
    body->append(tmp, got.value());
  }
  body->insert(0, inbuf_);
  inbuf_.clear();
  return Status{};
}

Result<HttpRequest> HttpConnection::read_request() {
  // Requests go through the shared resumable parser (the same one the
  // reactor drives from readiness events), fed one recv at a time: no part
  // of the server assumes a request arrives in one read.
  char tmp[16 * 1024];
  for (;;) {
    BSOAP_RETURN_IF_ERROR(request_parser_.resume());
    if (request_parser_.done()) return request_parser_.take();
    Result<std::size_t> got = transport_.recv(tmp, sizeof(tmp));
    if (!got.ok()) return got.error();
    if (got.value() == 0) return request_parser_.eof_error();
    BSOAP_RETURN_IF_ERROR(request_parser_.feed(tmp, got.value()));
    if (request_parser_.done()) return request_parser_.take();
  }
}

Result<HttpResponse> HttpConnection::read_response() {
  Result<std::string> head = read_head();
  if (!head.ok()) return head.error();
  Result<HttpResponse> response = parse_response_head(head.value());
  if (!response.ok()) return response.error();
  BSOAP_RETURN_IF_ERROR(
      read_body(response.value().headers, /*is_request=*/false,
                &response.value().body));
  return response;
}

}  // namespace bsoap::http
