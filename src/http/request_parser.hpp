// Resumable, incremental HTTP request parser.
//
// Both connection engines parse requests through this one state machine, so
// a request split at any byte boundary — one byte per read, a slowloris
// client, a whole pipelined burst — parses identically everywhere:
//
//   * the blocking path (HttpConnection::read_request) feeds it whatever
//     each recv returns and keeps reading until a request completes;
//   * the reactor feeds it whatever each readiness-driven read drains and
//     suspends mid-request when the socket runs dry, resuming on the next
//     EPOLLIN without re-scanning consumed bytes.
//
// The parser owns its input buffer: bytes beyond the current request
// (pipelined next requests) are retained and consumed by the next cycle.
// Framing matches HttpConnection's historical behavior exactly — head
// through the blank line, then Content-Length or chunked body, transparent
// gzip/deflate Content-Encoding — including error codes and messages, so the 400
// responses the server sends are byte-identical whichever engine parsed.
#pragma once

#include <string>

#include "common/error.hpp"
#include "http/chunked_coding.hpp"
#include "http/http_message.hpp"

namespace bsoap::http {

class RequestParser {
 public:
  enum class State {
    kHead,  ///< accumulating the request line + headers
    kBody,  ///< head parsed; accumulating the framed body
    kDone,  ///< a complete request is ready via take()
  };

  State state() const { return state_; }
  bool done() const { return state_ == State::kDone; }

  /// Caps what a compressed (gzip/deflate) request body may inflate to —
  /// the decompression-bomb bound, plumbed from server options. An
  /// oversized body fails the feed with kOutOfRange ("deflate: output
  /// limit"), which the engines answer with 413 instead of 400.
  void set_max_inflate_bytes(std::size_t bound) { max_inflate_bytes_ = bound; }

  /// True once any byte of the current request has been buffered — the
  /// idle→read deadline transition (a connection with a started request is
  /// no longer idle).
  bool started() const { return state_ != State::kHead || !buf_.empty(); }

  /// Consumes `data` (all of it — leftovers beyond the current request are
  /// buffered for the next one) and advances as far as the bytes allow.
  /// After a successful feed, check done(). An error means the stream is
  /// unparseable and out of sync: the caller answers 400 and closes.
  Status feed(const char* data, std::size_t n);

  /// The error a clean end-of-stream means in the current state — matches
  /// the blocking reader: kClosed "connection closed" between requests,
  /// kProtocolError mid-head, kClosed "connection closed mid-message"
  /// mid-body.
  Error eof_error() const;

  /// Moves out the completed request and re-arms for the next one. Buffered
  /// pipelined bytes are kept but not parsed yet — call resume() to advance
  /// through them, so an error in the *next* request surfaces on the next
  /// read cycle, not on this one's take.
  HttpRequest take();

  /// Advances through bytes already buffered (pipelined requests). No-op
  /// when nothing is buffered; after it, done() may be true without any new
  /// feed.
  Status resume() { return advance(); }

 private:
  Status advance();
  Status advance_head();
  Status advance_body();
  Status finish_body();

  State state_ = State::kHead;
  std::size_t max_inflate_bytes_ = 1u << 30;
  std::string buf_;            ///< unconsumed input
  std::size_t head_scanned_ = 0;  ///< blank-line search resume point
  HttpRequest request_;
  // Body framing, valid in kBody:
  bool chunked_ = false;
  std::size_t content_length_ = 0;
  ChunkedDecoder chunked_decoder_;
};

}  // namespace bsoap::http
