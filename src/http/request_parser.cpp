#include "http/request_parser.hpp"

#include "compress/deflate.hpp"
#include "textconv/parse.hpp"

namespace bsoap::http {

Status RequestParser::feed(const char* data, std::size_t n) {
  buf_.append(data, n);
  return advance();
}

Error RequestParser::eof_error() const {
  if (state_ == State::kHead) {
    if (buf_.empty()) return Error{ErrorCode::kClosed, "connection closed"};
    return Error{ErrorCode::kProtocolError, "EOF inside message head"};
  }
  return Error{ErrorCode::kClosed, "connection closed mid-message"};
}

HttpRequest RequestParser::take() {
  BSOAP_ASSERT(state_ == State::kDone);
  HttpRequest out = std::move(request_);
  request_ = HttpRequest{};
  state_ = State::kHead;
  head_scanned_ = 0;
  chunked_ = false;
  content_length_ = 0;
  chunked_decoder_ = ChunkedDecoder{};
  return out;
}

Status RequestParser::advance() {
  if (state_ == State::kHead) {
    BSOAP_RETURN_IF_ERROR(advance_head());
  }
  if (state_ == State::kBody) {
    BSOAP_RETURN_IF_ERROR(advance_body());
  }
  return Status{};
}

Status RequestParser::advance_head() {
  const std::size_t blank = buf_.find("\r\n\r\n", head_scanned_);
  if (blank == std::string::npos) {
    // Resume the blank-line scan where it can first match next time.
    head_scanned_ = buf_.size() > 3 ? buf_.size() - 3 : 0;
    return Status{};
  }
  Result<HttpRequest> head =
      parse_request_head(std::string_view(buf_).substr(0, blank + 4));
  if (!head.ok()) return head.error();
  request_ = std::move(head.value());
  buf_.erase(0, blank + 4);
  head_scanned_ = 0;

  if (const Header* te = find_header(request_.headers, "Transfer-Encoding");
      te != nullptr && te->value == "chunked") {
    chunked_ = true;
  } else if (const Header* cl =
                 find_header(request_.headers, "Content-Length")) {
    Result<std::uint64_t> n = textconv::parse_u64(cl->value);
    if (!n.ok()) {
      return Error{ErrorCode::kProtocolError,
                   "bad Content-Length: " + cl->value};
    }
    content_length_ = static_cast<std::size_t>(n.value());
  } else {
    // A request without framing headers has no body (RFC 2616 4.3).
    state_ = State::kBody;
    return finish_body();
  }
  state_ = State::kBody;
  return Status{};
}

Status RequestParser::advance_body() {
  if (chunked_) {
    if (!buf_.empty()) {
      std::size_t consumed = 0;
      BSOAP_RETURN_IF_ERROR(
          chunked_decoder_.feed(buf_, &request_.body, &consumed));
      buf_.erase(0, consumed);
    }
    if (!chunked_decoder_.done()) return Status{};
    return finish_body();
  }
  if (buf_.size() < content_length_) return Status{};
  request_.body.assign(buf_, 0, content_length_);
  buf_.erase(0, content_length_);
  return finish_body();
}

Status RequestParser::finish_body() {
  if (const Header* encoding =
          find_header(request_.headers, "Content-Encoding")) {
    if (encoding->value == "gzip") {
      Result<std::string> inflated =
          compress::gzip_decompress(request_.body, max_inflate_bytes_);
      if (!inflated.ok()) return inflated.error();
      request_.body = std::move(inflated.value());
    } else if (encoding->value == "deflate") {
      Result<std::string> inflated =
          compress::zlib_decompress(request_.body, max_inflate_bytes_);
      if (!inflated.ok()) return inflated.error();
      request_.body = std::move(inflated.value());
    }
    // Other codings (deflate-preset needs a dictionary only the diff-wire
    // layer holds) pass through undecoded for the upper layer.
  }
  state_ = State::kDone;
  return Status{};
}

}  // namespace bsoap::http
