// HTTP content codings (Content-Encoding / Accept-Encoding).
//
// A ContentCoder decides how a message body is encoded on the wire —
// identity, gzip (RFC 1952), deflate (RFC 1950 zlib, per the HTTP
// "deflate" token), or the bSOAP extension "deflate-preset": a zlib stream
// whose DEFLATE window is preset from a dictionary both sides already hold
// (the pinned diff-wire template), so a body near-identical to the
// dictionary compresses to almost nothing. Mirrors the Framer/framer_for
// design: config surfaces name a ContentCoding, coding_for() maps it to a
// process-wide stateless instance, and encoding headers are chosen from
// coding_name() and nowhere else.
#pragma once

#include <string>
#include <string_view>

#include "common/error.hpp"

namespace bsoap::http {

/// Named coding choice for configuration surfaces (the Framing counterpart).
enum class ContentCoding {
  kIdentity,
  kGzip,
  kDeflate,        ///< zlib stream, HTTP "deflate" token
  kDeflatePreset,  ///< zlib + FDICT: window preset from a shared dictionary
};

class ContentCoder {
 public:
  virtual ~ContentCoder() = default;

  /// The Content-Encoding / Accept-Encoding token.
  virtual const char* name() const noexcept = 0;

  /// Encodes `body` for the wire. `dict` is used only by the preset coding
  /// (ignored elsewhere); it must be the same bytes the decoder will pass.
  virtual std::string encode(std::string_view body,
                             std::string_view dict = {}) const = 0;

  /// Decodes a wire body. `max_output` bounds decompression bombs
  /// (kOutOfRange when exceeded). The preset coding fails with
  /// kInvalidArgument when `dict` does not hash to the stream's DICTID —
  /// a clean error, never garbage output.
  virtual Result<std::string> decode(std::string_view body,
                                     std::size_t max_output,
                                     std::string_view dict = {}) const = 0;
};

/// Process-wide stateless instance for a coding (the framer_for
/// counterpart). Every ContentCoding value maps to exactly one.
const ContentCoder& coding_for(ContentCoding coding) noexcept;

/// The HTTP token for a coding ("identity", "gzip", "deflate",
/// "deflate-preset").
const char* coding_name(ContentCoding coding) noexcept;

/// Parses an encoding token (case-insensitive, surrounding spaces ignored);
/// false on an unknown coding.
bool parse_coding(std::string_view token, ContentCoding* out) noexcept;

}  // namespace bsoap::http
