// HTTP/1.0 and HTTP/1.1 message model and head (de)serialization.
//
// SOAP rides on HTTP POST. HTTP/1.1 with chunked transfer encoding lets a
// sender stream message chunks as they are serialized — the transport-level
// counterpart of bSOAP's internal message chunking (paper Section 2).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace bsoap::http {

struct Header {
  std::string name;
  std::string value;
};

/// Case-insensitive header lookup (HTTP header names are case-insensitive).
const Header* find_header(const std::vector<Header>& headers,
                          std::string_view name);

struct HttpRequest {
  std::string method = "POST";
  std::string target = "/";
  std::string version = "HTTP/1.1";
  std::vector<Header> headers;
  std::string body;

  const Header* find(std::string_view name) const {
    return find_header(headers, name);
  }
};

struct HttpResponse {
  std::string version = "HTTP/1.1";
  int status = 200;
  std::string reason = "OK";
  std::vector<Header> headers;
  std::string body;

  const Header* find(std::string_view name) const {
    return find_header(headers, name);
  }
};

/// Request line + headers + blank line.
std::string serialize_request_head(const HttpRequest& request);
std::string serialize_response_head(const HttpResponse& response);

/// Parses a head (everything before the body). `text` must end at the blank
/// line (exclusive of body bytes).
Result<HttpRequest> parse_request_head(std::string_view text);
Result<HttpResponse> parse_response_head(std::string_view text);

}  // namespace bsoap::http
