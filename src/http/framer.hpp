// HTTP body framing strategies.
//
// A Framer decides how a request body is delimited on the wire — the
// Content-Length header with the body sent verbatim, or HTTP/1.1 chunked
// transfer encoding with each body slice wrapped as one chunk (the
// transport-level counterpart of bSOAP's internal message chunking, paper
// Section 2). Framing headers are added here and nowhere else, so every
// sender agrees on what goes on the wire for a given framing choice.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "http/http_message.hpp"
#include "net/socket.hpp"

namespace bsoap::http {

class Framer {
 public:
  virtual ~Framer() = default;

  virtual const char* name() const noexcept = 0;

  /// Appends this framing's message headers (Content-Length or
  /// Transfer-Encoding) for a body of `body_size` bytes.
  virtual void add_headers(std::vector<Header>& headers,
                           std::size_t body_size) const = 0;

  /// Appends the on-the-wire form of `body` to `wire`. `scratch` owns any
  /// framing bytes (chunk-size lines, CRLFs) and must outlive the appended
  /// slices; it is cleared first, so one scratch serves one framed message.
  virtual void frame_body(std::span<const net::ConstSlice> body,
                          std::vector<net::ConstSlice>* wire,
                          std::vector<std::string>* scratch) const = 0;
};

/// Body sent verbatim, delimited by a Content-Length header.
class ContentLengthFramer final : public Framer {
 public:
  const char* name() const noexcept override { return "content-length"; }
  void add_headers(std::vector<Header>& headers,
                   std::size_t body_size) const override;
  void frame_body(std::span<const net::ConstSlice> body,
                  std::vector<net::ConstSlice>* wire,
                  std::vector<std::string>* scratch) const override;
};

/// HTTP/1.1 chunked transfer encoding: each body slice becomes one chunk,
/// terminated by the zero chunk. Requires an HTTP/1.1 head.
class ChunkedFramer final : public Framer {
 public:
  const char* name() const noexcept override { return "chunked"; }
  void add_headers(std::vector<Header>& headers,
                   std::size_t body_size) const override;
  void frame_body(std::span<const net::ConstSlice> body,
                  std::vector<net::ConstSlice>* wire,
                  std::vector<std::string>* scratch) const override;
};

/// Process-wide stateless instances (framers carry no per-send state).
const Framer& content_length_framer() noexcept;
const Framer& chunked_framer() noexcept;

/// Named framing choice for configuration surfaces. Every value maps to one
/// of the process-wide framer instances via framer_for(), so config code
/// never names a concrete Framer class.
enum class Framing {
  kContentLength,
  kChunked,
};

const Framer& framer_for(Framing framing) noexcept;
const char* framing_name(Framing framing) noexcept;

}  // namespace bsoap::http
