#include "http/http_message.hpp"

#include <cctype>

#include "textconv/parse.hpp"

namespace bsoap::http {
namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

/// Splits head text into lines on CRLF (tolerating bare LF) and parses
/// header fields after the first line.
Status parse_headers(std::string_view text, std::size_t first_line_end,
                     std::vector<Header>* headers) {
  std::size_t pos = first_line_end;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    pos = eol + 1;
    if (line.empty()) break;  // blank line: end of headers
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Error{ErrorCode::kProtocolError,
                   "header line without ':': " + std::string(line)};
    }
    Header h;
    h.name = std::string(trim(line.substr(0, colon)));
    h.value = std::string(trim(line.substr(colon + 1)));
    if (h.name.empty()) {
      return Error{ErrorCode::kProtocolError, "empty header name"};
    }
    headers->push_back(std::move(h));
  }
  return Status{};
}

}  // namespace

const Header* find_header(const std::vector<Header>& headers,
                          std::string_view name) {
  for (const Header& h : headers) {
    if (iequals(h.name, name)) return &h;
  }
  return nullptr;
}

std::string serialize_request_head(const HttpRequest& request) {
  std::string out;
  out.reserve(128 + request.headers.size() * 32);
  out += request.method;
  out += ' ';
  out += request.target;
  out += ' ';
  out += request.version;
  out += "\r\n";
  for (const Header& h : request.headers) {
    out += h.name;
    out += ": ";
    out += h.value;
    out += "\r\n";
  }
  out += "\r\n";
  return out;
}

std::string serialize_response_head(const HttpResponse& response) {
  std::string out;
  out += response.version;
  out += ' ';
  out += std::to_string(response.status);
  out += ' ';
  out += response.reason;
  out += "\r\n";
  for (const Header& h : response.headers) {
    out += h.name;
    out += ": ";
    out += h.value;
    out += "\r\n";
  }
  out += "\r\n";
  return out;
}

Result<HttpRequest> parse_request_head(std::string_view text) {
  std::size_t eol = text.find('\n');
  if (eol == std::string_view::npos) {
    return Error{ErrorCode::kProtocolError, "missing request line"};
  }
  std::string_view line = text.substr(0, eol);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string_view::npos
                              ? std::string_view::npos
                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return Error{ErrorCode::kProtocolError,
                 "malformed request line: " + std::string(line)};
  }
  HttpRequest request;
  request.method = std::string(line.substr(0, sp1));
  request.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  request.version = std::string(line.substr(sp2 + 1));
  if (request.version != "HTTP/1.0" && request.version != "HTTP/1.1") {
    return Error{ErrorCode::kProtocolError,
                 "unsupported HTTP version: " + request.version};
  }
  BSOAP_RETURN_IF_ERROR(parse_headers(text, eol + 1, &request.headers));
  return request;
}

Result<HttpResponse> parse_response_head(std::string_view text) {
  std::size_t eol = text.find('\n');
  if (eol == std::string_view::npos) {
    return Error{ErrorCode::kProtocolError, "missing status line"};
  }
  std::string_view line = text.substr(0, eol);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) {
    return Error{ErrorCode::kProtocolError,
                 "malformed status line: " + std::string(line)};
  }
  HttpResponse response;
  response.version = std::string(line.substr(0, sp1));
  std::string_view rest = line.substr(sp1 + 1);
  const std::size_t sp2 = rest.find(' ');
  const std::string_view code_text =
      sp2 == std::string_view::npos ? rest : rest.substr(0, sp2);
  Result<std::int32_t> code = textconv::parse_i32(code_text);
  if (!code.ok()) {
    return Error{ErrorCode::kProtocolError,
                 "bad status code: " + std::string(code_text)};
  }
  response.status = code.value();
  response.reason = sp2 == std::string_view::npos
                        ? std::string()
                        : std::string(rest.substr(sp2 + 1));
  BSOAP_RETURN_IF_ERROR(parse_headers(text, eol + 1, &response.headers));
  return response;
}

}  // namespace bsoap::http
