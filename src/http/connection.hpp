// Buffered HTTP connection: request/response exchange over a Transport.
//
// Supports keep-alive (many exchanges per connection — the paper's clients
// reuse one connection for all sends), Content-Length and chunked framing in
// both directions, and zero-copy scatter-gather sends of chunked bodies.
#pragma once

#include <span>
#include <string>

#include "common/error.hpp"
#include "http/content_coding.hpp"
#include "http/framer.hpp"
#include "http/http_message.hpp"
#include "http/request_parser.hpp"
#include "net/transport.hpp"

namespace bsoap::http {

class HttpConnection {
 public:
  explicit HttpConnection(net::Transport& transport) : transport_(transport) {}

  /// Caps what any compressed (gzip/deflate) body read on this connection
  /// may inflate to — the decompression-bomb bound, plumbed from server
  /// options. Oversized bodies fail with kOutOfRange.
  void set_max_inflate_bytes(std::size_t bound) {
    max_inflate_bytes_ = bound;
    request_parser_.set_max_inflate_bytes(bound);
  }

  /// Sends `head` with `body` slices. The framer adds its framing headers
  /// (Content-Length or Transfer-Encoding) and wraps the body for the wire;
  /// the default frames with Content-Length.
  Status send_request(HttpRequest head, std::span<const net::ConstSlice> body,
                      const Framer& framer = content_length_framer());

  /// Sends `head` with `body` encoded under `coding` (gSOAP's transport
  /// compression, complementary to differential serialization — paper
  /// Section 5). Adds the Content-Encoding header for any coding but
  /// identity; `dict` feeds the preset coding's dictionary.
  Status send_request(HttpRequest head, std::string_view body,
                      ContentCoding coding, std::string_view dict = {});

  /// Deprecated: use send_request(head, body, ContentCoding::kGzip).
  [[deprecated("use send_request(head, body, ContentCoding::kGzip)")]]
  Status send_request_gzip(HttpRequest head, std::string_view body);

  Status send_response(HttpResponse head, std::string_view body);

  /// Reads one request via the resumable RequestParser (shared with the
  /// reactor's readiness-driven path). Error code kClosed indicates the
  /// peer closed the connection cleanly between requests (keep-alive end).
  Result<HttpRequest> read_request();

  Result<HttpResponse> read_response();

 private:
  /// Reads and strips one head (through the blank line) from the stream.
  Result<std::string> read_head();
  /// Fills `body` according to the framing headers; transparently inflates
  /// a gzip or deflate Content-Encoding (bounded by max_inflate_bytes).
  Status read_body(const std::vector<Header>& headers, bool is_request,
                   std::string* body);
  Status read_body_raw(const std::vector<Header>& headers, bool is_request,
                       std::string* body);
  /// Ensures at least `n` bytes are buffered.
  Status buffer_at_least(std::size_t n);

  std::size_t max_inflate_bytes_ = 1u << 30;
  net::Transport& transport_;
  std::string inbuf_;            ///< response-side read buffer
  RequestParser request_parser_; ///< request-side incremental parser
};

}  // namespace bsoap::http
