// Tests for XML escaping, the sink-templated writer, and the pull parser.
#include <gtest/gtest.h>

#include <string>

#include "buffer/chunked_buffer.hpp"
#include "buffer/sinks.hpp"
#include "common/rng.hpp"
#include "xml/escape.hpp"
#include "xml/pull_parser.hpp"
#include "xml/qname.hpp"
#include "xml/writer.hpp"

namespace bsoap::xml {
namespace {

using buffer::StringSink;

std::string escape(std::string_view in) {
  std::string out;
  escape_append(out, in);
  return out;
}

TEST(Escape, PredefinedEntities) {
  EXPECT_EQ(escape("a<b&c>d\"e'f"), "a&lt;b&amp;c&gt;d&quot;e&apos;f");
  EXPECT_EQ(escape("plain text"), "plain text");
  EXPECT_FALSE(needs_escaping("plain"));
  EXPECT_TRUE(needs_escaping("a&b"));
}

TEST(Escape, RoundTrip) {
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    std::string original;
    const std::size_t n = rng.next_below(40);
    for (std::size_t k = 0; k < n; ++k) {
      original += static_cast<char>(32 + rng.next_below(95));
    }
    std::string decoded;
    ASSERT_TRUE(unescape(escape(original), &decoded)) << original;
    EXPECT_EQ(decoded, original);
  }
}

TEST(Escape, NumericReferences) {
  std::string out;
  EXPECT_TRUE(unescape("&#65;&#x42;&#x2764;", &out));
  EXPECT_EQ(out, "AB\xE2\x9D\xA4");
  EXPECT_FALSE(unescape("&#;", &out));
  EXPECT_FALSE(unescape("&bogus;", &out));
  EXPECT_FALSE(unescape("&#xZZ;", &out));
  EXPECT_FALSE(unescape("&unterminated", &out));
  EXPECT_FALSE(unescape("&#1114112;", &out));  // above U+10FFFF
}

TEST(Writer, BasicDocument) {
  StringSink sink;
  XmlWriter<StringSink> writer(sink);
  writer.declaration();
  writer.start_element("root");
  writer.attribute("id", "1");
  writer.start_element("child");
  writer.text("a<b");
  writer.end_element();
  writer.start_element("empty");
  writer.end_element();
  writer.end_element();
  writer.finish();
  EXPECT_EQ(sink.str(),
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>"
            "<root id=\"1\"><child>a&lt;b</child><empty/></root>");
}

TEST(Writer, NumericFastPaths) {
  StringSink sink;
  XmlWriter<StringSink> writer(sink);
  writer.start_element("n");
  writer.int_text(-42);
  writer.end_element();
  writer.start_element("d");
  writer.double_text(2.5);
  writer.end_element();
  EXPECT_EQ(sink.str(), "<n>-42</n><d>2.5</d>");
}

TEST(Writer, IntoChunkedBuffer) {
  buffer::ChunkConfig config;
  config.chunk_size = 32;
  config.tail_reserve = 4;
  buffer::ChunkedBuffer buf(config);
  XmlWriter<buffer::ChunkedBuffer> writer(buf);
  writer.start_element("root");
  for (int i = 0; i < 20; ++i) {
    writer.start_element("v");
    writer.int_text(i);
    writer.end_element();
  }
  writer.end_element();
  writer.finish();
  EXPECT_GT(buf.chunk_count(), 1u);
  std::string expected = "<root>";
  for (int i = 0; i < 20; ++i) {
    expected += "<v>" + std::to_string(i) + "</v>";
  }
  expected += "</root>";
  EXPECT_EQ(buf.linearize(), expected);
}

TEST(Writer, AttributeEscaping) {
  StringSink sink;
  XmlWriter<StringSink> writer(sink);
  writer.start_element("e");
  writer.attribute("a", "x\"y<z");
  writer.end_element();
  EXPECT_EQ(sink.str(), "<e a=\"x&quot;y&lt;z\"/>");
}

// --- pull parser --------------------------------------------------------

std::vector<std::string> tokenize(std::string_view doc) {
  XmlPullParser parser(doc);
  std::vector<std::string> out;
  for (;;) {
    Result<XmlEvent> event = parser.next();
    if (!event.ok()) {
      out.push_back("ERROR:" + event.error().message);
      return out;
    }
    switch (event.value()) {
      case XmlEvent::kStartElement: {
        std::string attrs;
        for (const XmlAttribute& a : parser.attributes()) {
          attrs += " " + std::string(a.name) + "=" + a.value;
        }
        out.push_back("<" + std::string(parser.name()) + attrs);
        break;
      }
      case XmlEvent::kEndElement:
        out.push_back("</" + std::string(parser.name()));
        break;
      case XmlEvent::kText:
        out.push_back("T:" + parser.text());
        break;
      case XmlEvent::kEof:
        out.push_back("EOF");
        return out;
    }
  }
}

TEST(PullParser, Basic) {
  const auto tokens = tokenize("<a><b x=\"1\">hi</b><c/></a>");
  const std::vector<std::string> expected = {"<a", "<b x=1", "T:hi", "</b",
                                             "<c", "</c", "</a", "EOF"};
  EXPECT_EQ(tokens, expected);
}

TEST(PullParser, DeclCommentsPis) {
  const auto tokens = tokenize(
      "<?xml version=\"1.0\"?><!-- note --><root><?pi data?>x</root>");
  const std::vector<std::string> expected = {"<root", "T:x", "</root", "EOF"};
  EXPECT_EQ(tokens, expected);
}

TEST(PullParser, Cdata) {
  const auto tokens = tokenize("<r><![CDATA[a<b&c]]></r>");
  const std::vector<std::string> expected = {"<r", "T:a<b&c", "</r", "EOF"};
  EXPECT_EQ(tokens, expected);
}

TEST(PullParser, EntityDecoding) {
  const auto tokens = tokenize("<r a=\"x&amp;y\">1 &lt; 2</r>");
  const std::vector<std::string> expected = {"<r a=x&y", "T:1 < 2", "</r",
                                             "EOF"};
  EXPECT_EQ(tokens, expected);
}

TEST(PullParser, WhitespaceBetweenElements) {
  const auto tokens = tokenize("<r>  <a/>  </r>");
  const std::vector<std::string> expected = {"<r",  "T:  ", "<a",  "</a",
                                             "T:  ", "</r",  "EOF"};
  EXPECT_EQ(tokens, expected);
}

TEST(PullParser, Errors) {
  EXPECT_EQ(tokenize("<a><b></a>").back().substr(0, 6), "ERROR:");
  EXPECT_EQ(tokenize("<a>").back().substr(0, 6), "ERROR:");
  EXPECT_EQ(tokenize("text").back().substr(0, 6), "ERROR:");
  EXPECT_EQ(tokenize("<a></a><b></b>").back().substr(0, 6), "ERROR:");
  EXPECT_EQ(tokenize("<a x=1></a>").back().substr(0, 6), "ERROR:");
  EXPECT_EQ(tokenize("<a x=\"1></a>").back().substr(0, 6), "ERROR:");
  EXPECT_EQ(tokenize("<a><![CDATA[x]]</a>").back().substr(0, 6), "ERROR:");
  EXPECT_EQ(tokenize("</a>").back().substr(0, 6), "ERROR:");
  EXPECT_EQ(tokenize("<a>&bogus;</a>").back().substr(0, 6), "ERROR:");
}

TEST(PullParser, SelfClosingDepth) {
  XmlPullParser parser("<a><b/></a>");
  EXPECT_EQ(parser.next().value(), XmlEvent::kStartElement);
  EXPECT_EQ(parser.depth(), 1u);
  EXPECT_EQ(parser.next().value(), XmlEvent::kStartElement);
  EXPECT_EQ(parser.depth(), 2u);
  EXPECT_EQ(parser.next().value(), XmlEvent::kEndElement);
  EXPECT_EQ(parser.depth(), 1u);
  EXPECT_EQ(parser.name(), "b");
}

TEST(PullParser, EventRegions) {
  const std::string doc = "<r><v>12345</v></r>";
  XmlPullParser parser(doc);
  EXPECT_EQ(parser.next().value(), XmlEvent::kStartElement);  // r
  EXPECT_EQ(parser.next().value(), XmlEvent::kStartElement);  // v
  EXPECT_EQ(parser.next().value(), XmlEvent::kText);
  EXPECT_EQ(doc.substr(parser.event_begin(),
                       parser.event_end() - parser.event_begin()),
            "12345");
}

TEST(PullParser, FindAttribute) {
  XmlPullParser parser("<r a=\"1\" b=\"2\"/>");
  ASSERT_EQ(parser.next().value(), XmlEvent::kStartElement);
  ASSERT_NE(parser.find_attribute("b"), nullptr);
  EXPECT_EQ(parser.find_attribute("b")->value, "2");
  EXPECT_EQ(parser.find_attribute("zz"), nullptr);
}

TEST(PullParser, SkipWhitespaceTextOption) {
  XmlPullParser::Options options;
  options.skip_whitespace_text = true;
  XmlPullParser parser("<r>   <a>x</a>   </r>", options);
  EXPECT_EQ(parser.next().value(), XmlEvent::kStartElement);  // r
  EXPECT_EQ(parser.next().value(), XmlEvent::kStartElement);  // a
  EXPECT_EQ(parser.next().value(), XmlEvent::kText);
  EXPECT_EQ(parser.text(), "x");
}

// Writer output always parses back (fuzz over random trees).
TEST(WriterParserFuzz, RoundTrip) {
  Rng rng(99);
  for (int round = 0; round < 200; ++round) {
    StringSink sink;
    XmlWriter<StringSink> writer(sink);
    int open = 0;
    int emitted = 0;
    bool can_attr = true;  // true only right after a start_element
    writer.start_element("root");
    ++open;
    while (emitted < 30) {
      const std::uint64_t action = rng.next_below(4);
      if (action == 0 && open < 8) {
        writer.start_element("e" + std::to_string(emitted % 7));
        ++open;
        can_attr = true;
      } else if (action == 1 && open > 1) {
        writer.end_element();
        --open;
        can_attr = false;
      } else if (action == 3 && can_attr) {
        writer.attribute("a" + std::to_string(emitted), "v&quoted");
      } else {
        writer.text("t<&>" + std::to_string(emitted));
        can_attr = false;
      }
      ++emitted;
    }
    while (open > 0) {
      writer.end_element();
      --open;
    }
    writer.finish();
    const auto tokens = tokenize(sink.str());
    ASSERT_FALSE(tokens.empty());
    EXPECT_EQ(tokens.back(), "EOF") << sink.str();
  }
}

TEST(QName, Split) {
  EXPECT_EQ(split_qname("a:b").prefix, "a");
  EXPECT_EQ(split_qname("a:b").local, "b");
  EXPECT_EQ(split_qname("plain").prefix, "");
  EXPECT_EQ(split_qname("plain").local, "plain");
}

TEST(NamespaceTracker, Scoping) {
  NamespaceTracker tracker;
  tracker.push_scope({{"xmlns", "urn:default"}, {"xmlns:a", "urn:a"}});
  EXPECT_EQ(tracker.resolve(""), "urn:default");
  EXPECT_EQ(tracker.resolve("a"), "urn:a");
  tracker.push_scope({{"xmlns:a", "urn:a2"}});
  EXPECT_EQ(tracker.resolve("a"), "urn:a2");
  EXPECT_EQ(tracker.resolve_qname("a:x"), "urn:a2");
  tracker.pop_scope();
  EXPECT_EQ(tracker.resolve("a"), "urn:a");
  tracker.pop_scope();
  EXPECT_EQ(tracker.resolve("a"), "");
}

}  // namespace
}  // namespace bsoap::xml
