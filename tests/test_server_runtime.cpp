// Server runtime tests: bounded worker pool admission (queueing then 503),
// connection lifecycle (idle/read timeouts, slot reaping, graceful drain),
// response-side differential serialization (MCM/PSM hits via ServerStats),
// and HTTP error mapping (400 on unparseable head or body).
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/client.hpp"
#include "http/connection.hpp"
#include "net/tcp.hpp"
#include "net/transport.hpp"
#include "server/paced_transport.hpp"
#include "server/server_runtime.hpp"
#include "soap/soap_server.hpp"
#include "soap/workload.hpp"

namespace bsoap::server {
namespace {

using namespace std::chrono_literals;
using core::BsoapClient;
using soap::RpcCall;
using soap::Value;

/// Polls `pred` until it holds or `timeout` elapses.
template <typename Pred>
bool wait_for(Pred pred, std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

/// sum(data): the test service. Deterministic, shape-stable responses.
Result<Value> sum_handler(const RpcCall& call) {
  if (call.method != "sum") return Error{ErrorCode::kNotFound, "no method"};
  double total = 0;
  for (const double v : call.params[0].value.doubles()) total += v;
  return Value::from_double(total);
}

RpcCall make_sum_call(std::vector<double> values) {
  RpcCall call;
  call.method = "sum";
  call.service_namespace = "urn:calc";
  call.params.push_back(
      soap::Param{"data", Value::from_double_array(std::move(values))});
  return call;
}

TEST(ServerRuntime, ResponsesTakeDifferentialFastPaths) {
  ServerRuntimeOptions options;
  options.workers = 1;  // one pipeline -> deterministic match counters
  Result<std::unique_ptr<ServerRuntime>> server =
      ServerRuntime::start(sum_handler, options);
  ASSERT_TRUE(server.ok());

  Result<std::unique_ptr<net::Transport>> transport =
      net::tcp_connect(server.value()->port());
  ASSERT_TRUE(transport.ok());
  BsoapClient client(*transport.value());

  // Identical call, identical response: first-time then content matches
  // (the response bytes are resent from the saved template untouched).
  const RpcCall call = make_sum_call({1.5, 2.5, 3.0});
  for (int i = 0; i < 3; ++i) {
    Result<Value> result = client.invoke(call);
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    EXPECT_EQ(result.value().as_double(), 7.0);
  }
  // Counters are incremented by the worker after the response bytes go out,
  // so they can trail the client's read by a scheduling quantum.
  ASSERT_TRUE(wait_for(
      [&] { return server.value()->stats().responses_total() == 3; }));
  ServerStats stats = server.value()->stats();
  EXPECT_EQ(stats.response_first_time, 1u);
  EXPECT_EQ(stats.response_content_match, 2u);
  EXPECT_EQ(stats.response_diff_hits(), 2u);

  // Same response shape, new value: the stuffed double is rewritten in
  // place — a perfect structural match, and the client sees the new sum.
  Result<Value> changed = client.invoke(make_sum_call({4.0, 5.0, 6.0}));
  ASSERT_TRUE(changed.ok());
  EXPECT_EQ(changed.value().as_double(), 15.0);
  ASSERT_TRUE(wait_for(
      [&] { return server.value()->stats().responses_total() == 4; }));
  stats = server.value()->stats();
  EXPECT_EQ(stats.response_perfect_match, 1u);
  EXPECT_EQ(stats.responses_total(), 4u);
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.faults, 0u);
  EXPECT_GT(stats.response_template_bytes, 0u);

  server.value()->stop();
}

TEST(ServerRuntime, SharedCacheServesOneShapeAcrossWorkersFirstTimeOnce) {
  ServerRuntimeOptions options;
  options.workers = 4;
  options.shared_cache = true;
  Result<std::unique_ptr<ServerRuntime>> server =
      ServerRuntime::start(sum_handler, options);
  ASSERT_TRUE(server.ok());

  // Sequential connections land on different workers (slots rotate through
  // the pool); with per-worker stores each would pay its own first-time
  // response. One shared cache means the shape is serialized exactly once.
  const RpcCall call = make_sum_call({1.0, 2.0, 4.0});
  for (int conn = 0; conn < 8; ++conn) {
    Result<std::unique_ptr<net::Transport>> transport =
        net::tcp_connect(server.value()->port());
    ASSERT_TRUE(transport.ok());
    BsoapClient client(*transport.value());
    Result<Value> result = client.invoke(call);
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    EXPECT_EQ(result.value().as_double(), 7.0);
  }
  ASSERT_TRUE(wait_for(
      [&] { return server.value()->stats().responses_total() == 8; }));
  ServerStats stats = server.value()->stats();
  EXPECT_EQ(stats.response_first_time, 1u);
  EXPECT_EQ(stats.response_diff_hits(), 7u);
  EXPECT_EQ(stats.cache_hits, 7u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_GT(stats.response_template_bytes, 0u);
  server.value()->stop();
}

TEST(ServerRuntime, DiffResponsesOffServesFromScratch) {
  ServerRuntimeOptions options;
  options.workers = 1;
  options.diff_responses = false;
  Result<std::unique_ptr<ServerRuntime>> server =
      ServerRuntime::start(sum_handler, options);
  ASSERT_TRUE(server.ok());

  Result<std::unique_ptr<net::Transport>> transport =
      net::tcp_connect(server.value()->port());
  ASSERT_TRUE(transport.ok());
  BsoapClient client(*transport.value());
  const RpcCall call = make_sum_call({1.0, 2.0});
  for (int i = 0; i < 3; ++i) {
    Result<Value> result = client.invoke(call);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().as_double(), 3.0);
  }
  ASSERT_TRUE(wait_for(
      [&] { return server.value()->stats().responses_total() == 3; }));
  const ServerStats stats = server.value()->stats();
  EXPECT_EQ(stats.response_first_time, 3u);
  EXPECT_EQ(stats.response_diff_hits(), 0u);
  server.value()->stop();
}

TEST(ServerRuntime, OverloadQueuesThenAnswers503) {
  std::atomic<int> entered{0};
  std::atomic<bool> release{false};
  ServerRuntimeOptions options;
  options.workers = 1;
  options.accept_backlog = 1;
  Result<std::unique_ptr<ServerRuntime>> server = ServerRuntime::start(
      [&](const RpcCall& call) -> Result<Value> {
        entered.fetch_add(1);
        while (!release.load()) std::this_thread::sleep_for(1ms);
        return sum_handler(call);
      },
      options);
  ASSERT_TRUE(server.ok());
  ServerRuntime& runtime = *server.value();

  // A occupies the single worker (handler gated open).
  std::thread client_a([&] {
    Result<std::unique_ptr<net::Transport>> t =
        net::tcp_connect(runtime.port());
    ASSERT_TRUE(t.ok());
    BsoapClient client(*t.value());
    Result<Value> result = client.invoke(make_sum_call({1.0, 2.0}));
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    EXPECT_EQ(result.value().as_double(), 3.0);
  });
  ASSERT_TRUE(wait_for([&] { return entered.load() == 1; }));

  // B waits in the accept queue.
  std::thread client_b([&] {
    Result<std::unique_ptr<net::Transport>> t =
        net::tcp_connect(runtime.port());
    ASSERT_TRUE(t.ok());
    BsoapClient client(*t.value());
    Result<Value> result = client.invoke(make_sum_call({2.0, 2.0}));
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    EXPECT_EQ(result.value().as_double(), 4.0);
  });
  ASSERT_TRUE(wait_for([&] { return runtime.stats().queue_depth == 1; }));

  // C overflows the backlog: answered 503 without touching a worker.
  Result<std::unique_ptr<net::Transport>> c =
      net::tcp_connect(runtime.port());
  ASSERT_TRUE(c.ok());
  http::HttpConnection c_conn(*c.value());
  Result<http::HttpResponse> rejected = c_conn.read_response();
  ASSERT_TRUE(rejected.ok()) << rejected.error().to_string();
  EXPECT_EQ(rejected.value().status, 503);
  ASSERT_NE(rejected.value().find("Connection"), nullptr);
  EXPECT_EQ(rejected.value().find("Connection")->value, "close");
  EXPECT_NE(rejected.value().body.find("Fault"), std::string::npos);

  release.store(true);
  client_a.join();  // closes A's connection, freeing the worker for B
  client_b.join();

  ASSERT_TRUE(wait_for([&] { return runtime.stats().requests == 2; }));
  const ServerStats stats = runtime.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_GE(stats.queue_high_water, 1u);
  runtime.stop();
}

TEST(ServerRuntime, MaxConnectionsCapRejectsAtAdmission) {
  ServerRuntimeOptions options;
  options.workers = 1;
  options.max_connections = 1;
  Result<std::unique_ptr<ServerRuntime>> server =
      ServerRuntime::start(sum_handler, options);
  ASSERT_TRUE(server.ok());
  ServerRuntime& runtime = *server.value();

  // A holds the only connection slot (keep-alive keeps it active).
  Result<std::unique_ptr<net::Transport>> a = net::tcp_connect(runtime.port());
  ASSERT_TRUE(a.ok());
  BsoapClient client(*a.value());
  ASSERT_TRUE(client.invoke(make_sum_call({1.0})).ok());
  ASSERT_TRUE(wait_for([&] { return runtime.stats().active == 1; }));

  Result<std::unique_ptr<net::Transport>> b = net::tcp_connect(runtime.port());
  ASSERT_TRUE(b.ok());
  http::HttpConnection b_conn(*b.value());
  Result<http::HttpResponse> rejected = b_conn.read_response();
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected.value().status, 503);
  EXPECT_EQ(runtime.stats().rejected, 1u);
  runtime.stop();
}

TEST(ServerRuntime, IdleConnectionsAreClosedAndReaped) {
  ServerRuntimeOptions options;
  options.workers = 1;
  options.idle_timeout = 50ms;
  options.poll_slice = 5ms;
  Result<std::unique_ptr<ServerRuntime>> server =
      ServerRuntime::start(sum_handler, options);
  ASSERT_TRUE(server.ok());
  ServerRuntime& runtime = *server.value();

  Result<std::unique_ptr<net::Transport>> transport =
      net::tcp_connect(runtime.port());
  ASSERT_TRUE(transport.ok());
  BsoapClient client(*transport.value());
  ASSERT_TRUE(client.invoke(make_sum_call({1.0, 2.0})).ok());

  // Stay idle past the deadline: the server closes, the slot is reaped.
  ASSERT_TRUE(wait_for([&] { return runtime.stats().idle_closed == 1; }));
  ASSERT_TRUE(wait_for([&] { return runtime.stats().active == 0; }));

  // The client sees a clean end-of-stream.
  char byte = 0;
  Result<std::size_t> got = transport.value()->recv(&byte, 1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), 0u);
  runtime.stop();
}

TEST(ServerRuntime, StalledRequestHitsReadTimeout) {
  ServerRuntimeOptions options;
  options.workers = 1;
  options.idle_timeout = 2000ms;
  options.read_timeout = 50ms;
  options.poll_slice = 5ms;
  Result<std::unique_ptr<ServerRuntime>> server =
      ServerRuntime::start(sum_handler, options);
  ASSERT_TRUE(server.ok());
  ServerRuntime& runtime = *server.value();

  Result<std::unique_ptr<net::Transport>> transport =
      net::tcp_connect(runtime.port());
  ASSERT_TRUE(transport.ok());
  // First bytes of a request, then silence: the read deadline (not the much
  // longer idle deadline) must close the connection.
  ASSERT_TRUE(transport.value()->send("POST / HTTP/1.1\r\nContent-Le").ok());
  ASSERT_TRUE(wait_for([&] { return runtime.stats().read_timeouts == 1; }));
  ASSERT_TRUE(wait_for([&] { return runtime.stats().active == 0; }));
  runtime.stop();
}

TEST(ServerRuntime, GracefulDrainFinishesInFlightAnd503sQueued) {
  std::atomic<int> entered{0};
  ServerRuntimeOptions options;
  options.workers = 1;
  Result<std::unique_ptr<ServerRuntime>> server = ServerRuntime::start(
      [&](const RpcCall& call) -> Result<Value> {
        entered.fetch_add(1);
        std::this_thread::sleep_for(150ms);
        return sum_handler(call);
      },
      options);
  ASSERT_TRUE(server.ok());
  ServerRuntime& runtime = *server.value();

  // A is mid-request when stop() lands: its response must still arrive.
  std::thread client_a([&] {
    Result<std::unique_ptr<net::Transport>> t =
        net::tcp_connect(runtime.port());
    ASSERT_TRUE(t.ok());
    BsoapClient client(*t.value());
    Result<Value> result = client.invoke(make_sum_call({3.0, 4.0}));
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    EXPECT_EQ(result.value().as_double(), 7.0);
  });
  ASSERT_TRUE(wait_for([&] { return entered.load() == 1; }));

  // B is queued behind A and never reaches a worker: honest 503 at stop.
  std::thread client_b([&] {
    Result<std::unique_ptr<net::Transport>> t =
        net::tcp_connect(runtime.port());
    ASSERT_TRUE(t.ok());
    BsoapClient client(*t.value());
    Result<Value> result = client.invoke(make_sum_call({1.0}));
    EXPECT_FALSE(result.ok());
  });
  ASSERT_TRUE(wait_for([&] { return runtime.stats().queue_depth == 1; }));

  runtime.stop();
  client_a.join();
  client_b.join();

  const ServerStats stats = runtime.stats();
  EXPECT_EQ(stats.requests, 1u);  // A answered, B drained
  EXPECT_EQ(stats.drained, 1u);
  EXPECT_EQ(stats.active, 0u);
}

TEST(ServerRuntime, UnparseableHttpAnswers400AndCloses) {
  Result<std::unique_ptr<ServerRuntime>> server =
      ServerRuntime::start(sum_handler);
  ASSERT_TRUE(server.ok());
  ServerRuntime& runtime = *server.value();

  Result<std::unique_ptr<net::Transport>> transport =
      net::tcp_connect(runtime.port());
  ASSERT_TRUE(transport.ok());
  ASSERT_TRUE(transport.value()->send("NONSENSE STREAM\r\n\r\n").ok());
  http::HttpConnection conn(*transport.value());
  Result<http::HttpResponse> response = conn.read_response();
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  EXPECT_EQ(response.value().status, 400);
  EXPECT_NE(response.value().body.find("Client"), std::string::npos);
  EXPECT_EQ(runtime.stats().bad_requests, 1u);
  // The stream is out of sync, so the server closes it.
  ASSERT_TRUE(wait_for([&] { return runtime.stats().active == 0; }));
  runtime.stop();
}

TEST(ServerRuntime, BadSoapBodyAnswers400FaultAndKeepsConnection) {
  Result<std::unique_ptr<ServerRuntime>> server =
      ServerRuntime::start(sum_handler);
  ASSERT_TRUE(server.ok());
  ServerRuntime& runtime = *server.value();

  Result<std::unique_ptr<net::Transport>> transport =
      net::tcp_connect(runtime.port());
  ASSERT_TRUE(transport.ok());

  {
    http::HttpRequest bad;
    bad.headers.push_back(
        http::Header{"Content-Type", "text/xml; charset=utf-8"});
    const std::string body = "<this is not a SOAP envelope";
    const net::ConstSlice slice{body.data(), body.size()};
    http::HttpConnection conn(*transport.value());
    ASSERT_TRUE(conn.send_request(std::move(bad), {&slice, 1}).ok());
    Result<http::HttpResponse> response = conn.read_response();
    ASSERT_TRUE(response.ok()) << response.error().to_string();
    EXPECT_EQ(response.value().status, 400);
    EXPECT_NE(response.value().body.find("SOAP-ENV:Client"),
              std::string::npos);
  }

  // HTTP framing was intact, so the same connection serves a good request.
  BsoapClient client(*transport.value());
  Result<Value> result = client.invoke(make_sum_call({5.0, 6.0}));
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result.value().as_double(), 11.0);

  ASSERT_TRUE(wait_for([&] { return runtime.stats().requests == 1; }));
  const ServerStats stats = runtime.stats();
  EXPECT_EQ(stats.bad_requests, 1u);
  EXPECT_EQ(stats.faults, 1u);
  EXPECT_EQ(stats.requests, 1u);
  runtime.stop();
}

TEST(ServerRuntime, WorkerSlotsReapedAcrossSequentialConnections) {
  ServerRuntimeOptions options;
  options.workers = 2;
  Result<std::unique_ptr<ServerRuntime>> server =
      ServerRuntime::start(sum_handler, options);
  ASSERT_TRUE(server.ok());
  ServerRuntime& runtime = *server.value();

  // Many short-lived connections must not leak slots: each close frees its
  // worker for the next client.
  constexpr int kConnections = 6;
  for (int i = 0; i < kConnections; ++i) {
    Result<std::unique_ptr<net::Transport>> transport =
        net::tcp_connect(runtime.port());
    ASSERT_TRUE(transport.ok());
    BsoapClient client(*transport.value());
    Result<Value> result =
        client.invoke(make_sum_call({static_cast<double>(i), 1.0}));
    ASSERT_TRUE(result.ok()) << result.error().to_string();
  }
  ASSERT_TRUE(wait_for([&] { return runtime.stats().active == 0; }));
  const ServerStats stats = runtime.stats();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(kConnections));
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kConnections));
  EXPECT_EQ(stats.rejected, 0u);
  runtime.stop();
}

TEST(ServerRuntime, ConcurrentClientsStress) {
  // More client threads than workers: connections queue and every request
  // is still answered exactly once. This is the TSan workout for the pool.
  ServerRuntimeOptions options;
  options.workers = 4;
  Result<std::unique_ptr<ServerRuntime>> server =
      ServerRuntime::start(sum_handler, options);
  ASSERT_TRUE(server.ok());
  ServerRuntime& runtime = *server.value();

  constexpr int kThreads = 8;
  constexpr int kIterations = 15;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        Result<std::unique_ptr<net::Transport>> transport =
            net::tcp_connect(runtime.port());
        if (!transport.ok()) {
          failures.fetch_add(1);
          continue;
        }
        BsoapClient client(*transport.value());
        const double a = t, b = i;
        Result<Value> result = client.invoke(make_sum_call({a, b}));
        if (!result.ok() || result.value().as_double() != a + b) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();

  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(wait_for([&] { return runtime.stats().active == 0; }));
  const ServerStats stats = runtime.stats();
  EXPECT_EQ(stats.requests,
            static_cast<std::uint64_t>(kThreads * kIterations));
  EXPECT_EQ(stats.rejected, 0u);
  runtime.stop();
  // stop() is idempotent.
  runtime.stop();
}

TEST(SoapHttpServerFacade, ExposesRuntimeStats) {
  Result<std::unique_ptr<soap::SoapHttpServer>> server =
      soap::SoapHttpServer::start(sum_handler);
  ASSERT_TRUE(server.ok());

  Result<std::unique_ptr<net::Transport>> transport =
      net::tcp_connect(server.value()->port());
  ASSERT_TRUE(transport.ok());
  BsoapClient client(*transport.value());
  const RpcCall call = make_sum_call({2.0, 3.0});
  for (int i = 0; i < 2; ++i) {
    Result<Value> result = client.invoke(call);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().as_double(), 5.0);
  }
  EXPECT_EQ(server.value()->requests_served(), 2u);
  EXPECT_EQ(server.value()->faults_returned(), 0u);
  // Match-kind counters are recorded after the response write, so they can
  // trail the client's read.
  ASSERT_TRUE(wait_for([&] {
    return server.value()->runtime().stats().responses_total() == 2;
  }));
  const ServerStats stats = server.value()->runtime().stats();
  EXPECT_EQ(stats.response_first_time, 1u);
  EXPECT_EQ(stats.response_content_match, 1u);
  server.value()->stop();
}

// --- PacedTransport slice-direct writes -------------------------------------

TEST(PacedTransport, GatheredSendsDrainPartialWritesWithoutCopies) {
  Result<std::pair<std::unique_ptr<net::Transport>,
                   std::unique_ptr<net::Transport>>>
      pair = net::make_socketpair_transports();
  ASSERT_TRUE(pair.ok());
  auto [writer_side, reader_side] = std::move(pair.value());

  // Shrink the send buffer so a multi-megabyte gathered send cannot fit in
  // one kernel round: the paced loop must hit EAGAIN, count a partial
  // write, and resume from the advanced slice descriptors.
  const int fd = writer_side->native_handle();
  ASSERT_GE(fd, 0);
  const int small = 4096;
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &small, sizeof(small)), 0);

  Timeouts timeouts;
  timeouts.read = std::chrono::milliseconds(5000);
  timeouts.slice = std::chrono::milliseconds(5);
  std::atomic<std::uint64_t> partial_writes{0};
  PacedTransport paced(std::move(writer_side), timeouts, nullptr,
                       &partial_writes);
  ASSERT_TRUE(paced.paced_io());

  const std::string head(512, 'h');
  const std::string body(2 * 1024 * 1024, 'b');
  const std::string tail(64, 't');
  std::string received;
  std::thread reader([&] {
    // Let the writer fill the buffer first so the partial round is certain.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    char chunk[16384];
    for (;;) {
      Result<std::size_t> got = reader_side->recv(chunk, sizeof(chunk));
      if (!got.ok() || got.value() == 0) break;
      received.append(chunk, got.value());
      if (received.size() == head.size() + body.size() + tail.size()) break;
    }
  });

  const net::ConstSlice slices[3] = {{head.data(), head.size()},
                                     {body.data(), body.size()},
                                     {tail.data(), tail.size()}};
  const Status sent = paced.send_slices(std::span<const net::ConstSlice>(
      slices, 3));
  EXPECT_TRUE(sent.ok()) << sent.error().to_string();
  reader.join();

  EXPECT_GE(partial_writes.load(), 1u);
  EXPECT_EQ(received, head + body + tail);
}

TEST(PacedTransport, StalledReaderHitsWriteTimeout) {
  Result<std::pair<std::unique_ptr<net::Transport>,
                   std::unique_ptr<net::Transport>>>
      pair = net::make_socketpair_transports();
  ASSERT_TRUE(pair.ok());
  auto [writer_side, reader_side] = std::move(pair.value());
  const int fd = writer_side->native_handle();
  const int small = 4096;
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &small, sizeof(small)), 0);

  Timeouts timeouts;
  timeouts.read = std::chrono::milliseconds(100);
  timeouts.slice = std::chrono::milliseconds(5);
  PacedTransport paced(std::move(writer_side), timeouts, nullptr, nullptr);
  ASSERT_TRUE(paced.paced_io());

  // Nobody reads: the response cannot drain, so the paced write gives up
  // within the read-timeout budget instead of pinning the worker.
  const std::string body(4 * 1024 * 1024, 'x');
  const auto begin = std::chrono::steady_clock::now();
  const Status sent = paced.send(body.data(), body.size());
  ASSERT_FALSE(sent.ok());
  EXPECT_EQ(sent.error().code, ErrorCode::kTimeout);
  EXPECT_LT(std::chrono::steady_clock::now() - begin,
            std::chrono::milliseconds(2000));
}

}  // namespace
}  // namespace bsoap::server
