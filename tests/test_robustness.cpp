// Robustness fuzzing: parsers must reject malformed input with an error —
// never crash, hang, or mis-parse — under random truncation, byte flips and
// garbage. (The SOAP server faces the network; every parser here is
// attacker-facing in a real deployment.)
#include <gtest/gtest.h>

#include <string>

#include "buffer/sinks.hpp"
#include "common/rng.hpp"
#include "compress/deflate.hpp"
#include "http/http_message.hpp"
#include "soap/base64.hpp"
#include "soap/dime.hpp"
#include "soap/envelope_reader.hpp"
#include "soap/envelope_writer.hpp"
#include "soap/workload.hpp"
#include "wsdl/parser.hpp"
#include "wsdl/writer.hpp"
#include "xml/pull_parser.hpp"

namespace bsoap {
namespace {

std::string valid_envelope() {
  buffer::StringSink sink;
  soap::write_rpc_envelope(
      sink, soap::make_mio_array_call(soap::random_mios(20, 7)));
  return sink.take();
}

/// Drives the pull parser to completion or first error.
void exhaust_parser(std::string_view doc) {
  xml::XmlPullParser parser(doc);
  for (int guard = 0; guard < 1000000; ++guard) {
    Result<xml::XmlEvent> event = parser.next();
    if (!event.ok()) return;
    if (event.value() == xml::XmlEvent::kEof) return;
  }
  FAIL() << "parser did not terminate";
}

TEST(RobustnessFuzz, XmlParserSurvivesRandomBytes) {
  Rng rng(1001);
  for (int round = 0; round < 500; ++round) {
    std::string doc;
    const std::size_t n = rng.next_below(400);
    for (std::size_t i = 0; i < n; ++i) {
      // Bias towards XML-ish characters so the parser gets past the first
      // byte often enough to exercise deep paths.
      switch (rng.next_below(6)) {
        case 0: doc += '<'; break;
        case 1: doc += '>'; break;
        case 2: doc += '"'; break;
        case 3: doc += '&'; break;
        case 4: doc += static_cast<char>('a' + rng.next_below(26)); break;
        default: doc += static_cast<char>(rng.next_below(256)); break;
      }
    }
    exhaust_parser(doc);
  }
}

TEST(RobustnessFuzz, XmlParserSurvivesMutatedValidDocuments) {
  Rng rng(1002);
  const std::string valid = valid_envelope();
  for (int round = 0; round < 300; ++round) {
    std::string doc = valid;
    const std::size_t flips = 1 + rng.next_below(8);
    for (std::size_t f = 0; f < flips; ++f) {
      doc[rng.next_below(doc.size())] = static_cast<char>(rng.next_below(256));
    }
    exhaust_parser(doc);
    // The full SOAP reader must also either parse or error cleanly.
    (void)soap::read_rpc_envelope(doc);
  }
}

TEST(RobustnessFuzz, EnvelopeReaderSurvivesTruncation) {
  const std::string valid = valid_envelope();
  for (std::size_t cut = 0; cut < valid.size(); cut += 7) {
    (void)soap::read_rpc_envelope(std::string_view(valid).substr(0, cut));
  }
  // The complete document parses.
  EXPECT_TRUE(soap::read_rpc_envelope(valid).ok());
}

TEST(RobustnessFuzz, HttpHeadParserSurvivesGarbage) {
  Rng rng(1003);
  for (int round = 0; round < 500; ++round) {
    std::string head;
    const std::size_t n = rng.next_below(200);
    for (std::size_t i = 0; i < n; ++i) {
      switch (rng.next_below(5)) {
        case 0: head += '\r'; break;
        case 1: head += '\n'; break;
        case 2: head += ':'; break;
        case 3: head += ' '; break;
        default: head += static_cast<char>(32 + rng.next_below(95)); break;
      }
    }
    (void)http::parse_request_head(head);
    (void)http::parse_response_head(head);
  }
}

TEST(RobustnessFuzz, InflateSurvivesRandomStreams) {
  Rng rng(1004);
  for (int round = 0; round < 400; ++round) {
    std::string stream;
    const std::size_t n = rng.next_below(300);
    for (std::size_t i = 0; i < n; ++i) {
      stream += static_cast<char>(rng.next_below(256));
    }
    // Must terminate with either a result or an error; the output bound
    // prevents decompression bombs from hanging the test.
    (void)compress::inflate(stream, 1 << 20);
    (void)compress::gzip_decompress(stream, 1 << 20);
  }
}

TEST(RobustnessFuzz, InflateSurvivesCorruptedValidStreams) {
  Rng rng(1005);
  const std::string valid = compress::deflate(valid_envelope());
  for (int round = 0; round < 300; ++round) {
    std::string stream = valid;
    const std::size_t flips = 1 + rng.next_below(4);
    for (std::size_t f = 0; f < flips; ++f) {
      stream[rng.next_below(stream.size())] ^=
          static_cast<char>(1 << rng.next_below(8));
    }
    (void)compress::inflate(stream, 1 << 22);
  }
}

TEST(RobustnessFuzz, Base64AndDimeSurviveGarbage) {
  Rng rng(1006);
  for (int round = 0; round < 500; ++round) {
    std::string blob;
    const std::size_t n = rng.next_below(200);
    for (std::size_t i = 0; i < n; ++i) {
      blob += static_cast<char>(rng.next_below(256));
    }
    (void)soap::base64_decode(blob);
    (void)soap::parse_dime(blob);
  }
}

TEST(RobustnessFuzz, WsdlParserSurvivesMutation) {
  Rng rng(1007);
  const std::string valid = wsdl::write_wsdl(
      wsdl::ServiceBuilder("Fuzz", "urn:fuzz")
          .add_operation("op", {wsdl::TypedField{"x", wsdl::XsdType::kInt, ""}},
                         wsdl::TypedField{"return", wsdl::XsdType::kInt, ""})
          .build());
  for (int round = 0; round < 200; ++round) {
    std::string doc = valid;
    const std::size_t flips = 1 + rng.next_below(6);
    for (std::size_t f = 0; f < flips; ++f) {
      doc[rng.next_below(doc.size())] = static_cast<char>(rng.next_below(256));
    }
    (void)wsdl::parse_wsdl(doc);
  }
  EXPECT_TRUE(wsdl::parse_wsdl(valid).ok());
}

}  // namespace
}  // namespace bsoap
