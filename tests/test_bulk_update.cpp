// Bulk-vs-scalar equivalence for the array fast path.
//
// The acceptance bar for the bulk update path (SoA shadow planes, word-wide
// dirty scanning, run-based rewrites, optional parallel segment update) is
// byte-for-byte wire equivalence with the per-leaf path AND identical
// MatchKind/UpdateResult counters — including when values outgrow their
// fields and the run rewriter must fall back to the expansion machinery.
// These tests drive the same update sequences through a bulk-enabled and a
// bulk-disabled template and compare everything after every step.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "core/bulk_scan.hpp"
#include "core/diff_serializer.hpp"
#include "core/template_builder.hpp"
#include "soap/envelope_reader.hpp"
#include "soap/workload.hpp"

namespace bsoap::core {
namespace {

using soap::RpcCall;

TemplateConfig bulk_config() {
  TemplateConfig config;
  config.stuffing.mode = StuffingPolicy::Mode::kExact;
  config.bulk.enable = true;
  config.bulk.parallel = false;
  return config;
}

TemplateConfig scalar_config() {
  TemplateConfig config = bulk_config();
  config.bulk.enable = false;
  return config;
}

void expect_same_result(const UpdateResult& bulk, const UpdateResult& scalar,
                        int step) {
  EXPECT_EQ(bulk.match, scalar.match) << "step " << step;
  EXPECT_EQ(bulk.values_rewritten, scalar.values_rewritten) << "step " << step;
  EXPECT_EQ(bulk.tag_shifts, scalar.tag_shifts) << "step " << step;
  EXPECT_EQ(bulk.expansions, scalar.expansions) << "step " << step;
  EXPECT_EQ(bulk.steals, scalar.steals) << "step " << step;
}

/// Runs the compare-mode sequence through both paths; every step must agree
/// on bytes and counters. Returns total bulk leaves to let callers assert
/// the fast path actually engaged.
std::uint64_t expect_equivalent(const std::vector<RpcCall>& calls,
                                TemplateConfig bulk_cfg,
                                TemplateConfig scalar_cfg) {
  auto bulk_tmpl = build_template(calls[0], bulk_cfg);
  auto scalar_tmpl = build_template(calls[0], scalar_cfg);
  EXPECT_EQ(bulk_tmpl->buffer().linearize(), scalar_tmpl->buffer().linearize());
  std::uint64_t bulk_leaves = 0;
  for (std::size_t i = 1; i < calls.size(); ++i) {
    const UpdateResult b = update_template(*bulk_tmpl, calls[i]);
    const UpdateResult s = update_template(*scalar_tmpl, calls[i]);
    expect_same_result(b, s, static_cast<int>(i));
    EXPECT_EQ(s.bulk_leaves, 0u);
    bulk_leaves += b.bulk_leaves;
    EXPECT_EQ(bulk_tmpl->buffer().linearize(),
              scalar_tmpl->buffer().linearize())
        << "step " << i;
  }
  EXPECT_TRUE(bulk_tmpl->check_invariants());
  EXPECT_TRUE(scalar_tmpl->check_invariants());
  return bulk_leaves;
}

TEST(BulkEquivalence, DoubleSparseSameWidth) {
  const std::size_t n = 300;
  auto values = soap::doubles_with_serialized_length(n, 18, 1);
  const auto pool = soap::doubles_with_serialized_length(n, 18, 2);
  std::vector<RpcCall> calls;
  calls.push_back(soap::make_double_array_call(values));
  for (int step = 0; step < 4; ++step) {
    for (std::size_t i = static_cast<std::size_t>(step); i < n; i += 10) {
      values[i] = pool[(i + static_cast<std::size_t>(step)) % n];
    }
    calls.push_back(soap::make_double_array_call(values));
  }
  EXPECT_GT(expect_equivalent(calls, bulk_config(), scalar_config()), 0u);
}

TEST(BulkEquivalence, DoubleDenseRewrite) {
  const std::size_t n = 128;
  std::vector<RpcCall> calls;
  calls.push_back(
      soap::make_double_array_call(soap::doubles_with_serialized_length(n, 18, 3)));
  calls.push_back(
      soap::make_double_array_call(soap::doubles_with_serialized_length(n, 18, 4)));
  calls.push_back(
      soap::make_double_array_call(soap::doubles_with_serialized_length(n, 18, 5)));
  EXPECT_GT(expect_equivalent(calls, bulk_config(), scalar_config()), 0u);
}

TEST(BulkEquivalence, RaggedWidthsWithExpansionFallback) {
  // Exact stuffing + short initial values; replacements of wildly varying
  // serialized length force tag shifts, steals and chunk expansion inside
  // runs. The bulk path must fall back per-leaf for the overflowing fields
  // and still produce identical bytes and counters.
  const std::size_t n = 200;
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<double>(i % 7);
  std::vector<RpcCall> calls;
  calls.push_back(soap::make_double_array_call(values));
  auto wide = values;
  for (std::size_t i = 0; i < n; i += 3) {
    wide[i] = -2.2250738585072014e-308;  // 24 chars: guaranteed overflow
  }
  calls.push_back(soap::make_double_array_call(wide));
  // Shrink back: same-width path with huge padding, then grow a different set.
  calls.push_back(soap::make_double_array_call(values));
  auto wide2 = values;
  for (std::size_t i = 1; i < n; i += 5) {
    wide2[i] = 1.7976931348623157e308;
  }
  calls.push_back(soap::make_double_array_call(wide2));
  EXPECT_GT(expect_equivalent(calls, bulk_config(), scalar_config()), 0u);
}

TEST(BulkEquivalence, IntSparse) {
  const std::size_t n = 256;
  auto values = soap::random_ints(n, 6);
  std::vector<RpcCall> calls;
  calls.push_back(soap::make_int_array_call(values));
  for (int step = 1; step <= 3; ++step) {
    for (std::size_t i = 0; i < n; i += 8) {
      // Varying widths incl. sign flips; unsigned wrap keeps this UB-free.
      values[i] = static_cast<std::int32_t>(
          static_cast<std::uint32_t>(values[i]) * 31u +
          static_cast<std::uint32_t>(step));
    }
    calls.push_back(soap::make_int_array_call(values));
  }
  EXPECT_GT(expect_equivalent(calls, bulk_config(), scalar_config()), 0u);
}

TEST(BulkEquivalence, MioPerFieldRewrites) {
  const std::size_t n = 120;
  auto mios = soap::random_mios(n, 7);
  std::vector<RpcCall> calls;
  calls.push_back(soap::make_mio_array_call(mios));
  // Touch different fields of different elements each step.
  auto step1 = mios;
  for (std::size_t i = 0; i < n; i += 4) step1[i].value *= 0.5;
  calls.push_back(soap::make_mio_array_call(step1));
  auto step2 = step1;
  for (std::size_t i = 1; i < n; i += 4) {
    step2[i].x += 1000;
    step2[i].y = -step2[i].y;
  }
  calls.push_back(soap::make_mio_array_call(step2));
  EXPECT_GT(expect_equivalent(calls, bulk_config(), scalar_config()), 0u);
}

TEST(BulkEquivalence, NanAndNegativeZeroInArrays) {
  const std::size_t n = 64;
  std::vector<double> values(n, 0.0);
  std::vector<RpcCall> calls;
  calls.push_back(soap::make_double_array_call(values));
  auto tweaked = values;
  tweaked[5] = -0.0;  // bitwise change, same numeric value
  tweaked[6] = std::numeric_limits<double>::quiet_NaN();
  calls.push_back(soap::make_double_array_call(tweaked));
  // NaN -> same NaN must NOT rewrite (bitwise equality), so this step is a
  // content match on both paths.
  calls.push_back(soap::make_double_array_call(tweaked));
  EXPECT_GT(expect_equivalent(calls, bulk_config(), scalar_config()), 0u);
}

TEST(BulkEquivalence, DirtyModeDouble) {
  const std::size_t n = 200;
  const auto values = soap::doubles_with_serialized_length(n, 18, 8);
  const auto pool = soap::doubles_with_serialized_length(n, 18, 9);
  auto bulk_tmpl =
      build_template(soap::make_double_array_call(values), bulk_config());
  auto scalar_tmpl =
      build_template(soap::make_double_array_call(values), scalar_config());

  auto mutated = values;
  for (std::size_t i = 2; i < n; i += 7) {
    mutated[i] = pool[i];
    bulk_tmpl->dut().mark_dirty(i);
    scalar_tmpl->dut().mark_dirty(i);
  }
  const RpcCall call = soap::make_double_array_call(mutated);
  const UpdateResult b = update_dirty_fields(*bulk_tmpl, call);
  const UpdateResult s = update_dirty_fields(*scalar_tmpl, call);
  expect_same_result(b, s, 0);
  EXPECT_GT(b.bulk_leaves, 0u);
  EXPECT_GT(b.bulk_runs, 0u);
  EXPECT_FALSE(bulk_tmpl->dut().any_dirty());
  EXPECT_FALSE(scalar_tmpl->dut().any_dirty());
  EXPECT_EQ(bulk_tmpl->buffer().linearize(), scalar_tmpl->buffer().linearize());
}

TEST(BulkEquivalence, DirtyModeMioFieldGranularity) {
  const std::size_t n = 80;
  auto mios = soap::random_mios(n, 10);
  auto bulk_tmpl =
      build_template(soap::make_mio_array_call(mios), bulk_config());
  auto scalar_tmpl =
      build_template(soap::make_mio_array_call(mios), scalar_config());

  // Dirty only the double field of every third MIO plus one x coordinate:
  // leaf i*3+2 is the value, i*3 the x.
  auto mutated = mios;
  for (std::size_t i = 0; i < n; i += 3) {
    mutated[i].value *= 2.0;
    bulk_tmpl->dut().mark_dirty(i * 3 + 2);
    scalar_tmpl->dut().mark_dirty(i * 3 + 2);
  }
  mutated[1].x = 424242;
  bulk_tmpl->dut().mark_dirty(1 * 3);
  scalar_tmpl->dut().mark_dirty(1 * 3);

  const RpcCall call = soap::make_mio_array_call(mutated);
  const UpdateResult b = update_dirty_fields(*bulk_tmpl, call);
  const UpdateResult s = update_dirty_fields(*scalar_tmpl, call);
  expect_same_result(b, s, 0);
  EXPECT_FALSE(bulk_tmpl->dut().any_dirty());
  EXPECT_EQ(bulk_tmpl->buffer().linearize(), scalar_tmpl->buffer().linearize());
}

TEST(BulkEquivalence, ParallelSegmentUpdateMatchesSerial) {
  // Small chunks force a multi-chunk segment; type-max stuffing guarantees
  // fit so the parallel path is eligible. Serial bulk, parallel bulk and
  // scalar must all produce identical bytes and counters.
  const std::size_t n = 4000;
  TemplateConfig parallel_cfg = bulk_config();
  parallel_cfg.stuffing.mode = StuffingPolicy::Mode::kTypeMax;
  parallel_cfg.chunk.chunk_size = 4 * 1024;
  parallel_cfg.chunk.split_threshold = 8 * 1024;
  parallel_cfg.bulk.parallel = true;
  parallel_cfg.bulk.parallel_min_leaves = 64;
  TemplateConfig serial_cfg = parallel_cfg;
  serial_cfg.bulk.parallel = false;
  TemplateConfig plain_cfg = parallel_cfg;
  plain_cfg.bulk.enable = false;

  auto values = soap::random_doubles(n, 11);
  const RpcCall first = soap::make_double_array_call(values);
  auto par_tmpl = build_template(first, parallel_cfg);
  auto ser_tmpl = build_template(first, serial_cfg);
  auto pl_tmpl = build_template(first, plain_cfg);
  ASSERT_GT(par_tmpl->buffer().chunk_count(), 1u);

  const auto pool = soap::random_doubles(n, 12);
  for (int step = 1; step <= 3; ++step) {
    for (std::size_t i = static_cast<std::size_t>(step); i < n; i += 5) {
      values[i] = pool[(i * static_cast<std::size_t>(step)) % n];
    }
    const RpcCall call = soap::make_double_array_call(values);
    const UpdateResult p = update_template(*par_tmpl, call);
    const UpdateResult se = update_template(*ser_tmpl, call);
    const UpdateResult pl = update_template(*pl_tmpl, call);
    expect_same_result(p, se, step);
    expect_same_result(p, pl, step);
    ASSERT_EQ(par_tmpl->buffer().linearize(), ser_tmpl->buffer().linearize());
    ASSERT_EQ(par_tmpl->buffer().linearize(), pl_tmpl->buffer().linearize());
  }
  EXPECT_TRUE(par_tmpl->check_invariants());
}

TEST(BulkEquivalence, ParallelDirtyModeMatchesSerial) {
  const std::size_t n = 4000;
  TemplateConfig parallel_cfg = bulk_config();
  parallel_cfg.stuffing.mode = StuffingPolicy::Mode::kTypeMax;
  parallel_cfg.chunk.chunk_size = 4 * 1024;
  parallel_cfg.chunk.split_threshold = 8 * 1024;
  parallel_cfg.bulk.parallel = true;
  parallel_cfg.bulk.parallel_min_leaves = 64;
  TemplateConfig plain_cfg = parallel_cfg;
  plain_cfg.bulk.enable = false;

  auto values = soap::random_doubles(n, 13);
  const RpcCall first = soap::make_double_array_call(values);
  auto par_tmpl = build_template(first, parallel_cfg);
  auto pl_tmpl = build_template(first, plain_cfg);

  auto mutated = values;
  const auto pool = soap::random_doubles(n, 14);
  for (std::size_t i = 0; i < n; i += 3) {
    mutated[i] = pool[i];
    par_tmpl->dut().mark_dirty(i);
    pl_tmpl->dut().mark_dirty(i);
  }
  const RpcCall call = soap::make_double_array_call(mutated);
  const UpdateResult p = update_dirty_fields(*par_tmpl, call);
  const UpdateResult s = update_dirty_fields(*pl_tmpl, call);
  expect_same_result(p, s, 0);
  EXPECT_FALSE(par_tmpl->dut().any_dirty());
  EXPECT_EQ(par_tmpl->buffer().linearize(), pl_tmpl->buffer().linearize());
}

TEST(BulkEquivalence, SmallArraysSkipSegments) {
  // Below min_elements no segment is recorded and the bulk walk falls back
  // to per-leaf dispatch.
  TemplateConfig config = bulk_config();
  config.bulk.min_elements = 16;
  auto tmpl = build_template(
      soap::make_double_array_call(soap::random_doubles(8, 15)), config);
  EXPECT_TRUE(tmpl->dut().segments().empty());
  const UpdateResult result = update_template(
      *tmpl, soap::make_double_array_call(soap::random_doubles(8, 16)));
  EXPECT_EQ(result.bulk_leaves, 0u);
  EXPECT_EQ(result.values_rewritten, 8u);
}

TEST(BulkEquivalence, ContentMatchScansWithoutRewrites) {
  const RpcCall call =
      soap::make_double_array_call(soap::random_doubles(500, 17));
  auto tmpl = build_template(call, bulk_config());
  const UpdateResult result = update_template(*tmpl, call);
  EXPECT_EQ(result.match, MatchKind::kContentMatch);
  EXPECT_EQ(result.values_rewritten, 0u);
  EXPECT_EQ(result.bulk_leaves, 500u);
  EXPECT_EQ(result.bulk_runs, 0u);
}

// --- scanning primitives ----------------------------------------------------

using RunSpan = std::pair<std::size_t, std::size_t>;

std::vector<RunSpan> set_runs(const std::vector<std::uint64_t>& words,
                          std::size_t begin, std::size_t end) {
  std::vector<RunSpan> out;
  bulk::for_each_set_run(words.data(), begin, end,
                         [&](std::size_t b, std::size_t e) {
                           out.emplace_back(b, e);
                         });
  return out;
}

TEST(BulkScan, SetRunsCrossWordBoundaries) {
  std::vector<std::uint64_t> words(3, 0);
  // Run [60, 70): crosses the word 0/1 boundary.
  for (std::size_t i = 60; i < 70; ++i) words[i >> 6] |= 1ull << (i & 63);
  // Isolated bit 128 (first bit of word 2).
  words[2] |= 1ull;
  const auto runs = set_runs(words, 0, 192);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], RunSpan(60, 70));
  EXPECT_EQ(runs[1], RunSpan(128, 129));
}

TEST(BulkScan, SetRunsClipToRange) {
  std::vector<std::uint64_t> words(2, ~std::uint64_t{0});
  const auto runs = set_runs(words, 10, 100);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], RunSpan(10, 100));
  EXPECT_TRUE(set_runs(words, 50, 50).empty());
}

TEST(BulkScan, SetRunsEmptyMask) {
  std::vector<std::uint64_t> words(4, 0);
  EXPECT_TRUE(set_runs(words, 0, 256).empty());
}

TEST(BulkScan, DifferingRunsFindExactRanges) {
  const std::size_t n = 1000;
  std::vector<double> a(n, 1.0);
  std::vector<double> b = a;
  // Two runs, one crossing the 512-byte block boundary (64 doubles/block).
  for (std::size_t i = 60; i < 70; ++i) b[i] = 2.0;
  b[500] = 2.5;
  std::vector<RunSpan> runs;
  bulk::for_each_differing_run(a.data(), b.data(), n,
                               [&](std::size_t rb, std::size_t re) {
                                 runs.emplace_back(rb, re);
                               });
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], RunSpan(60, 70));
  EXPECT_EQ(runs[1], RunSpan(500, 501));
}

TEST(BulkScan, DifferingRunsIdenticalArrays) {
  std::vector<std::int32_t> a(777, 3);
  std::vector<std::int32_t> b = a;
  bool any = false;
  bulk::for_each_differing_run(a.data(), b.data(), a.size(),
                               [&](std::size_t, std::size_t) { any = true; });
  EXPECT_FALSE(any);
}

TEST(BulkScan, DifferingRunsAllDifferent) {
  std::vector<std::int32_t> a(130, 1);
  std::vector<std::int32_t> b(130, 2);
  std::vector<RunSpan> runs;
  bulk::for_each_differing_run(a.data(), b.data(), a.size(),
                               [&](std::size_t rb, std::size_t re) {
                                 runs.emplace_back(rb, re);
                               });
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], RunSpan(0, 130));
}

}  // namespace
}  // namespace bsoap::core
