// Tests for template building and the in-place rewrite engine: padding,
// closing-tag shifts, stealing, chunk shifting/realloc/split, and stuffing
// policies. The key oracle: after any rewrite sequence, the template must
// parse to exactly the values written, and with exact stuffing the bytes of
// a fresh build must equal the conventional serializer's output.
#include <gtest/gtest.h>

#include <cstring>

#include "buffer/sinks.hpp"
#include "common/rng.hpp"
#include "core/message_template.hpp"
#include "core/template_builder.hpp"
#include "soap/envelope_reader.hpp"
#include "soap/envelope_writer.hpp"
#include "soap/workload.hpp"
#include "textconv/dtoa.hpp"
#include "xml/escape.hpp"

namespace bsoap::core {
namespace {

using soap::RpcCall;
using soap::Value;

TemplateConfig exact_config() {
  TemplateConfig config;
  config.stuffing.mode = StuffingPolicy::Mode::kExact;
  return config;
}

TemplateConfig stuffed_config() {
  TemplateConfig config;
  config.stuffing.mode = StuffingPolicy::Mode::kTypeMax;
  return config;
}

std::string conventional(const RpcCall& call) {
  buffer::StringSink sink;
  soap::write_rpc_envelope(sink, call);
  return sink.take();
}

/// Parses the template and returns the reconstructed call.
RpcCall parse_template(MessageTemplate& tmpl) {
  Result<RpcCall> parsed = soap::read_rpc_envelope(tmpl.buffer().linearize());
  EXPECT_TRUE(parsed.ok()) << (parsed.ok() ? "" : parsed.error().to_string());
  return parsed.ok() ? parsed.value() : RpcCall{};
}

TEST(TemplateBuilder, ExactModeMatchesConventionalSerializer) {
  const auto calls = {
      soap::make_double_array_call(soap::random_doubles(100, 1)),
      soap::make_int_array_call(soap::random_ints(100, 2)),
      soap::make_mio_array_call(soap::random_mios(50, 3)),
  };
  for (const RpcCall& call : calls) {
    auto tmpl = build_template(call, exact_config());
    EXPECT_EQ(tmpl->buffer().linearize(), conventional(call));
    EXPECT_TRUE(tmpl->check_invariants());
    EXPECT_EQ(tmpl->signature, call.structure_signature());
  }
}

TEST(TemplateBuilder, MixedParamsMatchConventional) {
  RpcCall call;
  call.method = "mix";
  call.service_namespace = "urn:m";
  call.params.push_back(soap::Param{"i", Value::from_int(-5)});
  call.params.push_back(soap::Param{"s", Value::from_string("a<b&c")});
  Value st = Value::make_struct();
  st.add_member("x", Value::from_double(0.5));
  st.add_member("y", Value::from_bool(false));
  call.params.push_back(soap::Param{"st", st});
  auto tmpl = build_template(call, exact_config());
  EXPECT_EQ(tmpl->buffer().linearize(), conventional(call));
}

TEST(TemplateBuilder, DutEntriesPointAtValues) {
  const auto values = soap::random_doubles(50, 17);
  auto tmpl =
      build_template(soap::make_double_array_call(values), exact_config());
  ASSERT_EQ(tmpl->dut().size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const DutEntry& e = tmpl->dut()[i];
    char text[32];
    tmpl->buffer().read_at(e.pos, text, e.serialized_len);
    char expected[32];
    const int len = textconv::write_double(expected, values[i]);
    ASSERT_EQ(static_cast<std::uint32_t>(len), e.serialized_len);
    EXPECT_EQ(std::memcmp(text, expected, static_cast<std::size_t>(len)), 0);
    EXPECT_EQ(e.shadow.d, values[i]);
  }
}

TEST(TemplateBuilder, StuffingAllocatesTypeMaxWidths) {
  const auto values = soap::doubles_with_serialized_length(20, 1, 5);
  auto tmpl =
      build_template(soap::make_double_array_call(values), stuffed_config());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(tmpl->dut()[i].field_width, 24u);
    EXPECT_EQ(tmpl->dut()[i].serialized_len, 1u);
  }
  EXPECT_TRUE(tmpl->check_invariants());
  // Stuffed output still parses to the same values.
  const RpcCall parsed = parse_template(*tmpl);
  EXPECT_EQ(parsed.params[0].value.doubles(), values);
}

TEST(TemplateBuilder, FixedWidthPolicy) {
  TemplateConfig config;
  config.stuffing.mode = StuffingPolicy::Mode::kFixed;
  config.stuffing.fixed_width = 18;
  const auto values = soap::doubles_with_serialized_length(10, 12, 6);
  auto tmpl =
      build_template(soap::make_double_array_call(values), config);
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(tmpl->dut()[i].field_width, 18u);
  }
  // A 22-char value clamps the width up.
  const auto wide = soap::doubles_with_serialized_length(1, 22, 7);
  auto tmpl2 =
      build_template(soap::make_double_array_call(wide), config);
  EXPECT_EQ(tmpl2->dut()[0].field_width, 22u);
}

TEST(RewriteValue, SameSizeOverwrite) {
  auto tmpl = build_template(soap::make_double_array_call({1.5, 2.5}),
                             exact_config());
  const TemplateStats before = tmpl->stats();
  tmpl->rewrite_value(0, "9.5", 3);
  EXPECT_EQ(tmpl->stats().tag_shifts, before.tag_shifts);  // no tag shift
  const RpcCall parsed = parse_template(*tmpl);
  EXPECT_EQ(parsed.params[0].value.doubles(),
            (std::vector<double>{9.5, 2.5}));
  EXPECT_TRUE(tmpl->check_invariants());
}

TEST(RewriteValue, ShrinkingValueShiftsClosingTagAndPads) {
  auto tmpl = build_template(soap::make_double_array_call({1.52587890625}),
                             exact_config());
  const std::size_t size_before = tmpl->buffer().total_size();
  tmpl->rewrite_value(0, "7", 1);
  EXPECT_EQ(tmpl->buffer().total_size(), size_before);  // size preserved
  EXPECT_EQ(tmpl->stats().tag_shifts, 1u);
  EXPECT_EQ(tmpl->dut()[0].serialized_len, 1u);
  EXPECT_GT(tmpl->dut()[0].padding(), 0u);
  const RpcCall parsed = parse_template(*tmpl);
  EXPECT_EQ(parsed.params[0].value.doubles(), (std::vector<double>{7.0}));
  EXPECT_TRUE(tmpl->check_invariants());
}

TEST(RewriteValue, GrowingWithinStuffedWidthNeedsNoExpansion) {
  const auto small = soap::doubles_with_serialized_length(5, 1, 8);
  auto tmpl =
      build_template(soap::make_double_array_call(small), stuffed_config());
  const std::size_t size_before = tmpl->buffer().total_size();
  char text[32];
  const int len = textconv::write_double(text, -2.2250738585072014e-308);
  ASSERT_EQ(len, 24);
  tmpl->rewrite_value(2, text, 24);
  EXPECT_EQ(tmpl->buffer().total_size(), size_before);
  EXPECT_EQ(tmpl->stats().expansions, 0u);
  const RpcCall parsed = parse_template(*tmpl);
  EXPECT_EQ(parsed.params[0].value.doubles()[2], -2.2250738585072014e-308);
  EXPECT_TRUE(tmpl->check_invariants());
}

TEST(RewriteValue, GrowthStealsNeighbourPadding) {
  // Give entry 1 padding by rewriting its 13-char value with a 1-char one
  // (field widths never shrink); then grow entry 0 into that padding.
  auto tmpl2 = build_template(
      soap::make_double_array_call({1.0, 1.52587890625}), exact_config());
  tmpl2->rewrite_value(1, "2", 1);  // entry 1 now has 12 chars padding
  ASSERT_EQ(tmpl2->dut()[1].padding(), 12u);
  const std::size_t size_before = tmpl2->buffer().total_size();
  const std::size_t chunks_before = tmpl2->buffer().chunk_count();

  char text[32];
  const int len = textconv::write_double(text, 1.52587890625);  // 13 chars
  tmpl2->rewrite_value(0, text, static_cast<std::uint32_t>(len));
  EXPECT_EQ(tmpl2->stats().steals, 1u);
  EXPECT_EQ(tmpl2->stats().chunk_shifts, 0u);
  EXPECT_EQ(tmpl2->buffer().total_size(), size_before);  // no growth
  EXPECT_EQ(tmpl2->buffer().chunk_count(), chunks_before);
  EXPECT_EQ(tmpl2->dut()[1].padding(), 0u);  // donated everything
  const RpcCall parsed = parse_template(*tmpl2);
  EXPECT_EQ(parsed.params[0].value.doubles(),
            (std::vector<double>{1.52587890625, 2.0}));
  EXPECT_TRUE(tmpl2->check_invariants());
}

TEST(RewriteValue, GrowthShiftsChunkWhenStealingDisabled) {
  TemplateConfig config = exact_config();
  config.enable_stealing = false;
  const auto small = soap::doubles_with_serialized_length(10, 1, 9);
  auto tmpl = build_template(soap::make_double_array_call(small), config);
  const std::size_t size_before = tmpl->buffer().total_size();

  char text[32];
  const int len = textconv::write_double(text, -2.2250738585072014e-308);
  tmpl->rewrite_value(4, text, static_cast<std::uint32_t>(len));
  EXPECT_EQ(tmpl->stats().steals, 0u);
  EXPECT_EQ(tmpl->stats().expansions, 1u);
  EXPECT_EQ(tmpl->buffer().total_size(), size_before + 23);  // 24 - 1
  const RpcCall parsed = parse_template(*tmpl);
  EXPECT_EQ(parsed.params[0].value.doubles()[4], -2.2250738585072014e-308);
  EXPECT_TRUE(tmpl->check_invariants());
}

TEST(RewriteValue, WorstCaseShiftingEveryValue) {
  // Paper Figures 6/7: expand every value from minimum to maximum width.
  TemplateConfig config = exact_config();
  config.enable_stealing = false;
  config.chunk.chunk_size = 8 * 1024;
  config.chunk.split_threshold = 16 * 1024;
  const auto small = soap::doubles_with_serialized_length(2000, 1, 10);
  auto tmpl = build_template(soap::make_double_array_call(small), config);

  const auto big = soap::doubles_with_serialized_length(2000, 24, 11);
  char text[32];
  for (std::size_t i = 0; i < big.size(); ++i) {
    const int len = textconv::write_double(text, big[i]);
    ASSERT_EQ(len, 24);
    tmpl->rewrite_value(i, text, 24);
  }
  EXPECT_EQ(tmpl->stats().expansions, 2000u);
  EXPECT_TRUE(tmpl->check_invariants());
  const RpcCall parsed = parse_template(*tmpl);
  EXPECT_EQ(parsed.params[0].value.doubles(), big);
  // Growth forced chunk-level work.
  EXPECT_GT(tmpl->stats().chunk_shifts + tmpl->stats().chunk_reallocs +
                tmpl->stats().chunk_splits,
            0u);
}

TEST(RewriteValue, SplitKeepsDutCoherent) {
  // Tiny chunks with a low split threshold force splits during expansion.
  TemplateConfig config = exact_config();
  config.enable_stealing = false;
  config.chunk.chunk_size = 256;
  config.chunk.split_threshold = 300;
  config.chunk.tail_reserve = 8;
  const auto small = soap::doubles_with_serialized_length(200, 1, 12);
  auto tmpl = build_template(soap::make_double_array_call(small), config);

  const auto big = soap::doubles_with_serialized_length(200, 24, 13);
  char text[32];
  for (std::size_t i = 0; i < big.size(); ++i) {
    const int len = textconv::write_double(text, big[i]);
    tmpl->rewrite_value(i, text, static_cast<std::uint32_t>(len));
    ASSERT_TRUE(tmpl->check_invariants()) << "after rewrite " << i;
  }
  EXPECT_GT(tmpl->stats().chunk_splits, 0u);
  const RpcCall parsed = parse_template(*tmpl);
  EXPECT_EQ(parsed.params[0].value.doubles(), big);
}

TEST(RewriteValue, StuffOnExpandWidensToTypeMax) {
  const auto small = soap::doubles_with_serialized_length(4, 1, 14);

  // Without stuff_on_expand: width grows only to the new value length.
  TemplateConfig config = exact_config();
  config.enable_stealing = false;
  auto tmpl = build_template(soap::make_double_array_call(small), config);
  tmpl->rewrite_value(0, "1.25", 4);
  EXPECT_EQ(tmpl->dut()[0].field_width, 4u);

  // With stuff_on_expand: the first forced expansion widens straight to the
  // 24-character type maximum, so later growth never expands again.
  config.stuffing.stuff_on_expand = true;
  auto tmpl2 = build_template(soap::make_double_array_call(small), config);
  EXPECT_EQ(tmpl2->dut()[0].field_width, 1u);  // exact at build time
  tmpl2->rewrite_value(0, "1.25", 4);
  EXPECT_EQ(tmpl2->dut()[0].field_width, 24u);
  EXPECT_EQ(tmpl2->stats().expansions, 1u);
  char text[32];
  const int len = textconv::write_double(text, -2.2250738585072014e-308);
  tmpl2->rewrite_value(0, text, static_cast<std::uint32_t>(len));
  EXPECT_EQ(tmpl2->stats().expansions, 1u);  // no second expansion
  EXPECT_TRUE(tmpl2->check_invariants());
}

TEST(RewriteValue, StealScansPastNearNeighbours) {
  // Neighbour 1 has no padding; neighbour 2 does. The steal scan must walk
  // past the first and take from the second.
  auto tmpl = build_template(
      soap::make_double_array_call({1.0, 2.0, 1.52587890625}), exact_config());
  tmpl->rewrite_value(2, "3", 1);  // entry 2 now has 12 chars of padding
  ASSERT_EQ(tmpl->dut()[1].padding(), 0u);
  ASSERT_EQ(tmpl->dut()[2].padding(), 12u);

  char text[32];
  const int len = textconv::write_double(text, 1.52587890625);  // 13 chars
  const std::size_t size_before = tmpl->buffer().total_size();
  tmpl->rewrite_value(0, text, static_cast<std::uint32_t>(len));
  EXPECT_EQ(tmpl->stats().steals, 1u);
  EXPECT_EQ(tmpl->buffer().total_size(), size_before);
  const RpcCall parsed = parse_template(*tmpl);
  EXPECT_EQ(parsed.params[0].value.doubles(),
            (std::vector<double>{1.52587890625, 2.0, 3.0}));
  EXPECT_TRUE(tmpl->check_invariants());
}

TEST(RewriteValue, StealScanLimitRespected) {
  TemplateConfig config = exact_config();
  config.steal_scan_limit = 1;  // may only look at the immediate neighbour
  auto tmpl = build_template(
      soap::make_double_array_call({1.0, 2.0, 1.52587890625}), config);
  tmpl->rewrite_value(2, "3", 1);  // padding two entries away

  char text[32];
  const int len = textconv::write_double(text, 1.52587890625);
  tmpl->rewrite_value(0, text, static_cast<std::uint32_t>(len));
  EXPECT_EQ(tmpl->stats().steals, 0u);  // out of scan range: shifted instead
  EXPECT_GT(tmpl->stats().chunk_shifts + tmpl->stats().chunk_reallocs +
                tmpl->stats().chunk_splits,
            0u);
  EXPECT_TRUE(tmpl->check_invariants());
}

TEST(RewriteValue, StealNeverCrossesChunkBoundary) {
  TemplateConfig config = exact_config();
  config.chunk.chunk_size = 96;  // tiny: entries land in separate chunks
  config.chunk.split_threshold = 192;
  config.chunk.tail_reserve = 0;
  auto tmpl = build_template(
      soap::make_double_array_call({1.0, 2.0, 3.0, 4.0, 1.52587890625}),
      config);
  // Give a later entry padding, then grow an earlier entry in a different
  // chunk: stealing must not reach across.
  tmpl->rewrite_value(4, "5", 1);
  const std::uint32_t donor_chunk = tmpl->dut()[4].pos.chunk;
  std::size_t grow_idx = 0;
  while (grow_idx < 4 && tmpl->dut()[grow_idx].pos.chunk == donor_chunk) {
    ++grow_idx;
  }
  if (tmpl->dut()[grow_idx].pos.chunk != donor_chunk) {
    char text[32];
    const int len = textconv::write_double(text, 1.52587890625);
    tmpl->rewrite_value(grow_idx, text, static_cast<std::uint32_t>(len));
    EXPECT_TRUE(tmpl->check_invariants());
    const RpcCall parsed = parse_template(*tmpl);
    EXPECT_EQ(parsed.params[0].value.doubles()[grow_idx], 1.52587890625);
  }
}

TEST(TemplateBuilder, IntAndBoolArraysAndScalars) {
  RpcCall call;
  call.method = "m";
  call.service_namespace = "urn:s";
  call.params.push_back(soap::Param{"flags", Value::from_bool(true)});
  call.params.push_back(
      soap::Param{"counts", Value::from_int_array({0, -1, 2147483647})});
  auto tmpl = build_template(call, exact_config());
  EXPECT_EQ(tmpl->dut().size(), 4u);
  EXPECT_EQ(tmpl->buffer().linearize(), conventional(call));
  // Bool growth: "true" -> "false" expands by one char.
  tmpl->rewrite_value(0, "false", 5);
  const RpcCall parsed = parse_template(*tmpl);
  EXPECT_FALSE(parsed.params[0].value.as_bool());
  EXPECT_EQ(parsed.params[1].value.ints(),
            (std::vector<std::int32_t>{0, -1, 2147483647}));
}

TEST(RewriteValue, RandomizedStressAgainstRebuildOracle) {
  Rng rng(31415);
  for (int round = 0; round < 10; ++round) {
    TemplateConfig config = exact_config();
    config.chunk.chunk_size = 512 + rng.next_below(1024);
    config.chunk.split_threshold = config.chunk.chunk_size * 2;
    config.chunk.tail_reserve = rng.next_below(64);
    config.enable_stealing = rng.chance(1, 2);

    std::vector<double> values = soap::random_unit_doubles(100, rng.next_u64());
    auto tmpl =
        build_template(soap::make_double_array_call(values), config);

    for (int step = 0; step < 200; ++step) {
      const std::size_t i = rng.next_below(values.size());
      double v;
      switch (rng.next_below(3)) {
        case 0: v = static_cast<double>(rng.next_in(1, 9)); break;
        case 1: v = Rng(rng.next_u64()).next_unit_double(); break;
        default: v = Rng(rng.next_u64()).next_finite_double(); break;
      }
      values[i] = v;
      char text[32];
      const int len = textconv::write_double(text, v);
      tmpl->rewrite_value(i, text, static_cast<std::uint32_t>(len));
      ASSERT_TRUE(tmpl->check_invariants()) << "round " << round;
    }
    const RpcCall parsed = parse_template(*tmpl);
    const auto& back = parsed.params[0].value.doubles();
    ASSERT_EQ(back.size(), values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      ASSERT_EQ(std::memcmp(&back[i], &values[i], sizeof(double)), 0)
          << "round " << round << " index " << i;
    }
  }
}

TEST(RebuildTemplate, RecyclesStorage) {
  auto tmpl = build_template(soap::make_double_array_call({1.0, 2.0}),
                             exact_config());
  const RpcCall other = soap::make_int_array_call({7, 8, 9});
  rebuild_template(*tmpl, other);
  EXPECT_EQ(tmpl->signature, other.structure_signature());
  EXPECT_EQ(tmpl->dut().size(), 3u);
  const RpcCall parsed = parse_template(*tmpl);
  EXPECT_EQ(parsed.params[0].value.ints(), (std::vector<std::int32_t>{7, 8, 9}));
}

TEST(RewriteValue, StringFieldsGrowAndShrink) {
  RpcCall call;
  call.method = "m";
  call.service_namespace = "urn:s";
  call.params.push_back(soap::Param{"s", Value::from_string("short")});
  call.params.push_back(soap::Param{"t", Value::from_string("other")});
  auto tmpl = build_template(call, exact_config());

  // Grow the first string (escaped form).
  const std::string long_text = "a much longer string with <markup> &amp; escapes";
  std::string escaped;
  xml::escape_append(escaped, long_text);
  tmpl->rewrite_value(0, escaped.data(),
                      static_cast<std::uint32_t>(escaped.size()));
  EXPECT_TRUE(tmpl->check_invariants());
  RpcCall parsed = parse_template(*tmpl);
  EXPECT_EQ(parsed.params[0].value.as_string(), long_text);
  EXPECT_EQ(parsed.params[1].value.as_string(), "other");

  // Shrink it again; the closing tag moves left and the leftover width is
  // padded *outside* the element, so the value reads back exactly.
  tmpl->rewrite_value(0, "x", 1);
  parsed = parse_template(*tmpl);
  EXPECT_EQ(parsed.params[0].value.as_string(), "x");
  EXPECT_EQ(parsed.params[1].value.as_string(), "other");
  EXPECT_TRUE(tmpl->check_invariants());
}

}  // namespace
}  // namespace bsoap::core
